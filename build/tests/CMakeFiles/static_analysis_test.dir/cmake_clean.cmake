file(REMOVE_RECURSE
  "CMakeFiles/static_analysis_test.dir/jsoniq/static_analysis_test.cc.o"
  "CMakeFiles/static_analysis_test.dir/jsoniq/static_analysis_test.cc.o.d"
  "static_analysis_test"
  "static_analysis_test.pdb"
  "static_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
