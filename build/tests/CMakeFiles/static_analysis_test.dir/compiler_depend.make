# Empty compiler generated dependencies file for static_analysis_test.
# This may be replaced when dependencies are built.
