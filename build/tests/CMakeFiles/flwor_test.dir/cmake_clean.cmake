file(REMOVE_RECURSE
  "CMakeFiles/flwor_test.dir/jsoniq/flwor_test.cc.o"
  "CMakeFiles/flwor_test.dir/jsoniq/flwor_test.cc.o.d"
  "flwor_test"
  "flwor_test.pdb"
  "flwor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flwor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
