file(REMOVE_RECURSE
  "CMakeFiles/item_test.dir/item/item_test.cc.o"
  "CMakeFiles/item_test.dir/item/item_test.cc.o.d"
  "item_test"
  "item_test.pdb"
  "item_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
