# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/item_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/rdd_test[1]_include.cmake")
include("/root/repo/build/tests/dataframe_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_parser_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/flwor_test[1]_include.cmake")
include("/root/repo/build/tests/functions_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/static_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart" "1500")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_data_cleaning "/root/repo/build/examples/data_cleaning" "1500")
set_tests_properties(example_data_cleaning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_reddit_analytics "/root/repo/build/examples/reddit_analytics" "1500")
set_tests_properties(example_reddit_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_shell_query "/root/repo/build/examples/rumble_shell" "--query" "sum(parallelize(1 to 10))")
set_tests_properties(example_shell_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
