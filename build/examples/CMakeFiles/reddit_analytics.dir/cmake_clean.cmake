file(REMOVE_RECURSE
  "CMakeFiles/reddit_analytics.dir/reddit_analytics.cpp.o"
  "CMakeFiles/reddit_analytics.dir/reddit_analytics.cpp.o.d"
  "reddit_analytics"
  "reddit_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reddit_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
