# Empty dependencies file for reddit_analytics.
# This may be replaced when dependencies are built.
