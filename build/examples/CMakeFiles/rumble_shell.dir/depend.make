# Empty dependencies file for rumble_shell.
# This may be replaced when dependencies are built.
