file(REMOVE_RECURSE
  "CMakeFiles/rumble_shell.dir/rumble_shell.cpp.o"
  "CMakeFiles/rumble_shell.dir/rumble_shell.cpp.o.d"
  "rumble_shell"
  "rumble_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumble_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
