
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/handcoded.cc" "src/CMakeFiles/rumble_extras.dir/baselines/handcoded.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/baselines/handcoded.cc.o.d"
  "/root/repo/src/baselines/pyspark_sim.cc" "src/CMakeFiles/rumble_extras.dir/baselines/pyspark_sim.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/baselines/pyspark_sim.cc.o.d"
  "/root/repo/src/baselines/sparksql.cc" "src/CMakeFiles/rumble_extras.dir/baselines/sparksql.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/baselines/sparksql.cc.o.d"
  "/root/repo/src/baselines/xidel_sim.cc" "src/CMakeFiles/rumble_extras.dir/baselines/xidel_sim.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/baselines/xidel_sim.cc.o.d"
  "/root/repo/src/baselines/zorba_sim.cc" "src/CMakeFiles/rumble_extras.dir/baselines/zorba_sim.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/baselines/zorba_sim.cc.o.d"
  "/root/repo/src/workload/confusion.cc" "src/CMakeFiles/rumble_extras.dir/workload/confusion.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/workload/confusion.cc.o.d"
  "/root/repo/src/workload/messy.cc" "src/CMakeFiles/rumble_extras.dir/workload/messy.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/workload/messy.cc.o.d"
  "/root/repo/src/workload/reddit.cc" "src/CMakeFiles/rumble_extras.dir/workload/reddit.cc.o" "gcc" "src/CMakeFiles/rumble_extras.dir/workload/reddit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rumble.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
