file(REMOVE_RECURSE
  "librumble_extras.a"
)
