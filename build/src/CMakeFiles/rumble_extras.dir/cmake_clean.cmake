file(REMOVE_RECURSE
  "CMakeFiles/rumble_extras.dir/baselines/handcoded.cc.o"
  "CMakeFiles/rumble_extras.dir/baselines/handcoded.cc.o.d"
  "CMakeFiles/rumble_extras.dir/baselines/pyspark_sim.cc.o"
  "CMakeFiles/rumble_extras.dir/baselines/pyspark_sim.cc.o.d"
  "CMakeFiles/rumble_extras.dir/baselines/sparksql.cc.o"
  "CMakeFiles/rumble_extras.dir/baselines/sparksql.cc.o.d"
  "CMakeFiles/rumble_extras.dir/baselines/xidel_sim.cc.o"
  "CMakeFiles/rumble_extras.dir/baselines/xidel_sim.cc.o.d"
  "CMakeFiles/rumble_extras.dir/baselines/zorba_sim.cc.o"
  "CMakeFiles/rumble_extras.dir/baselines/zorba_sim.cc.o.d"
  "CMakeFiles/rumble_extras.dir/workload/confusion.cc.o"
  "CMakeFiles/rumble_extras.dir/workload/confusion.cc.o.d"
  "CMakeFiles/rumble_extras.dir/workload/messy.cc.o"
  "CMakeFiles/rumble_extras.dir/workload/messy.cc.o.d"
  "CMakeFiles/rumble_extras.dir/workload/reddit.cc.o"
  "CMakeFiles/rumble_extras.dir/workload/reddit.cc.o.d"
  "librumble_extras.a"
  "librumble_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rumble_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
