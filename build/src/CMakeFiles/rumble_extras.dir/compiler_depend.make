# Empty compiler generated dependencies file for rumble_extras.
# This may be replaced when dependencies are built.
