file(REMOVE_RECURSE
  "librumble.a"
)
