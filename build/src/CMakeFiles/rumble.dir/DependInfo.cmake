
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/rumble.dir/common/config.cc.o" "gcc" "src/CMakeFiles/rumble.dir/common/config.cc.o.d"
  "/root/repo/src/common/error.cc" "src/CMakeFiles/rumble.dir/common/error.cc.o" "gcc" "src/CMakeFiles/rumble.dir/common/error.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rumble.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rumble.dir/common/status.cc.o.d"
  "/root/repo/src/df/column.cc" "src/CMakeFiles/rumble.dir/df/column.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/column.cc.o.d"
  "/root/repo/src/df/dataframe.cc" "src/CMakeFiles/rumble.dir/df/dataframe.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/dataframe.cc.o.d"
  "/root/repo/src/df/expressions.cc" "src/CMakeFiles/rumble.dir/df/expressions.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/expressions.cc.o.d"
  "/root/repo/src/df/logical_plan.cc" "src/CMakeFiles/rumble.dir/df/logical_plan.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/logical_plan.cc.o.d"
  "/root/repo/src/df/optimizer.cc" "src/CMakeFiles/rumble.dir/df/optimizer.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/optimizer.cc.o.d"
  "/root/repo/src/df/physical_exec.cc" "src/CMakeFiles/rumble.dir/df/physical_exec.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/physical_exec.cc.o.d"
  "/root/repo/src/df/schema.cc" "src/CMakeFiles/rumble.dir/df/schema.cc.o" "gcc" "src/CMakeFiles/rumble.dir/df/schema.cc.o.d"
  "/root/repo/src/exec/executor_pool.cc" "src/CMakeFiles/rumble.dir/exec/executor_pool.cc.o" "gcc" "src/CMakeFiles/rumble.dir/exec/executor_pool.cc.o.d"
  "/root/repo/src/exec/simulated_cluster.cc" "src/CMakeFiles/rumble.dir/exec/simulated_cluster.cc.o" "gcc" "src/CMakeFiles/rumble.dir/exec/simulated_cluster.cc.o.d"
  "/root/repo/src/exec/task_metrics.cc" "src/CMakeFiles/rumble.dir/exec/task_metrics.cc.o" "gcc" "src/CMakeFiles/rumble.dir/exec/task_metrics.cc.o.d"
  "/root/repo/src/item/item.cc" "src/CMakeFiles/rumble.dir/item/item.cc.o" "gcc" "src/CMakeFiles/rumble.dir/item/item.cc.o.d"
  "/root/repo/src/item/item_compare.cc" "src/CMakeFiles/rumble.dir/item/item_compare.cc.o" "gcc" "src/CMakeFiles/rumble.dir/item/item_compare.cc.o.d"
  "/root/repo/src/item/item_factory.cc" "src/CMakeFiles/rumble.dir/item/item_factory.cc.o" "gcc" "src/CMakeFiles/rumble.dir/item/item_factory.cc.o.d"
  "/root/repo/src/json/dom.cc" "src/CMakeFiles/rumble.dir/json/dom.cc.o" "gcc" "src/CMakeFiles/rumble.dir/json/dom.cc.o.d"
  "/root/repo/src/json/item_parser.cc" "src/CMakeFiles/rumble.dir/json/item_parser.cc.o" "gcc" "src/CMakeFiles/rumble.dir/json/item_parser.cc.o.d"
  "/root/repo/src/json/lines.cc" "src/CMakeFiles/rumble.dir/json/lines.cc.o" "gcc" "src/CMakeFiles/rumble.dir/json/lines.cc.o.d"
  "/root/repo/src/json/writer.cc" "src/CMakeFiles/rumble.dir/json/writer.cc.o" "gcc" "src/CMakeFiles/rumble.dir/json/writer.cc.o.d"
  "/root/repo/src/jsoniq/ast.cc" "src/CMakeFiles/rumble.dir/jsoniq/ast.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/ast.cc.o.d"
  "/root/repo/src/jsoniq/functions/function_library.cc" "src/CMakeFiles/rumble.dir/jsoniq/functions/function_library.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/functions/function_library.cc.o.d"
  "/root/repo/src/jsoniq/functions/io_functions.cc" "src/CMakeFiles/rumble.dir/jsoniq/functions/io_functions.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/functions/io_functions.cc.o.d"
  "/root/repo/src/jsoniq/functions/numeric_functions.cc" "src/CMakeFiles/rumble.dir/jsoniq/functions/numeric_functions.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/functions/numeric_functions.cc.o.d"
  "/root/repo/src/jsoniq/functions/object_functions.cc" "src/CMakeFiles/rumble.dir/jsoniq/functions/object_functions.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/functions/object_functions.cc.o.d"
  "/root/repo/src/jsoniq/functions/sequence_functions.cc" "src/CMakeFiles/rumble.dir/jsoniq/functions/sequence_functions.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/functions/sequence_functions.cc.o.d"
  "/root/repo/src/jsoniq/functions/string_functions.cc" "src/CMakeFiles/rumble.dir/jsoniq/functions/string_functions.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/functions/string_functions.cc.o.d"
  "/root/repo/src/jsoniq/lexer.cc" "src/CMakeFiles/rumble.dir/jsoniq/lexer.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/lexer.cc.o.d"
  "/root/repo/src/jsoniq/parser.cc" "src/CMakeFiles/rumble.dir/jsoniq/parser.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/parser.cc.o.d"
  "/root/repo/src/jsoniq/rumble.cc" "src/CMakeFiles/rumble.dir/jsoniq/rumble.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/rumble.cc.o.d"
  "/root/repo/src/jsoniq/runtime/arithmetic_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/arithmetic_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/arithmetic_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/comparison_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/comparison_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/comparison_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/control_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/control_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/control_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/dynamic_context.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/dynamic_context.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/dynamic_context.cc.o.d"
  "/root/repo/src/jsoniq/runtime/flwor_dataframe.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/flwor_dataframe.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/flwor_dataframe.cc.o.d"
  "/root/repo/src/jsoniq/runtime/flwor_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/flwor_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/flwor_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/flwor_tuple_rdd.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/flwor_tuple_rdd.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/flwor_tuple_rdd.cc.o.d"
  "/root/repo/src/jsoniq/runtime/logic_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/logic_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/logic_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/navigation_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/navigation_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/navigation_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/primary_iterators.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/primary_iterators.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/primary_iterators.cc.o.d"
  "/root/repo/src/jsoniq/runtime/runtime_iterator.cc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/runtime_iterator.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/runtime/runtime_iterator.cc.o.d"
  "/root/repo/src/jsoniq/sequence_type.cc" "src/CMakeFiles/rumble.dir/jsoniq/sequence_type.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/sequence_type.cc.o.d"
  "/root/repo/src/jsoniq/static_context.cc" "src/CMakeFiles/rumble.dir/jsoniq/static_context.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/static_context.cc.o.d"
  "/root/repo/src/jsoniq/visitor/iterator_builder.cc" "src/CMakeFiles/rumble.dir/jsoniq/visitor/iterator_builder.cc.o" "gcc" "src/CMakeFiles/rumble.dir/jsoniq/visitor/iterator_builder.cc.o.d"
  "/root/repo/src/spark/context.cc" "src/CMakeFiles/rumble.dir/spark/context.cc.o" "gcc" "src/CMakeFiles/rumble.dir/spark/context.cc.o.d"
  "/root/repo/src/storage/dfs.cc" "src/CMakeFiles/rumble.dir/storage/dfs.cc.o" "gcc" "src/CMakeFiles/rumble.dir/storage/dfs.cc.o.d"
  "/root/repo/src/storage/text_source.cc" "src/CMakeFiles/rumble.dir/storage/text_source.cc.o" "gcc" "src/CMakeFiles/rumble.dir/storage/text_source.cc.o.d"
  "/root/repo/src/util/memory_budget.cc" "src/CMakeFiles/rumble.dir/util/memory_budget.cc.o" "gcc" "src/CMakeFiles/rumble.dir/util/memory_budget.cc.o.d"
  "/root/repo/src/util/prng.cc" "src/CMakeFiles/rumble.dir/util/prng.cc.o" "gcc" "src/CMakeFiles/rumble.dir/util/prng.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/rumble.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/rumble.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/rumble.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/rumble.dir/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
