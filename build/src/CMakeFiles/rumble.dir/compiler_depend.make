# Empty compiler generated dependencies file for rumble.
# This may be replaced when dependencies are built.
