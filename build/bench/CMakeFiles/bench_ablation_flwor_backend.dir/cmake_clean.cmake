file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flwor_backend.dir/bench_ablation_flwor_backend.cc.o"
  "CMakeFiles/bench_ablation_flwor_backend.dir/bench_ablation_flwor_backend.cc.o.d"
  "bench_ablation_flwor_backend"
  "bench_ablation_flwor_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flwor_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
