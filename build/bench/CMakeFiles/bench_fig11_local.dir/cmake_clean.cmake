file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_local.dir/bench_fig11_local.cc.o"
  "CMakeFiles/bench_fig11_local.dir/bench_fig11_local.cc.o.d"
  "bench_fig11_local"
  "bench_fig11_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
