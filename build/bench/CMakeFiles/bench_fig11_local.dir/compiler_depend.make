# Empty compiler generated dependencies file for bench_fig11_local.
# This may be replaced when dependencies are built.
