# Empty dependencies file for bench_ablation_parser.
# This may be replaced when dependencies are built.
