file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parser.dir/bench_ablation_parser.cc.o"
  "CMakeFiles/bench_ablation_parser.dir/bench_ablation_parser.cc.o.d"
  "bench_ablation_parser"
  "bench_ablation_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
