file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_engines.dir/bench_fig12_engines.cc.o"
  "CMakeFiles/bench_fig12_engines.dir/bench_fig12_engines.cc.o.d"
  "bench_fig12_engines"
  "bench_fig12_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
