# Empty dependencies file for bench_ablation_groupby_pushdown.
# This may be replaced when dependencies are built.
