# Empty dependencies file for bench_fig15_scale.
# This may be replaced when dependencies are built.
