file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_orderby.dir/bench_ablation_orderby.cc.o"
  "CMakeFiles/bench_ablation_orderby.dir/bench_ablation_orderby.cc.o.d"
  "bench_ablation_orderby"
  "bench_ablation_orderby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orderby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
