# Empty dependencies file for bench_ablation_orderby.
# This may be replaced when dependencies are built.
