#ifndef RUMBLE_EXEC_QUERY_SCOPE_H_
#define RUMBLE_EXEC_QUERY_SCOPE_H_

#include <atomic>
#include <cstdint>

namespace rumble::exec {

class CancellationToken;

/// Per-query memory accounting for the serving path (docs/SERVING.md): a
/// sub-pool carved out of the engine-wide MemoryManager limit. Charges ride
/// along with MemoryManager::TryReserve/Release through the thread's
/// QueryScope; exceeding the cap denies the reservation, so the *owning*
/// query spills its own state while co-tenant queries keep their memory.
class QueryMemoryPool {
 public:
  explicit QueryMemoryPool(std::uint64_t cap_bytes) : cap_(cap_bytes) {}

  /// Records `bytes` against the cap. Returns false — and records nothing —
  /// when the charge would exceed the cap. Cap 0 never denies.
  bool Charge(std::uint64_t bytes);

  /// Releases a prior charge, clamped at zero: a consumer force-spilled from
  /// outside the owning query's scope releases globally without a matching
  /// pool charge visible here, and that must never underflow the pool.
  void Uncharge(std::uint64_t bytes);

  std::uint64_t cap_bytes() const { return cap_; }
  std::uint64_t charged_bytes() const {
    std::int64_t value = charged_.load(std::memory_order_acquire);
    return value > 0 ? static_cast<std::uint64_t>(value) : 0;
  }

 private:
  std::uint64_t cap_;
  std::atomic<std::int64_t> charged_{0};
};

/// Per-query resource attribution (docs/PROFILING.md): live memory
/// charge/high-water and spill traffic, accumulated from whatever thread is
/// executing under the query's scope. MemoryManager::Allocate/Release/
/// TryReserve feed the memory side at exactly the sites that move the
/// engine-wide `mem.*` counters; the spill writers in src/df feed the spill
/// side at exactly the sites that bump `spill.*` — so for a query running
/// alone the profile's fields equal the counter deltas (asserted under
/// -DRUMBLE_ASSERT_METRICS). All relaxed atomics: attribution must never
/// add synchronization to the hot allocation path.
struct QueryResourceStats {
  std::atomic<std::int64_t> current_bytes{0};
  std::atomic<std::int64_t> peak_bytes{0};
  std::atomic<std::int64_t> spill_bytes_written{0};
  std::atomic<std::int64_t> spill_bytes_read{0};
  std::atomic<std::int64_t> spill_files{0};

  void Charge(std::int64_t bytes) {
    std::int64_t now =
        current_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::int64_t peak = peak_bytes.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Clamped at zero, same reasoning as QueryMemoryPool::Uncharge: a victim
  /// force-spilled from outside this query's scope releases globally without
  /// a charge visible here.
  void Uncharge(std::int64_t bytes) {
    std::int64_t now =
        current_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
    while (now < 0) {
      std::int64_t expected = now;
      if (current_bytes.compare_exchange_weak(expected, 0,
                                              std::memory_order_relaxed)) {
        break;
      }
      now = expected;
      if (now >= 0) break;
    }
  }
};

/// What one concurrently-served query carries through execution: its own
/// cancellation token, optionally its memory sub-pool, and optionally a
/// resource-stats sink for the query profile. The scope object lives on the
/// serving thread's stack for the duration of the query; the pointers it
/// holds must outlive every stage the query runs.
struct QueryScope {
  CancellationToken* cancel = nullptr;
  QueryMemoryPool* memory = nullptr;
  QueryResourceStats* stats = nullptr;
};

/// The stats sink of the scope bound to the calling thread, or nullptr.
/// Spill writers call this next to every `spill.*` counter bump so spill
/// I/O lands on the owning query's profile.
QueryResourceStats* CurrentQueryStats();

/// The scope bound to the calling thread; nullptr outside any served query
/// (the shell path). spark::Context::cancellation() and
/// MemoryManager::TryReserve/Release consult this, and the ExecutorPool
/// captures the submitting thread's scope per stage and re-binds it around
/// every task attempt, so a query's kernel loops and reservations resolve to
/// its own token and pool on every thread they touch.
const QueryScope* CurrentQueryScope();

/// RAII binding of a scope to the current thread; restores the previous
/// binding (usually none) on destruction. Binding nullptr suspends the
/// enclosing scope — the forced-spill pass does this so victims releasing
/// *other* queries' memory never uncharge the requester's pool.
class QueryScopeBinding {
 public:
  explicit QueryScopeBinding(const QueryScope* scope);
  ~QueryScopeBinding();

  QueryScopeBinding(const QueryScopeBinding&) = delete;
  QueryScopeBinding& operator=(const QueryScopeBinding&) = delete;

 private:
  const QueryScope* previous_;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_QUERY_SCOPE_H_
