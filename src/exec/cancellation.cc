#include "src/exec/cancellation.h"

#include <chrono>
#include <string>

#include "src/common/error.h"

namespace rumble::exec {

namespace {

std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void CancellationToken::Cancel(Origin origin) noexcept {
  int expected = static_cast<int>(Origin::kNone);
  origin_.compare_exchange_strong(expected, static_cast<int>(origin),
                                  std::memory_order_acq_rel);
}

void CancellationToken::SetDeadlineAfterMs(std::int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    deadline_nanos_.store(0, std::memory_order_release);
    return;
  }
  deadline_nanos_.store(SteadyNowNanos() + timeout_ms * 1'000'000,
                        std::memory_order_release);
}

void CancellationToken::Reset() {
  origin_.store(static_cast<int>(Origin::kNone), std::memory_order_release);
  deadline_nanos_.store(0, std::memory_order_release);
}

bool CancellationToken::IsCancelled() const {
  if (origin_.load(std::memory_order_acquire) !=
      static_cast<int>(Origin::kNone)) {
    return true;
  }
  std::int64_t deadline = deadline_nanos_.load(std::memory_order_acquire);
  if (deadline != 0 && SteadyNowNanos() >= deadline) {
    // Latch the expiry so origin() reports kTimeout from now on.
    int expected = static_cast<int>(Origin::kNone);
    origin_.compare_exchange_strong(expected,
                                    static_cast<int>(Origin::kTimeout),
                                    std::memory_order_acq_rel);
    return true;
  }
  return false;
}

void CancellationToken::Check() const {
  if (!IsCancelled()) return;
  common::ThrowError(
      common::ErrorCode::kCancelled,
      std::string("query cancelled (") + OriginName(origin()) + ")");
}

const char* CancellationToken::OriginName(Origin origin) {
  switch (origin) {
    case Origin::kNone: return "none";
    case Origin::kUser: return "user";
    case Origin::kTimeout: return "timeout";
    case Origin::kHttp: return "http";
    case Origin::kInterrupt: return "interrupt";
  }
  return "unknown";
}

}  // namespace rumble::exec
