#ifndef RUMBLE_EXEC_SPILL_FILE_H_
#define RUMBLE_EXEC_SPILL_FILE_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace rumble::exec {

/// One segment of a spill file: a blob written by Append, optionally with a
/// logical row count so readers can skip whole segments without decoding.
struct SpillSegment {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t rows = 0;
};

/// An append-only temp file used by spilling consumers. Files are named
/// `rumble-spill-<pid>-<seq>.bin` inside SpillDirectory() so the sweeper can
/// find leftovers; the destructor closes and unlinks. Reads reopen the path
/// per call, so a file deleted out from under a cached partition surfaces as
/// a read failure (and the cache falls back to lineage recomputation) rather
/// than silently reading through a still-open descriptor.
class SpillFile {
 public:
  SpillFile();
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// False when the file could not be created (Append/Read will fail too).
  bool ok() const { return fd_ >= 0; }

  /// Appends the blob, returning its segment (rows filled in by the caller).
  /// Thread-safe. Returns {0, 0, 0} with size 0 on write failure.
  SpillSegment Append(const std::string& blob, std::uint64_t rows = 0);

  /// Reads `segment.size` bytes at `segment.offset` into *out. Reopens the
  /// path for each call; returns false if the file is gone or truncated.
  bool Read(const SpillSegment& segment, std::string* out) const;

  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return next_offset_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;  // serializes Append offset assignment + pwrite
  std::uint64_t next_offset_ = 0;
};

/// The directory spill files live in ($TMPDIR or /tmp).
std::string SpillDirectory();

/// Removes this process's leftover rumble-spill-* files (crash/cancel
/// stragglers; normal destruction already unlinks). Returns the count
/// removed. Called on Context shutdown and after a failed/cancelled query.
int SweepSpillFiles();

/// Counts this process's rumble-spill-* files currently on disk (tests).
int CountSpillFiles();

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_SPILL_FILE_H_
