#ifndef RUMBLE_EXEC_SPILL_FILE_H_
#define RUMBLE_EXEC_SPILL_FILE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace rumble::obs {
class EventBus;
}  // namespace rumble::obs

namespace rumble::exec {

class FaultInjector;

/// One segment of a spill file: a blob written by Append, optionally with a
/// logical row count so readers can skip whole segments without decoding.
/// `offset` is the frame start (header included); `size` is the payload size,
/// so consumer byte accounting keeps counting payload bytes only.
struct SpillSegment {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t rows = 0;
};

/// On-disk frame layout (docs/MEMORY.md, "Spill frame format"): every Append
/// writes a fixed header followed by the payload. The header CRC makes a torn
/// header distinguishable from garbage; the payload CRC32C catches bit rot
/// and truncation. All fields little-endian:
///
///   u32 magic ("RSP1")  u16 version  u16 flags
///   u64 payload_len
///   u32 payload_crc32c  u32 header_crc32c (over the preceding 20 bytes)
inline constexpr std::uint32_t kSpillFrameMagic = 0x31505352;  // "RSP1"
inline constexpr std::uint16_t kSpillFrameVersion = 1;
inline constexpr std::uint64_t kSpillFrameHeaderBytes = 24;

/// Software CRC32C (Castagnoli polynomial, table-driven). Exposed so tests
/// can hand-craft valid and corrupt frames.
std::uint32_t Crc32c(std::string_view data);

/// Outcome of a verified read, ordered from best to worst. Consumers map
/// these onto their recovery paths (docs/FAULT_TOLERANCE.md recovery matrix):
/// kMissing/kCorrupt/kIo all mean "this frame is not trustworthy data".
enum class SpillReadStatus {
  kOk,       // frame verified, payload returned
  kMissing,  // file gone (deleted/swept) — recompute from lineage
  kCorrupt,  // frame failed verification (bad CRC/magic/truncated)
  kIo,       // pread failed after retries (EIO)
};

const char* SpillReadStatusName(SpillReadStatus status);

/// An append-only temp file used by spilling consumers. Files are named
/// `rumble-spill-<pid>-<seq>.bin` inside SpillDirectory() so the sweeper can
/// find leftovers; the destructor closes and unlinks. Reads reopen the path
/// per call, so a file deleted out from under a cached partition surfaces as
/// a read failure (and the cache falls back to lineage recomputation) rather
/// than silently reading through a still-open descriptor.
///
/// Fault story (PR: storage fault domain): every frame is checksummed and
/// verified on read; Append throws typed errors instead of returning empty
/// segments — kResourceExhausted for ENOSPC/watchdog denial (a full disk is
/// a governed state, not retryable) and kIoError once bounded-backoff retries
/// are exhausted. When a FaultInjector with io.* fractions is attached, the
/// pwrite/pread wrappers draw deterministic per-(file ordinal, op ordinal)
/// fault decisions and publish io.fault.* counters on the bus.
class SpillFile {
 public:
  explicit SpillFile(obs::EventBus* bus = nullptr,
                     FaultInjector* injector = nullptr);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// False when the file could not be created (Append will throw kIoError).
  bool ok() const { return fd_ >= 0; }

  /// Appends the blob as one checksummed frame, returning its segment (rows
  /// filled in by the caller). Thread-safe. Never returns a partial/empty
  /// segment: transient write failures (EIO, torn writes) are retried in
  /// place with bounded exponential backoff (`spill.retry` counts retries);
  /// ENOSPC and spill-watchdog denial throw
  /// common::RumbleException(kResourceExhausted) and mark the disk degraded;
  /// exhausted retries throw common::RumbleException(kIoError).
  SpillSegment Append(const std::string& blob, std::uint64_t rows = 0);

  /// Reads and verifies the frame at `segment`, filling *out with the
  /// payload on kOk. Reopens the path per call. Verification failures count
  /// `spill.checksum_failure`; transient failures (injected corruption, EIO)
  /// are retried a bounded number of times before the status is returned, so
  /// a persistent kCorrupt/kIo means the frame is really gone.
  SpillReadStatus ReadVerified(const SpillSegment& segment,
                               std::string* out) const;

  /// Convenience wrapper: true iff ReadVerified returns kOk.
  bool Read(const SpillSegment& segment, std::string* out) const;

  const std::string& path() const { return path_; }
  /// Total bytes on disk, frame headers included.
  std::uint64_t bytes_written() const { return next_offset_; }
  /// Process-wide creation ordinal; the `file` key of io.* fault decisions.
  std::int64_t ordinal() const { return ordinal_; }

 private:
  void Count(const char* name, std::int64_t delta = 1) const;
  SpillReadStatus ReadOnce(const SpillSegment& segment, std::string* out,
                           bool inject) const;

  std::string path_;
  int fd_ = -1;
  std::mutex mu_;  // serializes Append offset assignment + pwrite
  std::uint64_t next_offset_ = 0;
  obs::EventBus* bus_ = nullptr;
  FaultInjector* injector_ = nullptr;
  std::int64_t ordinal_ = 0;
  /// Per-file I/O op ordinal (reads and writes share one sequence). Mutable:
  /// reads are logically const but still consume fault-decision ordinals.
  mutable std::atomic<std::int64_t> next_op_{0};
};

// ---------------------------------------------------------------------------
// Spill directory configuration
// ---------------------------------------------------------------------------

/// The directory spill files live in: the SetSpillDirectory override if set,
/// else $TMPDIR, else /tmp.
std::string SpillDirectory();

/// Overrides the spill directory (--spill-dir / RUMBLE_SPILL_DIR / spill_dir
/// config), validating that it exists, is a directory, and is writable.
/// Returns false and fills *error on validation failure (the override is not
/// installed). An empty `dir` clears the override back to $TMPDIR-or-/tmp.
bool SetSpillDirectory(const std::string& dir, std::string* error);

// ---------------------------------------------------------------------------
// Disk watchdog (docs/MEMORY.md, "Spill disk watchdog")
// ---------------------------------------------------------------------------

/// A point-in-time health probe of the spill directory.
struct SpillDiskStatus {
  bool healthy = true;
  std::uint64_t free_bytes = 0;   // statvfs free space in SpillDirectory()
  std::uint64_t spill_bytes = 0;  // bytes held by this process's live spills
  std::string reason;             // human-readable cause when !healthy
};

/// Configures the watchdog: Append fails fast with kResourceExhausted when
/// statvfs free space would drop below `min_free_bytes` (0 disables), or
/// when this process's live spill bytes would exceed `max_spill_bytes`
/// (0 = unlimited; used to simulate a small disk in tests/chaos runs).
void SetSpillDiskPolicy(std::uint64_t min_free_bytes,
                        std::uint64_t max_spill_bytes);

/// Probes the spill directory against the policy. Also reconciles the sticky
/// degraded flag: a healthy probe clears it, an unhealthy one sets it.
SpillDiskStatus ProbeSpillDisk();

/// Sticky "spill disk is degraded" flag: set when an Append is denied by the
/// watchdog or hits ENOSPC, cleared by the next healthy ProbeSpillDisk().
/// The serving path sheds spill-heavy work while this is set.
bool SpillDiskDegraded();

/// Bytes currently held on disk by this process's live spill files (frame
/// headers included). The `spill.disk_bytes` counter mirrors this per bus.
std::uint64_t SpillDiskBytes();

// ---------------------------------------------------------------------------
// Sweeping
// ---------------------------------------------------------------------------

/// Removes this process's leftover rumble-spill-* files (crash/cancel
/// stragglers; normal destruction already unlinks). Returns the count
/// removed. Called on Context shutdown and after a failed/cancelled query.
int SweepSpillFiles();

/// Removes rumble-spill-<pid>-* files left by *dead* processes (crashed
/// runs): a file is reclaimed only when kill(pid, 0) reports ESRCH, so live
/// sibling engines are never disturbed. Returns the count removed; counted
/// by `spill.orphans_swept`. Called once at Context startup.
int SweepOrphanSpillFiles();

/// Counts this process's rumble-spill-* files currently on disk (tests).
int CountSpillFiles();

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_SPILL_FILE_H_
