#include "src/exec/task_metrics.h"

#include <numeric>

namespace rumble::exec {

void TaskMetrics::RecordTask(std::int64_t duration_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  durations_.push_back(duration_nanos);
}

std::vector<std::int64_t> TaskMetrics::TaskDurations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durations_;
}

std::int64_t TaskMetrics::TotalNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::accumulate(durations_.begin(), durations_.end(),
                         static_cast<std::int64_t>(0));
}

std::size_t TaskMetrics::TaskCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durations_.size();
}

void TaskMetrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  durations_.clear();
}

}  // namespace rumble::exec
