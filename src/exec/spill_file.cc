#include "src/exec/spill_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>

namespace rumble::exec {

namespace {

std::atomic<std::uint64_t> g_spill_seq{0};

// Paths of live SpillFile objects. The sweeper must not unlink files that a
// running query still references (several engines can coexist in one
// process), so it only removes rumble-spill-* files absent from this set.
std::mutex& LiveMutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& LivePaths() {
  static std::set<std::string> paths;
  return paths;
}

std::string SpillPrefix() {
  return "rumble-spill-" + std::to_string(::getpid()) + "-";
}

}  // namespace

std::string SpillDirectory() {
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

SpillFile::SpillFile() {
  std::uint64_t seq = g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  path_ = SpillDirectory() + "/" + SpillPrefix() + std::to_string(seq) +
          ".bin";
  fd_ = ::open(path_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd_ >= 0) {
    std::lock_guard<std::mutex> lock(LiveMutex());
    LivePaths().insert(path_);
  }
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    std::lock_guard<std::mutex> lock(LiveMutex());
    LivePaths().erase(path_);
  }
}

SpillSegment SpillFile::Append(const std::string& blob, std::uint64_t rows) {
  SpillSegment segment;
  if (fd_ < 0) return segment;
  std::lock_guard<std::mutex> lock(mu_);
  segment.offset = next_offset_;
  segment.rows = rows;
  std::size_t written = 0;
  while (written < blob.size()) {
    ssize_t n = ::pwrite(fd_, blob.data() + written, blob.size() - written,
                         static_cast<off_t>(segment.offset + written));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return SpillSegment{};  // size 0 signals failure
    }
    written += static_cast<std::size_t>(n);
  }
  segment.size = blob.size();
  next_offset_ += blob.size();
  return segment;
}

bool SpillFile::Read(const SpillSegment& segment, std::string* out) const {
  out->clear();
  // Reopen by path: a deleted spill file must surface as a failure here so
  // the cache's lineage-recovery path can kick in.
  int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->resize(segment.size);
  std::size_t got = 0;
  while (got < segment.size) {
    ssize_t n = ::pread(fd, out->data() + got, segment.size - got,
                        static_cast<off_t>(segment.offset + got));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      out->clear();
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

int SweepSpillFiles() {
  int removed = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(SpillDirectory(), ec);
  if (ec) return 0;
  const std::string prefix = SpillPrefix();
  std::lock_guard<std::mutex> lock(LiveMutex());
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (LivePaths().count(entry.path().string()) != 0) continue;
    if (::unlink(entry.path().c_str()) == 0) ++removed;
  }
  return removed;
}

int CountSpillFiles() {
  int count = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(SpillDirectory(), ec);
  if (ec) return 0;
  const std::string prefix = SpillPrefix();
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

}  // namespace rumble::exec
