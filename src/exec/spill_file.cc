#include "src/exec/spill_file.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <thread>

#include "src/common/error.h"
#include "src/exec/fault_injector.h"
#include "src/obs/event_bus.h"

namespace rumble::exec {

namespace {

std::atomic<std::uint64_t> g_spill_seq{0};

/// Process-wide bytes held by live spill files (frame headers included);
/// the watchdog's `spill.disk_bytes` source of truth.
std::atomic<std::uint64_t> g_spill_disk_bytes{0};

/// Sticky degradation flag (see SpillDiskDegraded()).
std::atomic<bool> g_spill_disk_degraded{false};

/// Watchdog policy (SetSpillDiskPolicy). Defaults: require 32 MiB of free
/// space headroom, no cap on this process's own spill bytes.
std::atomic<std::uint64_t> g_spill_min_free_bytes{32ull << 20};
std::atomic<std::uint64_t> g_spill_max_bytes{0};

constexpr int kMaxAppendAttempts = 4;
constexpr int kMaxReadAttempts = 3;

// Paths of live SpillFile objects. The sweeper must not unlink files that a
// running query still references (several engines can coexist in one
// process), so it only removes rumble-spill-* files absent from this set.
std::mutex& LiveMutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& LivePaths() {
  static std::set<std::string> paths;
  return paths;
}

std::mutex& DirMutex() {
  static std::mutex mu;
  return mu;
}

std::string& DirOverride() {
  static std::string dir;
  return dir;
}

std::string SpillPrefix() {
  return "rumble-spill-" + std::to_string(::getpid()) + "-";
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli), software slice-by-8 implementation. No hardware
// dependence so frames verify identically everywhere; slice-by-8 processes
// eight bytes per iteration, keeping the cost noise next to the pwrite
// itself (throughput measured in docs/MEMORY.md).
// ---------------------------------------------------------------------------

struct Crc32cTable {
  std::uint32_t entries[8][256];
  Crc32cTable() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = entries[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = (crc >> 8) ^ entries[0][crc & 0xffu];
        entries[slice][i] = crc;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Frame header encode/decode (little-endian, layout in spill_file.h).
// ---------------------------------------------------------------------------

void StoreU16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

void StoreU32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void StoreU64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint16_t LoadU16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t LoadU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t LoadU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

void EncodeFrameHeader(const std::string& payload, char* header) {
  StoreU32(header + 0, kSpillFrameMagic);
  StoreU16(header + 4, kSpillFrameVersion);
  StoreU16(header + 6, 0);  // flags
  StoreU64(header + 8, payload.size());
  StoreU32(header + 16, Crc32c(payload));
  StoreU32(header + 20, Crc32c(std::string_view(header, 20)));
}

/// Writes [data, data+size) at `offset`, handling short writes and EINTR.
/// Returns 0 on success, the failing errno otherwise.
int PwriteAll(int fd, const char* data, std::size_t size,
              std::uint64_t offset) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::pwrite(fd, data + written, size - written,
                         static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    if (n == 0) return EIO;
    written += static_cast<std::size_t>(n);
  }
  return 0;
}

/// Reads exactly `size` bytes at `offset`. Returns 0 on success, -1 on a
/// short read (EOF inside the range: a truncated frame), errno on failure.
int PreadAll(int fd, char* data, std::size_t size, std::uint64_t offset) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::pread(fd, data + got, size - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    if (n == 0) return -1;
    got += static_cast<std::size_t>(n);
  }
  return 0;
}

void BackoffSleep(int attempt) {
  // 200us, 400us, 800us: long enough to ride out a transient hiccup, short
  // enough that retried spills stay invisible in query latency.
  std::this_thread::sleep_for(std::chrono::microseconds(200ll << attempt));
}

/// Watchdog admission check for one frame of `frame_bytes`. Throws
/// kResourceExhausted (and sets the sticky degraded flag) when the write
/// would breach the spill-bytes cap or the free-space headroom.
void CheckSpillHeadroom(std::uint64_t frame_bytes) {
  const std::uint64_t max_bytes =
      g_spill_max_bytes.load(std::memory_order_relaxed);
  if (max_bytes > 0 &&
      g_spill_disk_bytes.load(std::memory_order_relaxed) + frame_bytes >
          max_bytes) {
    g_spill_disk_degraded.store(true, std::memory_order_relaxed);
    common::ThrowError(
        common::ErrorCode::kResourceExhausted,
        "spill denied: spill-bytes cap of " + std::to_string(max_bytes) +
            " bytes would be exceeded (" +
            std::to_string(g_spill_disk_bytes.load()) + " in use, frame of " +
            std::to_string(frame_bytes) + " requested)");
  }
  const std::uint64_t min_free =
      g_spill_min_free_bytes.load(std::memory_order_relaxed);
  if (min_free > 0) {
    struct statvfs vfs;
    if (::statvfs(SpillDirectory().c_str(), &vfs) == 0) {
      const std::uint64_t free_bytes =
          static_cast<std::uint64_t>(vfs.f_bavail) * vfs.f_frsize;
      if (free_bytes < min_free + frame_bytes) {
        g_spill_disk_degraded.store(true, std::memory_order_relaxed);
        common::ThrowError(
            common::ErrorCode::kResourceExhausted,
            "spill denied: " + std::to_string(free_bytes) +
                " bytes free in " + SpillDirectory() +
                " is below the watchdog headroom of " +
                std::to_string(min_free) + " bytes");
      }
    }
  }
}

}  // namespace

std::uint32_t Crc32c(std::string_view data) {
  static const Crc32cTable table;
  std::uint32_t crc = 0xffffffffu;
  const char* p = data.data();
  std::size_t n = data.size();
  // Slice-by-8 main loop: fold the running CRC into the first four bytes,
  // then look all eight bytes up in parallel tables. memcpy keeps the loads
  // alignment-safe; the fold relies on little-endian load order, so other
  // hosts take the (correct, slower) bytewise tail loop for everything.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = table.entries[7][lo & 0xffu] ^ table.entries[6][(lo >> 8) & 0xffu] ^
          table.entries[5][(lo >> 16) & 0xffu] ^
          table.entries[4][(lo >> 24) & 0xffu] ^
          table.entries[3][hi & 0xffu] ^ table.entries[2][(hi >> 8) & 0xffu] ^
          table.entries[1][(hi >> 16) & 0xffu] ^
          table.entries[0][(hi >> 24) & 0xffu];
    p += 8;
    n -= 8;
  }
#endif
  for (; n > 0; ++p, --n) {
    crc = (crc >> 8) ^
          table.entries[0][(crc ^ static_cast<unsigned char>(*p)) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

const char* SpillReadStatusName(SpillReadStatus status) {
  switch (status) {
    case SpillReadStatus::kOk: return "ok";
    case SpillReadStatus::kMissing: return "missing";
    case SpillReadStatus::kCorrupt: return "corrupt";
    case SpillReadStatus::kIo: return "io-error";
  }
  return "unknown";
}

std::string SpillDirectory() {
  {
    std::lock_guard<std::mutex> lock(DirMutex());
    if (!DirOverride().empty()) return DirOverride();
  }
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

bool SetSpillDirectory(const std::string& dir, std::string* error) {
  if (dir.empty()) {
    std::lock_guard<std::mutex> lock(DirMutex());
    DirOverride().clear();
    return true;
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    if (error != nullptr) {
      *error = "spill directory \"" + dir + "\" does not exist or is not a "
               "directory";
    }
    return false;
  }
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    if (error != nullptr) {
      *error = "spill directory \"" + dir + "\" is not writable: " +
               std::strerror(errno);
    }
    return false;
  }
  std::lock_guard<std::mutex> lock(DirMutex());
  DirOverride() = dir;
  return true;
}

void SetSpillDiskPolicy(std::uint64_t min_free_bytes,
                        std::uint64_t max_spill_bytes) {
  g_spill_min_free_bytes.store(min_free_bytes, std::memory_order_relaxed);
  g_spill_max_bytes.store(max_spill_bytes, std::memory_order_relaxed);
}

SpillDiskStatus ProbeSpillDisk() {
  SpillDiskStatus status;
  status.spill_bytes = g_spill_disk_bytes.load(std::memory_order_relaxed);
  struct statvfs vfs;
  if (::statvfs(SpillDirectory().c_str(), &vfs) != 0) {
    status.healthy = false;
    status.reason = "spill directory " + SpillDirectory() +
                    " is unavailable: " + std::strerror(errno);
  } else {
    status.free_bytes = static_cast<std::uint64_t>(vfs.f_bavail) * vfs.f_frsize;
    const std::uint64_t min_free =
        g_spill_min_free_bytes.load(std::memory_order_relaxed);
    const std::uint64_t max_bytes =
        g_spill_max_bytes.load(std::memory_order_relaxed);
    if (min_free > 0 && status.free_bytes < min_free) {
      status.healthy = false;
      status.reason = "free space below watchdog headroom";
    } else if (max_bytes > 0 && status.spill_bytes >= max_bytes) {
      status.healthy = false;
      status.reason = "spill-bytes cap reached";
    }
  }
  g_spill_disk_degraded.store(!status.healthy, std::memory_order_relaxed);
  return status;
}

bool SpillDiskDegraded() {
  return g_spill_disk_degraded.load(std::memory_order_relaxed);
}

std::uint64_t SpillDiskBytes() {
  return g_spill_disk_bytes.load(std::memory_order_relaxed);
}

SpillFile::SpillFile(obs::EventBus* bus, FaultInjector* injector)
    : bus_(bus), injector_(injector) {
  std::uint64_t seq = g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  ordinal_ = static_cast<std::int64_t>(seq);
  path_ = SpillDirectory() + "/" + SpillPrefix() + std::to_string(seq) +
          ".bin";
  fd_ = ::open(path_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd_ >= 0) {
    std::lock_guard<std::mutex> lock(LiveMutex());
    LivePaths().insert(path_);
  }
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    if (next_offset_ > 0) {
      g_spill_disk_bytes.fetch_sub(next_offset_, std::memory_order_relaxed);
      Count("spill.disk_bytes", -static_cast<std::int64_t>(next_offset_));
    }
    std::lock_guard<std::mutex> lock(LiveMutex());
    LivePaths().erase(path_);
  }
}

void SpillFile::Count(const char* name, std::int64_t delta) const {
  if (bus_ != nullptr) bus_->AddToCounter(name, delta);
}

SpillSegment SpillFile::Append(const std::string& blob, std::uint64_t rows) {
  if (fd_ < 0) {
    common::ThrowError(common::ErrorCode::kIoError,
                       "cannot create spill file in " + SpillDirectory() +
                           " (open failed for " + path_ + ")");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t frame_bytes = kSpillFrameHeaderBytes + blob.size();
  CheckSpillHeadroom(frame_bytes);

  char header[kSpillFrameHeaderBytes];
  EncodeFrameHeader(blob, header);
  SpillSegment segment{next_offset_, blob.size(), rows};

  const bool inject = injector_ != nullptr && injector_->has_io_faults();
  for (int attempt = 0;; ++attempt) {
    const std::int64_t op =
        inject ? next_op_.fetch_add(1, std::memory_order_relaxed) : 0;
    int err = 0;
    if (inject && injector_->ShouldEnospcSpillWrite(ordinal_, op)) {
      Count("io.fault.enospc");
      err = ENOSPC;
    } else if (inject && injector_->ShouldFailSpillWrite(ordinal_, op)) {
      Count("io.fault.eio_write");
      err = EIO;
    } else if (inject && injector_->ShouldTearSpillWrite(ordinal_, op)) {
      // A torn frame: the header and half the payload land, the tail does
      // not. Written for real so the retry genuinely rewrites in place.
      Count("io.fault.short_write");
      (void)PwriteAll(fd_, header, sizeof(header), segment.offset);
      (void)PwriteAll(fd_, blob.data(), blob.size() / 2,
                      segment.offset + kSpillFrameHeaderBytes);
      err = EIO;
    } else {
      err = PwriteAll(fd_, header, sizeof(header), segment.offset);
      if (err == 0 && !blob.empty()) {
        err = PwriteAll(fd_, blob.data(), blob.size(),
                        segment.offset + kSpillFrameHeaderBytes);
      }
    }
    if (err == 0) break;
    if (err == ENOSPC) {
      // A full disk stays full: fail fast so the memory manager's caller
      // surfaces a clean resource error instead of spinning on retries.
      g_spill_disk_degraded.store(true, std::memory_order_relaxed);
      common::ThrowError(common::ErrorCode::kResourceExhausted,
                         "spill write failed: no space left on device in " +
                             SpillDirectory());
    }
    if (attempt + 1 >= kMaxAppendAttempts) {
      common::ThrowError(common::ErrorCode::kIoError,
                         "spill write to " + path_ + " failed after " +
                             std::to_string(kMaxAppendAttempts) +
                             " attempts: " + std::strerror(err));
    }
    Count("spill.retry");
    BackoffSleep(attempt);
  }

  next_offset_ += frame_bytes;
  g_spill_disk_bytes.fetch_add(frame_bytes, std::memory_order_relaxed);
  Count("spill.disk_bytes", static_cast<std::int64_t>(frame_bytes));
  return segment;
}

SpillReadStatus SpillFile::ReadOnce(const SpillSegment& segment,
                                    std::string* out, bool inject) const {
  out->clear();
  // Reopen by path: a deleted spill file must surface as kMissing here so
  // the cache's lineage-recovery path can kick in.
  int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return SpillReadStatus::kMissing;
  const std::int64_t op =
      inject ? next_op_.fetch_add(1, std::memory_order_relaxed) : 0;
  if (inject && injector_->ShouldFailSpillRead(ordinal_, op)) {
    Count("io.fault.eio_read");
    ::close(fd);
    return SpillReadStatus::kIo;
  }

  char header[kSpillFrameHeaderBytes];
  int err = PreadAll(fd, header, sizeof(header), segment.offset);
  if (err != 0) {
    ::close(fd);
    if (err < 0) {  // short read: truncated/torn frame
      Count("spill.checksum_failure");
      return SpillReadStatus::kCorrupt;
    }
    return SpillReadStatus::kIo;
  }
  if (LoadU32(header + 20) != Crc32c(std::string_view(header, 20)) ||
      LoadU32(header + 0) != kSpillFrameMagic ||
      LoadU16(header + 4) != kSpillFrameVersion ||
      LoadU64(header + 8) != segment.size) {
    Count("spill.checksum_failure");
    ::close(fd);
    return SpillReadStatus::kCorrupt;
  }

  out->resize(segment.size);
  if (segment.size > 0) {
    err = PreadAll(fd, out->data(), segment.size,
                   segment.offset + kSpillFrameHeaderBytes);
    if (err != 0) {
      ::close(fd);
      out->clear();
      if (err < 0) {
        Count("spill.checksum_failure");
        return SpillReadStatus::kCorrupt;
      }
      return SpillReadStatus::kIo;
    }
  }
  ::close(fd);
  if (inject && !out->empty() &&
      injector_->ShouldCorruptSpillRead(ordinal_, op)) {
    // Deterministic single-bit flip: position keyed on the op ordinal so a
    // replay corrupts the same bit.
    Count("io.fault.corrupt");
    (*out)[static_cast<std::size_t>(op) % out->size()] ^=
        static_cast<char>(1u << (static_cast<unsigned>(op) % 8u));
  }
  if (LoadU32(header + 16) != Crc32c(*out)) {
    Count("spill.checksum_failure");
    out->clear();
    return SpillReadStatus::kCorrupt;
  }
  return SpillReadStatus::kOk;
}

SpillReadStatus SpillFile::ReadVerified(const SpillSegment& segment,
                                        std::string* out) const {
  const bool inject = injector_ != nullptr && injector_->has_io_faults();
  SpillReadStatus status = SpillReadStatus::kIo;
  for (int attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
    status = ReadOnce(segment, out, inject);
    // kMissing is final (the file will not reappear); kCorrupt/kIo get a
    // bounded re-read — injected faults are per-op transient, and a real
    // marginal sector sometimes reads clean on retry.
    if (status == SpillReadStatus::kOk || status == SpillReadStatus::kMissing) {
      return status;
    }
    if (attempt + 1 < kMaxReadAttempts) {
      Count("spill.retry");
      BackoffSleep(attempt);
    }
  }
  return status;
}

bool SpillFile::Read(const SpillSegment& segment, std::string* out) const {
  return ReadVerified(segment, out) == SpillReadStatus::kOk;
}

int SweepSpillFiles() {
  int removed = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(SpillDirectory(), ec);
  if (ec) return 0;
  const std::string prefix = SpillPrefix();
  std::lock_guard<std::mutex> lock(LiveMutex());
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (LivePaths().count(entry.path().string()) != 0) continue;
    if (::unlink(entry.path().c_str()) == 0) ++removed;
  }
  return removed;
}

int SweepOrphanSpillFiles() {
  int removed = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(SpillDirectory(), ec);
  if (ec) return 0;
  const std::string kPrefix = "rumble-spill-";
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0) continue;
    // Parse the owner pid out of rumble-spill-<pid>-<seq>.bin.
    const std::size_t pid_begin = kPrefix.size();
    const std::size_t pid_end = name.find('-', pid_begin);
    if (pid_end == std::string::npos || pid_end == pid_begin) continue;
    char* parse_end = nullptr;
    errno = 0;
    long pid = std::strtol(name.c_str() + pid_begin, &parse_end, 10);
    if (errno != 0 || parse_end != name.c_str() + pid_end || pid <= 0) {
      continue;
    }
    if (pid == static_cast<long>(::getpid())) continue;  // SweepSpillFiles' job
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
      continue;  // owner (or an unsignalable process) is alive: not ours
    }
    if (::unlink(entry.path().c_str()) == 0) ++removed;
  }
  return removed;
}

int CountSpillFiles() {
  int count = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(SpillDirectory(), ec);
  if (ec) return 0;
  const std::string prefix = SpillPrefix();
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

}  // namespace rumble::exec
