#include "src/exec/memory_manager.h"

#include <cctype>
#include <cstdlib>

#include "src/common/error.h"
#include "src/exec/query_scope.h"
#include "src/obs/event_bus.h"

namespace rumble::exec {

namespace {

// Keeps the mem.reserved_bytes gauge in step with the atomic. Deltas may be
// negative; the counter is a gauge despite living in the counter map.
void PublishReservedDelta(obs::EventBus* bus, std::int64_t delta) {
  if (bus != nullptr && delta != 0) {
    bus->AddToCounter("mem.reserved_bytes", delta);
  }
}

// The per-query sub-pool bound to the calling thread (the serving path's
// per-query memory cap, docs/SERVING.md); nullptr on the shell path.
QueryMemoryPool* ScopePool() {
  const QueryScope* scope = CurrentQueryScope();
  return scope != nullptr ? scope->memory : nullptr;
}

}  // namespace

void MemoryManager::NoteCharged(std::uint64_t bytes, std::uint64_t now) {
  if (QueryResourceStats* stats = CurrentQueryStats()) {
    stats->Charge(static_cast<std::int64_t>(bytes));
  }
  // Engine-wide high-water mark, reported on query profiles
  // (docs/PROFILING.md) and used by the ASSERT_METRICS cross-checks.
  std::uint64_t peak = peak_reserved_.load(std::memory_order_relaxed);
  while (now > peak && !peak_reserved_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (bus_ != nullptr && bytes != 0) {
    bus_->AddToCounter("mem.charged_bytes_total",
                       static_cast<std::int64_t>(bytes));
  }
}

bool MemoryManager::enforcing() const {
  return limit_bytes() != 0 || ScopePool() != nullptr;
}

void MemoryManager::Allocate(std::uint64_t bytes) {
  if (QueryMemoryPool* pool = ScopePool()) {
    if (!pool->Charge(bytes)) {
      if (bus_ != nullptr) bus_->AddToCounter("mem.query_pool_denied", 1);
      common::ThrowError(
          common::ErrorCode::kOutOfMemory,
          "per-query memory cap exhausted: " +
              std::to_string(pool->charged_bytes() + bytes) + " of " +
              std::to_string(pool->cap_bytes()) + " bytes");
    }
  }
  std::uint64_t now =
      reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  NoteCharged(bytes, now);
  PublishReservedDelta(bus_, static_cast<std::int64_t>(bytes));
  std::uint64_t limit = limit_.load(std::memory_order_acquire);
  if (limit != 0 && now > limit) {
    common::ThrowError(common::ErrorCode::kOutOfMemory,
                       "memory budget exhausted: " + std::to_string(now) +
                           " of " + std::to_string(limit) + " bytes in use");
  }
}

void MemoryManager::Release(std::uint64_t bytes) {
  if (QueryMemoryPool* pool = ScopePool()) pool->Uncharge(bytes);
  if (QueryResourceStats* stats = CurrentQueryStats()) {
    stats->Uncharge(static_cast<std::int64_t>(bytes));
  }
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  PublishReservedDelta(bus_, -static_cast<std::int64_t>(bytes));
}

void MemoryManager::Reset() {
  std::uint64_t old = reserved_.exchange(0, std::memory_order_relaxed);
  PublishReservedDelta(bus_, -static_cast<std::int64_t>(old));
}

bool MemoryManager::TryReserve(std::uint64_t bytes) {
  // Per-query sub-pool first (serving path): a query over its own cap is
  // denied before touching the shared pool, so it spills its *own* state
  // rather than forcing co-tenants to spill theirs.
  QueryMemoryPool* pool = ScopePool();
  if (pool != nullptr && !pool->Charge(bytes)) {
    if (bus_ != nullptr) {
      bus_->AddToCounter("mem.query_pool_denied", 1);
      bus_->AddToCounter("mem.reservation_denied", 1);
    }
    return false;
  }
  std::uint64_t now =
      reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  NoteCharged(bytes, now);
  PublishReservedDelta(bus_, static_cast<std::int64_t>(bytes));
  std::uint64_t limit = limit_.load(std::memory_order_acquire);
  if (limit == 0 || now <= limit) return true;

  // Over the limit: force registered consumers to spill, largest first.
  // spill_mu_ serializes forced-spill passes; reg_mu_ is held across each
  // SpillBytes call so Unregister synchronizes with in-flight spills.
  {
    std::lock_guard<std::mutex> spill_lock(spill_mu_);
    // Victims releasing memory here belong to *other* queries; suspend the
    // caller's query scope so their Release calls do not uncharge the
    // requesting query's sub-pool. (The victims' own sub-pools keep their
    // charge — a bounded conservatism documented in docs/SERVING.md.)
    QueryScopeBinding suspend_scope(nullptr);
    std::map<int, bool> skip;
    while (reserved_.load(std::memory_order_acquire) > limit) {
      Spillable* victim = nullptr;
      int victim_token = -1;
      std::uint64_t victim_bytes = 0;
      std::lock_guard<std::mutex> reg_lock(reg_mu_);
      for (const auto& [token, consumer] : spillables_) {
        if (skip.count(token) != 0) continue;
        std::uint64_t avail = consumer->SpillableBytes();
        if (avail > victim_bytes) {
          victim = consumer;
          victim_token = token;
          victim_bytes = avail;
        }
      }
      if (victim == nullptr) break;
      if (bus_ != nullptr) bus_->AddToCounter("mem.spill_triggered", 1);
      std::uint64_t over =
          reserved_.load(std::memory_order_acquire) - limit;
      std::uint64_t freed = victim->SpillBytes(over < bytes ? bytes : over);
      if (freed == 0) skip[victim_token] = true;
    }
  }

  if (reserved_.load(std::memory_order_acquire) <= limit) return true;
  // Nothing (more) to spill: back the grant out and deny it. The caller is
  // expected to spill its own state instead.
  if (pool != nullptr) pool->Uncharge(bytes);
  if (QueryResourceStats* stats = CurrentQueryStats()) {
    stats->Uncharge(static_cast<std::int64_t>(bytes));
  }
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  PublishReservedDelta(bus_, -static_cast<std::int64_t>(bytes));
  if (bus_ != nullptr) bus_->AddToCounter("mem.reservation_denied", 1);
  return false;
}

int MemoryManager::RegisterSpillable(Spillable* consumer) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  int token = next_token_++;
  spillables_[token] = consumer;
  return token;
}

void MemoryManager::UnregisterSpillable(int token) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  spillables_.erase(token);
}

std::uint64_t MemoryManager::SpillableTotalLocked() const {
  std::uint64_t total = 0;
  for (const auto& [token, consumer] : spillables_) {
    total += consumer->SpillableBytes();
  }
  return total;
}

bool MemoryManager::WouldAdmitQuery() const {
  std::uint64_t limit = limit_.load(std::memory_order_acquire);
  if (limit == 0) return true;
  std::uint64_t reserved = reserved_.load(std::memory_order_acquire);
  if (reserved < limit) return true;
  std::uint64_t reclaimable;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    reclaimable = SpillableTotalLocked();
  }
  return reserved - (reclaimable < reserved ? reclaimable : reserved) < limit;
}

void MemoryManager::AdmitQuery() {
  if (WouldAdmitQuery()) return;
  if (bus_ != nullptr) bus_->AddToCounter("mem.admission_rejected", 1);
  common::ThrowError(
      common::ErrorCode::kAdmissionRejected,
      "memory pool exhausted: " +
          std::to_string(reserved_.load(std::memory_order_acquire)) + " of " +
          std::to_string(limit_.load(std::memory_order_acquire)) +
          " bytes reserved and unspillable; query rejected");
}

bool MemoryManager::ParseByteSize(const std::string& text,
                                  std::uint64_t* bytes) {
  if (text.empty() || bytes == nullptr) return false;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': multiplier = 1ull << 10; break;
      case 'm': multiplier = 1ull << 20; break;
      case 'g': multiplier = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  *bytes = static_cast<std::uint64_t>(value) * multiplier;
  return true;
}

}  // namespace rumble::exec
