#ifndef RUMBLE_EXEC_MEMORY_MANAGER_H_
#define RUMBLE_EXEC_MEMORY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rumble::obs {
class EventBus;
}  // namespace rumble::obs

namespace rumble::exec {

/// A memory consumer that can serialize (part of) its state to disk when the
/// engine-wide pool runs dry. Implementations must free memory and release
/// the corresponding reservations (MemoryManager::Release) before returning,
/// and must NOT call back into Reserve/TryReserve from SpillBytes — the
/// manager holds its spill locks across the call.
class Spillable {
 public:
  virtual ~Spillable() = default;

  /// Stable label for events/counters (e.g. "rdd.cache").
  virtual const char* SpillLabel() const = 0;

  /// Bytes this consumer could free right now by spilling.
  virtual std::uint64_t SpillableBytes() const = 0;

  /// Spills at least `want` bytes if possible, returning the bytes actually
  /// freed (0 when nothing could be spilled, e.g. a lock was contended).
  virtual std::uint64_t SpillBytes(std::uint64_t want) = 0;
};

/// The central execution-memory arbiter (Spark's MemoryManager, scaled
/// down). One instance per spark::Context governs every pipeline breaker —
/// shuffle map outputs, DataFrame group-by tables, sort buffers, cached RDD
/// partitions — through tracked reservations: operators TryReserve before
/// holding data, Release when done, and spill their own state (or have the
/// largest registered Spillable spilled for them) when a grant is denied.
///
/// It also subsumes the old util::MemoryBudget for the local-execution
/// baselines: Allocate/Release/Reset/used_bytes keep the budget semantics
/// (Allocate *throws* kOutOfMemory instead of spilling) with the former
/// data race fixed — both the limit and the usage are atomics now, so
/// set_limit_bytes may race Allocate safely.
///
/// With limit 0 the manager is non-enforcing: reservations are tracked but
/// always granted and no spilling ever happens, keeping the unlimited path
/// allocation-free. docs/MEMORY.md describes the full protocol.
class MemoryManager {
 public:
  MemoryManager() = default;
  explicit MemoryManager(std::uint64_t limit_bytes) : limit_(limit_bytes) {}

  /// Counters (mem.*) and spill events are published here when set.
  void set_bus(obs::EventBus* bus) { bus_ = bus; }

  std::uint64_t limit_bytes() const {
    return limit_.load(std::memory_order_acquire);
  }
  void set_limit_bytes(std::uint64_t limit) {
    limit_.store(limit, std::memory_order_release);
  }

  /// True when the calling thread's reservations are being accounted: a
  /// non-zero engine-wide limit, or a per-query memory pool bound to this
  /// thread (a served query's X-Rumble-Memory-Cap — docs/SERVING.md). Every
  /// charge/spill site is gated on this so fully unlimited runs take no new
  /// locks and write no files, while a capped served query reserves (and
  /// spills) even on an unlimited engine.
  bool enforcing() const;

  std::uint64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_acquire);
  }

  /// High-water mark of reserved_bytes over the manager's lifetime: the
  /// engine-wide peak that query profiles and the ASSERT_METRICS
  /// cross-checks compare per-query peaks against (docs/PROFILING.md). A
  /// single query's attributed peak can never exceed it.
  std::uint64_t peak_reserved_bytes() const {
    return peak_reserved_.load(std::memory_order_acquire);
  }

  // ---- Budget mode (util::MemoryBudget semantics) -------------------------

  /// Charges `bytes`, throwing kOutOfMemory when the limit is exceeded
  /// (the charge stays recorded, mirroring the old MemoryBudget).
  void Allocate(std::uint64_t bytes);

  void Release(std::uint64_t bytes);
  void Reset();
  std::uint64_t used_bytes() const { return reserved_bytes(); }

  // ---- Reservations with spilling (the execution pool) --------------------

  /// Tries to grant `bytes`. Over the limit it first forces registered
  /// Spillable consumers — largest first — to spill until the pool fits or
  /// nothing more can spill; if still over, the grant is backed out and
  /// false is returned (the caller then spills its *own* state and either
  /// retries or proceeds uncharged). Always true when not enforcing.
  bool TryReserve(std::uint64_t bytes);

  /// Registers a spill candidate; returns a token for Unregister. The
  /// registry lock is held across SpillBytes calls, so after Unregister
  /// returns the consumer is guaranteed not to be mid-spill.
  int RegisterSpillable(Spillable* consumer);
  void UnregisterSpillable(int token);

  /// Admission control: throws kAdmissionRejected when the pool is
  /// exhausted — reserved bytes minus what spilling could reclaim already
  /// meet the limit — so new queries are rejected, not queued.
  void AdmitQuery();

  /// Non-throwing admission probe: would AdmitQuery() pass right now? The
  /// serving layer's /readyz readiness check folds this in so a memory-
  /// saturated engine drops out of rotation before clients hit 503s.
  bool WouldAdmitQuery() const;

  /// Parses "268435456", "256k", "64m", "1g" (case-insensitive suffixes).
  static bool ParseByteSize(const std::string& text, std::uint64_t* bytes);

 private:
  std::uint64_t SpillableTotalLocked() const;  // requires reg_mu_

  /// Attribution fan-out for every successful charge: the calling thread's
  /// QueryResourceStats (per-query profile), the engine-wide high-water
  /// mark, and the monotonic `mem.charged_bytes_total` counter. `now` is
  /// the post-charge reserved total.
  void NoteCharged(std::uint64_t bytes, std::uint64_t now);

  std::atomic<std::uint64_t> limit_{0};
  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> peak_reserved_{0};
  obs::EventBus* bus_ = nullptr;

  std::mutex spill_mu_;  // one forced-spill pass at a time
  mutable std::mutex reg_mu_;
  std::map<int, Spillable*> spillables_;
  int next_token_ = 0;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_MEMORY_MANAGER_H_
