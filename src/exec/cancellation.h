#ifndef RUMBLE_EXEC_CANCELLATION_H_
#define RUMBLE_EXEC_CANCELLATION_H_

#include <atomic>
#include <cstdint>

namespace rumble::exec {

/// Cooperative per-query cancellation. One token lives on the
/// spark::Context; the engine resets it at the start of every query, arms an
/// optional deadline from --query-timeout, and the executor pool plus long
/// kernel loops poll it. `Cancel` is lock-free and async-signal-safe so the
/// shell's Ctrl-C handler may call it directly; `Check` throws
/// RumbleException(kCancelled), which the task scheduler treats as
/// non-retryable — the stage is doomed fail-fast and the code survives to
/// the caller (docs/MEMORY.md §Cancellation points).
class CancellationToken {
 public:
  enum class Origin : int {
    kNone = 0,
    kUser = 1,       // programmatic Cancel()
    kTimeout = 2,    // --query-timeout deadline expired
    kHttp = 3,       // POST /jobs/<id>/cancel on the metrics server
    kInterrupt = 4,  // shell Ctrl-C
  };

  /// Requests cancellation. First caller wins (the origin is latched);
  /// subsequent calls are no-ops. Safe from signal handlers: touches only
  /// lock-free atomics.
  void Cancel(Origin origin) noexcept;

  /// Arms a deadline `timeout_ms` from now on the steady clock; 0 disarms.
  void SetDeadlineAfterMs(std::int64_t timeout_ms);

  /// Clears the cancelled state and the deadline (start of a new query).
  void Reset();

  /// True once cancelled. A passed deadline latches itself as kTimeout here,
  /// so callers never observe an expired-but-uncancelled token.
  bool IsCancelled() const;

  /// Throws RumbleException(kCancelled, ...) naming the origin if cancelled.
  void Check() const;

  Origin origin() const {
    return static_cast<Origin>(origin_.load(std::memory_order_acquire));
  }

  static const char* OriginName(Origin origin);

 private:
  mutable std::atomic<int> origin_{0};
  std::atomic<std::int64_t> deadline_nanos_{0};  // steady clock; 0 = none
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_CANCELLATION_H_
