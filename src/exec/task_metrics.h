#ifndef RUMBLE_EXEC_TASK_METRICS_H_
#define RUMBLE_EXEC_TASK_METRICS_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace rumble::exec {

/// Thread-safe recorder of per-task wall times. Spark's UI exposes the same
/// data ("aggregated task time"); Figure 14 plots it next to end-to-end
/// runtime, and the cluster simulator replays it for other executor counts.
class TaskMetrics {
 public:
  TaskMetrics() = default;

  TaskMetrics(const TaskMetrics&) = delete;
  TaskMetrics& operator=(const TaskMetrics&) = delete;

  void RecordTask(std::int64_t duration_nanos);

  /// Snapshot of all recorded task durations, in recording order.
  std::vector<std::int64_t> TaskDurations() const;

  std::int64_t TotalNanos() const;
  std::size_t TaskCount() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::int64_t> durations_;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_TASK_METRICS_H_
