#include "src/exec/fault_injector.h"

#include <cstdlib>

#include "src/common/error.h"
#include "src/util/strings.h"

namespace rumble::exec {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ParseFraction(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double p = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
    common::ThrowError(common::ErrorCode::kInvalidArgument,
                       "fault-spec: " + key + " must be a fraction in [0,1], "
                       "got \"" + value + "\"");
  }
  return p;
}

std::int64_t ParseInt(const std::string& key, const std::string& value) {
  char* end = nullptr;
  long long n = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    common::ThrowError(common::ErrorCode::kInvalidArgument,
                       "fault-spec: " + key + " must be an integer, got \"" +
                       value + "\"");
  }
  return static_cast<std::int64_t>(n);
}

}  // namespace

FaultSpec FaultInjector::ParseSpec(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& field : util::Split(text, ',')) {
    if (field.empty()) continue;
    std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      common::ThrowError(common::ErrorCode::kInvalidArgument,
                         "fault-spec: expected key=value, got \"" + field +
                         "\"");
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(ParseInt(key, value));
    } else if (key == "transient") {
      spec.transient_fraction = ParseFraction(key, value);
    } else if (key == "straggle") {
      spec.straggle_fraction = ParseFraction(key, value);
    } else if (key == "straggle_ms") {
      spec.straggle_nanos = ParseInt(key, value) * 1'000'000;
    } else if (key == "kill") {
      spec.kill_stage = ParseInt(key, value);
    } else if (key == "net.short_read") {
      spec.net_short_read_fraction = ParseFraction(key, value);
    } else if (key == "net.short_write") {
      spec.net_short_write_fraction = ParseFraction(key, value);
    } else if (key == "net.delay") {
      spec.net_delay_fraction = ParseFraction(key, value);
    } else if (key == "net.delay_ms") {
      spec.net_delay_nanos = ParseInt(key, value) * 1'000'000;
    } else if (key == "net.rst") {
      spec.net_rst_fraction = ParseFraction(key, value);
    } else if (key == "net.accept_fail") {
      spec.net_accept_fail_fraction = ParseFraction(key, value);
    } else if (key == "io.eio_write") {
      spec.io_eio_write_fraction = ParseFraction(key, value);
    } else if (key == "io.eio_read") {
      spec.io_eio_read_fraction = ParseFraction(key, value);
    } else if (key == "io.enospc") {
      spec.io_enospc_fraction = ParseFraction(key, value);
    } else if (key == "io.short_write") {
      spec.io_short_write_fraction = ParseFraction(key, value);
    } else if (key == "io.corrupt") {
      spec.io_corrupt_fraction = ParseFraction(key, value);
    } else {
      common::ThrowError(common::ErrorCode::kInvalidArgument,
                         "fault-spec: unknown key \"" + key +
                         "\" (expected seed, transient, straggle, "
                         "straggle_ms, kill, net.short_read, "
                         "net.short_write, net.delay, net.delay_ms, "
                         "net.rst, net.accept_fail, io.eio_write, "
                         "io.eio_read, io.enospc, io.short_write, "
                         "io.corrupt)");
    }
  }
  return spec;
}

double FaultInjector::UnitHash(std::int64_t stage_ordinal, std::uint64_t task,
                               std::uint64_t salt) const {
  std::uint64_t h = Mix64(spec_.seed ^ Mix64(salt));
  h = Mix64(h ^ static_cast<std::uint64_t>(stage_ordinal));
  h = Mix64(h ^ task);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::ShouldFailTransient(std::int64_t stage_ordinal,
                                        std::size_t task) const {
  if (spec_.transient_fraction <= 0.0) return false;
  return UnitHash(stage_ordinal, task, /*salt=*/0xfa11) <
         spec_.transient_fraction;
}

std::int64_t FaultInjector::StraggleNanos(std::int64_t stage_ordinal,
                                          std::size_t task) const {
  if (spec_.straggle_fraction <= 0.0 || spec_.straggle_nanos <= 0) return 0;
  if (UnitHash(stage_ordinal, task, /*salt=*/0x510e) >=
      spec_.straggle_fraction) {
    return 0;
  }
  return spec_.straggle_nanos;
}

bool FaultInjector::ShouldShortRead(std::int64_t conn, std::int64_t op) const {
  if (spec_.net_short_read_fraction <= 0.0) return false;
  return UnitHash(conn, static_cast<std::uint64_t>(op), /*salt=*/0x5ead) <
         spec_.net_short_read_fraction;
}

bool FaultInjector::ShouldShortWrite(std::int64_t conn,
                                     std::int64_t op) const {
  if (spec_.net_short_write_fraction <= 0.0) return false;
  return UnitHash(conn, static_cast<std::uint64_t>(op), /*salt=*/0x5e4d) <
         spec_.net_short_write_fraction;
}

std::int64_t FaultInjector::NetDelayNanos(std::int64_t conn,
                                          std::int64_t op) const {
  if (spec_.net_delay_fraction <= 0.0 || spec_.net_delay_nanos <= 0) return 0;
  if (UnitHash(conn, static_cast<std::uint64_t>(op), /*salt=*/0xde1a) >=
      spec_.net_delay_fraction) {
    return 0;
  }
  return spec_.net_delay_nanos;
}

bool FaultInjector::ShouldInjectRst(std::int64_t conn, std::int64_t op) const {
  if (spec_.net_rst_fraction <= 0.0) return false;
  return UnitHash(conn, static_cast<std::uint64_t>(op), /*salt=*/0x4e5e) <
         spec_.net_rst_fraction;
}

bool FaultInjector::ShouldFailAccept(std::int64_t conn) const {
  if (spec_.net_accept_fail_fraction <= 0.0) return false;
  return UnitHash(conn, /*task=*/0, /*salt=*/0xacce) <
         spec_.net_accept_fail_fraction;
}

bool FaultInjector::ShouldFailSpillWrite(std::int64_t file,
                                         std::int64_t op) const {
  if (spec_.io_eio_write_fraction <= 0.0) return false;
  return UnitHash(file, static_cast<std::uint64_t>(op), /*salt=*/0xe10a) <
         spec_.io_eio_write_fraction;
}

bool FaultInjector::ShouldFailSpillRead(std::int64_t file,
                                        std::int64_t op) const {
  if (spec_.io_eio_read_fraction <= 0.0) return false;
  return UnitHash(file, static_cast<std::uint64_t>(op), /*salt=*/0xe10b) <
         spec_.io_eio_read_fraction;
}

bool FaultInjector::ShouldEnospcSpillWrite(std::int64_t file,
                                           std::int64_t op) const {
  if (spec_.io_enospc_fraction <= 0.0) return false;
  return UnitHash(file, static_cast<std::uint64_t>(op), /*salt=*/0x105c) <
         spec_.io_enospc_fraction;
}

bool FaultInjector::ShouldTearSpillWrite(std::int64_t file,
                                         std::int64_t op) const {
  if (spec_.io_short_write_fraction <= 0.0) return false;
  return UnitHash(file, static_cast<std::uint64_t>(op), /*salt=*/0x7ea5) <
         spec_.io_short_write_fraction;
}

bool FaultInjector::ShouldCorruptSpillRead(std::int64_t file,
                                           std::int64_t op) const {
  if (spec_.io_corrupt_fraction <= 0.0) return false;
  return UnitHash(file, static_cast<std::uint64_t>(op), /*salt=*/0xc0bb) <
         spec_.io_corrupt_fraction;
}

int FaultInjector::KillExecutorInStage(std::int64_t stage_ordinal,
                                       int num_executors) const {
  if (spec_.kill_stage < 0 || stage_ordinal != spec_.kill_stage ||
      num_executors < 1) {
    return -1;
  }
  std::uint64_t h = Mix64(spec_.seed ^ 0x6b111ULL);
  return static_cast<int>(h % static_cast<std::uint64_t>(num_executors));
}

}  // namespace rumble::exec
