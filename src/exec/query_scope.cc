#include "src/exec/query_scope.h"

namespace rumble::exec {

namespace {

thread_local const QueryScope* current_scope = nullptr;

}  // namespace

bool QueryMemoryPool::Charge(std::uint64_t bytes) {
  if (cap_ == 0) {
    charged_.fetch_add(static_cast<std::int64_t>(bytes),
                       std::memory_order_relaxed);
    return true;
  }
  std::int64_t now = charged_.fetch_add(static_cast<std::int64_t>(bytes),
                                        std::memory_order_relaxed) +
                     static_cast<std::int64_t>(bytes);
  if (now > 0 && static_cast<std::uint64_t>(now) > cap_) {
    charged_.fetch_sub(static_cast<std::int64_t>(bytes),
                       std::memory_order_relaxed);
    return false;
  }
  return true;
}

void QueryMemoryPool::Uncharge(std::uint64_t bytes) {
  std::int64_t now = charged_.fetch_sub(static_cast<std::int64_t>(bytes),
                                        std::memory_order_relaxed) -
                     static_cast<std::int64_t>(bytes);
  // Clamp: an unmatched release (see header) may push the signed counter
  // negative; pull it back so later charges account from zero, not a deficit.
  while (now < 0) {
    std::int64_t expected = now;
    if (charged_.compare_exchange_weak(expected, 0,
                                       std::memory_order_relaxed)) {
      break;
    }
    now = expected;
    if (now >= 0) break;
  }
}

const QueryScope* CurrentQueryScope() { return current_scope; }

QueryResourceStats* CurrentQueryStats() {
  return current_scope != nullptr ? current_scope->stats : nullptr;
}

QueryScopeBinding::QueryScopeBinding(const QueryScope* scope)
    : previous_(current_scope) {
  current_scope = scope;
}

QueryScopeBinding::~QueryScopeBinding() { current_scope = previous_; }

}  // namespace rumble::exec
