#ifndef RUMBLE_EXEC_FAULT_INJECTOR_H_
#define RUMBLE_EXEC_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace rumble::exec {

/// Exception modelling a retryable infrastructure failure (an injected
/// transient fault, a lost executor). The scheduler retries these up to
/// SchedulerPolicy::max_task_attempts; they never reach user code. JSONiq
/// dynamic errors (common::RumbleException) are deliberately NOT of this
/// type so deterministic query errors keep failing fast without retries.
class TransientTaskFault : public std::runtime_error {
 public:
  explicit TransientTaskFault(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parsed --fault-spec / RumbleConfig::fault_spec. Grammar: comma-separated
/// key=value pairs, all optional (docs/FAULT_TOLERANCE.md):
///
///   seed=<u64>          decision seed (default 1)
///   transient=<p>       P(a task's first attempt throws a transient fault)
///   straggle=<p>        P(a task's first attempt stalls before running)
///   straggle_ms=<n>     stall duration for injected stragglers (default 50)
///   kill=<stage>        kill one executor when this stage ordinal runs
///                       (stage ordinals count RunParallel calls per pool,
///                       from 0; -1 = never)
///
/// The network domain (docs/FAULT_TOLERANCE.md, "Network fault injection")
/// drives the serving path's socket wrappers instead of the task scheduler.
/// Decisions are keyed on (connection ordinal, I/O op ordinal), so a replay
/// with the same seed faults the same syscalls:
///
///   net.short_read=<p>   P(a recv is truncated to one byte)
///   net.short_write=<p>  P(a send is split, first fragment one byte)
///   net.delay=<p>        P(an I/O op sleeps net.delay_ms first)
///   net.delay_ms=<n>     injected latency per delayed op (default 5)
///   net.rst=<p>          P(a send fails as if the peer reset mid-stream)
///   net.accept_fail=<p>  P(an accepted connection is dropped immediately)
///
/// The storage domain (docs/FAULT_TOLERANCE.md, "Storage fault injection")
/// drives SpillFile's pwrite/pread wrappers. Decisions are keyed on
/// (spill-file ordinal, I/O op ordinal), so a replay with the same seed
/// faults the identical frames:
///
///   io.eio_write=<p>     P(a frame pwrite fails with EIO; retried)
///   io.eio_read=<p>      P(a frame pread fails with EIO; retried)
///   io.enospc=<p>        P(a frame write fails with ENOSPC; fails fast)
///   io.short_write=<p>   P(a frame write is torn mid-payload; retried)
///   io.corrupt=<p>       P(a read-back frame has one payload bit flipped)
///
/// Example: "seed=42,transient=0.1,net.short_read=0.3,io.corrupt=0.2".
struct FaultSpec {
  std::uint64_t seed = 1;
  double transient_fraction = 0.0;
  double straggle_fraction = 0.0;
  std::int64_t straggle_nanos = 50'000'000;
  std::int64_t kill_stage = -1;
  double net_short_read_fraction = 0.0;
  double net_short_write_fraction = 0.0;
  double net_delay_fraction = 0.0;
  std::int64_t net_delay_nanos = 5'000'000;
  double net_rst_fraction = 0.0;
  double net_accept_fail_fraction = 0.0;
  double io_eio_write_fraction = 0.0;
  double io_eio_read_fraction = 0.0;
  double io_enospc_fraction = 0.0;
  double io_short_write_fraction = 0.0;
  double io_corrupt_fraction = 0.0;
};

/// Deterministic, seeded fault source for the executor pool. Every decision
/// is a pure hash of (seed, stage ordinal, task index), never of wall time
/// or thread interleaving, so the same spec replays the same fault pattern:
/// the same tasks fail transiently, the same tasks straggle, and the same
/// stage loses an executor — the property the deterministic-replay tests
/// (tests/exec/fault_tolerance_test.cc) pin down. Faults fire in the
/// scheduler before the task body runs, so a faulted attempt has no partial
/// side effects and a retry executes the body exactly once.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  /// Parses the fault-spec grammar above. Throws
  /// common::RumbleException(kInvalidArgument) on malformed input.
  static FaultSpec ParseSpec(const std::string& text);

  const FaultSpec& spec() const { return spec_; }

  /// Assigns the next stage ordinal (one per RunParallel call on the pool
  /// this injector is attached to). Stage launch order is deterministic —
  /// the driver starts stages sequentially — so ordinals are too.
  std::int64_t NextStageOrdinal() {
    return next_stage_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when the first attempt of `task` in this stage throws an injected
  /// transient fault. Retries (attempt > 1) and speculative copies are never
  /// re-faulted: the fault is transient by construction.
  bool ShouldFailTransient(std::int64_t stage_ordinal, std::size_t task) const;

  /// Injected stall in nanoseconds before `task`'s first attempt runs its
  /// body (0 = no stall). Stalled attempts are what straggler speculation
  /// races against.
  std::int64_t StraggleNanos(std::int64_t stage_ordinal,
                             std::size_t task) const;

  /// The executor to "kill" while this stage runs, or -1. The kill fires
  /// once, when task 0's first attempt executes (deterministic placement);
  /// the pool then notifies the executor-loss handler so caches and shuffle
  /// outputs recorded against that executor are invalidated and recomputed
  /// from lineage.
  int KillExecutorInStage(std::int64_t stage_ordinal,
                          int num_executors) const;

  // ---- Network fault domain (serving-path socket wrappers) ----------------

  /// True when any net.* fraction is set; lets the server skip the wrapper
  /// bookkeeping entirely on fault-free runs.
  bool has_net_faults() const {
    return spec_.net_short_read_fraction > 0.0 ||
           spec_.net_short_write_fraction > 0.0 ||
           spec_.net_delay_fraction > 0.0 || spec_.net_rst_fraction > 0.0 ||
           spec_.net_accept_fail_fraction > 0.0;
  }

  /// Assigns the next connection ordinal (one per accepted socket). Accept
  /// order is the only nondeterminism here; every per-connection decision
  /// below is a pure function of (seed, conn ordinal, op ordinal).
  std::int64_t NextConnOrdinal() {
    return next_conn_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when recv op `op` on connection `conn` should be truncated to one
  /// byte — the classic short read every robust I/O loop must survive.
  bool ShouldShortRead(std::int64_t conn, std::int64_t op) const;

  /// True when send op `op` on connection `conn` should be split with a
  /// one-byte first fragment (the kernel is always allowed to do this).
  bool ShouldShortWrite(std::int64_t conn, std::int64_t op) const;

  /// Injected latency in nanoseconds before op `op` on connection `conn`
  /// (0 = none). Models cross-host RTT jitter and slow middleboxes.
  std::int64_t NetDelayNanos(std::int64_t conn, std::int64_t op) const;

  /// True when send op `op` on connection `conn` should fail as if the peer
  /// sent a mid-stream RST: the wrapper shuts the socket down and reports
  /// the client gone, which must cancel the query and leak nothing.
  bool ShouldInjectRst(std::int64_t conn, std::int64_t op) const;

  /// True when accepted connection `conn` should be dropped before its
  /// handler thread spawns (an accept-queue failure under overload).
  bool ShouldFailAccept(std::int64_t conn) const;

  // ---- Storage fault domain (SpillFile pwrite/pread wrappers) -------------

  /// True when any io.* fraction is set; SpillFile skips the per-op ordinal
  /// bookkeeping on fault-free runs.
  bool has_io_faults() const {
    return spec_.io_eio_write_fraction > 0.0 ||
           spec_.io_eio_read_fraction > 0.0 ||
           spec_.io_enospc_fraction > 0.0 ||
           spec_.io_short_write_fraction > 0.0 ||
           spec_.io_corrupt_fraction > 0.0;
  }

  /// True when write op `op` on spill file `file` should fail as EIO (a
  /// flaky disk / controller hiccup). The writer retries with backoff; each
  /// retry is a fresh op ordinal, so transient by construction.
  bool ShouldFailSpillWrite(std::int64_t file, std::int64_t op) const;

  /// True when read op `op` on spill file `file` should fail as EIO.
  bool ShouldFailSpillRead(std::int64_t file, std::int64_t op) const;

  /// True when write op `op` on spill file `file` should fail as ENOSPC.
  /// Unlike EIO this is not retried: a full disk stays full, so the writer
  /// fails fast with kResourceExhausted.
  bool ShouldEnospcSpillWrite(std::int64_t file, std::int64_t op) const;

  /// True when write op `op` on spill file `file` should be torn: the frame
  /// header and a prefix of the payload land, the tail does not (a crash or
  /// lost sector mid-frame). The torn frame is rewritten in place on retry.
  bool ShouldTearSpillWrite(std::int64_t file, std::int64_t op) const;

  /// True when read op `op` on spill file `file` should see one payload bit
  /// flipped (silent media corruption). CRC verification must catch it.
  bool ShouldCorruptSpillRead(std::int64_t file, std::int64_t op) const;

 private:
  /// SplitMix64-style avalanche of (seed, stage, task, salt) to [0, 1).
  double UnitHash(std::int64_t stage_ordinal, std::uint64_t task,
                  std::uint64_t salt) const;

  FaultSpec spec_;
  std::atomic<std::int64_t> next_stage_{0};
  std::atomic<std::int64_t> next_conn_{0};
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_FAULT_INJECTOR_H_
