#include "src/exec/simulated_cluster.h"

#include <algorithm>
#include <queue>

namespace rumble::exec {

SimulatedRun SimulatedCluster::Replay(
    const std::vector<std::int64_t>& task_durations, int executors) const {
  if (executors < 1) executors = 1;
  SimulatedRun run;
  run.aggregated_nanos = 0;

  // Min-heap of executor free times; greedy FIFO assignment like Spark's
  // default scheduler within one stage.
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<>> free_at;
  for (int i = 0; i < executors; ++i) {
    free_at.push(model_.per_executor_startup_nanos);
  }

  double contention =
      1.0 + model_.contention_per_executor * static_cast<double>(executors - 1);
  std::int64_t makespan = model_.per_executor_startup_nanos;
  for (std::int64_t duration : task_durations) {
    std::int64_t cost =
        static_cast<std::int64_t>(static_cast<double>(duration) * contention) +
        model_.per_task_overhead_nanos;
    run.aggregated_nanos += cost;
    std::int64_t start = free_at.top();
    free_at.pop();
    std::int64_t end = start + cost;
    free_at.push(end);
    makespan = std::max(makespan, end);
  }
  run.wall_nanos = makespan + model_.driver_overhead_nanos;
  return run;
}

}  // namespace rumble::exec
