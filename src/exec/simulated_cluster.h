#ifndef RUMBLE_EXEC_SIMULATED_CLUSTER_H_
#define RUMBLE_EXEC_SIMULATED_CLUSTER_H_

#include <cstdint>
#include <vector>

namespace rumble::exec {

/// Deterministic replay of a task schedule on a hypothetical cluster.
///
/// The paper's speedup experiment (Figure 14) runs the same query with 1-32
/// executors on a 9-node EMR cluster. This build environment has a single
/// CPU core, so a wall-clock sweep over thread counts would be meaningless.
/// Instead we record the real per-task durations of one execution and replay
/// them through Spark's scheduling policy (greedy FIFO list scheduling:
/// each task goes to the executor that frees up first), adding the per-task
/// dispatch overhead and per-executor startup cost that cause the paper's
/// observed "aggregated runtime goes up ... ending at no more than a factor
/// of 2". This substitution is documented in DESIGN.md and EXPERIMENTS.md.
struct ClusterCostModel {
  /// Scheduler dispatch + (de)serialization overhead added to every task.
  std::int64_t per_task_overhead_nanos = 1'000'000;  // 1 ms
  /// One-off cost per executor (JVM spin-up, shuffle service registration).
  std::int64_t per_executor_startup_nanos = 10'000'000;  // 10 ms
  /// Fixed driver-side cost per job (DAG construction, result collection).
  std::int64_t driver_overhead_nanos = 30'000'000;  // 30 ms
  /// Shared-resource contention: every task slows down by this fraction per
  /// additional concurrent executor (disk/NIC sharing). This is what makes
  /// the paper's aggregated task time rise with the executor count,
  /// "ending at no more than a factor of 2" at 32 executors.
  double contention_per_executor = 0.015;
};

struct SimulatedRun {
  /// End-to-end wall clock for the replayed schedule.
  std::int64_t wall_nanos = 0;
  /// Sum of per-task times including overheads ("aggregated task time").
  std::int64_t aggregated_nanos = 0;
};

class SimulatedCluster {
 public:
  explicit SimulatedCluster(ClusterCostModel model = {}) : model_(model) {}

  /// Replays `task_durations` (FIFO order) over `executors` parallel slots.
  SimulatedRun Replay(const std::vector<std::int64_t>& task_durations,
                      int executors) const;

 private:
  ClusterCostModel model_;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_SIMULATED_CLUSTER_H_
