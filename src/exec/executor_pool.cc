#include "src/exec/executor_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "src/common/error.h"
#include "src/obs/tracer.h"
#include "src/util/stopwatch.h"

namespace rumble::exec {

thread_local bool ExecutorPool::in_worker_ = false;
thread_local int ExecutorPool::worker_index_ = -1;

namespace {

std::int64_t NowSteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepNanos(std::int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

}  // namespace

/// Per-task scheduling state. `commit_mu` is the idempotent-commit gate: the
/// attempt holding it may run the task body; `committed` flips exactly once.
/// Rival attempts (a speculative copy, a stalled original waking up late)
/// observe `committed` and discard themselves without running the body, so
/// the body executes at most once per success even under speculation.
struct ExecutorPool::TaskSlot {
  std::mutex commit_mu;
  std::atomic<bool> committed{false};
  std::atomic<bool> settled{false};
  /// Steady-clock nanos when the current original attempt started running
  /// (-1 while queued). The driver's straggler scan reads this.
  std::atomic<std::int64_t> running_since{-1};
  /// Body wall time of the committed attempt (-1 until committed); feeds the
  /// stage's median task time for speculation thresholds.
  std::atomic<std::int64_t> duration_nanos{-1};
  std::atomic<bool> speculative_launched{false};
};

/// Everything one RunParallel call (= one stage) needs, shared by the driver
/// and every attempt via shared_ptr so late discarded attempts — which can
/// outlive the RunParallel call — never touch freed state. `fn` and
/// `caller_metrics` belong to the caller's stack frame: only the committing
/// attempt may dereference them, which the commit gate guarantees happens
/// before RunParallel returns.
struct ExecutorPool::StageState {
  const std::function<void(std::size_t)>* fn = nullptr;
  TaskMetrics* caller_metrics = nullptr;
  obs::EventBus* bus = nullptr;
  obs::Tracer* tracer = nullptr;
  FaultInjector* injector = nullptr;
  CancellationToken* cancel = nullptr;
  /// The submitting thread's per-query scope and job binding, captured at
  /// stage creation and re-bound around every attempt so worker-side
  /// cancellation checks, memory charges, and published events resolve to
  /// the right query when stages from concurrent queries interleave on the
  /// shared pool. Null scope / job -1 on the shell path (no-op rebinds).
  const QueryScope* scope = nullptr;
  std::int64_t job = -1;
  /// The owning query's live profile (bus->profiler()->Find(job)), looked up
  /// once per stage; attempts feed its atomics (CPU nanos, task counts)
  /// lock-free. Null when the job is not profiled (docs/PROFILING.md).
  std::shared_ptr<obs::QueryProfile> profile;
  std::int64_t stage_id = -1;
  /// Stage span id; task spans parent to it explicitly (task attempts run on
  /// worker threads whose local span stacks do not see the driver's stage).
  std::int64_t span = obs::Tracer::kNoSpan;
  std::int64_t stage_ordinal = -1;
  std::string label;
  std::size_t task_count = 0;
  bool pooled = false;
  int kill_victim = -1;
  std::atomic<bool> kill_fired{false};
  /// Fail-fast flag: once set, queued attempts cancel instead of running.
  std::atomic<bool> doomed{false};

  // Guarded by mu: stage completion and first-failure bookkeeping.
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t settled_count = 0;
  std::exception_ptr first_error;
  bool first_error_is_rumble = false;
  common::ErrorCode first_error_code = common::ErrorCode::kInternal;
  std::string first_error_what;
  std::string first_failure_context;
  int failed_tasks = 0;

  // Per-stage recovery stats, reported on stage_end.
  std::atomic<std::int64_t> failures{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> speculative{0};
  std::atomic<std::int64_t> cancelled{0};

  std::vector<std::unique_ptr<TaskSlot>> slots;
};

ExecutorPool::ExecutorPool(int num_executors) {
  if (num_executors < 1) num_executors = 1;
  workers_.reserve(static_cast<std::size_t>(num_executors));
  for (int i = 0; i < num_executors; ++i) {
    workers_.emplace_back([this, i] {
      worker_index_ = i;
      obs::Tracer::SetCurrentThreadTrack(i + 1);  // track 0 is the driver
      WorkerLoop();
    });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ExecutorPool::WorkerLoop() {
  in_worker_ = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ExecutorPool::SubmitAttempt(const std::shared_ptr<StageState>& stage,
                                 TaskAttempt attempt) {
  if (!stage->pooled) {
    // Inline stages (nested parallelism, single worker) run attempts on the
    // calling thread; retry recursion is bounded by max_task_attempts.
    RunAttempt(stage, attempt);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push([this, stage, attempt] { RunAttempt(stage, attempt); });
  }
  cv_.notify_one();
}

void ExecutorPool::SettleTask(const std::shared_ptr<StageState>& stage,
                              std::size_t task) {
  if (stage->slots[task]->settled.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stage->mu);
    ++stage->settled_count;
  }
  stage->done_cv.notify_all();
}

void ExecutorPool::HandleFailure(const std::shared_ptr<StageState>& stage,
                                 TaskAttempt attempt,
                                 std::exception_ptr error) {
  bool is_rumble = false;
  common::ErrorCode code = common::ErrorCode::kInternal;
  std::string what = "unknown exception";
  try {
    std::rethrow_exception(error);
  } catch (const common::RumbleException& e) {
    is_rumble = true;
    code = e.code();
    what = e.what();
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }

  stage->failures.fetch_add(1, std::memory_order_relaxed);
  if (stage->profile != nullptr) {
    stage->profile->task_failures.fetch_add(1, std::memory_order_relaxed);
  }
  if (stage->bus != nullptr) {
    stage->bus->TaskFailed(stage->stage_id, attempt.task, attempt.attempt,
                           what);
    stage->bus->AddToCounter("task.failures", 1);
  }
  if (attempt.speculative) {
    // The original attempt owns retry and failure accounting; a failed
    // speculative copy is simply discarded. A deterministic error will
    // resurface when the original runs the same body.
    return;
  }

  // JSONiq dynamic errors are deterministic: retrying re-executes the same
  // computation on the same data and fails identically, so they doom the
  // stage immediately and keep their error code (paper error semantics).
  bool retryable = !is_rumble && attempt.attempt < policy_.max_task_attempts;
  if (retryable && !stage->doomed.load(std::memory_order_acquire)) {
    stage->retries.fetch_add(1, std::memory_order_relaxed);
    if (stage->profile != nullptr) {
      stage->profile->task_retries.fetch_add(1, std::memory_order_relaxed);
    }
    if (stage->bus != nullptr) {
      stage->bus->TaskRetry(stage->stage_id, attempt.task,
                            attempt.attempt + 1);
      stage->bus->AddToCounter("task.retries", 1);
    }
    SubmitAttempt(stage, {attempt.task, attempt.attempt + 1, false});
    return;
  }

  {
    std::lock_guard<std::mutex> lock(stage->mu);
    ++stage->failed_tasks;
    if (!stage->first_error) {
      stage->first_error = error;
      stage->first_error_is_rumble = is_rumble;
      stage->first_error_code = code;
      stage->first_error_what = what;
      stage->first_failure_context =
          "task " + std::to_string(attempt.task) + " attempt " +
          std::to_string(attempt.attempt);
    }
  }
  stage->doomed.store(true, std::memory_order_release);
  SettleTask(stage, attempt.task);
}

void ExecutorPool::RunAttempt(const std::shared_ptr<StageState>& stage,
                              TaskAttempt attempt) {
  // Re-bind the submitting query's scope and job on this thread: a worker
  // may interleave attempts from different queries, and an inline nested
  // stage begun from this attempt must attribute to the same query.
  QueryScopeBinding scope_binding(stage->scope);
  obs::ThreadJobBinding job_binding(stage->job);
  TaskSlot& slot = *stage->slots[attempt.task];
  if (slot.settled.load(std::memory_order_acquire)) return;
  if (stage->doomed.load(std::memory_order_acquire)) {
    if (attempt.speculative) return;  // the original attempt settles the task
    stage->cancelled.fetch_add(1, std::memory_order_relaxed);
    if (stage->bus != nullptr) stage->bus->AddToCounter("task.cancelled", 1);
    SettleTask(stage, attempt.task);
    return;
  }
  if (!attempt.speculative) {
    slot.running_since.store(NowSteadyNanos(), std::memory_order_release);
  }
  // Attempt span: one per attempt (retries and speculative copies each get
  // their own), parented explicitly to the stage span. Discarded attempts
  // Cancel so the recorded trace holds only attempts that did work.
  std::int64_t span = obs::Tracer::kNoSpan;
  if (stage->tracer != nullptr && stage->tracer->enabled()) {
    span = stage->tracer->Begin(
        "task", stage->label + " #" + std::to_string(attempt.task),
        stage->span);
  }
  if (attempt.attempt > 1 && policy_.retry_backoff_nanos > 0) {
    std::int64_t backoff = policy_.retry_backoff_nanos
                           << std::min(attempt.attempt - 2, 20);
    SleepNanos(std::min(backoff, policy_.retry_backoff_cap_nanos));
  }
  // CPU attribution (docs/PROFILING.md): a CLOCK_THREAD_CPUTIME_ID delta
  // over the attempt, credited to the owning query's profile whether the
  // attempt commits or fails — CPU burned by failing attempts is exactly
  // what retry storms waste, so it must show up. Two clock_gettime calls
  // per attempt; skipped entirely when the stage's job is not profiled.
  std::int64_t cpu_start =
      stage->profile != nullptr ? obs::ThreadCpuNanos() : 0;
  auto credit_cpu = [&stage, cpu_start] {
    if (stage->profile != nullptr) {
      stage->profile->task_cpu_nanos.fetch_add(
          obs::ThreadCpuNanos() - cpu_start, std::memory_order_relaxed);
    }
  };
  try {
    // Task-boundary cancellation check: a cancelled query fails its next
    // attempt with kCancelled, which is non-retryable and dooms the stage.
    if (stage->cancel != nullptr) stage->cancel->Check();
    FaultInjector* injector = stage->injector;
    if (injector != nullptr && !attempt.speculative) {
      if (attempt.attempt == 1) {
        std::int64_t stall =
            injector->StraggleNanos(stage->stage_ordinal, attempt.task);
        if (stall > 0) {
          if (stage->bus != nullptr) {
            stage->bus->AddToCounter("task.straggle_injected", 1);
          }
          SleepNanos(stall);
        }
      }
      // Executor kill: fires once, on task 0's first attempt in the doomed
      // stage (deterministic placement). The loss handler invalidates cache
      // and shuffle outputs recorded against the victim, then this attempt
      // fails transiently and is retried — recovery, not job failure.
      if (stage->kill_victim >= 0 && attempt.task == 0 &&
          attempt.attempt == 1 &&
          !stage->kill_fired.exchange(true, std::memory_order_acq_rel)) {
        int victim = stage->kill_victim;
        if (lost_handler_) lost_handler_(victim);
        if (stage->bus != nullptr) {
          stage->bus->ExecutorLost(victim);
          stage->bus->AddToCounter("executor.lost", 1);
        }
        throw TransientTaskFault("executor " + std::to_string(victim) +
                                 " lost");
      }
      if (attempt.attempt == 1 &&
          injector->ShouldFailTransient(stage->stage_ordinal, attempt.task)) {
        throw TransientTaskFault("injected transient fault");
      }
    }

    // Idempotent commit: only the attempt holding commit_mu with `committed`
    // still false runs the body. A speculative copy try-locks so it never
    // blocks a worker behind a genuinely slow body; it wins exactly when the
    // original is stalled before the gate (the straggler case).
    std::unique_lock<std::mutex> commit(slot.commit_mu, std::defer_lock);
    if (attempt.speculative) {
      if (!commit.try_lock()) {
        if (stage->bus != nullptr) {
          stage->bus->AddToCounter("task.speculative_discarded", 1);
        }
        if (stage->tracer != nullptr) stage->tracer->Cancel(span);
        return;
      }
    } else {
      commit.lock();
    }
    if (slot.committed.load(std::memory_order_acquire)) {
      if (stage->bus != nullptr) {
        stage->bus->AddToCounter("task.speculative_discarded", 1);
      }
      if (stage->tracer != nullptr) stage->tracer->Cancel(span);
      return;  // a rival attempt already won; discard without re-running
    }
    if (stage->doomed.load(std::memory_order_acquire)) {
      commit.unlock();
      if (stage->tracer != nullptr) stage->tracer->Cancel(span);
      if (attempt.speculative) return;
      stage->cancelled.fetch_add(1, std::memory_order_relaxed);
      if (stage->bus != nullptr) stage->bus->AddToCounter("task.cancelled", 1);
      SettleTask(stage, attempt.task);
      return;
    }
    util::Stopwatch watch;
    (*stage->fn)(attempt.task);
    std::int64_t nanos = watch.ElapsedNanos();
    slot.duration_nanos.store(nanos, std::memory_order_release);
    slot.committed.store(true, std::memory_order_release);
    commit.unlock();
    credit_cpu();
    if (stage->profile != nullptr) {
      stage->profile->tasks.fetch_add(1, std::memory_order_relaxed);
    }
    pool_metrics_.RecordTask(nanos);
    if (stage->caller_metrics != nullptr) {
      stage->caller_metrics->RecordTask(nanos);
    }
    if (stage->bus != nullptr) {
      stage->bus->TaskEnd(stage->stage_id, attempt.task, nanos);
      if (attempt.speculative) {
        stage->bus->AddToCounter("task.speculative_wins", 1);
      }
    }
    if (stage->tracer != nullptr) {
      stage->tracer->End(span, {{"attempt", attempt.attempt},
                                {"speculative", attempt.speculative ? 1 : 0},
                                {"body_ns", nanos}});
    }
    SettleTask(stage, attempt.task);
  } catch (...) {
    credit_cpu();
    // The failed attempt's span closes before any retry attempt begins, so
    // sibling attempt spans never overlap on one thread's stack.
    if (stage->tracer != nullptr) {
      stage->tracer->End(span, {{"attempt", attempt.attempt}, {"failed", 1}});
    }
    HandleFailure(stage, attempt, std::current_exception());
  }
}

void ExecutorPool::CheckSpeculation(const std::shared_ptr<StageState>& stage) {
  std::vector<std::int64_t> durations;
  durations.reserve(stage->task_count);
  for (const auto& slot : stage->slots) {
    std::int64_t d = slot->duration_nanos.load(std::memory_order_acquire);
    if (d >= 0) durations.push_back(d);
  }
  // Spark's speculation quantile, scaled down: wait for at least half the
  // stage before inferring what "normal" task time looks like.
  if (durations.empty() || durations.size() * 2 < stage->task_count ||
      durations.size() == stage->task_count) {
    return;
  }
  std::nth_element(durations.begin(),
                   durations.begin() + static_cast<std::ptrdiff_t>(
                                           durations.size() / 2),
                   durations.end());
  std::int64_t median = durations[durations.size() / 2];
  auto scaled = static_cast<std::int64_t>(
      static_cast<double>(median) * policy_.speculation_multiplier);
  std::int64_t threshold =
      std::max(scaled, policy_.speculation_min_runtime_nanos);
  std::int64_t now = NowSteadyNanos();
  for (std::size_t i = 0; i < stage->task_count; ++i) {
    TaskSlot& slot = *stage->slots[i];
    if (slot.settled.load(std::memory_order_acquire) ||
        slot.committed.load(std::memory_order_acquire)) {
      continue;
    }
    std::int64_t since = slot.running_since.load(std::memory_order_acquire);
    if (since < 0 || now - since <= threshold) continue;
    if (slot.speculative_launched.exchange(true, std::memory_order_acq_rel)) {
      continue;
    }
    stage->speculative.fetch_add(1, std::memory_order_relaxed);
    if (stage->bus != nullptr) {
      stage->bus->TaskSpeculative(stage->stage_id, i);
      stage->bus->AddToCounter("task.speculative", 1);
    }
    SubmitAttempt(stage, {i, 1, true});
  }
}

void ExecutorPool::FinishStage(const std::shared_ptr<StageState>& stage,
                               std::int64_t stage_wall_nanos) {
  std::exception_ptr error;
  int failed_tasks = 0;
  std::string context;
  {
    std::lock_guard<std::mutex> lock(stage->mu);
    error = stage->first_error;
    failed_tasks = stage->failed_tasks;
    context = stage->first_failure_context;
  }
  std::vector<std::pair<std::string, std::int64_t>> metrics;
  if (error) metrics.emplace_back("failed", 1);
  auto report = [&metrics](const char* name,
                           const std::atomic<std::int64_t>& value) {
    std::int64_t v = value.load(std::memory_order_relaxed);
    if (v != 0) metrics.emplace_back(name, v);
  };
  report("task_failures", stage->failures);
  report("task_retries", stage->retries);
  report("speculative", stage->speculative);
  report("cancelled", stage->cancelled);
  if (stage->tracer != nullptr) {
    // Every task has settled and every surviving attempt span has closed, so
    // the stage span strictly contains its children. FinishStage runs on the
    // thread that called RunParallel — the same thread that began the span.
    std::vector<std::pair<std::string, std::int64_t>> span_args;
    span_args.emplace_back("tasks",
                           static_cast<std::int64_t>(stage->task_count));
    for (const auto& [name, value] : metrics) span_args.emplace_back(name, value);
    stage->tracer->End(stage->span, std::move(span_args));
  }
  if (stage->bus != nullptr) {
    stage->bus->EndStage(stage->stage_id, stage_wall_nanos,
                         std::move(metrics));
  }
  if (!error) return;

  // Aggregated failure context: the callers used to see only the first
  // exception with every other failure silently dropped; now the rethrown
  // error names the stage, the failure count, and the first failing attempt.
  std::string suffix = " [stage '" + stage->label + "': " +
                       std::to_string(failed_tasks) + " of " +
                       std::to_string(stage->task_count) +
                       " tasks failed permanently; first failure: " + context +
                       "]";
  if (stage->first_error_is_rumble) {
    throw common::RumbleException(stage->first_error_code,
                                  stage->first_error_what + suffix);
  }
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    throw std::runtime_error(e.what() + suffix);
  } catch (...) {
    throw;  // unknown exception type: propagate untouched
  }
}

void ExecutorPool::RunParallel(std::size_t task_count,
                               const std::function<void(std::size_t)>& fn,
                               TaskMetrics* metrics,
                               const char* stage_label) {
  if (task_count == 0) return;

  // One RunParallel call = one stage (Spark's task-per-partition model).
  // Bus, injector, and cancellation token are bound once per stage, so
  // attaching/detaching them concurrently is safe — a stage sees one
  // consistent set throughout.
  // A thread-bound QueryScope (the serving path) overrides the pool-wide
  // token: each served query cancels independently instead of tripping the
  // shared session token.
  const QueryScope* scope = CurrentQueryScope();
  CancellationToken* cancel =
      scope != nullptr && scope->cancel != nullptr
          ? scope->cancel
          : cancel_.load(std::memory_order_acquire);
  if (cancel != nullptr) cancel->Check();  // don't even start the stage
  auto stage = std::make_shared<StageState>();
  stage->fn = &fn;
  stage->caller_metrics = metrics;
  stage->bus = bus_.load(std::memory_order_acquire);
  stage->injector = injector_.load(std::memory_order_acquire);
  stage->cancel = cancel;
  stage->scope = scope;
  stage->job = obs::ThreadJobBinding::current();
  stage->label = stage_label != nullptr ? stage_label : "stage";
  stage->task_count = task_count;
  stage->slots.reserve(task_count);
  for (std::size_t i = 0; i < task_count; ++i) {
    stage->slots.push_back(std::make_unique<TaskSlot>());
  }
  if (stage->injector != nullptr) {
    stage->stage_ordinal = stage->injector->NextStageOrdinal();
    stage->kill_victim = stage->injector->KillExecutorInStage(
        stage->stage_ordinal, num_executors());
  }
  if (stage->bus != nullptr) {
    stage->stage_id = stage->bus->BeginStage(stage->label, task_count);
    if (stage->job >= 0) {
      stage->profile = stage->bus->profiler()->Find(stage->job);
    }
    stage->tracer = stage->bus->tracer();
    if (stage->tracer->enabled()) {
      // Implicit parent: the innermost span open on the calling thread (the
      // engine's job span, or the enclosing task span for inline stages).
      stage->span = stage->tracer->Begin("stage", stage->label);
    }
  }
  util::Stopwatch stage_watch;

  // Nested parallel regions (a task spawning tasks) run inline: Spark jobs
  // do not nest either (Section 5.6), so this path is rare and correctness
  // matters more than parallelism here. Retries and fault injection still
  // apply; speculation does not (there is nothing to race against on one
  // thread).
  if (in_worker_ || workers_.size() <= 1 || task_count == 1) {
    for (std::size_t i = 0; i < task_count; ++i) {
      RunAttempt(stage, {i, 1, false});
    }
    FinishStage(stage, stage_watch.ElapsedNanos());
    return;
  }

  stage->pooled = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < task_count; ++i) {
      tasks_.push([this, stage, i] { RunAttempt(stage, {i, 1, false}); });
    }
  }
  cv_.notify_all();

  // The driver waits for every task to settle, scanning for stragglers on
  // each wake so speculation works without a separate monitor thread.
  {
    std::unique_lock<std::mutex> lock(stage->mu);
    while (stage->settled_count < task_count) {
      stage->done_cv.wait_for(lock, std::chrono::milliseconds(2));
      if (stage->settled_count >= task_count) break;
      if (policy_.speculation) {
        lock.unlock();
        CheckSpeculation(stage);
        lock.lock();
      }
    }
  }
  FinishStage(stage, stage_watch.ElapsedNanos());
}

}  // namespace rumble::exec
