#include "src/exec/executor_pool.h"

#include <atomic>
#include <exception>

#include "src/util/stopwatch.h"

namespace rumble::exec {

thread_local bool ExecutorPool::in_worker_ = false;

ExecutorPool::ExecutorPool(int num_executors) {
  if (num_executors < 1) num_executors = 1;
  workers_.reserve(static_cast<std::size_t>(num_executors));
  for (int i = 0; i < num_executors; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ExecutorPool::WorkerLoop() {
  in_worker_ = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ExecutorPool::RunParallel(std::size_t task_count,
                               const std::function<void(std::size_t)>& fn,
                               TaskMetrics* metrics,
                               const char* stage_label) {
  if (task_count == 0) return;

  // One RunParallel call = one stage (Spark's task-per-partition model).
  obs::EventBus* bus = bus_;
  std::int64_t stage_id = -1;
  util::Stopwatch stage_watch;
  if (bus != nullptr) {
    stage_id = bus->BeginStage(stage_label != nullptr ? stage_label : "stage",
                               task_count);
  }

  auto run_one = [&](std::size_t i) {
    util::Stopwatch watch;
    fn(i);
    std::int64_t nanos = watch.ElapsedNanos();
    pool_metrics_.RecordTask(nanos);
    if (metrics != nullptr) metrics->RecordTask(nanos);
    if (bus != nullptr) bus->TaskEnd(stage_id, i, nanos);
  };

  // Nested parallel regions (a task spawning tasks) run inline: Spark jobs
  // do not nest either (Section 5.6), so this path is rare and correctness
  // matters more than parallelism here.
  if (in_worker_ || workers_.size() <= 1 || task_count == 1) {
    try {
      for (std::size_t i = 0; i < task_count; ++i) run_one(i);
    } catch (...) {
      if (bus != nullptr) {
        bus->EndStage(stage_id, stage_watch.ElapsedNanos(), {{"failed", 1}});
      }
      throw;
    }
    if (bus != nullptr) bus->EndStage(stage_id, stage_watch.ElapsedNanos());
    return;
  }

  std::atomic<std::size_t> remaining{task_count};
  std::exception_ptr first_error;
  std::mutex done_mu;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < task_count; ++i) {
      tasks_.push([&, i] {
        try {
          run_one(i);
        } catch (...) {
          std::lock_guard<std::mutex> error_lock(done_mu);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
  if (bus != nullptr && first_error) {
    // The failed task recorded no task_end; close the stage without the
    // task-count cross-check by reporting what actually completed.
    bus->EndStage(stage_id, stage_watch.ElapsedNanos(), {{"failed", 1}});
  } else if (bus != nullptr) {
    bus->EndStage(stage_id, stage_watch.ElapsedNanos());
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rumble::exec
