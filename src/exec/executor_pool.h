#ifndef RUMBLE_EXEC_EXECUTOR_POOL_H_
#define RUMBLE_EXEC_EXECUTOR_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/exec/task_metrics.h"
#include "src/obs/event_bus.h"

namespace rumble::exec {

/// Fixed-size worker pool standing in for a Spark executor fleet. Each
/// submitted task corresponds to one partition of one stage, mirroring
/// Spark's task-per-partition model.
///
/// Observability: every RunParallel call is one *stage*. When an
/// obs::EventBus is attached (spark::Context does this), the pool publishes
/// stage_start / task_end / stage_end events with per-task wall times — the
/// scheduler half of the mini Spark-UI. The legacy TaskMetrics sink is kept
/// as the replay buffer for the cluster simulator (Figure 14), which only
/// needs raw durations.
class ExecutorPool {
 public:
  explicit ExecutorPool(int num_executors);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int num_executors() const { return static_cast<int>(workers_.size()); }

  /// Attaches the event bus stage/task events are published to (may be null
  /// to detach). Not synchronized against in-flight RunParallel calls: wire
  /// it up before running work.
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }
  obs::EventBus* event_bus() const { return bus_; }

  /// Runs `fn(i)` for i in [0, task_count), in parallel across the pool, and
  /// blocks until all tasks finish. Exceptions thrown by tasks are captured
  /// and the first one is rethrown on the calling thread. Task durations are
  /// appended to `metrics` when non-null. Re-entrant: a task may itself call
  /// RunParallel (the nested call helps execute on the calling thread), which
  /// matches Spark's restriction workaround that jobs do not nest — nested
  /// calls degrade to inline execution rather than deadlocking. A nested call
  /// still publishes its own stage (e.g. a shuffle map phase triggered from
  /// inside a reduce task is a real stage boundary).
  ///
  /// `stage_label` names the stage in events and summaries; callers pass
  /// "action.collect", "shuffle.groupBy.map", ... (default "stage").
  void RunParallel(std::size_t task_count,
                   const std::function<void(std::size_t)>& fn,
                   TaskMetrics* metrics = nullptr,
                   const char* stage_label = nullptr);

  TaskMetrics& metrics() { return pool_metrics_; }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool shutdown_ = false;
  static thread_local bool in_worker_;

  TaskMetrics pool_metrics_;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_EXECUTOR_POOL_H_
