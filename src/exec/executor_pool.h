#ifndef RUMBLE_EXEC_EXECUTOR_POOL_H_
#define RUMBLE_EXEC_EXECUTOR_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/cancellation.h"
#include "src/exec/fault_injector.h"
#include "src/exec/query_scope.h"
#include "src/exec/task_metrics.h"
#include "src/obs/event_bus.h"

namespace rumble::exec {

/// Scheduler-level fault-tolerance knobs, mirroring Spark's
/// spark.task.maxFailures / spark.speculation.* configuration. One policy is
/// installed per pool (spark::Context copies it out of RumbleConfig).
struct SchedulerPolicy {
  /// Total attempts a task may use before its stage fails (>= 1). Transient
  /// failures (anything that is not a common::RumbleException) are retried
  /// up to this bound; JSONiq dynamic errors never retry.
  int max_task_attempts = 4;
  /// Exponential backoff before attempt n: base << (n - 2), capped below.
  std::int64_t retry_backoff_nanos = 1'000'000;         // 1 ms
  std::int64_t retry_backoff_cap_nanos = 100'000'000;   // 100 ms
  /// Straggler speculation: once at least half a stage's tasks committed, a
  /// task still running past max(multiplier * median task time, min_runtime)
  /// gets a speculative copy; the first attempt to commit wins and the loser
  /// is discarded without running the task body twice.
  bool speculation = true;
  double speculation_multiplier = 4.0;
  std::int64_t speculation_min_runtime_nanos = 100'000'000;  // 100 ms
};

/// One attempt of one partition task: the unit the scheduler tracks, retries,
/// and speculates on (Spark's TaskAttempt). `task` is the partition index
/// within the stage; `attempt` is 1-based.
struct TaskAttempt {
  std::size_t task = 0;
  int attempt = 1;
  bool speculative = false;
};

/// Fixed-size worker pool standing in for a Spark executor fleet. Each
/// submitted task corresponds to one partition of one stage, mirroring
/// Spark's task-per-partition model.
///
/// Observability: every RunParallel call is one *stage*. When an
/// obs::EventBus is attached (spark::Context does this), the pool publishes
/// stage_start / task_end / stage_end events with per-task wall times — the
/// scheduler half of the mini Spark-UI. The legacy TaskMetrics sink is kept
/// as the replay buffer for the cluster simulator (Figure 14), which only
/// needs raw durations.
///
/// Fault tolerance (docs/FAULT_TOLERANCE.md): tasks run as TaskAttempts.
/// Transient failures — injected faults, lost executors, or any non-JSONiq
/// exception — are retried with exponential backoff up to
/// SchedulerPolicy::max_task_attempts; JSONiq dynamic errors
/// (common::RumbleException) rethrow immediately without retry so error
/// semantics survive the scheduler. Once a stage is doomed, queued attempts
/// are cancelled instead of run (fail-fast). Straggling tasks get
/// speculative copies; an idempotent per-task commit guarantees the task
/// body runs at most once per success, so first-completion-wins needs no
/// output reconciliation.
class ExecutorPool {
 public:
  explicit ExecutorPool(int num_executors);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int num_executors() const { return static_cast<int>(workers_.size()); }

  /// Attaches the event bus stage/task events are published to (may be null
  /// to detach). Safe against in-flight RunParallel calls: the pointer is
  /// atomic and every stage binds it once at stage start, so a stage sees
  /// either the old bus or the new one, never a torn mix.
  void set_event_bus(obs::EventBus* bus) {
    bus_.store(bus, std::memory_order_release);
  }
  obs::EventBus* event_bus() const {
    return bus_.load(std::memory_order_acquire);
  }

  /// Attaches a deterministic fault injector (null to detach). Like the bus,
  /// bound per-stage at stage start.
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Attaches the cooperative cancellation token polled at task boundaries
  /// (null to detach). Like the bus, bound per-stage at stage start; a
  /// cancelled token makes RunParallel throw RumbleException(kCancelled)
  /// before starting a stage and fails in-flight stages fast (the error is
  /// non-retryable, so the stage is doomed and queued attempts cancel).
  void set_cancellation(CancellationToken* token) {
    cancel_.store(token, std::memory_order_release);
  }

  /// Installs the scheduler policy. Wire up before running work.
  void set_policy(const SchedulerPolicy& policy) { policy_ = policy; }
  const SchedulerPolicy& policy() const { return policy_; }

  /// Handler invoked (on the failing worker's thread) when an executor is
  /// declared lost, before the affected attempt fails. spark::Context routes
  /// this to the cache/shuffle invalidation listeners so lost partitions are
  /// recomputed from lineage.
  void set_executor_lost_handler(std::function<void(int)> handler) {
    lost_handler_ = std::move(handler);
  }

  /// The worker index (executor id) of the calling thread, or -1 on the
  /// driver. Cache and shuffle structures record this as the partition's
  /// "location" so executor loss knows what to invalidate.
  static int CurrentExecutor() { return worker_index_; }

  /// Runs `fn(i)` for i in [0, task_count), in parallel across the pool, and
  /// blocks until every task commits or the stage fails. Each task commits at
  /// most once even under retries and speculation. On stage failure the first
  /// error is rethrown on the calling thread, augmented with the failure
  /// count and first-failure context (stage label, task, attempt); JSONiq
  /// errors keep their error code. Task durations are appended to `metrics`
  /// when non-null. Re-entrant: a task may itself call RunParallel (the
  /// nested call executes inline on the calling thread), which matches
  /// Spark's restriction that jobs do not nest — nested calls degrade to
  /// inline execution rather than deadlocking. A nested call still publishes
  /// its own stage (e.g. a shuffle map phase triggered from inside a reduce
  /// task is a real stage boundary).
  ///
  /// `stage_label` names the stage in events and summaries; callers pass
  /// "action.collect", "shuffle.groupBy.map", ... (default "stage").
  void RunParallel(std::size_t task_count,
                   const std::function<void(std::size_t)>& fn,
                   TaskMetrics* metrics = nullptr,
                   const char* stage_label = nullptr);

  TaskMetrics& metrics() { return pool_metrics_; }

 private:
  struct TaskSlot;
  struct StageState;

  void WorkerLoop();
  /// Queues (pooled stages) or runs inline (nested/sequential stages) one
  /// attempt.
  void SubmitAttempt(const std::shared_ptr<StageState>& stage,
                     TaskAttempt attempt);
  /// Executes one attempt end to end: cancellation check, backoff, fault
  /// injection, commit-gated task body, failure classification and retry.
  void RunAttempt(const std::shared_ptr<StageState>& stage,
                  TaskAttempt attempt);
  void HandleFailure(const std::shared_ptr<StageState>& stage,
                     TaskAttempt attempt, std::exception_ptr error);
  /// Marks a task settled (committed, permanently failed, or cancelled)
  /// exactly once and wakes the driver when the stage is finished.
  void SettleTask(const std::shared_ptr<StageState>& stage, std::size_t task);
  /// Driver-side straggler scan; launches speculative copies.
  void CheckSpeculation(const std::shared_ptr<StageState>& stage);
  /// Closes the stage on the bus and rethrows the recorded failure, if any.
  void FinishStage(const std::shared_ptr<StageState>& stage,
                   std::int64_t stage_wall_nanos);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool shutdown_ = false;
  static thread_local bool in_worker_;
  static thread_local int worker_index_;

  TaskMetrics pool_metrics_;
  std::atomic<obs::EventBus*> bus_{nullptr};
  std::atomic<FaultInjector*> injector_{nullptr};
  std::atomic<CancellationToken*> cancel_{nullptr};
  SchedulerPolicy policy_;
  std::function<void(int)> lost_handler_;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_EXECUTOR_POOL_H_
