#ifndef RUMBLE_EXEC_EXECUTOR_POOL_H_
#define RUMBLE_EXEC_EXECUTOR_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/exec/task_metrics.h"

namespace rumble::exec {

/// Fixed-size worker pool standing in for a Spark executor fleet. Each
/// submitted task corresponds to one partition of one stage, mirroring
/// Spark's task-per-partition model. Per-task wall times are recorded in a
/// TaskMetrics sink so the cluster simulator can replay schedules for
/// arbitrary executor counts (Figure 14).
class ExecutorPool {
 public:
  explicit ExecutorPool(int num_executors);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int num_executors() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(i)` for i in [0, task_count), in parallel across the pool, and
  /// blocks until all tasks finish. Exceptions thrown by tasks are captured
  /// and the first one is rethrown on the calling thread. Task durations are
  /// appended to `metrics` when non-null. Re-entrant: a task may itself call
  /// RunParallel (the nested call helps execute on the calling thread), which
  /// matches Spark's restriction workaround that jobs do not nest — nested
  /// calls degrade to inline execution rather than deadlocking.
  void RunParallel(std::size_t task_count,
                   const std::function<void(std::size_t)>& fn,
                   TaskMetrics* metrics = nullptr);

  TaskMetrics& metrics() { return pool_metrics_; }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool shutdown_ = false;
  static thread_local bool in_worker_;

  TaskMetrics pool_metrics_;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_EXECUTOR_POOL_H_
