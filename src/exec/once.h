#ifndef RUMBLE_EXEC_ONCE_H_
#define RUMBLE_EXEC_ONCE_H_

#include <condition_variable>
#include <mutex>

namespace rumble::exec {

/// Exception-safe one-time initialization with std::call_once turnover
/// semantics: exactly one thread runs the callable at a time, a successful
/// run latches the flag forever, and a *throwing* run hands the flag to one
/// blocked waiter (which re-runs the callable) while the exception
/// propagates to the thrower.
///
/// Exists because sanitizer runtimes intercept pthread_once without
/// handling the exceptional path — an initializer that throws under TSan
/// leaves every waiter blocked on the once guard forever. Storage faults
/// made throwing initializers a normal occurrence (a spill Append inside a
/// shuffle/sort/cache build now raises typed errors that the task scheduler
/// retries), so the lazily-built shared structures use this instead of
/// std::once_flag.
///
/// Successful completion in one thread happens-before every later Call()
/// return in any thread (the state is published under the mutex), matching
/// the visibility guarantee of std::call_once.
class RetryableOnce {
 public:
  template <typename Fn>
  void Call(Fn&& fn) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (done_) return;
      if (!running_) break;
      cv_.wait(lock);
    }
    running_ = true;
    lock.unlock();
    try {
      fn();
    } catch (...) {
      lock.lock();
      running_ = false;
      // Turnover: exactly one waiter becomes the next active invocation.
      cv_.notify_one();
      throw;
    }
    lock.lock();
    running_ = false;
    done_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool done_ = false;
};

}  // namespace rumble::exec

#endif  // RUMBLE_EXEC_ONCE_H_
