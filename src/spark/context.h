#ifndef RUMBLE_SPARK_CONTEXT_H_
#define RUMBLE_SPARK_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/exec/executor_pool.h"
#include "src/obs/event_bus.h"
#include "src/spark/rdd.h"
#include "src/storage/text_source.h"

namespace rumble::spark {

/// SparkContext stand-in: owns the executor pool and creates source RDDs.
/// One Context corresponds to one Spark application; the Rumble shell keeps
/// a single Context alive across queries, as the paper notes (Section 5.4).
class Context {
 public:
  explicit Context(common::RumbleConfig config = {});

  const common::RumbleConfig& config() const { return config_; }
  exec::ExecutorPool& pool() { return *pool_; }

  /// The per-application event bus (mini Spark-UI backend). Every stage the
  /// pool runs and every counter the RDD/DataFrame layers bump lands here.
  obs::EventBus& bus() { return *bus_; }

  /// Creates an RDD from a local collection (Spark's parallelize()).
  template <typename T>
  Rdd<T> Parallelize(std::vector<T> values, int num_partitions = 0) {
    if (num_partitions < 1) num_partitions = config_.default_partitions;
    auto data = std::make_shared<std::vector<T>>(std::move(values));
    int n = num_partitions;
    return Rdd<T>(this, n, [data, n](int index) {
      std::size_t total = data->size();
      auto parts = static_cast<std::size_t>(n);
      std::size_t chunk = total / parts;
      std::size_t remainder = total % parts;
      auto i = static_cast<std::size_t>(index);
      std::size_t begin = i * chunk + std::min(i, remainder);
      std::size_t size = chunk + (i < remainder ? 1 : 0);
      return std::vector<T>(data->begin() + static_cast<std::ptrdiff_t>(begin),
                            data->begin() +
                                static_cast<std::ptrdiff_t>(begin + size));
    });
  }

  /// Creates an RDD of text lines from a DFS dataset (Spark's textFile()).
  /// Splits are planned eagerly (cheap metadata), read lazily per task.
  Rdd<std::string> TextFile(const std::string& path, int min_partitions = 0);

  /// Writes an RDD of lines back to the DFS as a partitioned dataset.
  void SaveAsTextFile(const Rdd<std::string>& rdd, const std::string& path);

 private:
  common::RumbleConfig config_;
  std::shared_ptr<obs::EventBus> bus_;
  std::unique_ptr<exec::ExecutorPool> pool_;
};

}  // namespace rumble::spark

#endif  // RUMBLE_SPARK_CONTEXT_H_
