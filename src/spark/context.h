#ifndef RUMBLE_SPARK_CONTEXT_H_
#define RUMBLE_SPARK_CONTEXT_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/config.h"
#include "src/exec/cancellation.h"
#include "src/exec/executor_pool.h"
#include "src/exec/query_scope.h"
#include "src/exec/memory_manager.h"
#include "src/obs/event_bus.h"
#include "src/spark/rdd.h"
#include "src/storage/text_source.h"

namespace rumble::spark {

/// SparkContext stand-in: owns the executor pool and creates source RDDs.
/// One Context corresponds to one Spark application; the Rumble shell keeps
/// a single Context alive across queries, as the paper notes (Section 5.4).
class Context {
 public:
  explicit Context(common::RumbleConfig config = {});
  ~Context();

  const common::RumbleConfig& config() const { return config_; }
  exec::ExecutorPool& pool() { return *pool_; }

  /// The engine-wide execution-memory arbiter (docs/MEMORY.md). Limit comes
  /// from config.memory_limit_bytes or the RUMBLE_MEMORY_LIMIT environment
  /// variable; 0 keeps it non-enforcing.
  exec::MemoryManager& memory_manager() { return memory_; }

  /// The cancellation token governing work on the calling thread: a served
  /// query's own token when a QueryScope is bound (docs/SERVING.md),
  /// otherwise the context-wide session token. Long kernel loops poll this,
  /// so concurrently served queries cancel independently while the shell
  /// path behaves exactly as before.
  exec::CancellationToken& cancellation() {
    const exec::QueryScope* scope = exec::CurrentQueryScope();
    if (scope != nullptr && scope->cancel != nullptr) return *scope->cancel;
    return cancel_;
  }

  /// The context-wide session token (the shell's Ctrl-C target and the
  /// pool's default), ignoring any per-query scope. The engine resets it per
  /// shell query.
  exec::CancellationToken& session_cancellation() { return cancel_; }

  /// The per-application event bus (mini Spark-UI backend). Every stage the
  /// pool runs and every counter the RDD/DataFrame layers bump lands here.
  obs::EventBus& bus() { return *bus_; }

  /// The fault injector parsed from config.fault_spec (or the
  /// RUMBLE_FAULT_SPEC environment variable); null when no injection is
  /// configured.
  exec::FaultInjector* fault_injector() { return injector_.get(); }

  // ---- Executor-loss listeners (lineage recovery) -------------------------
  // Cached RDDs and shuffle outputs register a listener that invalidates the
  // partitions built on a lost executor; the scheduler's executor-lost
  // handler (and tests, directly) call NotifyExecutorLost. Listeners run
  // under the registry lock, so unregistration (from RDD/shuffle
  // destructors) synchronizes with in-flight notifications — a listener is
  // never invoked after UnregisterExecutorLossListener returns.

  int RegisterExecutorLossListener(std::function<void(int)> listener);
  void UnregisterExecutorLossListener(int token);
  /// Declares an executor lost: every registered invalidation listener runs
  /// (cache partitions and shuffle map outputs recorded against it become
  /// invalid and will be recomputed from lineage on next access).
  void NotifyExecutorLost(int executor);

  /// Creates an RDD from a local collection (Spark's parallelize()).
  template <typename T>
  Rdd<T> Parallelize(std::vector<T> values, int num_partitions = 0) {
    if (num_partitions < 1) num_partitions = config_.default_partitions;
    auto data = std::make_shared<std::vector<T>>(std::move(values));
    int n = num_partitions;
    return Rdd<T>(this, n, [data, n](int index) {
      std::size_t total = data->size();
      auto parts = static_cast<std::size_t>(n);
      std::size_t chunk = total / parts;
      std::size_t remainder = total % parts;
      auto i = static_cast<std::size_t>(index);
      std::size_t begin = i * chunk + std::min(i, remainder);
      std::size_t size = chunk + (i < remainder ? 1 : 0);
      return std::vector<T>(data->begin() + static_cast<std::ptrdiff_t>(begin),
                            data->begin() +
                                static_cast<std::ptrdiff_t>(begin + size));
    });
  }

  /// Creates an RDD of text lines from a DFS dataset (Spark's textFile()).
  /// Splits are planned eagerly (cheap metadata), read lazily per task.
  Rdd<std::string> TextFile(const std::string& path, int min_partitions = 0);

  /// Writes an RDD of lines back to the DFS as a partitioned dataset.
  void SaveAsTextFile(const Rdd<std::string>& rdd, const std::string& path);

 private:
  common::RumbleConfig config_;
  std::shared_ptr<obs::EventBus> bus_;
  // The injector, memory manager, cancellation token, and listener registry
  // must outlive the pool (workers touch them until joined), so they are
  // declared before pool_ — members are destroyed in reverse declaration
  // order.
  exec::MemoryManager memory_;
  exec::CancellationToken cancel_;
  std::unique_ptr<exec::FaultInjector> injector_;
  std::mutex listeners_mu_;
  std::map<int, std::function<void(int)>> loss_listeners_;
  int next_loss_token_ = 0;
  std::unique_ptr<exec::ExecutorPool> pool_;
};

}  // namespace rumble::spark

#endif  // RUMBLE_SPARK_CONTEXT_H_
