#include "src/spark/context.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/error.h"
#include "src/exec/spill_file.h"
#include "src/storage/dfs.h"

namespace rumble::spark {

exec::ExecutorPool& PoolOf(Context* context) { return context->pool(); }

obs::EventBus& BusOf(Context* context) { return context->bus(); }

obs::Tracer& TracerOf(Context* context) { return *context->bus().tracer(); }

int RegisterExecutorLossListener(Context* context,
                                 std::function<void(int)> listener) {
  return context->RegisterExecutorLossListener(std::move(listener));
}

void UnregisterExecutorLossListener(Context* context, int token) {
  context->UnregisterExecutorLossListener(token);
}

exec::MemoryManager& MemoryOf(Context* context) {
  return context->memory_manager();
}

exec::CancellationToken& CancelOf(Context* context) {
  return context->cancellation();
}

exec::FaultInjector* InjectorOf(Context* context) {
  return context->fault_injector();
}

Context::Context(common::RumbleConfig config)
    : config_(std::move(config)),
      bus_(std::make_shared<obs::EventBus>()),
      pool_(std::make_unique<exec::ExecutorPool>(config_.executors)) {
  pool_->set_event_bus(bus_.get());

  exec::SchedulerPolicy policy;
  policy.max_task_attempts = std::max(1, config_.max_task_attempts);
  policy.retry_backoff_nanos =
      std::max<std::int64_t>(0, config_.task_retry_backoff_ms) * 1'000'000;
  policy.speculation = config_.speculation;
  policy.speculation_multiplier = config_.speculation_multiplier;
  policy.speculation_min_runtime_nanos =
      std::max<std::int64_t>(0, config_.speculation_min_runtime_ms) *
      1'000'000;
  pool_->set_policy(policy);

  // Fault injection: explicit config wins; the environment variable lets the
  // chaos harness (scripts/run_chaos.sh) inject faults into unmodified
  // binaries.
  std::string spec_text = config_.fault_spec;
  if (spec_text.empty()) {
    if (const char* env = std::getenv("RUMBLE_FAULT_SPEC")) spec_text = env;
  }
  if (!spec_text.empty()) {
    injector_ = std::make_unique<exec::FaultInjector>(
        exec::FaultInjector::ParseSpec(spec_text));
    pool_->set_fault_injector(injector_.get());
  }
  pool_->set_executor_lost_handler(
      [this](int executor) { NotifyExecutorLost(executor); });

  // Memory governance: explicit config wins; the environment variable lets
  // the chaos harness cap unmodified binaries. 0 = non-enforcing.
  std::uint64_t memory_limit = config_.memory_limit_bytes;
  if (memory_limit == 0) {
    if (const char* env = std::getenv("RUMBLE_MEMORY_LIMIT")) {
      exec::MemoryManager::ParseByteSize(env, &memory_limit);
    }
  }
  memory_.set_limit_bytes(memory_limit);
  memory_.set_bus(bus_.get());
  pool_->set_cancellation(&cancel_);

  // Spill storage: apply the directory override (config wins over the
  // environment) with startup validation, install the disk-watchdog policy,
  // and reclaim spill files leaked by dead processes (crashed runs).
  std::string spill_dir = config_.spill_dir;
  if (spill_dir.empty()) {
    if (const char* env = std::getenv("RUMBLE_SPILL_DIR")) spill_dir = env;
  }
  if (!spill_dir.empty()) {
    std::string error;
    if (!exec::SetSpillDirectory(spill_dir, &error)) {
      common::ThrowError(common::ErrorCode::kInvalidArgument, error);
    }
  }
  std::uint64_t spill_max = config_.spill_max_bytes;
  if (spill_max == 0) {
    if (const char* env = std::getenv("RUMBLE_SPILL_MAX_BYTES")) {
      exec::MemoryManager::ParseByteSize(env, &spill_max);
    }
  }
  exec::SetSpillDiskPolicy(config_.spill_min_free_bytes, spill_max);
  int orphans = exec::SweepOrphanSpillFiles();
  if (orphans > 0) {
    bus_->AddToCounter("spill.orphans_swept", orphans);
  }
}

Context::~Context() {
  // Join the workers first, then sweep leftover spill files. Live SpillFile
  // objects (other engines in this process) are skipped by the sweeper.
  pool_.reset();
  exec::SweepSpillFiles();
}

int Context::RegisterExecutorLossListener(std::function<void(int)> listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  int token = next_loss_token_++;
  loss_listeners_.emplace(token, std::move(listener));
  return token;
}

void Context::UnregisterExecutorLossListener(int token) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  loss_listeners_.erase(token);
}

void Context::NotifyExecutorLost(int executor) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  for (auto& [token, listener] : loss_listeners_) {
    listener(executor);
  }
}

Rdd<std::string> Context::TextFile(const std::string& path,
                                   int min_partitions) {
  if (min_partitions < 1) min_partitions = config_.default_partitions;
  auto splits = std::make_shared<std::vector<storage::TextSplit>>(
      storage::TextSource::PlanSplits(path, min_partitions));
  int n = static_cast<int>(splits->size());
  if (n == 0) {
    // Empty dataset: one empty partition keeps downstream logic uniform.
    return Rdd<std::string>(this, 1,
                            [](int) { return std::vector<std::string>{}; });
  }
  return Rdd<std::string>(this, n, [splits](int index) {
    return storage::TextSource::ReadSplit(
        (*splits)[static_cast<std::size_t>(index)]);
  });
}

void Context::SaveAsTextFile(const Rdd<std::string>& rdd,
                             const std::string& path) {
  std::vector<std::string> partitions(
      static_cast<std::size_t>(rdd.num_partitions()));
  pool_->RunParallel(
      partitions.size(),
      [&](std::size_t index) {
        std::string blob;
        for (const std::string& line :
             rdd.ComputePartition(static_cast<int>(index))) {
          blob.append(line);
          blob.push_back('\n');
        }
        partitions[index] = std::move(blob);
      },
      nullptr, "action.saveAsTextFile");
  storage::Dfs::WritePartitioned(path, partitions);
}

}  // namespace rumble::spark
