#include "src/spark/context.h"

#include "src/storage/dfs.h"

namespace rumble::spark {

exec::ExecutorPool& PoolOf(Context* context) { return context->pool(); }

obs::EventBus& BusOf(Context* context) { return context->bus(); }

Context::Context(common::RumbleConfig config)
    : config_(config),
      bus_(std::make_shared<obs::EventBus>()),
      pool_(std::make_unique<exec::ExecutorPool>(config.executors)) {
  pool_->set_event_bus(bus_.get());
}

Rdd<std::string> Context::TextFile(const std::string& path,
                                   int min_partitions) {
  if (min_partitions < 1) min_partitions = config_.default_partitions;
  auto splits = std::make_shared<std::vector<storage::TextSplit>>(
      storage::TextSource::PlanSplits(path, min_partitions));
  int n = static_cast<int>(splits->size());
  if (n == 0) {
    // Empty dataset: one empty partition keeps downstream logic uniform.
    return Rdd<std::string>(this, 1,
                            [](int) { return std::vector<std::string>{}; });
  }
  return Rdd<std::string>(this, n, [splits](int index) {
    return storage::TextSource::ReadSplit(
        (*splits)[static_cast<std::size_t>(index)]);
  });
}

void Context::SaveAsTextFile(const Rdd<std::string>& rdd,
                             const std::string& path) {
  std::vector<std::string> partitions(
      static_cast<std::size_t>(rdd.num_partitions()));
  pool_->RunParallel(
      partitions.size(),
      [&](std::size_t index) {
        std::string blob;
        for (const std::string& line :
             rdd.ComputePartition(static_cast<int>(index))) {
          blob.append(line);
          blob.push_back('\n');
        }
        partitions[index] = std::move(blob);
      },
      nullptr, "action.saveAsTextFile");
  storage::Dfs::WritePartitioned(path, partitions);
}

}  // namespace rumble::spark
