#ifndef RUMBLE_SPARK_SPILL_CODEC_H_
#define RUMBLE_SPARK_SPILL_CODEC_H_

#include <concepts>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/item/item.h"
#include "src/item/item_serde.h"

namespace rumble::spark {

// Binary codecs for the element types that flow through Rdd<T> pipeline
// breakers (shuffle map outputs, sort buffers, cached partitions). This
// header is included *by* rdd.h, so every translation unit agrees on which
// types have a codec — spill support for a given Rdd<T> is compiled in
// exactly when HasSpillCodec<T> holds, and is skipped (the partition simply
// stays in memory, uncharged) otherwise. Scalars are raw little-endian bits,
// which keeps spilled-and-restored doubles byte-identical.

namespace serde {

inline void PutRaw(const void* data, std::size_t size, std::string* out) {
  out->append(static_cast<const char*>(data), size);
}

inline void GetRaw(const char** cursor, const char* end, void* data,
                   std::size_t size) {
  if (static_cast<std::size_t>(end - *cursor) < size) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "spill decode: truncated buffer");
  }
  std::memcpy(data, *cursor, size);
  *cursor += size;
}

inline void PutU32(std::uint32_t value, std::string* out) {
  PutRaw(&value, sizeof(value), out);
}

inline std::uint32_t GetU32(const char** cursor, const char* end) {
  std::uint32_t value = 0;
  GetRaw(cursor, end, &value, sizeof(value));
  return value;
}

inline void PutU64(std::uint64_t value, std::string* out) {
  PutRaw(&value, sizeof(value), out);
}

inline std::uint64_t GetU64(const char** cursor, const char* end) {
  std::uint64_t value = 0;
  GetRaw(cursor, end, &value, sizeof(value));
  return value;
}

}  // namespace serde

/// Primary template: intentionally undefined. Specializations provide
/// `static void Encode(const T&, std::string*)` and
/// `static T Decode(const char**, const char*)`.
template <typename T>
struct SpillCodec;

template <typename T>
  requires std::is_arithmetic_v<T>
struct SpillCodec<T> {
  static void Encode(const T& value, std::string* out) {
    serde::PutRaw(&value, sizeof(T), out);
  }
  static T Decode(const char** cursor, const char* end) {
    T value{};
    serde::GetRaw(cursor, end, &value, sizeof(T));
    return value;
  }
};

template <>
struct SpillCodec<std::string> {
  static void Encode(const std::string& value, std::string* out) {
    serde::PutU32(static_cast<std::uint32_t>(value.size()), out);
    out->append(value);
  }
  static std::string Decode(const char** cursor, const char* end) {
    std::uint32_t size = serde::GetU32(cursor, end);
    if (static_cast<std::size_t>(end - *cursor) < size) {
      common::ThrowError(common::ErrorCode::kInternal,
                         "spill decode: truncated string");
    }
    std::string value(*cursor, size);
    *cursor += size;
    return value;
  }
};

template <>
struct SpillCodec<item::ItemPtr> {
  static void Encode(const item::ItemPtr& value, std::string* out) {
    item::EncodeItem(value, out);
  }
  static item::ItemPtr Decode(const char** cursor, const char* end) {
    return item::DecodeItem(cursor, end);
  }
};

/// True when T can be spilled. Evaluated per Rdd<T> instantiation to gate
/// every charge/spill path at compile time.
template <typename T>
concept HasSpillCodec =
    requires(const T& value, std::string* out, const char** cursor,
             const char* end) {
      SpillCodec<T>::Encode(value, out);
      { SpillCodec<T>::Decode(cursor, end) } -> std::same_as<T>;
    };

template <typename A, typename B>
  requires HasSpillCodec<A> && HasSpillCodec<B>
struct SpillCodec<std::pair<A, B>> {
  static void Encode(const std::pair<A, B>& value, std::string* out) {
    SpillCodec<A>::Encode(value.first, out);
    SpillCodec<B>::Encode(value.second, out);
  }
  static std::pair<A, B> Decode(const char** cursor, const char* end) {
    A first = SpillCodec<A>::Decode(cursor, end);
    B second = SpillCodec<B>::Decode(cursor, end);
    return {std::move(first), std::move(second)};
  }
};

template <typename T>
  requires HasSpillCodec<T>
struct SpillCodec<std::vector<T>> {
  static void Encode(const std::vector<T>& value, std::string* out) {
    serde::PutU64(value.size(), out);
    for (const T& element : value) SpillCodec<T>::Encode(element, out);
  }
  static std::vector<T> Decode(const char** cursor, const char* end) {
    std::uint64_t count = serde::GetU64(cursor, end);
    std::vector<T> value;
    value.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      value.push_back(SpillCodec<T>::Decode(cursor, end));
    }
    return value;
  }
};

/// Encodes a whole vector as one blob (the common spill unit).
template <typename T>
  requires HasSpillCodec<T>
std::string EncodeSpillBlob(const std::vector<T>& values) {
  std::string blob;
  SpillCodec<std::vector<T>>::Encode(values, &blob);
  return blob;
}

template <typename T>
  requires HasSpillCodec<T>
std::vector<T> DecodeSpillBlob(const std::string& blob) {
  const char* cursor = blob.data();
  const char* end = blob.data() + blob.size();
  return SpillCodec<std::vector<T>>::Decode(&cursor, end);
}

}  // namespace rumble::spark

#endif  // RUMBLE_SPARK_SPILL_CODEC_H_
