#ifndef RUMBLE_SPARK_RDD_H_
#define RUMBLE_SPARK_RDD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/exec/cancellation.h"
#include "src/exec/executor_pool.h"
#include "src/exec/memory_manager.h"
#include "src/exec/once.h"
#include "src/exec/spill_file.h"
#include "src/obs/event_bus.h"
#include "src/spark/spill_codec.h"

namespace rumble::spark {

class Context;
exec::ExecutorPool& PoolOf(Context* context);
obs::EventBus& BusOf(Context* context);
obs::Tracer& TracerOf(Context* context);
exec::MemoryManager& MemoryOf(Context* context);
exec::CancellationToken& CancelOf(Context* context);
/// The context's fault injector, or nullptr when no fault spec is active.
/// Threaded into SpillFile so the io.* storage fault domain covers every
/// spill consumer (docs/FAULT_TOLERANCE.md).
exec::FaultInjector* InjectorOf(Context* context);

/// Executor-loss listener registry (defined in context.cc; declared here so
/// the templated RDD/shuffle code can register invalidation hooks without
/// the full Context definition). The listener receives the lost executor id.
int RegisterExecutorLossListener(Context* context,
                                 std::function<void(int)> listener);
void UnregisterExecutorLossListener(Context* context, int token);

namespace internal {

/// Rows per encoded blob when a sort run or cached partition is spilled in
/// chunks — bounds the memory a streaming merge or partial read touches.
inline constexpr std::size_t kSpillChunkRows = 4096;

/// Shared state of one RDD: a partition count and a thunk computing each
/// partition. Narrow transformations chain thunks, so a map-filter-map
/// pipeline executes in one pass over each partition without materializing
/// intermediates — the property that makes the paper's expression-to-
/// transformation mapping cheap. Wide operations (groupBy, sortBy) install a
/// lazily executed shuffle guarded by exec::RetryableOnce (exception-safe, exec/once.h).
///
/// When T has a SpillCodec, a cached RddState is also a memory-manager
/// Spillable: materialized partitions are charged against the pool and the
/// manager may evict the least-recently-read ones to disk under pressure
/// (docs/MEMORY.md). A spilled partition is restored from its file on read;
/// if the file was deleted out from under it, the partition is recomputed
/// from lineage exactly like an executor loss.
template <typename T>
struct RddState : exec::Spillable {
  Context* context = nullptr;
  int num_partitions = 0;
  std::function<std::vector<T>(int)> compute;

  // Cache support (Rdd::Cache). The same once/atomic discipline as shuffles:
  // RetryableOnce guarantees exactly one thread materializes `cached` (and,
  // unlike std::call_once, survives the initializer throwing — spill faults
  // inside the build are retried, exec/once.h), and the acquire/release flag
  // publishes it to threads that never entered the once (they must not touch
  // `cached` before the flag is set).
  bool cache_enabled = false;
  exec::RetryableOnce cache_once;
  std::atomic<bool> cache_materialized{false};
  std::vector<std::vector<T>> cached;

  // Lineage recovery (docs/FAULT_TOLERANCE.md). Each cached partition
  // records the executor that built it; an executor loss marks those
  // partitions invalid and the next access recomputes them from `compute`
  // (the lineage). Two locks with disjoint jobs: `cache_mu` guards the
  // partition *data* (shared for reads, unique while repairing), while the
  // short-lived `cache_meta_mu` guards the invalidation metadata — the loss
  // listener only ever takes the latter, so it can never deadlock against a
  // repair that is recomputing partitions while holding `cache_mu`.
  std::shared_mutex cache_mu;
  std::mutex cache_meta_mu;
  std::vector<int> cache_executor;     // builder executor per partition
  std::vector<char> cache_invalid;     // 1 = lost, awaiting recompute
  std::atomic<bool> cache_has_invalid{false};
  int loss_token = -1;

  // Cache eviction (docs/MEMORY.md). `cache_spill`/`cache_seg`/`cache_charge`
  // are guarded by `cache_mu`; `cache_tick` (LRU stamps) by `cache_meta_mu`;
  // `spillable_bytes` mirrors the sum of charges so SpillableBytes() needs no
  // lock. `manager` is set (and the Spillable registered) only after the
  // cache materializes under an enforcing limit.
  exec::MemoryManager* manager = nullptr;
  std::vector<std::unique_ptr<exec::SpillFile>> cache_spill;
  std::vector<exec::SpillSegment> cache_seg;
  std::vector<std::uint64_t> cache_charge;
  std::vector<std::uint64_t> cache_tick;
  std::atomic<std::uint64_t> tick_counter{0};
  std::atomic<std::uint64_t> spillable_bytes{0};
  int spill_token = -1;

  const char* SpillLabel() const override { return "rdd.cache"; }

  std::uint64_t SpillableBytes() const override {
    return spillable_bytes.load(std::memory_order_acquire);
  }

  /// Evicts least-recently-read in-memory partitions to disk until `want`
  /// bytes are freed. Called by the MemoryManager under its registry lock, so
  /// it must not re-enter Reserve; it releases the evicted charges itself.
  /// Uses try_lock: if readers or a repair hold the cache, nothing is freed
  /// (the manager moves on to the next victim).
  std::uint64_t SpillBytes(std::uint64_t want) override {
    if constexpr (HasSpillCodec<T>) {
      std::unique_lock<std::shared_mutex> lock(cache_mu, std::try_to_lock);
      if (!lock.owns_lock() || manager == nullptr) return 0;
      obs::EventBus& bus = BusOf(context);
      std::uint64_t freed = 0;
      while (freed < want) {
        // Pick the charged partition with the oldest LRU stamp.
        std::size_t victim = cache_charge.size();
        std::uint64_t oldest = 0;
        {
          std::lock_guard<std::mutex> meta(cache_meta_mu);
          for (std::size_t p = 0; p < cache_charge.size(); ++p) {
            if (cache_charge[p] == 0) continue;
            if (victim == cache_charge.size() || cache_tick[p] < oldest) {
              victim = p;
              oldest = cache_tick[p];
            }
          }
        }
        if (victim == cache_charge.size()) break;  // nothing left in memory
        auto& file = cache_spill[victim];
        if (file == nullptr) {
          file = std::make_unique<exec::SpillFile>(&BusOf(context),
                                                   InjectorOf(context));
        }
        if (!file->ok()) break;
        std::string blob = EncodeSpillBlob(cached[victim]);
        exec::SpillSegment seg;
        try {
          seg = file->Append(blob, cached[victim].size());
        } catch (const std::exception&) {
          // Forced eviction runs under the MemoryManager's locks and must
          // not throw: a failed/denied spill write just means this victim
          // stays in memory and we report what was actually freed. The
          // requester whose reservation forced the spill then surfaces the
          // resource pressure as its own typed error.
          break;
        }
        cache_seg[victim] = seg;
        std::uint64_t charge = cache_charge[victim];
        cache_charge[victim] = 0;
        spillable_bytes.fetch_sub(charge, std::memory_order_acq_rel);
        cached[victim].clear();
        cached[victim].shrink_to_fit();
        manager->Release(charge);
        freed += charge;
        bus.AddToCounter("rdd.cache.evicted", 1);
        bus.AddToCounter("spill.files", 1);
        bus.AddToCounter("spill.bytes_written",
                         static_cast<std::int64_t>(blob.size()));
        bus.Spilled("rdd.cache", static_cast<std::int64_t>(blob.size()));
      }
      return freed;
    } else {
      (void)want;
      return 0;
    }
  }

  ~RddState() override {
    // Synchronizes with in-flight NotifyExecutorLost calls (registry lock),
    // so the listener's raw `this` capture never dangles. Likewise the
    // Spillable registration: after UnregisterSpillable returns, no forced
    // spill can be mid-flight in this object.
    if (loss_token >= 0) UnregisterExecutorLossListener(context, loss_token);
    if (manager != nullptr) {
      if (spill_token >= 0) manager->UnregisterSpillable(spill_token);
      for (std::uint64_t charge : cache_charge) {
        if (charge > 0) manager->Release(charge);
      }
    }
  }
};

}  // namespace internal

/// Resilient-Distributed-Dataset stand-in (DESIGN.md §1): an immutable,
/// lazily computed, partitioned collection. Values are copied into actions'
/// results; thunks capture parents by shared_ptr so RDD lineage is a DAG of
/// shared states, as in Spark.
template <typename T>
class Rdd {
 public:
  Rdd() = default;

  /// Constructs a source RDD from a per-partition compute function.
  Rdd(Context* context, int num_partitions,
      std::function<std::vector<T>(int)> compute) {
    state_ = std::make_shared<internal::RddState<T>>();
    state_->context = context;
    state_->num_partitions = num_partitions;
    state_->compute = std::move(compute);
  }

  bool valid() const { return state_ != nullptr; }
  int num_partitions() const { return state_->num_partitions; }
  Context* context() const { return state_->context; }

  /// Computes one partition (honouring the cache).
  std::vector<T> ComputePartition(int index) const {
    return Compute(state_, index);
  }

  // ---- Narrow transformations (pipelined, no shuffle) -----------------

  template <typename F>
  auto Map(F fn) const {
    using U = std::invoke_result_t<F, const T&>;
    auto parent = state_;
    return Rdd<U>(parent->context, parent->num_partitions,
                  [parent, fn](int index) {
                    std::vector<T> input = Compute(parent, index);
                    std::vector<U> out;
                    out.reserve(input.size());
                    for (const T& value : input) out.push_back(fn(value));
                    return out;
                  });
  }

  template <typename F>
  auto FlatMap(F fn) const {
    using Seq = std::invoke_result_t<F, const T&>;
    using U = typename Seq::value_type;
    auto parent = state_;
    return Rdd<U>(parent->context, parent->num_partitions,
                  [parent, fn](int index) {
                    std::vector<T> input = Compute(parent, index);
                    std::vector<U> out;
                    for (const T& value : input) {
                      Seq expanded = fn(value);
                      for (auto& item : expanded) {
                        out.push_back(std::move(item));
                      }
                    }
                    return out;
                  });
  }

  template <typename F>
  Rdd<T> Filter(F predicate) const {
    auto parent = state_;
    return Rdd<T>(parent->context, parent->num_partitions,
                  [parent, predicate](int index) {
                    std::vector<T> input = Compute(parent, index);
                    std::vector<T> out;
                    for (T& value : input) {
                      if (predicate(static_cast<const T&>(value))) {
                        out.push_back(std::move(value));
                      }
                    }
                    return out;
                  });
  }

  /// mapPartitions: one call per partition; the paper's json-file() uses it
  /// to parse each text partition into items in a single pass.
  template <typename F>
  auto MapPartitions(F fn) const {
    using Seq = std::invoke_result_t<F, std::vector<T>&&>;
    using U = typename Seq::value_type;
    auto parent = state_;
    return Rdd<U>(parent->context, parent->num_partitions,
                  [parent, fn](int index) {
                    return fn(Compute(parent, index));
                  });
  }

  Rdd<T> Union(const Rdd<T>& other) const {
    auto left = state_;
    auto right = other.state_;
    int left_parts = left->num_partitions;
    return Rdd<T>(left->context, left_parts + right->num_partitions,
                  [left, right, left_parts](int index) {
                    if (index < left_parts) return Compute(left, index);
                    return Compute(right, index - left_parts);
                  });
  }

  // ---- Caching ---------------------------------------------------------

  /// Marks this RDD as cached: the first action materializes all partitions
  /// once; later computations reuse them.
  Rdd<T> Cache() const {
    state_->cache_enabled = true;
    return *this;
  }

  // ---- Wide transformations (shuffle) -----------------------------------

  /// Groups elements by key. KeyFn: const T& -> K. Hash/Eq are functors over
  /// K. The result has `output_partitions` partitions; each output element
  /// is a (key, values) pair. Implemented as a real two-phase shuffle: a
  /// parallel map phase buckets each input partition by key hash, then each
  /// reduce task groups its bucket — mirroring Spark's groupByKey.
  template <typename K, typename KeyFn, typename Hash, typename Eq>
  Rdd<std::pair<K, std::vector<T>>> GroupBy(KeyFn key_fn, Hash hash, Eq eq,
                                            int output_partitions) const {
    auto parent = state_;
    Context* context = parent->context;
    if (output_partitions < 1) output_partitions = parent->num_partitions;

    struct Shuffle {
      exec::RetryableOnce once;
      // buckets[reduce][input partition] -> (key, value) pairs.
      std::vector<std::vector<std::vector<std::pair<K, T>>>> buckets;
      // Lineage recovery: the executor that ran each map task, and which map
      // outputs an executor loss invalidated. Same two-lock split as the RDD
      // cache — `data_mu` guards the bucket payloads, the short-lived
      // `meta_mu` guards the invalidation metadata (all the loss listener
      // touches).
      std::shared_mutex data_mu;
      std::mutex meta_mu;
      std::vector<int> map_executor;   // per input partition
      std::vector<char> invalid;       // 1 = map output lost
      std::atomic<bool> has_invalid{false};
      Context* context = nullptr;
      int loss_token = -1;
      // Memory governance (docs/MEMORY.md): the map outputs are either
      // charged against the pool (`charged` > 0) or spilled to one file —
      // spilled_segs[input][reduce] holds each bucket's segment (size 0 =
      // bucket still in memory). Guarded by data_mu like the buckets.
      exec::MemoryManager* manager = nullptr;
      std::uint64_t charged = 0;
      std::unique_ptr<exec::SpillFile> spill;
      std::vector<std::vector<exec::SpillSegment>> spilled_segs;
      ~Shuffle() {
        if (loss_token >= 0) {
          UnregisterExecutorLossListener(context, loss_token);
        }
        if (manager != nullptr && charged > 0) manager->Release(charged);
      }
    };
    auto shuffle = std::make_shared<Shuffle>();
    shuffle->context = context;
    int n_out = output_partitions;

    auto ensure_shuffled = [parent, context, shuffle, key_fn, hash, n_out]() {
      shuffle->once.Call([&] {
        // Exchange span: covers the map stage plus the driver-side byte
        // accounting; the map stage's span nests inside it implicitly.
        obs::ScopedSpan exchange_span(&TracerOf(context), "operator",
                                      "shuffle.groupBy.exchange");
        int n_in = parent->num_partitions;
        shuffle->buckets.assign(
            static_cast<std::size_t>(n_out),
            std::vector<std::vector<std::pair<K, T>>>(
                static_cast<std::size_t>(n_in)));
        shuffle->map_executor.assign(static_cast<std::size_t>(n_in), -1);
        shuffle->invalid.assign(static_cast<std::size_t>(n_in), 0);
        // The shuffle map phase is its own stage — this is exactly where a
        // Spark stage boundary forms.
        PoolOf(context).RunParallel(
            static_cast<std::size_t>(n_in),
            [&](std::size_t input_index) {
              std::vector<T> input =
                  Compute(parent, static_cast<int>(input_index));
              for (T& value : input) {
                K key = key_fn(static_cast<const T&>(value));
                std::size_t reduce =
                    hash(key) % static_cast<std::size_t>(n_out);
                shuffle->buckets[reduce][input_index].emplace_back(
                    std::move(key), std::move(value));
              }
              shuffle->map_executor[input_index] =
                  exec::ExecutorPool::CurrentExecutor();
            },
            nullptr, "shuffle.groupBy.map");
        std::int64_t records = 0;
        std::int64_t bytes = 0;
        for (const auto& reduce_buckets : shuffle->buckets) {
          for (const auto& bucket : reduce_buckets) {
            records += static_cast<std::int64_t>(bucket.size());
            for (const auto& entry : bucket) {
              bytes += static_cast<std::int64_t>(obs::ApproxByteSize(entry));
            }
          }
        }
        obs::EventBus& bus = BusOf(context);
        bus.AddToCounter("shuffle.records_written", records);
        bus.AddToCounter("shuffle.bytes_written", bytes);
        // Memory governance: try to hold the map outputs in memory under a
        // tracked reservation; when the pool denies the grant (even after
        // forcing other consumers to spill), spill every bucket to one file
        // and serve reduce tasks from disk.
        if constexpr (HasSpillCodec<std::pair<K, T>>) {
          exec::MemoryManager& memory = MemoryOf(context);
          if (memory.enforcing() && bytes > 0) {
            shuffle->manager = &memory;
            if (memory.TryReserve(static_cast<std::uint64_t>(bytes))) {
              shuffle->charged = static_cast<std::uint64_t>(bytes);
            } else {
              obs::ScopedSpan spill_span(&TracerOf(context), "operator",
                                         "spill.write");
              shuffle->spill = std::make_unique<exec::SpillFile>(
                  &bus, InjectorOf(context));
              if (shuffle->spill->ok()) {
                shuffle->spilled_segs.assign(
                    static_cast<std::size_t>(n_in),
                    std::vector<exec::SpillSegment>(
                        static_cast<std::size_t>(n_out)));
                std::int64_t spilled_bytes = 0;
                for (std::size_t i = 0; i < static_cast<std::size_t>(n_in);
                     ++i) {
                  for (std::size_t r = 0; r < static_cast<std::size_t>(n_out);
                       ++r) {
                    auto& bucket = shuffle->buckets[r][i];
                    if (bucket.empty()) continue;
                    std::string blob = EncodeSpillBlob(bucket);
                    // Append throws a typed error (kResourceExhausted /
                    // kIoError) when the disk cannot take the frame: the
                    // memory pool already denied this data, so there is no
                    // correct fallback and the query fails cleanly.
                    exec::SpillSegment seg =
                        shuffle->spill->Append(blob, bucket.size());
                    shuffle->spilled_segs[i][r] = seg;
                    spilled_bytes += static_cast<std::int64_t>(blob.size());
                    bucket.clear();
                    bucket.shrink_to_fit();
                  }
                }
                spill_span.AddArg("bytes", spilled_bytes);
                bus.AddToCounter("spill.files", 1);
                bus.AddToCounter("spill.bytes_written", spilled_bytes);
                bus.Spilled("shuffle.groupBy.map", spilled_bytes);
              } else {
                shuffle->spill.reset();  // creation failed: stay in memory
              }
            }
          }
        }
        // Losing an executor loses the map outputs it produced; reduce tasks
        // repair them from lineage before reading.
        Shuffle* raw = shuffle.get();
        shuffle->loss_token = RegisterExecutorLossListener(
            context, [raw, context](int executor) {
              std::int64_t invalidated = 0;
              {
                std::lock_guard<std::mutex> meta(raw->meta_mu);
                for (std::size_t p = 0; p < raw->map_executor.size(); ++p) {
                  if (raw->map_executor[p] == executor &&
                      raw->invalid[p] == 0) {
                    raw->invalid[p] = 1;
                    ++invalidated;
                  }
                }
                if (invalidated > 0) {
                  raw->has_invalid.store(true, std::memory_order_release);
                }
              }
              if (invalidated > 0) {
                BusOf(context).AddToCounter("shuffle.map_invalidated",
                                            invalidated);
              }
            });
      });
    };

    // Rebuilds lost map outputs from lineage (recompute the input partition,
    // re-bucket it), exactly once per loss: the first reduce task drains the
    // invalid set; the rest block on the data lock and then read repaired
    // buckets.
    auto repair = [parent, context, shuffle, key_fn, hash, n_out]() {
      if (!shuffle->has_invalid.load(std::memory_order_acquire)) return;
      std::unique_lock<std::shared_mutex> data_lock(shuffle->data_mu);
      std::vector<std::size_t> to_repair;
      {
        std::lock_guard<std::mutex> meta(shuffle->meta_mu);
        if (!shuffle->has_invalid.load(std::memory_order_acquire)) return;
        for (std::size_t p = 0; p < shuffle->invalid.size(); ++p) {
          if (shuffle->invalid[p] != 0) {
            to_repair.push_back(p);
            shuffle->invalid[p] = 0;
          }
        }
        shuffle->has_invalid.store(false, std::memory_order_release);
      }
      obs::EventBus& bus = BusOf(context);
      obs::ScopedSpan repair_span(&TracerOf(context), "operator",
                                  "shuffle.groupBy.repair");
      repair_span.AddArg("partitions",
                         static_cast<std::int64_t>(to_repair.size()));
      for (std::size_t input_index : to_repair) {
        for (int r = 0; r < n_out; ++r) {
          shuffle->buckets[static_cast<std::size_t>(r)][input_index].clear();
        }
        // The recomputed buckets supersede any spilled copy of this input.
        if (!shuffle->spilled_segs.empty()) {
          for (auto& seg : shuffle->spilled_segs[input_index]) {
            seg = exec::SpillSegment{};
          }
        }
        std::vector<T> input =
            Compute(parent, static_cast<int>(input_index));
        for (T& value : input) {
          K key = key_fn(static_cast<const T&>(value));
          std::size_t reduce = hash(key) % static_cast<std::size_t>(n_out);
          shuffle->buckets[reduce][input_index].emplace_back(
              std::move(key), std::move(value));
        }
        {
          std::lock_guard<std::mutex> meta(shuffle->meta_mu);
          shuffle->map_executor[input_index] =
              exec::ExecutorPool::CurrentExecutor();
        }
        bus.PartitionRecomputed("shuffle.groupBy.map",
                                static_cast<std::int64_t>(input_index));
        bus.AddToCounter("partition.recomputed", 1);
      }
    };

    return Rdd<std::pair<K, std::vector<T>>>(
        context, n_out,
        [ensure_shuffled, repair, shuffle, context, eq, hash](int index) {
          ensure_shuffled();
          repair();
          std::shared_lock<std::shared_mutex> data_lock(shuffle->data_mu);
          obs::EventBus& bus = BusOf(context);
          // Gather this reduce partition's input buckets: in-memory ones are
          // referenced in place, spilled ones are restored from the spill
          // file (the restored copies live in `restored`, reserved up front
          // so the pointers stay stable).
          auto& reduce_buckets = shuffle->buckets[static_cast<std::size_t>(index)];
          std::vector<std::vector<std::pair<K, T>>> restored;
          std::vector<std::vector<std::pair<K, T>>*> inputs;
          restored.reserve(reduce_buckets.size());
          inputs.reserve(reduce_buckets.size());
          for (std::size_t i = 0; i < reduce_buckets.size(); ++i) {
            if constexpr (HasSpillCodec<std::pair<K, T>>) {
              if (!shuffle->spilled_segs.empty()) {
                const exec::SpillSegment& seg =
                    shuffle->spilled_segs[i][static_cast<std::size_t>(index)];
                if (seg.size > 0) {
                  std::string blob;
                  exec::SpillReadStatus rs =
                      shuffle->spill->ReadVerified(seg, &blob);
                  if (rs != exec::SpillReadStatus::kOk) {
                    // The frame is unusable (deleted file, torn or corrupt
                    // frame): invalidate the producing map output(s) and
                    // fail this attempt with a retryable fault — the
                    // retry's repair() recomputes them from lineage
                    // exactly once, as for a lost executor.
                    std::int64_t invalidated = 0;
                    {
                      std::lock_guard<std::mutex> meta(shuffle->meta_mu);
                      auto mark = [&](std::size_t input) {
                        if (shuffle->invalid[input] == 0) {
                          shuffle->invalid[input] = 1;
                          ++invalidated;
                        }
                      };
                      if (rs == exec::SpillReadStatus::kMissing) {
                        // Whole file gone: every spilled map output is lost.
                        for (std::size_t p = 0;
                             p < shuffle->spilled_segs.size(); ++p) {
                          for (const auto& s : shuffle->spilled_segs[p]) {
                            if (s.size > 0) {
                              mark(p);
                              break;
                            }
                          }
                        }
                      } else {
                        mark(i);
                      }
                      if (invalidated > 0) {
                        shuffle->has_invalid.store(true,
                                                   std::memory_order_release);
                      }
                    }
                    if (invalidated > 0) {
                      bus.AddToCounter("shuffle.map_invalidated", invalidated);
                    }
                    throw exec::TransientTaskFault(
                        std::string("shuffle map output unreadable (") +
                        exec::SpillReadStatusName(rs) + "): " +
                        shuffle->spill->path());
                  }
                  bus.AddToCounter("spill.bytes_read",
                                   static_cast<std::int64_t>(blob.size()));
                  restored.push_back(
                      DecodeSpillBlob<std::pair<K, T>>(blob));
                  inputs.push_back(&restored.back());
                  continue;
                }
              }
            }
            inputs.push_back(&reduce_buckets[i]);
          }
          // Account what this reduce task pulls from the map outputs.
          std::int64_t records_read = 0;
          std::int64_t bytes_read = 0;
          for (const auto* input_bucket : inputs) {
            records_read += static_cast<std::int64_t>(input_bucket->size());
            for (const auto& entry : *input_bucket) {
              bytes_read +=
                  static_cast<std::int64_t>(obs::ApproxByteSize(entry));
            }
          }
          bus.AddToCounter("shuffle.records_read", records_read);
          bus.AddToCounter("shuffle.bytes_read", bytes_read);
          // Group this reduce bucket. Keys within one bucket are grouped
          // with a hash index; order of groups is unspecified (as in Spark).
          std::vector<std::pair<K, std::vector<T>>> groups;
          std::unordered_multimap<std::size_t, std::size_t> by_hash;
          for (auto* input_bucket_ptr : inputs) {
            for (auto& [key, value] : *input_bucket_ptr) {
              std::size_t h = hash(key);
              std::vector<T>* values = nullptr;
              auto [begin, end] = by_hash.equal_range(h);
              for (auto it = begin; it != end; ++it) {
                if (eq(groups[it->second].first, key)) {
                  values = &groups[it->second].second;
                  break;
                }
              }
              if (values == nullptr) {
                by_hash.emplace(h, groups.size());
                groups.emplace_back(std::move(key), std::vector<T>{});
                values = &groups.back().second;
              }
              values->push_back(std::move(value));
            }
          }
          return groups;
        });
  }

  /// Globally sorts by a comparator. Implemented as: parallel per-partition
  /// sort, then a sequential k-way merge, re-split into the original number
  /// of partitions (range partitioning, like Spark's sortBy after sampling).
  ///
  /// Recovery note: the merged output lives in driver memory (the k-way
  /// merge runs on the driver), so an executor loss cannot invalidate it —
  /// only cached partitions and groupBy map outputs track executor locality
  /// (docs/FAULT_TOLERANCE.md).
  template <typename Less>
  Rdd<T> SortBy(Less less) const {
    auto parent = state_;
    Context* context = parent->context;
    int n_parts = parent->num_partitions;

    struct Sorted {
      exec::RetryableOnce once;
      std::vector<T> values;
      std::size_t total_rows = 0;
      // External-merge state (docs/MEMORY.md). When the pool denies the
      // reservation for the sorted runs, `spilled` flips on: runs are
      // written to `spill` in kSpillChunkRows chunks, merged streaming, and
      // the merged output's chunks (`out_segs`, in order, with row counts)
      // replace `values`.
      exec::MemoryManager* manager = nullptr;
      std::uint64_t charged = 0;
      bool spilled = false;
      std::unique_ptr<exec::SpillFile> spill;
      std::vector<exec::SpillSegment> out_segs;
      ~Sorted() {
        if (manager != nullptr && charged > 0) manager->Release(charged);
      }
    };
    auto sorted = std::make_shared<Sorted>();

    auto ensure_sorted = [parent, context, sorted, less, n_parts]() {
      sorted->once.Call([&]() {
        try {
        std::vector<std::vector<T>> runs(static_cast<std::size_t>(n_parts));
        PoolOf(context).RunParallel(
            static_cast<std::size_t>(n_parts),
            [&](std::size_t index) {
              std::vector<T> run = Compute(parent, static_cast<int>(index));
              std::stable_sort(run.begin(), run.end(), less);
              runs[index] = std::move(run);
            },
            nullptr, "shuffle.sortBy.map");
        obs::EventBus& bus = BusOf(context);
        exec::CancellationToken& cancel = CancelOf(context);
        std::size_t total = 0;
        for (const auto& run : runs) total += run.size();
        sorted->total_rows = total;

        // Memory governance: hold the sorted data under a tracked
        // reservation, or fall back to an external merge sort on disk.
        if constexpr (HasSpillCodec<T>) {
          exec::MemoryManager& memory = MemoryOf(context);
          if (memory.enforcing() && total > 0) {
            std::uint64_t bytes = 0;
            for (const auto& run : runs) {
              for (const T& value : run) {
                bytes += static_cast<std::uint64_t>(obs::ApproxByteSize(value));
              }
            }
            sorted->manager = &memory;
            if (memory.TryReserve(bytes)) {
              sorted->charged = bytes;
            } else {
              sorted->spill = std::make_unique<exec::SpillFile>(
                  &bus, InjectorOf(context));
              if (sorted->spill->ok()) {
                sorted->spilled = true;
              } else {
                sorted->spill.reset();  // creation failed: merge in memory
              }
            }
          }
          if (sorted->spilled) {
            // External merge sort: write each sorted run to disk in chunks,
            // then stream a k-way merge holding one chunk per run plus one
            // output chunk — memory stays bounded by
            // (runs + 1) * kSpillChunkRows rows regardless of input size.
            obs::ScopedSpan merge_span(&TracerOf(context), "operator",
                                       "spill.merge");
            std::int64_t written = 0;
            std::vector<std::vector<exec::SpillSegment>> run_segs(runs.size());
            for (std::size_t r = 0; r < runs.size(); ++r) {
              auto& run = runs[r];
              for (std::size_t begin = 0; begin < run.size();
                   begin += internal::kSpillChunkRows) {
                std::size_t count =
                    std::min(internal::kSpillChunkRows, run.size() - begin);
                std::vector<T> chunk(
                    std::make_move_iterator(run.begin() +
                                            static_cast<std::ptrdiff_t>(begin)),
                    std::make_move_iterator(
                        run.begin() +
                        static_cast<std::ptrdiff_t>(begin + count)));
                std::string blob = EncodeSpillBlob(chunk);
                // Append throws kResourceExhausted/kIoError on failure; the
                // catch below then unwinds the half-built sort state.
                exec::SpillSegment seg = sorted->spill->Append(blob, count);
                run_segs[r].push_back(seg);
                written += static_cast<std::int64_t>(blob.size());
              }
              run.clear();
              run.shrink_to_fit();
            }
            struct RunCursor {
              std::size_t seg = 0;
              std::size_t pos = 0;
              std::vector<T> chunk;
            };
            std::vector<RunCursor> cursors(runs.size());
            auto refill = [&](std::size_t r) -> bool {
              RunCursor& c = cursors[r];
              while (c.pos >= c.chunk.size()) {
                if (c.seg >= run_segs[r].size()) return false;
                std::string blob;
                exec::SpillReadStatus rs =
                    sorted->spill->ReadVerified(run_segs[r][c.seg], &blob);
                if (rs != exec::SpillReadStatus::kOk) {
                  // Retryable: the catch below resets the sort state and the
                  // task-attempt scheduler re-runs the whole sort, which
                  // rewrites the runs from lineage.
                  throw exec::TransientTaskFault(
                      std::string("sort run unreadable (") +
                      exec::SpillReadStatusName(rs) + "): " +
                      sorted->spill->path());
                }
                bus.AddToCounter("spill.bytes_read",
                                 static_cast<std::int64_t>(blob.size()));
                c.chunk = DecodeSpillBlob<T>(blob);
                c.pos = 0;
                ++c.seg;
              }
              return true;
            };
            std::vector<T> out_chunk;
            out_chunk.reserve(std::min(internal::kSpillChunkRows, total));
            auto flush = [&]() {
              if (out_chunk.empty()) return;
              std::string blob = EncodeSpillBlob(out_chunk);
              exec::SpillSegment seg =
                  sorted->spill->Append(blob, out_chunk.size());
              sorted->out_segs.push_back(seg);
              written += static_cast<std::int64_t>(blob.size());
              out_chunk.clear();
            };
            std::size_t merged = 0;
            while (merged < total) {
              // Cancellation point: this single-threaded merge can dominate
              // wall time, so poll between batches of rows.
              if ((merged & 0x1FFF) == 0) cancel.Check();
              int best = -1;
              for (std::size_t r = 0; r < cursors.size(); ++r) {
                if (!refill(r)) continue;
                if (best < 0 ||
                    less(cursors[r].chunk[cursors[r].pos],
                         cursors[static_cast<std::size_t>(best)]
                             .chunk[cursors[static_cast<std::size_t>(best)]
                                        .pos])) {
                  best = static_cast<int>(r);
                }
              }
              auto b = static_cast<std::size_t>(best);
              out_chunk.push_back(std::move(cursors[b].chunk[cursors[b].pos]));
              ++cursors[b].pos;
              ++merged;
              if (out_chunk.size() >= internal::kSpillChunkRows) flush();
            }
            flush();
            merge_span.AddArg("rows", static_cast<std::int64_t>(total));
            merge_span.AddArg("bytes", written);
            bus.AddToCounter("sort.records", static_cast<std::int64_t>(total));
            bus.AddToCounter("spill.files", 1);
            bus.AddToCounter("spill.bytes_written", written);
            bus.Spilled("shuffle.sortBy.merge", written);
            return;
          }
        }

        // Sequential k-way merge (driver-side, like a final single-reducer
        // merge); stable across runs by taking the earliest run on ties.
        obs::ScopedSpan merge_span(&TracerOf(context), "operator",
                                   "shuffle.sortBy.merge");
        sorted->values.reserve(total);
        std::vector<std::size_t> cursor(runs.size(), 0);
        while (sorted->values.size() < total) {
          if ((sorted->values.size() & 0x1FFF) == 0) cancel.Check();
          int best = -1;
          for (std::size_t r = 0; r < runs.size(); ++r) {
            if (cursor[r] >= runs[r].size()) continue;
            if (best < 0 ||
                less(runs[r][cursor[r]],
                     runs[static_cast<std::size_t>(best)]
                         [cursor[static_cast<std::size_t>(best)]])) {
              best = static_cast<int>(r);
            }
          }
          auto b = static_cast<std::size_t>(best);
          sorted->values.push_back(std::move(runs[b][cursor[b]]));
          ++cursor[b];
        }
        BusOf(context).AddToCounter(
            "sort.records", static_cast<std::int64_t>(sorted->values.size()));
        merge_span.AddArg("rows",
                          static_cast<std::int64_t>(sorted->values.size()));
        } catch (...) {
          // the once did not flip the flag, so a retried task re-runs the
          // sort from scratch: drop every half-built artifact (reservation,
          // spill file, merged chunks) so the retry cannot double-charge the
          // pool or merge stale runs.
          if (sorted->manager != nullptr && sorted->charged > 0) {
            sorted->manager->Release(sorted->charged);
          }
          sorted->manager = nullptr;
          sorted->charged = 0;
          sorted->spilled = false;
          sorted->spill.reset();
          sorted->out_segs.clear();
          sorted->values.clear();
          sorted->total_rows = 0;
          throw;
        }
      });
    };

    return Rdd<T>(
        context, n_parts, [ensure_sorted, sorted, n_parts, context](int index) {
          ensure_sorted();
          std::size_t total = sorted->total_rows;
          auto parts = static_cast<std::size_t>(n_parts);
          std::size_t chunk = total / parts;
          std::size_t remainder = total % parts;
          auto idx = static_cast<std::size_t>(index);
          std::size_t begin = idx * chunk + std::min(idx, remainder);
          std::size_t size = chunk + (idx < remainder ? 1 : 0);
          if constexpr (HasSpillCodec<T>) {
            if (sorted->spilled) {
              // Decode only the output chunks overlapping this partition's
              // global row range [begin, begin + size).
              obs::EventBus& bus = BusOf(context);
              std::vector<T> out;
              out.reserve(size);
              std::size_t row0 = 0;
              for (const exec::SpillSegment& seg : sorted->out_segs) {
                std::size_t row1 = row0 + static_cast<std::size_t>(seg.rows);
                if (row1 > begin && row0 < begin + size) {
                  std::string blob;
                  exec::SpillReadStatus rs =
                      sorted->spill->ReadVerified(seg, &blob);
                  if (rs != exec::SpillReadStatus::kOk) {
                    // The merged output chunk is unreadable; fail the task
                    // with a retryable error. Transient faults heal on the
                    // re-read; a truly lost file keeps failing and surfaces
                    // after max attempts — never as truncated output.
                    throw exec::TransientTaskFault(
                        std::string("sort output chunk unreadable (") +
                        exec::SpillReadStatusName(rs) + "): " +
                        sorted->spill->path());
                  }
                  bus.AddToCounter("spill.bytes_read",
                                   static_cast<std::int64_t>(blob.size()));
                  std::vector<T> decoded = DecodeSpillBlob<T>(blob);
                  std::size_t from = begin > row0 ? begin - row0 : 0;
                  std::size_t to = std::min(static_cast<std::size_t>(seg.rows),
                                            begin + size - row0);
                  for (std::size_t i = from; i < to; ++i) {
                    out.push_back(std::move(decoded[i]));
                  }
                }
                row0 = row1;
                if (row0 >= begin + size) break;
              }
              return out;
            }
          }
          return std::vector<T>(sorted->values.begin() +
                                    static_cast<std::ptrdiff_t>(begin),
                                sorted->values.begin() +
                                    static_cast<std::ptrdiff_t>(begin + size));
        });
  }

  /// zipWithIndex: pairs each element with its global position. Triggers a
  /// counting job over the parent (as Spark's does); the parent is cached
  /// first so it is not computed twice.
  Rdd<std::pair<T, std::int64_t>> ZipWithIndex() const {
    Rdd<T> cached = Cache();
    auto parent = cached.state_;
    Context* context = parent->context;
    int n_parts = parent->num_partitions;

    struct Offsets {
      exec::RetryableOnce once;
      std::vector<std::int64_t> starts;
    };
    auto offsets = std::make_shared<Offsets>();
    auto ensure_offsets = [parent, context, offsets, n_parts]() {
      offsets->once.Call([&] {
        std::vector<std::int64_t> sizes(static_cast<std::size_t>(n_parts), 0);
        PoolOf(context).RunParallel(
            static_cast<std::size_t>(n_parts),
            [&](std::size_t index) {
              sizes[index] = static_cast<std::int64_t>(
                  Compute(parent, static_cast<int>(index)).size());
            },
            nullptr, "rdd.zipWithIndex.count");
        offsets->starts.assign(static_cast<std::size_t>(n_parts), 0);
        std::int64_t running = 0;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
          offsets->starts[i] = running;
          running += sizes[i];
        }
      });
    };

    return Rdd<std::pair<T, std::int64_t>>(
        context, n_parts, [parent, ensure_offsets, offsets](int index) {
          ensure_offsets();
          std::vector<T> input = Compute(parent, index);
          std::vector<std::pair<T, std::int64_t>> out;
          out.reserve(input.size());
          std::int64_t next =
              offsets->starts[static_cast<std::size_t>(index)];
          for (T& value : input) {
            out.emplace_back(std::move(value), next++);
          }
          return out;
        });
  }

  // ---- Actions -----------------------------------------------------------

  std::vector<T> Collect() const {
    auto parent = state_;
    std::vector<std::vector<T>> parts(
        static_cast<std::size_t>(parent->num_partitions));
    PoolOf(parent->context)
        .RunParallel(
            parts.size(),
            [&](std::size_t index) {
              parts[index] = Compute(parent, static_cast<int>(index));
            },
            nullptr, "action.collect");
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    std::vector<T> out;
    out.reserve(total);
    for (auto& part : parts) {
      for (auto& value : part) out.push_back(std::move(value));
    }
    RUMBLE_METRICS_CHECK(out.size() == total,
                         "collect flattened a different number of rows than "
                         "its partitions produced");
    BusOf(parent->context)
        .AddToCounter("action.rows_out", static_cast<std::int64_t>(total));
    return out;
  }

  std::size_t Count() const {
    auto parent = state_;
    std::vector<std::size_t> sizes(
        static_cast<std::size_t>(parent->num_partitions), 0);
    PoolOf(parent->context)
        .RunParallel(
            sizes.size(),
            [&](std::size_t index) {
              sizes[index] = Compute(parent, static_cast<int>(index)).size();
            },
            nullptr, "action.count");
    std::size_t total = 0;
    for (std::size_t size : sizes) total += size;
    BusOf(parent->context)
        .AddToCounter("action.rows_out", static_cast<std::int64_t>(total));
    return total;
  }

  /// take(n): computes partitions in order until n elements are available.
  /// Sequential over partitions (like Spark's incremental take).
  std::vector<T> Take(std::size_t n) const {
    auto parent = state_;
    std::vector<T> out;
    for (int p = 0; p < parent->num_partitions && out.size() < n; ++p) {
      std::vector<T> part = Compute(parent, p);
      for (auto& value : part) {
        if (out.size() >= n) break;
        out.push_back(std::move(value));
      }
    }
    BusOf(parent->context)
        .AddToCounter("action.rows_out", static_cast<std::int64_t>(out.size()));
    return out;
  }

  /// Spark-style aggregate: folds each partition's elements with `fold`
  /// starting from `init`, then combines the per-partition partials with
  /// `merge` (both must be associative; `merge` commutative).
  template <typename U, typename FoldFn, typename MergeFn>
  U Aggregate(U init, FoldFn fold, MergeFn merge) const {
    auto parent = state_;
    std::vector<U> partials(static_cast<std::size_t>(parent->num_partitions),
                            init);
    PoolOf(parent->context)
        .RunParallel(
            partials.size(),
            [&](std::size_t index) {
              U acc = init;
              for (const T& value : Compute(parent, static_cast<int>(index))) {
                acc = fold(std::move(acc), value);
              }
              partials[index] = std::move(acc);
            },
            nullptr, "action.aggregate");
    U total = init;
    for (auto& partial : partials) {
      total = merge(std::move(total), partial);
    }
    return total;
  }

 private:
  template <typename U>
  friend class Rdd;

  /// Computes a partition of a state, honouring its cache. Static so thunks
  /// can capture only the shared state, not a dangling Rdd.
  ///
  /// Cached path: exactly one thread materializes all partitions (RetryableOnce),
  /// every other caller either waits inside the once or — once the
  /// materialized flag is up — reads `cached` directly. The old
  /// check-then-compute version let concurrent callers each rebuild every
  /// partition and discard all but one result. Partitions invalidated by an
  /// executor loss are repaired (recomputed from lineage) before the read.
  static std::vector<T> Compute(
      const std::shared_ptr<internal::RddState<T>>& state, int index) {
    if (!state->cache_enabled) return state->compute(index);

    obs::EventBus& bus = BusOf(state->context);
    bool was_materialized =
        state->cache_materialized.load(std::memory_order_acquire);
    if (was_materialized) {
      bus.AddToCounter("rdd.cache.hits", 1);
    } else {
      state->cache_once.Call([&] {
        auto n = static_cast<std::size_t>(state->num_partitions);
        state->cached.assign(n, std::vector<T>{});
        state->cache_executor.assign(n, -1);
        state->cache_invalid.assign(n, 0);
        PoolOf(state->context)
            .RunParallel(
                n,
                [&](std::size_t p) {
                  state->cached[p] = state->compute(static_cast<int>(p));
                  state->cache_executor[p] =
                      exec::ExecutorPool::CurrentExecutor();
                },
                nullptr, "rdd.cache.materialize");
        bus.AddToCounter("rdd.cache.misses",
                         static_cast<std::int64_t>(n));
        // Memory governance: charge each materialized partition against the
        // pool; partitions the pool cannot hold are spilled immediately.
        // Only types with a codec participate — others stay in memory,
        // uncharged, exactly as before.
        if constexpr (HasSpillCodec<T>) {
          exec::MemoryManager& memory = MemoryOf(state->context);
          if (memory.enforcing()) {
            state->manager = &memory;
            state->cache_spill.resize(n);
            state->cache_seg.assign(n, exec::SpillSegment{});
            state->cache_charge.assign(n, 0);
            state->cache_tick.assign(n, 0);
            try {
              for (std::size_t p = 0; p < n; ++p) {
                std::uint64_t bytes = 0;
                for (const T& value : state->cached[p]) {
                  bytes +=
                      static_cast<std::uint64_t>(obs::ApproxByteSize(value));
                }
                if (bytes == 0) continue;
                if (memory.TryReserve(bytes)) {
                  state->cache_charge[p] = bytes;
                  state->spillable_bytes.fetch_add(bytes,
                                                   std::memory_order_acq_rel);
                  continue;
                }
                // Denied even after forced spilling elsewhere: spill this
                // partition straight to disk instead of holding it uncharged.
                // Append throws typed errors — memory AND disk exhausted
                // means the query fails cleanly via the rollback below.
                auto file = std::make_unique<exec::SpillFile>(
                    &bus, InjectorOf(state->context));
                if (!file->ok()) continue;  // keep in memory, uncharged
                std::string blob = EncodeSpillBlob(state->cached[p]);
                exec::SpillSegment seg =
                    file->Append(blob, state->cached[p].size());
                state->cache_spill[p] = std::move(file);
                state->cache_seg[p] = seg;
                state->cached[p].clear();
                state->cached[p].shrink_to_fit();
                bus.AddToCounter("rdd.cache.evicted", 1);
                bus.AddToCounter("spill.files", 1);
                bus.AddToCounter("spill.bytes_written",
                                 static_cast<std::int64_t>(blob.size()));
                bus.Spilled("rdd.cache",
                            static_cast<std::int64_t>(blob.size()));
              }
            } catch (...) {
              // the once did not flip the flag: a retried materialization
              // re-runs this loop from scratch, so release every charge made
              // this round — the reassign above would otherwise leak them.
              for (std::size_t q = 0; q < n; ++q) {
                if (state->cache_charge[q] > 0) {
                  memory.Release(state->cache_charge[q]);
                  state->spillable_bytes.fetch_sub(state->cache_charge[q],
                                                   std::memory_order_acq_rel);
                  state->cache_charge[q] = 0;
                }
              }
              state->cache_spill.clear();
              state->cache_seg.clear();
              state->manager = nullptr;
              throw;
            }
            state->spill_token = memory.RegisterSpillable(state.get());
          }
        }
        // From here on an executor loss invalidates the partitions it built.
        // Registered only after the build: a kill *during* materialization is
        // already handled by the scheduler retrying the victim's tasks.
        internal::RddState<T>* raw = state.get();
        Context* context = state->context;
        state->loss_token = RegisterExecutorLossListener(
            context, [raw, context](int executor) {
              std::int64_t invalidated = 0;
              {
                std::lock_guard<std::mutex> meta(raw->cache_meta_mu);
                for (std::size_t p = 0; p < raw->cache_executor.size(); ++p) {
                  if (raw->cache_executor[p] == executor &&
                      raw->cache_invalid[p] == 0) {
                    raw->cache_invalid[p] = 1;
                    ++invalidated;
                  }
                }
                if (invalidated > 0) {
                  raw->cache_has_invalid.store(true,
                                               std::memory_order_release);
                }
              }
              if (invalidated > 0) {
                BusOf(context).AddToCounter("rdd.cache.invalidated",
                                            invalidated);
              }
            });
        state->cache_materialized.store(true, std::memory_order_release);
      });
      // Losers of the once race land here after the winner finished;
      // they are neither hits nor misses (they piggyback on the build).
    }
    if (state->cache_has_invalid.load(std::memory_order_acquire)) {
      RepairCache(state, bus);
    }
    std::shared_lock<std::shared_mutex> lock(state->cache_mu);
    auto p = static_cast<std::size_t>(index);
    if constexpr (HasSpillCodec<T>) {
      // Evicted partition: restore it from its spill file. The restored copy
      // is returned directly (the partition stays spilled — re-admitting it
      // would immediately re-trigger the pressure that evicted it). A lost
      // file is not fatal: the partition is recomputed from lineage, the same
      // path an executor loss takes.
      if (p < state->cache_spill.size() && state->cache_spill[p] != nullptr) {
        std::string blob;
        if (state->cache_spill[p]->Read(state->cache_seg[p], &blob)) {
          bus.AddToCounter("rdd.cache.spill_restored", 1);
          bus.AddToCounter("spill.bytes_read",
                           static_cast<std::int64_t>(blob.size()));
          return DecodeSpillBlob<T>(blob);
        }
        bus.PartitionRecomputed("rdd.cache", static_cast<std::int64_t>(p));
        bus.AddToCounter("partition.recomputed", 1);
        return state->compute(index);
      }
      if (state->manager != nullptr) {
        std::lock_guard<std::mutex> meta(state->cache_meta_mu);
        if (p < state->cache_tick.size()) {
          state->cache_tick[p] = state->tick_counter.fetch_add(
                                     1, std::memory_order_acq_rel) +
                                 1;
        }
      }
    }
    return state->cached[p];
  }

  /// Recomputes cache partitions lost to an executor failure, from lineage
  /// (`state->compute`), exactly once per loss: the first caller drains the
  /// invalid set under the metadata lock and rebuilds under the exclusive
  /// data lock; concurrent callers find the set empty and fall through to
  /// the (blocking) shared read.
  static void RepairCache(const std::shared_ptr<internal::RddState<T>>& state,
                          obs::EventBus& bus) {
    std::unique_lock<std::shared_mutex> data_lock(state->cache_mu);
    std::vector<std::size_t> to_repair;
    {
      std::lock_guard<std::mutex> meta(state->cache_meta_mu);
      if (!state->cache_has_invalid.load(std::memory_order_acquire)) return;
      for (std::size_t p = 0; p < state->cache_invalid.size(); ++p) {
        if (state->cache_invalid[p] != 0) {
          to_repair.push_back(p);
          state->cache_invalid[p] = 0;
        }
      }
      state->cache_has_invalid.store(false, std::memory_order_release);
    }
    for (std::size_t p : to_repair) {
      state->cached[p] = state->compute(static_cast<int>(p));
      if constexpr (HasSpillCodec<T>) {
        // A recomputed partition supersedes any spilled copy; drop the stale
        // file so reads take the fresh in-memory data. The recomputed copy is
        // deliberately left uncharged — repair must never fail on memory.
        if (p < state->cache_spill.size() && state->cache_spill[p] != nullptr) {
          state->cache_spill[p].reset();
          state->cache_seg[p] = exec::SpillSegment{};
        }
      }
      {
        std::lock_guard<std::mutex> meta(state->cache_meta_mu);
        state->cache_executor[p] = exec::ExecutorPool::CurrentExecutor();
      }
      bus.PartitionRecomputed("rdd.cache", static_cast<std::int64_t>(p));
      bus.AddToCounter("partition.recomputed", 1);
    }
  }

  std::shared_ptr<internal::RddState<T>> state_;
};

}  // namespace rumble::spark

#endif  // RUMBLE_SPARK_RDD_H_
