#ifndef RUMBLE_COMMON_STATUS_H_
#define RUMBLE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/error.h"

namespace rumble::common {

/// Arrow-style status object returned by the public API boundary. The engine
/// itself uses RumbleException internally; rumble::Rumble catches and wraps.
class Status {
 public:
  static Status OK() { return Status(); }
  static Status Error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }
  static Status FromException(const RumbleException& e) {
    return Status(e.code(), e.what());
  }

  bool ok() const { return !code_.has_value(); }
  ErrorCode code() const { return code_.value_or(ErrorCode::kInternal); }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: message".
  std::string ToString() const;

 private:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  std::optional<ErrorCode> code_;
  std::string message_;
};

/// Holds either a value or an error status.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, or terminates if this holds an error. For tests and
  /// examples where the error is a bug.
  const T& ValueOrDie() const;

 private:
  Status status_;
  std::optional<T> value_;
};

template <typename T>
const T& Result<T>::ValueOrDie() const {
  if (!ok()) {
    ThrowError(status_.code(), status_.message());
  }
  return *value_;
}

}  // namespace rumble::common

#endif  // RUMBLE_COMMON_STATUS_H_
