#ifndef RUMBLE_COMMON_CONFIG_H_
#define RUMBLE_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace rumble::common {

/// Which physical backend FLWOR tuple streams use when the input is
/// distributed. kDataFrame is the paper's second (and default) approach
/// (Section 4.3+); kTupleRdd is the first approach (Figure 9), kept for the
/// ablation benchmark; kLocalOnly forces pull-based local execution (used by
/// the Zorba/Xidel baseline simulations).
enum class FlworBackend {
  kDataFrame,
  kTupleRdd,
  kLocalOnly,
};

/// Engine configuration. Defaults model the paper's laptop setup scaled to
/// this machine; benches override executors/partitions per experiment.
struct RumbleConfig {
  /// Number of executor threads in the minispark pool.
  int executors = 4;

  /// Default number of partitions for inputs created by json-file() /
  /// parallelize() when the caller does not specify one.
  int default_partitions = 8;

  /// Maximum number of items materialized when a consumer pulls a
  /// distributed sequence through the local API (Section 5.5). Exceeding the
  /// cap raises kMaterializationCap unless warn_only_on_cap is set.
  std::size_t materialization_cap = 1'000'000;
  bool warn_only_on_cap = true;

  /// FLWOR physical backend selection (see FlworBackend).
  FlworBackend flwor_backend = FlworBackend::kDataFrame;

  /// Section 4.7 optimizations: rewrite materialized non-grouping variables
  /// into COUNT() when only counted, and drop them entirely when unused.
  bool groupby_count_pushdown = true;
  bool groupby_drop_unused = true;

  /// Section 4.8's "alternate design": when true, order-by skips the
  /// type-discovery first pass and encodes all native key columns
  /// unconditionally (as group-by does). Faster, but not fully compliant:
  /// queries mixing incompatible key types return a result instead of
  /// raising XPTY0004. Only affects the DataFrame backend.
  bool orderby_skip_type_check = false;

  /// Section 5.7: build Items directly while parsing (JSONiter-style). When
  /// false, parse to a DOM first and convert (the slow path the paper avoids).
  bool streaming_parser = true;

  /// Memory budget in bytes for local materialization; 0 = unlimited. Used
  /// by the Zorba/Xidel simulations to reproduce their out-of-memory points.
  /// Blocking operators (group-by, order-by buffers) always charge the
  /// budget; parsing charges it only when charge_parse_to_budget is set
  /// (engines that build a full in-memory store, like the Xidel simulation,
  /// set it; streaming pipelines do not).
  std::uint64_t memory_budget_bytes = 0;
  bool charge_parse_to_budget = false;

  /// When true, expression iterators refuse the RDD API so everything runs
  /// through the single-threaded pull path (baseline simulations).
  bool force_local_execution = false;

  // ---- Fault tolerance (docs/FAULT_TOLERANCE.md) --------------------------

  /// Total attempts per task before its stage fails (Spark's
  /// spark.task.maxFailures). Transient failures retry with exponential
  /// backoff; JSONiq dynamic errors never retry.
  int max_task_attempts = 4;
  /// Base backoff before retry attempt n: base << (n - 2) milliseconds.
  std::int64_t task_retry_backoff_ms = 1;

  /// Straggler speculation (spark.speculation): tasks running past
  /// max(multiplier * stage median task time, min_runtime) get a speculative
  /// copy; first commit wins.
  bool speculation = true;
  double speculation_multiplier = 4.0;
  std::int64_t speculation_min_runtime_ms = 100;

  /// Deterministic fault-injection spec for chaos testing, e.g.
  /// "seed=7,transient=0.1,straggle=0.05,straggle_ms=200,kill=3". Empty =
  /// no injection; the RUMBLE_FAULT_SPEC environment variable is used as a
  /// fallback when this is empty. Grammar in exec::FaultInjector::ParseSpec.
  std::string fault_spec;

  /// Permissive json-file() parsing: skip malformed JSON lines (counting
  /// them in the json.malformed_lines counter and sampling a few into the
  /// event log) instead of aborting the query with kJsonParseError.
  bool skip_malformed_lines = false;

  // ---- Memory governance (docs/MEMORY.md) ---------------------------------

  /// Engine-wide execution-memory limit in bytes for the central
  /// exec::MemoryManager; 0 = unlimited (reservations always granted, no
  /// spilling). When 0 the RUMBLE_MEMORY_LIMIT environment variable is used
  /// as a fallback (accepts k/m/g suffixes). Unlike memory_budget_bytes —
  /// which makes the local baselines *fail* with kOutOfMemory — this limit
  /// makes pipeline breakers *spill* to disk and keep going.
  std::uint64_t memory_limit_bytes = 0;

  // ---- Spill storage (docs/MEMORY.md, "Spill disk watchdog") --------------

  /// Directory spill files are written to. Empty = $TMPDIR or /tmp. Set via
  /// the --spill-dir shell flag or the RUMBLE_SPILL_DIR environment variable
  /// (config wins); validated at Context startup — it must exist and be
  /// writable, otherwise construction fails with kInvalidArgument.
  std::string spill_dir;

  /// Free-space headroom the spill watchdog requires in the spill directory
  /// (statvfs). A spill that would leave less free space than this fails
  /// fast with kResourceExhausted instead of running the disk to zero.
  /// 0 disables the headroom check.
  std::uint64_t spill_min_free_bytes = 32ull << 20;

  /// Cap on this process's total live spill bytes; 0 = unlimited. Lets
  /// tests and the chaos harness (RUMBLE_SPILL_MAX_BYTES) simulate a small
  /// disk: the watchdog denies spills past the cap exactly like ENOSPC.
  std::uint64_t spill_max_bytes = 0;

  /// Cooperative per-query timeout in milliseconds; 0 = no timeout. The
  /// deadline is armed when a query starts and checked at task boundaries
  /// and inside long kernel loops; expiry fails the query with kCancelled.
  std::int64_t query_timeout_ms = 0;

  // ---- Query profiling (docs/PROFILING.md) --------------------------------

  /// JSONL slow-query log: every query (shell or served) whose end-to-end
  /// wall time reaches slow_query_ms gets its full profile appended to
  /// slow_query_log_path (size-capped, rotated). Empty path or
  /// slow_query_ms <= 0 disables. Shell flags: --slow-query-log /
  /// --slow-query-ms.
  std::string slow_query_log_path;
  std::int64_t slow_query_ms = 0;

  // ---- Joins and the cost-based optimizer (docs/OPTIMIZER.md) -------------

  /// Build sides estimated (or, failing statistics, measured) at or below
  /// this many bytes run as broadcast hash joins; larger ones as shuffle
  /// (partitioned) hash joins whose build buckets are memory-governed.
  std::uint64_t join_broadcast_threshold_bytes = 4ull << 20;

  /// Forces a join strategy for every Join node: "auto" (cost-based,
  /// default), "broadcast", or "shuffle". Tests and benchmarks use the
  /// forced modes to prove both strategies byte-identical.
  std::string join_strategy = "auto";

  /// When true (default) the FLWOR translator compiles multi-source `for`
  /// clauses with value-equality predicates into Join nodes; when false
  /// every multi-source `for` uses the nested-loop fallback
  /// (docs/QUERY_LANGUAGE.md).
  bool enable_join_translation = true;
};

}  // namespace rumble::common

#endif  // RUMBLE_COMMON_CONFIG_H_
