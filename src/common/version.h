#ifndef RUMBLE_COMMON_VERSION_H_
#define RUMBLE_COMMON_VERSION_H_

#include <string>

namespace rumble::common {

/// Build/version identification (docs/PROFILING.md, "Version info").
/// The values are baked in at configure time by src/CMakeLists.txt:
/// `git describe --always --dirty --tags` becomes RUMBLE_GIT_DESCRIBE and
/// CMAKE_BUILD_TYPE becomes RUMBLE_BUILD_TYPE, both as compile definitions
/// on version.cc only (so touching the git head rebuilds one TU, not the
/// world). The compiler string comes from the compiler itself.

/// `git describe` output at configure time, or "unknown" outside a git
/// checkout.
const char* GitDescribe();

/// CMAKE_BUILD_TYPE at configure time ("Release", "Debug", ... or
/// "unspecified").
const char* BuildType();

/// The compiler that built this binary, e.g. "GNU 13.2.0 (__VERSION__ ...)".
const char* Compiler();

/// One human-readable line: "rumble <git> (<build type>, <compiler>)".
/// Printed by `rumble_shell --version`.
std::string VersionString();

/// The same facts as a JSON object:
/// {"name":"rumble","git":"...","build_type":"...","compiler":"..."} —
/// the body of `GET /version` and part of the `/healthz` body.
std::string VersionJson();

}  // namespace rumble::common

#endif  // RUMBLE_COMMON_VERSION_H_
