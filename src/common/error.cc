#include "src/common/error.h"

namespace rumble::common {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kStaticSyntax: return "XPST0003";
    case ErrorCode::kUndeclaredVariable: return "XPST0008";
    case ErrorCode::kUnknownFunction: return "XPST0017";
    case ErrorCode::kAbsentContextItem: return "XPDY0002";
    case ErrorCode::kTypeError: return "XPTY0004";
    case ErrorCode::kDivisionByZero: return "FOAR0001";
    case ErrorCode::kNumericOverflow: return "FOAR0002";
    case ErrorCode::kInvalidCast: return "FORG0001";
    case ErrorCode::kCardinalityError: return "XPTY0004";
    case ErrorCode::kInvalidArgument: return "FORG0006";
    case ErrorCode::kRegexError: return "FORX0002";
    case ErrorCode::kArrayIndexOutOfBounds: return "JNDY0003";
    case ErrorCode::kInvalidGroupingKey: return "JNTY0024";
    case ErrorCode::kInvalidSortKey: return "XPTY0004";
    case ErrorCode::kIncompatibleSortKeys: return "XPTY0004";
    case ErrorCode::kDuplicateObjectKey: return "JNDY0021";
    case ErrorCode::kJsonParseError: return "JNDY0021";
    case ErrorCode::kFileNotFound: return "FODC0002";
    case ErrorCode::kOutOfMemory: return "SENR0001";
    case ErrorCode::kUserError: return "FOER0000";
    case ErrorCode::kMaterializationCap: return "RBML0001";
    case ErrorCode::kCancelled: return "RBCL0001";
    case ErrorCode::kAdmissionRejected: return "RBAD0001";
    case ErrorCode::kResourceExhausted: return "RBRE0001";
    case ErrorCode::kIoError: return "RBIO0001";
    case ErrorCode::kInternal: return "RBIN0000";
  }
  return "RBIN0000";
}

RumbleException::RumbleException(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string(ErrorCodeName(code)) + ": " + message),
      code_(code) {}

bool RumbleException::IsStaticError() const {
  return code_ == ErrorCode::kStaticSyntax ||
         code_ == ErrorCode::kUndeclaredVariable ||
         code_ == ErrorCode::kUnknownFunction;
}

void ThrowError(ErrorCode code, const std::string& message) {
  throw RumbleException(code, message);
}

}  // namespace rumble::common
