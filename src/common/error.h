#ifndef RUMBLE_COMMON_ERROR_H_
#define RUMBLE_COMMON_ERROR_H_

#include <stdexcept>
#include <string>
#include <string_view>

namespace rumble::common {

/// JSONiq / XQuery error codes raised by the engine. The codes follow the
/// W3C & JSONiq specifications so that conformance tests can assert on them.
enum class ErrorCode {
  // Static (compile-time) errors.
  kStaticSyntax,            // XPST0003: query does not parse.
  kUndeclaredVariable,      // XPST0008: variable not in static context.
  kUnknownFunction,         // XPST0017: no function with this name/arity.
  // Dynamic (run-time) errors.
  kAbsentContextItem,       // XPDY0002: $$ used with no context item.
  kTypeError,               // XPTY0004: value has an inappropriate type.
  kDivisionByZero,          // FOAR0001: integer division by zero.
  kNumericOverflow,         // FOAR0002: numeric operation overflow.
  kInvalidCast,             // FORG0001: invalid value for cast.
  kCardinalityError,        // XPTY0004-like: more than one item where one expected.
  kInvalidArgument,         // FORG0006: invalid argument type for a function.
  kRegexError,              // FORX0002: invalid regular expression.
  kArrayIndexOutOfBounds,   // JNDY0003 (JSONiq): [[i]] out of bounds.
  kInvalidGroupingKey,      // JNTY0024: grouping key is not an atomic.
  kInvalidSortKey,          // XPTY0004 flavour for order-by keys.
  kIncompatibleSortKeys,    // XPTY0004: string vs number in the same order-by.
  kDuplicateObjectKey,      // JNDY0021: duplicate key in object constructor.
  kJsonParseError,          // JNDY0021 flavour: malformed JSON input.
  kFileNotFound,            // FODC0002: cannot retrieve resource.
  kOutOfMemory,             // SENR0001 flavour: memory budget exhausted.
  kUserError,               // FOER0000: fn:error() called.
  kMaterializationCap,      // RBML0001 (Rumble): too many items materialized.
  kCancelled,               // RBCL0001 (Rumble): query cancelled cooperatively.
  kAdmissionRejected,       // RBAD0001 (Rumble): engine memory pool exhausted.
  kResourceExhausted,       // RBRE0001 (Rumble): spill disk full / watchdog denied.
  kIoError,                 // RBIO0001 (Rumble): unrecoverable storage I/O failure.
  kInternal,                // RBIN0000: engine invariant violated.
};

/// Returns the W3C/JSONiq spec code string (e.g. "XPST0003") for a code.
std::string_view ErrorCodeName(ErrorCode code);

/// Exception type used for all engine errors. Dynamic errors propagate
/// through deep iterator recursion with this type; the public API boundary
/// (rumble::Rumble) converts it to common::Status. See DESIGN.md §2 for the
/// rationale of using exceptions internally.
class RumbleException : public std::runtime_error {
 public:
  RumbleException(ErrorCode code, const std::string& message);

  ErrorCode code() const { return code_; }

  /// True for errors detected before execution starts (parse/bind time).
  bool IsStaticError() const;

 private:
  ErrorCode code_;
};

/// Convenience: throws RumbleException with the given code and message.
[[noreturn]] void ThrowError(ErrorCode code, const std::string& message);

}  // namespace rumble::common

#endif  // RUMBLE_COMMON_ERROR_H_
