#include "src/common/status.h"

namespace rumble::common {

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return std::string(ErrorCodeName(*code_)) + ": " + message_;
}

}  // namespace rumble::common
