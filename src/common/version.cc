#include "src/common/version.h"

namespace rumble::common {

#ifndef RUMBLE_GIT_DESCRIBE
#define RUMBLE_GIT_DESCRIBE "unknown"
#endif
#ifndef RUMBLE_BUILD_TYPE
#define RUMBLE_BUILD_TYPE "unspecified"
#endif

namespace {

std::string JsonEscape(const char* value) {
  std::string out;
  for (const char* p = value; *p != '\0'; ++p) {
    char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* GitDescribe() { return RUMBLE_GIT_DESCRIBE; }

const char* BuildType() { return RUMBLE_BUILD_TYPE; }

const char* Compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

std::string VersionString() {
  std::string out = "rumble ";
  out += GitDescribe();
  out += " (";
  out += BuildType();
  out += ", ";
  out += Compiler();
  out += ")";
  return out;
}

std::string VersionJson() {
  std::string out = "{\"name\":\"rumble\",\"git\":\"";
  out += JsonEscape(GitDescribe());
  out += "\",\"build_type\":\"";
  out += JsonEscape(BuildType());
  out += "\",\"compiler\":\"";
  out += JsonEscape(Compiler());
  out += "\"}";
  return out;
}

}  // namespace rumble::common
