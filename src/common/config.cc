#include "src/common/config.h"

// Configuration is a plain aggregate; this translation unit exists so the
// header has an associated object file per project convention.
namespace rumble::common {}  // namespace rumble::common
