#include "src/util/prng.h"

#include <cmath>

namespace rumble::util {

std::uint64_t Prng::NextU64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Prng::NextBounded(std::uint64_t bound) {
  // Lemire's multiply-shift reduction; bias is negligible for our bounds.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
}

double Prng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Prng::NextBool(double p) { return NextDouble() < p; }

std::uint64_t Prng::NextZipf(std::uint64_t n, double s) {
  // Approximate inverse-CDF sampling for a Zipf(s) distribution over n ranks
  // using the continuous approximation of the harmonic sums.
  if (n <= 1) return 0;
  double u = NextDouble();
  if (s == 1.0) {
    double h = std::log(static_cast<double>(n) + 1.0);
    return static_cast<std::uint64_t>(std::exp(u * h)) - 1;
  }
  double one_minus_s = 1.0 - s;
  double h = (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0);
  double x = std::pow(u * h + 1.0, 1.0 / one_minus_s) - 1.0;
  auto rank = static_cast<std::uint64_t>(x);
  return rank >= n ? n - 1 : rank;
}

std::string Prng::NextHex(std::size_t length) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kHex[NextBounded(16)]);
  }
  return out;
}

}  // namespace rumble::util
