#ifndef RUMBLE_UTIL_STOPWATCH_H_
#define RUMBLE_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rumble::util {

/// Steady-clock stopwatch used by task metrics and the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  std::int64_t ElapsedNanos() const;
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rumble::util

#endif  // RUMBLE_UTIL_STOPWATCH_H_
