#include "src/util/strings.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rumble::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  std::array<char, 32> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  (void)ec;
  return std::string(buf.data(), ptr);
}

namespace {

bool IsContinuationByte(char c) {
  return (static_cast<unsigned char>(c) & 0xC0) == 0x80;
}

}  // namespace

std::size_t Utf8Length(std::string_view text) {
  std::size_t count = 0;
  for (char c : text) {
    if (!IsContinuationByte(c)) ++count;
  }
  return count;
}

std::string Utf8Substring(std::string_view text, double start, double length) {
  std::string out;
  double position = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    position += 1;  // 1-based position of the codepoint starting here
    std::size_t begin = i;
    ++i;
    while (i < text.size() && IsContinuationByte(text[i])) ++i;
    if (position >= start && position < start + length) {
      out.append(text.substr(begin, i - begin));
    }
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rumble::util
