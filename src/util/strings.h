#ifndef RUMBLE_UTIL_STRINGS_H_
#define RUMBLE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rumble::util {

/// Splits on a single-character separator. An empty input yields {""}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double the way JSON serializers do: integral doubles print
/// without a trailing ".0" mantissa explosion, and round-tripping is exact.
std::string FormatDouble(double value);

/// Escapes a string for inclusion in a JSON document (adds no quotes).
std::string JsonEscape(std::string_view text);

/// Number of Unicode codepoints in a UTF-8 string (continuation bytes are
/// not counted). The unit the JSONiq string functions are specified in.
std::size_t Utf8Length(std::string_view text);

/// Codepoint-based substring with XPath fn:substring semantics: positions
/// are 1-based doubles; a codepoint at position p is included iff
/// p >= start && p < start + length (NaN-safe comparisons).
std::string Utf8Substring(std::string_view text, double start, double length);

}  // namespace rumble::util

#endif  // RUMBLE_UTIL_STRINGS_H_
