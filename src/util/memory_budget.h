#ifndef RUMBLE_UTIL_MEMORY_BUDGET_H_
#define RUMBLE_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace rumble::util {

/// Tracks an approximate number of live bytes against a limit and raises
/// kOutOfMemory when the limit is exceeded. Used to reproduce the paper's
/// Figure 12 observation that single-threaded engines (Zorba, Xidel) run out
/// of memory on a few million objects, without actually exhausting this
/// machine's RAM. A zero limit disables enforcement but still counts.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Records an allocation; throws RumbleException(kOutOfMemory) when the
  /// running total exceeds the limit.
  void Allocate(std::uint64_t bytes);

  /// Records a release.
  void Release(std::uint64_t bytes);

  std::uint64_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  std::uint64_t limit_bytes() const { return limit_; }
  void set_limit_bytes(std::uint64_t limit) { limit_ = limit; }

  void Reset() { used_.store(0, std::memory_order_relaxed); }

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> used_{0};
};

}  // namespace rumble::util

#endif  // RUMBLE_UTIL_MEMORY_BUDGET_H_
