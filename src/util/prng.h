#ifndef RUMBLE_UTIL_PRNG_H_
#define RUMBLE_UTIL_PRNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rumble::util {

/// Deterministic SplitMix64 PRNG. Workload generators depend on determinism
/// so that tests and benchmarks are reproducible across runs and machines.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (approximated by
  /// rejection-free inverse CDF over a precomputed harmonic table is too
  /// heavy for large n; we use the Gray et al. approximation).
  std::uint64_t NextZipf(std::uint64_t n, double s);

  /// Random lowercase hex string of the given length.
  std::string NextHex(std::size_t length);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& values) {
    return values[NextBounded(values.size())];
  }

 private:
  std::uint64_t state_;
};

}  // namespace rumble::util

#endif  // RUMBLE_UTIL_PRNG_H_
