#include "src/util/memory_budget.h"

#include <string>

#include "src/common/error.h"

namespace rumble::util {

void MemoryBudget::Allocate(std::uint64_t bytes) {
  std::uint64_t now =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    common::ThrowError(
        common::ErrorCode::kOutOfMemory,
        "memory budget exhausted: " + std::to_string(now) + " of " +
            std::to_string(limit_) + " bytes in use");
  }
}

void MemoryBudget::Release(std::uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace rumble::util
