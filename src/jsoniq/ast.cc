#include "src/jsoniq/ast.h"

namespace rumble::jsoniq {

namespace {

void Dump(const Expr& expr, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(ExprKindName(expr.kind));
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      out->append(" ");
      out->append(expr.literal->Serialize());
      break;
    case Expr::Kind::kVariableRef:
      out->append(" $" + expr.variable);
      break;
    case Expr::Kind::kFunctionCall:
      out->append(" " + expr.function_name + "#" +
                  std::to_string(expr.children.size()));
      break;
    case Expr::Kind::kInstanceOf:
    case Expr::Kind::kTreatAs:
    case Expr::Kind::kCastAs:
      out->append(" " + expr.sequence_type.ToString());
      break;
    default:
      break;
  }
  out->push_back('\n');

  auto dump_child = [&](const ExprPtr& child) {
    if (child) Dump(*child, depth + 1, out);
  };

  if (expr.kind == Expr::Kind::kFlwor) {
    for (const auto& clause : expr.clauses) {
      out->append(static_cast<std::size_t>(depth + 1) * 2, ' ');
      switch (clause.kind) {
        case FlworClause::Kind::kFor:
          out->append("for $" + clause.variable);
          if (!clause.position_variable.empty()) {
            out->append(" at $" + clause.position_variable);
          }
          if (clause.allowing_empty) out->append(" allowing empty");
          out->push_back('\n');
          dump_child(clause.expr);
          break;
        case FlworClause::Kind::kLet:
          out->append("let $" + clause.variable + "\n");
          dump_child(clause.expr);
          break;
        case FlworClause::Kind::kWhere:
          out->append("where\n");
          dump_child(clause.expr);
          break;
        case FlworClause::Kind::kGroupBy:
          out->append("group by");
          for (const auto& spec : clause.group_specs) {
            out->append(" $" + spec.variable);
          }
          out->push_back('\n');
          for (const auto& spec : clause.group_specs) {
            if (spec.expr) Dump(*spec.expr, depth + 2, out);
          }
          break;
        case FlworClause::Kind::kOrderBy:
          out->append("order by\n");
          for (const auto& spec : clause.order_specs) {
            out->append(static_cast<std::size_t>(depth + 2) * 2, ' ');
            out->append(spec.ascending ? "ascending" : "descending");
            if (spec.empty_greatest) out->append(" empty greatest");
            out->push_back('\n');
            Dump(*spec.expr, depth + 3, out);
          }
          break;
        case FlworClause::Kind::kCount:
          out->append("count $" + clause.variable + "\n");
          break;
      }
    }
    out->append(static_cast<std::size_t>(depth + 1) * 2, ' ');
    out->append("return\n");
    Dump(*expr.return_expr, depth + 2, out);
    return;
  }

  if (expr.kind == Expr::Kind::kQuantified) {
    for (const auto& [variable, binding] : expr.quantifier_bindings) {
      out->append(static_cast<std::size_t>(depth + 1) * 2, ' ');
      out->append("bind $" + variable + "\n");
      Dump(*binding, depth + 2, out);
    }
    Dump(*expr.children.back(), depth + 1, out);
    return;
  }

  if (expr.kind == Expr::Kind::kObjectConstructor) {
    for (std::size_t i = 0; i < expr.object_keys.size(); ++i) {
      dump_child(expr.object_keys[i]);
      dump_child(expr.object_values[i]);
    }
    return;
  }

  for (const auto& child : expr.children) {
    dump_child(child);
  }
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  std::string out;
  Dump(expr, 0, &out);
  return out;
}

ExprPtr MakeLiteral(item::ItemPtr value) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::kLiteral;
  expr->literal = std::move(value);
  return expr;
}

ExprPtr MakeUnary(Expr::Kind kind, ExprPtr child) {
  auto expr = std::make_shared<Expr>();
  expr->kind = kind;
  expr->children.push_back(std::move(child));
  return expr;
}

ExprPtr MakeBinary(Expr::Kind kind, ExprPtr left, ExprPtr right) {
  auto expr = std::make_shared<Expr>();
  expr->kind = kind;
  expr->children.push_back(std::move(left));
  expr->children.push_back(std::move(right));
  return expr;
}

ExprPtr MakeVariadic(Expr::Kind kind, std::vector<ExprPtr> children) {
  auto expr = std::make_shared<Expr>();
  expr->kind = kind;
  expr->children = std::move(children);
  return expr;
}

std::string_view ExprKindName(Expr::Kind kind) {
  switch (kind) {
    case Expr::Kind::kLiteral: return "literal";
    case Expr::Kind::kVariableRef: return "variable-reference";
    case Expr::Kind::kContextItem: return "context-item";
    case Expr::Kind::kSequence: return "sequence";
    case Expr::Kind::kIfThenElse: return "if-then-else";
    case Expr::Kind::kSwitch: return "switch";
    case Expr::Kind::kQuantified: return "quantified";
    case Expr::Kind::kOr: return "or";
    case Expr::Kind::kAnd: return "and";
    case Expr::Kind::kComparison: return "comparison";
    case Expr::Kind::kArithmetic: return "arithmetic";
    case Expr::Kind::kUnaryMinus: return "unary-minus";
    case Expr::Kind::kStringConcat: return "string-concat";
    case Expr::Kind::kRange: return "range";
    case Expr::Kind::kObjectConstructor: return "object-constructor";
    case Expr::Kind::kArrayConstructor: return "array-constructor";
    case Expr::Kind::kObjectLookup: return "object-lookup";
    case Expr::Kind::kArrayLookup: return "array-lookup";
    case Expr::Kind::kArrayUnbox: return "array-unbox";
    case Expr::Kind::kPredicate: return "predicate";
    case Expr::Kind::kFunctionCall: return "function-call";
    case Expr::Kind::kFlwor: return "flwor";
    case Expr::Kind::kTryCatch: return "try-catch";
    case Expr::Kind::kInstanceOf: return "instance-of";
    case Expr::Kind::kTreatAs: return "treat-as";
    case Expr::Kind::kCastAs: return "cast-as";
  }
  return "expression";
}

}  // namespace rumble::jsoniq
