#include "src/jsoniq/sequence_type.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/util/strings.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::Item;
using item::ItemPtr;
using item::ItemType;

std::string_view TypeNameToString(TypeName type) {
  switch (type) {
    case TypeName::kItem: return "item";
    case TypeName::kAtomic: return "atomic";
    case TypeName::kJsonItem: return "json-item";
    case TypeName::kObject: return "object";
    case TypeName::kArray: return "array";
    case TypeName::kString: return "string";
    case TypeName::kInteger: return "integer";
    case TypeName::kDecimal: return "decimal";
    case TypeName::kDouble: return "double";
    case TypeName::kNumber: return "number";
    case TypeName::kBoolean: return "boolean";
    case TypeName::kNull: return "null";
  }
  return "item";
}

}  // namespace

std::string SequenceType::ToString() const {
  if (is_empty_sequence) return "empty-sequence()";
  std::string out(TypeNameToString(type));
  switch (arity) {
    case Arity::kOne: break;
    case Arity::kOptional: out += "?"; break;
    case Arity::kStar: out += "*"; break;
    case Arity::kPlus: out += "+"; break;
  }
  return out;
}

std::optional<TypeName> TypeNameFromString(std::string_view name) {
  if (name == "item") return TypeName::kItem;
  if (name == "atomic") return TypeName::kAtomic;
  if (name == "json-item") return TypeName::kJsonItem;
  if (name == "object") return TypeName::kObject;
  if (name == "array") return TypeName::kArray;
  if (name == "string") return TypeName::kString;
  if (name == "integer") return TypeName::kInteger;
  if (name == "decimal") return TypeName::kDecimal;
  if (name == "double") return TypeName::kDouble;
  if (name == "number") return TypeName::kNumber;
  if (name == "boolean") return TypeName::kBoolean;
  if (name == "null") return TypeName::kNull;
  return std::nullopt;
}

bool ItemMatchesType(const Item& item, TypeName type) {
  switch (type) {
    case TypeName::kItem: return true;
    case TypeName::kAtomic: return item.IsAtomic();
    case TypeName::kJsonItem: return item.IsObject() || item.IsArray();
    case TypeName::kObject: return item.IsObject();
    case TypeName::kArray: return item.IsArray();
    case TypeName::kString: return item.IsString();
    case TypeName::kInteger: return item.IsInteger();
    case TypeName::kDecimal:
      // Integers are substitutable for decimals, as in the JSONiq type
      // hierarchy (integer <: decimal).
      return item.type() == ItemType::kDecimal || item.IsInteger();
    case TypeName::kDouble: return item.type() == ItemType::kDouble;
    case TypeName::kNumber: return item.IsNumeric();
    case TypeName::kBoolean: return item.IsBoolean();
    case TypeName::kNull: return item.IsNull();
  }
  return false;
}

bool SequenceMatchesType(const item::ItemSequence& sequence,
                         const SequenceType& type) {
  if (type.is_empty_sequence) return sequence.empty();
  switch (type.arity) {
    case Arity::kOne:
      if (sequence.size() != 1) return false;
      break;
    case Arity::kOptional:
      if (sequence.size() > 1) return false;
      break;
    case Arity::kPlus:
      if (sequence.empty()) return false;
      break;
    case Arity::kStar:
      break;
  }
  for (const auto& item : sequence) {
    if (!ItemMatchesType(*item, type.type)) return false;
  }
  return true;
}

item::ItemPtr CastAtomic(const item::ItemPtr& value_ptr, TypeName target) {
  const Item& value = *value_ptr;
  if (!value.IsAtomic()) {
    common::ThrowError(ErrorCode::kTypeError,
                       "cannot cast a non-atomic item");
  }
  auto invalid = [&]() -> ItemPtr {
    common::ThrowError(
        ErrorCode::kInvalidCast,
        "cannot cast " + value.Serialize() + " to " +
            std::string(TypeNameToString(target)));
  };

  switch (target) {
    case TypeName::kString:
      if (value.IsString()) return item::MakeString(value.StringValue());
      return item::MakeString(value.Serialize());

    case TypeName::kBoolean:
      switch (value.type()) {
        case ItemType::kBoolean: return item::MakeBoolean(value.BooleanValue());
        case ItemType::kInteger:
          return item::MakeBoolean(value.IntegerValue() != 0);
        case ItemType::kDecimal:
        case ItemType::kDouble:
          return item::MakeBoolean(value.NumericValue() != 0.0 &&
                                   !std::isnan(value.NumericValue()));
        case ItemType::kString: {
          const std::string& s = value.StringValue();
          if (s == "true" || s == "1") return item::MakeBoolean(true);
          if (s == "false" || s == "0") return item::MakeBoolean(false);
          return invalid();
        }
        case ItemType::kNull: return item::MakeBoolean(false);
        default: return invalid();
      }

    case TypeName::kInteger:
      switch (value.type()) {
        case ItemType::kInteger: return item::MakeInteger(value.IntegerValue());
        case ItemType::kDecimal:
        case ItemType::kDouble: {
          double v = value.NumericValue();
          if (std::isnan(v) || std::isinf(v)) return invalid();
          return item::MakeInteger(static_cast<std::int64_t>(v));
        }
        case ItemType::kBoolean:
          return item::MakeInteger(value.BooleanValue() ? 1 : 0);
        case ItemType::kString: {
          const std::string& s = value.StringValue();
          std::int64_t out = 0;
          auto [ptr, ec] =
              std::from_chars(s.data(), s.data() + s.size(), out);
          if (ec != std::errc() || ptr != s.data() + s.size()) {
            return invalid();
          }
          return item::MakeInteger(out);
        }
        default: return invalid();
      }

    case TypeName::kDecimal:
    case TypeName::kDouble:
    case TypeName::kNumber: {
      auto make = [&](double v) -> ItemPtr {
        return target == TypeName::kDouble ? item::MakeDouble(v)
                                           : item::MakeDecimal(v);
      };
      switch (value.type()) {
        case ItemType::kInteger:
        case ItemType::kDecimal:
        case ItemType::kDouble: return make(value.NumericValue());
        case ItemType::kBoolean: return make(value.BooleanValue() ? 1.0 : 0.0);
        case ItemType::kString: {
          const std::string& s = value.StringValue();
          if (s.empty()) return invalid();
          errno = 0;
          char* end = nullptr;
          double v = std::strtod(s.c_str(), &end);
          if (end != s.c_str() + s.size() || errno == ERANGE) {
            return invalid();
          }
          return make(v);
        }
        default: return invalid();
      }
    }

    case TypeName::kNull:
      if (value.IsNull()) return item::MakeNull();
      return invalid();

    case TypeName::kAtomic:
    case TypeName::kItem:
      return value_ptr;  // identity casts

    default:
      return invalid();
  }
}

}  // namespace rumble::jsoniq
