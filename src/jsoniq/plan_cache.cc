#include "src/jsoniq/plan_cache.h"

#include <cctype>
#include <utility>

namespace rumble::jsoniq {

std::string PlanCache::NormalizeQueryText(const std::string& query) {
  std::string out;
  out.reserve(query.size());
  bool in_string = false;
  bool pending_space = false;
  for (std::size_t i = 0; i < query.size(); ++i) {
    char c = query[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < query.size()) {
        out.push_back(query[++i]);  // keep the escaped character verbatim
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '"') in_string = true;
    out.push_back(c);
  }
  return out;
}

RuntimeIteratorPtr PlanCache::Lookup(const std::string& normalized_query) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(normalized_query);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  entries_.splice(entries_.begin(), entries_, it->second);
  return it->second->plan->Clone();
}

void PlanCache::Insert(const std::string& normalized_query,
                       RuntimeIteratorPtr plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(normalized_query);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.push_front({normalized_query, std::move(plan)});
  index_[normalized_query] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++evictions_;
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::int64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace rumble::jsoniq
