#include <utility>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

/// Base for the per-item navigation expressions the paper maps to flatMap
/// transformations (Sections 4.1.2 and 5.6): object lookup, array lookup,
/// array unboxing and (boolean) predicates. The RDD path clones the nested
/// iterators once per partition — the analogue of Rumble shipping closures
/// with serialized runtime iterators to the executors.
template <typename Derived>
class NavigationIterator : public CloneableIterator<Derived> {
 public:
  using CloneableIterator<Derived>::CloneableIterator;

  bool IsRddAble() const override {
    return this->children_.front()->IsRddAble();
  }
};

class ObjectLookupIterator final
    : public NavigationIterator<ObjectLookupIterator> {
 public:
  const char* Name() const override { return "object-lookup"; }
  ObjectLookupIterator(EngineContextPtr engine, RuntimeIteratorPtr target,
                       RuntimeIteratorPtr key)
      : NavigationIterator(std::move(engine),
                           {std::move(target), std::move(key)}) {}

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    std::string key = EvaluateKey(context);
    return children_[0]->GetRdd(context).FlatMap(
        [key](const ItemPtr& item) -> ItemSequence {
          ItemPtr value = item->IsObject() ? item->ValueForKey(key) : nullptr;
          if (value == nullptr) return {};
          return {std::move(value)};
        });
  }

  /// $v.k1...kn.key is a field path when the target is one and the key is a
  /// constant atomic. Non-atomic constant keys stay on the generic path,
  /// which raises the type error at evaluation time.
  bool DescribeFieldPath(ColumnFieldPath* out) const override {
    ItemPtr key = children_[1]->ConstantValue();
    if (key == nullptr || !key->IsAtomic()) return false;
    if (!children_[0]->DescribeFieldPath(out)) return false;
    out->keys.push_back(key->IsString() ? key->StringValue()
                                        : key->Serialize());
    return true;
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    std::string key = EvaluateKey(context);
    const ItemSequence* borrowed = children_[0]->TryBorrow(context);
    ItemSequence owned;
    if (borrowed == nullptr) {
      owned = children_[0]->MaterializeAll(context);
      borrowed = &owned;
    }
    ItemSequence out;
    for (const auto& item : *borrowed) {
      if (!item->IsObject()) continue;  // non-objects are filtered out
      ItemPtr value = item->ValueForKey(key);
      if (value != nullptr) out.push_back(std::move(value));
    }
    return out;
  }

 private:
  std::string EvaluateKey(const DynamicContext& context) {
    // Constant keys ($e.guess) skip per-evaluation materialization.
    ItemPtr key = children_[1]->ConstantValue();
    if (key == nullptr) {
      key = children_[1]->MaterializeAtMostOne(context, "object lookup");
    }
    if (key == nullptr) {
      common::ThrowError(ErrorCode::kTypeError,
                         "object lookup key is the empty sequence");
    }
    if (key->IsString()) return key->StringValue();
    if (key->IsAtomic()) return key->Serialize();
    common::ThrowError(ErrorCode::kTypeError,
                       "object lookup key must be an atomic");
  }
};

class ArrayLookupIterator final
    : public NavigationIterator<ArrayLookupIterator> {
 public:
  const char* Name() const override { return "array-lookup"; }
  ArrayLookupIterator(EngineContextPtr engine, RuntimeIteratorPtr target,
                      RuntimeIteratorPtr index)
      : NavigationIterator(std::move(engine),
                           {std::move(target), std::move(index)}) {}

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    std::int64_t index = EvaluateIndex(context);
    return children_[0]->GetRdd(context).FlatMap(
        [index](const ItemPtr& item) -> ItemSequence {
          if (!item->IsArray() || index < 1 ||
              static_cast<std::size_t>(index) > item->ArraySize()) {
            return {};
          }
          return {item->MemberAt(static_cast<std::size_t>(index - 1))};
        });
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    std::int64_t index = EvaluateIndex(context);
    ItemSequence out;
    for (const auto& item : children_[0]->MaterializeAll(context)) {
      if (!item->IsArray()) continue;
      if (index < 1 || static_cast<std::size_t>(index) > item->ArraySize()) {
        continue;  // out-of-bounds lookup yields the empty sequence
      }
      out.push_back(item->MemberAt(static_cast<std::size_t>(index - 1)));
    }
    return out;
  }

 private:
  std::int64_t EvaluateIndex(const DynamicContext& context) {
    ItemPtr index = children_[1]->MaterializeAtMostOne(context, "[[...]]");
    if (index == nullptr || !index->IsNumeric()) {
      common::ThrowError(ErrorCode::kTypeError,
                         "array lookup index must be a single number");
    }
    return index->IsInteger()
               ? index->IntegerValue()
               : static_cast<std::int64_t>(index->NumericValue());
  }
};

class ArrayUnboxIterator final : public NavigationIterator<ArrayUnboxIterator> {
 public:
  const char* Name() const override { return "array-unbox"; }
  ArrayUnboxIterator(EngineContextPtr engine, RuntimeIteratorPtr target)
      : NavigationIterator(std::move(engine), {std::move(target)}) {}

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    return children_[0]->GetRdd(context).FlatMap(
        [](const ItemPtr& item) -> ItemSequence {
          if (!item->IsArray()) return {};
          return item->Members();
        });
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemSequence out;
    for (const auto& item : children_[0]->MaterializeAll(context)) {
      if (!item->IsArray()) continue;
      const ItemSequence& members = item->Members();
      out.insert(out.end(), members.begin(), members.end());
    }
    return out;
  }
};

class PredicateIterator final : public NavigationIterator<PredicateIterator> {
 public:
  const char* Name() const override { return "predicate"; }
  PredicateIterator(EngineContextPtr engine, RuntimeIteratorPtr target,
                    RuntimeIteratorPtr predicate)
      : NavigationIterator(std::move(engine),
                           {std::move(target), std::move(predicate)}) {}

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    RuntimeIteratorPtr prototype = children_[1];
    DynamicContextPtr captured = DynamicContext::Snapshot(context);
    // Positional semantics need global positions (and last() the total
    // count): zipWithIndex provides them, as Spark programs do by hand.
    spark::Rdd<std::pair<ItemPtr, std::int64_t>> indexed =
        children_[0]->GetRdd(context).ZipWithIndex();
    auto size = static_cast<std::int64_t>(indexed.Count());
    return indexed.MapPartitions(
        [prototype, captured,
         size](std::vector<std::pair<ItemPtr, std::int64_t>>&& items) {
          // Clone once per partition: iterators are stateful, tasks are
          // parallel (Section 5.6).
          RuntimeIteratorPtr predicate = prototype->Clone();
          ItemSequence out;
          DynamicContext row_context(captured.get());
          for (auto& [item, index] : items) {
            std::int64_t position = index + 1;
            row_context.SetContextItem(item, position, size);
            ItemSequence value = predicate->MaterializeAll(row_context);
            // A numeric predicate selects by position, like locally.
            if (value.size() == 1 && value.front()->IsNumeric()) {
              if (static_cast<double>(position) ==
                  value.front()->NumericValue()) {
                out.push_back(std::move(item));
              }
              continue;
            }
            if (item::EffectiveBooleanValue(value)) {
              out.push_back(std::move(item));
            }
          }
          return out;
        });
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemSequence input = children_[0]->MaterializeAll(context);
    ItemSequence out;
    auto size = static_cast<std::int64_t>(input.size());
    for (std::int64_t position = 1;
         position <= static_cast<std::int64_t>(input.size()); ++position) {
      ItemPtr item = input[static_cast<std::size_t>(position - 1)];
      DynamicContext row_context(&context);
      row_context.SetContextItem(item, position, size);
      ItemSequence value = children_[1]->MaterializeAll(row_context);
      // A numeric predicate selects by position: $seq[3].
      if (value.size() == 1 && value.front()->IsNumeric()) {
        double wanted = value.front()->NumericValue();
        if (static_cast<double>(position) == wanted) {
          out.push_back(std::move(item));
        }
        continue;
      }
      if (item::EffectiveBooleanValue(value)) {
        out.push_back(std::move(item));
      }
    }
    return out;
  }
};

}  // namespace

RuntimeIteratorPtr MakeObjectLookupIterator(EngineContextPtr engine,
                                            RuntimeIteratorPtr target,
                                            RuntimeIteratorPtr key) {
  return std::make_shared<ObjectLookupIterator>(std::move(engine),
                                                std::move(target),
                                                std::move(key));
}

RuntimeIteratorPtr MakeArrayLookupIterator(EngineContextPtr engine,
                                           RuntimeIteratorPtr target,
                                           RuntimeIteratorPtr index) {
  return std::make_shared<ArrayLookupIterator>(std::move(engine),
                                               std::move(target),
                                               std::move(index));
}

RuntimeIteratorPtr MakeArrayUnboxIterator(EngineContextPtr engine,
                                          RuntimeIteratorPtr target) {
  return std::make_shared<ArrayUnboxIterator>(std::move(engine),
                                              std::move(target));
}

RuntimeIteratorPtr MakePredicateIterator(EngineContextPtr engine,
                                         RuntimeIteratorPtr target,
                                         RuntimeIteratorPtr predicate) {
  return std::make_shared<PredicateIterator>(std::move(engine),
                                             std::move(target),
                                             std::move(predicate));
}

}  // namespace rumble::jsoniq
