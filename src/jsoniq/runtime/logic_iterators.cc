#include <utility>

#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"

namespace rumble::jsoniq {

namespace {

using item::ItemSequence;

class AndIterator final : public CloneableIterator<AndIterator> {
 public:
  const char* Name() const override { return "and"; }
  AndIterator(EngineContextPtr engine, std::vector<RuntimeIteratorPtr> parts)
      : CloneableIterator(std::move(engine), std::move(parts)) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    for (const auto& child : children_) {
      if (!child->MaterializeBoolean(context)) {
        return {item::MakeBoolean(false)};
      }
    }
    return {item::MakeBoolean(true)};
  }
};

class OrIterator final : public CloneableIterator<OrIterator> {
 public:
  const char* Name() const override { return "or"; }
  OrIterator(EngineContextPtr engine, std::vector<RuntimeIteratorPtr> parts)
      : CloneableIterator(std::move(engine), std::move(parts)) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    for (const auto& child : children_) {
      if (child->MaterializeBoolean(context)) {
        return {item::MakeBoolean(true)};
      }
    }
    return {item::MakeBoolean(false)};
  }
};

}  // namespace

RuntimeIteratorPtr MakeAndIterator(EngineContextPtr engine,
                                   std::vector<RuntimeIteratorPtr> parts) {
  return std::make_shared<AndIterator>(std::move(engine), std::move(parts));
}

RuntimeIteratorPtr MakeOrIterator(EngineContextPtr engine,
                                  std::vector<RuntimeIteratorPtr> parts) {
  return std::make_shared<OrIterator>(std::move(engine), std::move(parts));
}

}  // namespace rumble::jsoniq
