#include <utility>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/flwor.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

/// The paper's first approach (Figure 9): FLWOR clauses map directly to
/// Spark transformations over RDDs of Tuple objects. Kept as a complete
/// backend so the DataFrame redesign (Sections 4.3+) can be measured
/// against it (bench_ablation_flwor_backend).
using TupleRdd = spark::Rdd<FlworTuple>;

const ItemSequence* LookupBinding(const FlworTuple& tuple,
                                  const std::string& name) {
  for (auto it = tuple.rbegin(); it != tuple.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

DynamicContext TupleScope(const DynamicContextPtr& captured,
                          const FlworTuple& tuple) {
  DynamicContext scope(captured.get());
  BindTuple(tuple, &scope);
  return scope;
}

/// for clause -> flatMap (per partition, cloning the nested iterator once).
TupleRdd ApplyFor(const TupleRdd& input, const CompiledClause& clause,
                  const DynamicContextPtr& captured) {
  RuntimeIteratorPtr prototype = clause.expr;
  std::string variable = clause.variable;
  std::string position_variable = clause.position_variable;
  bool allowing_empty = clause.allowing_empty;
  return input.MapPartitions([prototype, captured, variable,
                              position_variable, allowing_empty](
                                 std::vector<FlworTuple>&& tuples) {
    RuntimeIteratorPtr expr = prototype->Clone();
    std::vector<FlworTuple> out;
    for (auto& tuple : tuples) {
      DynamicContext scope = TupleScope(captured, tuple);
      ItemSequence values = expr->MaterializeAll(scope);
      if (values.empty() && allowing_empty) {
        FlworTuple extended = tuple;
        extended.emplace_back(variable, ItemSequence{});
        if (!position_variable.empty()) {
          extended.emplace_back(position_variable,
                                ItemSequence{item::MakeInteger(0)});
        }
        out.push_back(std::move(extended));
        continue;
      }
      std::int64_t position = 1;
      for (auto& value : values) {
        FlworTuple extended = tuple;
        extended.emplace_back(variable, ItemSequence{std::move(value)});
        if (!position_variable.empty()) {
          extended.emplace_back(position_variable,
                                ItemSequence{item::MakeInteger(position)});
        }
        ++position;
        out.push_back(std::move(extended));
      }
    }
    return out;
  });
}

/// let clause -> map.
TupleRdd ApplyLet(const TupleRdd& input, const CompiledClause& clause,
                  const DynamicContextPtr& captured) {
  RuntimeIteratorPtr prototype = clause.expr;
  std::string variable = clause.variable;
  return input.MapPartitions(
      [prototype, captured, variable](std::vector<FlworTuple>&& tuples) {
        RuntimeIteratorPtr expr = prototype->Clone();
        for (auto& tuple : tuples) {
          DynamicContext scope = TupleScope(captured, tuple);
          ItemSequence value = expr->MaterializeAll(scope);
          bool rebound = false;
          for (auto& [name, bound] : tuple) {
            if (name == variable) {
              bound = std::move(value);
              rebound = true;
              break;
            }
          }
          if (!rebound) tuple.emplace_back(variable, std::move(value));
        }
        return tuples;
      });
}

/// where clause -> filter(condition).
TupleRdd ApplyWhere(const TupleRdd& input, const CompiledClause& clause,
                    const DynamicContextPtr& captured) {
  RuntimeIteratorPtr prototype = clause.expr;
  return input.MapPartitions(
      [prototype, captured](std::vector<FlworTuple>&& tuples) {
        RuntimeIteratorPtr expr = prototype->Clone();
        std::vector<FlworTuple> out;
        for (auto& tuple : tuples) {
          DynamicContext scope = TupleScope(captured, tuple);
          if (expr->MaterializeBoolean(scope)) {
            out.push_back(std::move(tuple));
          }
        }
        return out;
      });
}

/// group-by clause -> mapToPair + groupByKey + map (Figure 9).
TupleRdd ApplyGroupBy(const TupleRdd& input, const CompiledClause& clause,
                      const DynamicContextPtr& captured) {
  // Bind grouping variables with expressions first (map).
  TupleRdd bound = input;
  for (const auto& spec : clause.group_specs) {
    if (spec.expr == nullptr) continue;
    RuntimeIteratorPtr prototype = spec.expr;
    std::string variable = spec.variable;
    bound = bound.MapPartitions(
        [prototype, captured, variable](std::vector<FlworTuple>&& tuples) {
          RuntimeIteratorPtr expr = prototype->Clone();
          for (auto& tuple : tuples) {
            DynamicContext scope = TupleScope(captured, tuple);
            tuple.emplace_back(variable, expr->MaterializeAll(scope));
          }
          return tuples;
        });
  }

  std::vector<std::string> key_variables;
  for (const auto& spec : clause.group_specs) {
    key_variables.push_back(spec.variable);
  }
  auto key_of = [key_variables](const FlworTuple& tuple) {
    std::string key;
    for (const auto& variable : key_variables) {
      const ItemSequence* value = LookupBinding(tuple, variable);
      static const ItemSequence kEmpty;
      EncodeGroupKey(value != nullptr ? *value : kEmpty, &key);
      key.push_back('\x1f');
    }
    return key;
  };

  auto grouped = bound.GroupBy<std::string>(
      key_of, std::hash<std::string>{}, std::equal_to<std::string>{},
      input.num_partitions());

  std::vector<std::pair<std::string, VarUsage>> nongroup = clause.nongroup_vars;
  return grouped.Map(
      [key_variables, nongroup](
          const std::pair<std::string, std::vector<FlworTuple>>& group) {
        const std::vector<FlworTuple>& tuples = group.second;
        FlworTuple out;
        for (const auto& variable : key_variables) {
          const ItemSequence* value = LookupBinding(tuples.front(), variable);
          out.emplace_back(variable,
                           value != nullptr ? *value : ItemSequence{});
        }
        for (const auto& [name, usage] : nongroup) {
          switch (usage) {
            case VarUsage::kUnused:
              break;
            case VarUsage::kCountOnly: {
              std::int64_t count = 0;
              for (const auto& tuple : tuples) {
                const ItemSequence* value = LookupBinding(tuple, name);
                if (value != nullptr) {
                  count += static_cast<std::int64_t>(value->size());
                }
              }
              out.emplace_back(name,
                               ItemSequence{item::MakeInteger(count)});
              break;
            }
            case VarUsage::kGeneral: {
              ItemSequence all;
              for (const auto& tuple : tuples) {
                const ItemSequence* value = LookupBinding(tuple, name);
                if (value != nullptr) {
                  all.insert(all.end(), value->begin(), value->end());
                }
              }
              out.emplace_back(name, std::move(all));
              break;
            }
          }
        }
        return out;
      });
}

/// order-by clause -> mapToPair + sortByKey + map (Figure 9).
TupleRdd ApplyOrderBy(const TupleRdd& input, const CompiledClause& clause,
                      const DynamicContextPtr& captured) {
  struct Keyed {
    std::vector<SortKeyValue> keys;
    FlworTuple tuple;
  };
  std::vector<RuntimeIteratorPtr> prototypes;
  std::vector<char> ascending;
  std::vector<char> empty_greatest;
  for (const auto& spec : clause.order_specs) {
    prototypes.push_back(spec.expr);
    ascending.push_back(spec.ascending ? 1 : 0);
    empty_greatest.push_back(spec.empty_greatest ? 1 : 0);
  }

  spark::Rdd<Keyed> keyed = input.MapPartitions(
      [prototypes, captured](std::vector<FlworTuple>&& tuples) {
        std::vector<RuntimeIteratorPtr> exprs = CloneIterators(prototypes);
        std::vector<Keyed> out;
        out.reserve(tuples.size());
        for (auto& tuple : tuples) {
          Keyed entry;
          for (const auto& expr : exprs) {
            DynamicContext scope = TupleScope(captured, tuple);
            entry.keys.push_back(
                MakeSortKeyValue(expr->MaterializeAll(scope)));
          }
          entry.tuple = std::move(tuple);
          out.push_back(std::move(entry));
        }
        return out;
      });

  spark::Rdd<Keyed> sorted = keyed.SortBy(
      [ascending, empty_greatest](const Keyed& a, const Keyed& b) {
        for (std::size_t k = 0; k < a.keys.size(); ++k) {
          int cmp = CompareSortKeys(a.keys[k], b.keys[k],
                                    empty_greatest[k] != 0);
          if (cmp != 0) return ascending[k] != 0 ? cmp < 0 : cmp > 0;
        }
        return false;
      });

  return sorted.Map([](const Keyed& entry) { return entry.tuple; });
}

/// count clause -> zipWithIndex + map (Figure 9).
TupleRdd ApplyCount(const TupleRdd& input, const CompiledClause& clause) {
  std::string variable = clause.variable;
  return input.ZipWithIndex().Map(
      [variable](const std::pair<FlworTuple, std::int64_t>& pair) {
        FlworTuple tuple = pair.first;
        tuple.emplace_back(variable,
                           ItemSequence{item::MakeInteger(pair.second + 1)});
        return tuple;
      });
}

}  // namespace

spark::Rdd<ItemPtr> ExecuteFlworOnTupleRdd(const EngineContextPtr& engine,
                                           const CompiledFlwor& flwor,
                                           const DynamicContext& context) {
  const CompiledClause& first = flwor.clauses.front();
  if (first.kind != FlworClause::Kind::kFor || !first.expr->IsRddAble()) {
    common::ThrowError(ErrorCode::kInternal,
                       "tuple-RDD FLWOR execution requires a distributed "
                       "initial for clause");
  }
  if (obs::EventBus* bus = engine->bus()) {
    bus->AddToCounter("flwor.backend.tuple_rdd", 1);
  }
  (void)engine;

  DynamicContextPtr captured = DynamicContext::Snapshot(context);

  // Initial for clause: map each input item to a one-variable tuple.
  std::string first_variable = first.variable;
  TupleRdd tuples =
      first.expr->GetRdd(context).Map([first_variable](const ItemPtr& item) {
        FlworTuple tuple;
        tuple.emplace_back(first_variable, ItemSequence{item});
        return tuple;
      });
  if (!first.position_variable.empty()) {
    std::string position_variable = first.position_variable;
    tuples = tuples.ZipWithIndex().Map(
        [position_variable](const std::pair<FlworTuple, std::int64_t>& pair) {
          FlworTuple tuple = pair.first;
          tuple.emplace_back(
              position_variable,
              ItemSequence{item::MakeInteger(pair.second + 1)});
          return tuple;
        });
  }

  for (std::size_t i = 1; i < flwor.clauses.size(); ++i) {
    const CompiledClause& clause = flwor.clauses[i];
    switch (clause.kind) {
      case FlworClause::Kind::kFor:
        tuples = ApplyFor(tuples, clause, captured);
        break;
      case FlworClause::Kind::kLet:
        tuples = ApplyLet(tuples, clause, captured);
        break;
      case FlworClause::Kind::kWhere:
        tuples = ApplyWhere(tuples, clause, captured);
        break;
      case FlworClause::Kind::kGroupBy:
        tuples = ApplyGroupBy(tuples, clause, captured);
        break;
      case FlworClause::Kind::kOrderBy:
        tuples = ApplyOrderBy(tuples, clause, captured);
        break;
      case FlworClause::Kind::kCount:
        tuples = ApplyCount(tuples, clause);
        break;
    }
  }

  // return clause -> flatMap back to items (Figure 9).
  RuntimeIteratorPtr prototype = flwor.return_expr;
  return tuples.MapPartitions(
      [prototype, captured](std::vector<FlworTuple>&& parts) {
        RuntimeIteratorPtr expr = prototype->Clone();
        ItemSequence out;
        for (auto& tuple : parts) {
          DynamicContext scope = TupleScope(captured, tuple);
          ItemSequence result = expr->MaterializeAll(scope);
          out.insert(out.end(), std::make_move_iterator(result.begin()),
                     std::make_move_iterator(result.end()));
        }
        return out;
      });
}

}  // namespace rumble::jsoniq
