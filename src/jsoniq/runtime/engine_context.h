#ifndef RUMBLE_JSONIQ_RUNTIME_ENGINE_CONTEXT_H_
#define RUMBLE_JSONIQ_RUNTIME_ENGINE_CONTEXT_H_

#include <memory>

#include "src/common/config.h"
#include "src/spark/context.h"
#include "src/util/memory_budget.h"

namespace rumble::jsoniq {

/// Immutable per-engine state shared by every runtime iterator: the
/// configuration, the minispark context (executor pool + RDD factory) and
/// the memory budget used by the local-execution baselines.
struct EngineContext {
  common::RumbleConfig config;
  std::shared_ptr<spark::Context> spark;
  std::shared_ptr<util::MemoryBudget> memory;

  /// True when iterators may offer the RDD API (Section 5.6).
  bool ParallelEnabled() const {
    return spark != nullptr && !config.force_local_execution;
  }

  /// The application event bus (null only when there is no spark context,
  /// which does not happen through MakeEngineContext).
  obs::EventBus* bus() const {
    return spark != nullptr ? &spark->bus() : nullptr;
  }
};

using EngineContextPtr = std::shared_ptr<const EngineContext>;

EngineContextPtr MakeEngineContext(common::RumbleConfig config);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUNTIME_ENGINE_CONTEXT_H_
