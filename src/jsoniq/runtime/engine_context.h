#ifndef RUMBLE_JSONIQ_RUNTIME_ENGINE_CONTEXT_H_
#define RUMBLE_JSONIQ_RUNTIME_ENGINE_CONTEXT_H_

#include <memory>

#include "src/common/config.h"
#include "src/exec/memory_manager.h"
#include "src/spark/context.h"

namespace rumble::jsoniq {

/// Immutable per-engine state shared by every runtime iterator: the
/// configuration, the minispark context (executor pool + RDD factory) and
/// the budget-mode memory manager used by the local-execution baselines
/// (Allocate throws kOutOfMemory; distinct from the spark context's
/// spill-capable manager, see docs/MEMORY.md).
struct EngineContext {
  common::RumbleConfig config;
  std::shared_ptr<spark::Context> spark;
  std::shared_ptr<exec::MemoryManager> memory;

  /// True when iterators may offer the RDD API (Section 5.6).
  bool ParallelEnabled() const {
    return spark != nullptr && !config.force_local_execution;
  }

  /// The application event bus (null only when there is no spark context,
  /// which does not happen through MakeEngineContext).
  obs::EventBus* bus() const {
    return spark != nullptr ? &spark->bus() : nullptr;
  }
};

using EngineContextPtr = std::shared_ptr<const EngineContext>;

EngineContextPtr MakeEngineContext(common::RumbleConfig config);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUNTIME_ENGINE_CONTEXT_H_
