#include <utility>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

class LiteralIterator final : public CloneableIterator<LiteralIterator> {
 public:
  const char* Name() const override { return "literal"; }
  LiteralIterator(EngineContextPtr engine, ItemPtr value)
      : CloneableIterator(std::move(engine), {}), value_(std::move(value)) {}

  item::ItemPtr ConstantValue() const override { return value_; }

 protected:
  ItemSequence Compute(const DynamicContext&) override { return {value_}; }

 private:
  ItemPtr value_;
};

class VariableRefIterator final
    : public CloneableIterator<VariableRefIterator> {
 public:
  const char* Name() const override { return "variable-ref"; }
  VariableRefIterator(EngineContextPtr engine, std::string name)
      : CloneableIterator(std::move(engine), {}), name_(std::move(name)) {}

  const ItemSequence* TryBorrow(const DynamicContext& context) override {
    return context.Lookup(name_);
  }

  bool DescribeFieldPath(ColumnFieldPath* out) const override {
    out->variable = name_;
    out->keys.clear();
    return true;
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    const ItemSequence* bound = context.Lookup(name_);
    if (bound == nullptr) {
      common::ThrowError(ErrorCode::kUndeclaredVariable,
                         "variable $" + name_ + " is not bound");
    }
    return *bound;
  }

 private:
  std::string name_;
};

class ContextItemIterator final
    : public CloneableIterator<ContextItemIterator> {
 public:
  const char* Name() const override { return "context-item"; }
  explicit ContextItemIterator(EngineContextPtr engine)
      : CloneableIterator(std::move(engine), {}) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    if (context.context_item() == nullptr) {
      common::ThrowError(ErrorCode::kAbsentContextItem,
                         "$$ used where no context item is defined");
    }
    return {context.context_item()};
  }
};

class SequenceIterator final : public CloneableIterator<SequenceIterator> {
 public:
  const char* Name() const override { return "sequence"; }
  SequenceIterator(EngineContextPtr engine,
                   std::vector<RuntimeIteratorPtr> parts)
      : CloneableIterator(std::move(engine), std::move(parts)) {}

  /// A concatenation of RDD-able parts is the union of their RDDs — used by
  /// queries reading several datasets. All parts must be RDD-able; mixing
  /// small local parts with huge distributed ones falls back to local.
  bool IsRddAble() const override {
    if (children_.empty()) return false;
    for (const auto& child : children_) {
      if (!child->IsRddAble()) return false;
    }
    return true;
  }

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    spark::Rdd<ItemPtr> result = children_.front()->GetRdd(context);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      result = result.Union(children_[i]->GetRdd(context));
    }
    return result;
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemSequence out;
    for (const auto& child : children_) {
      ItemSequence part = child->MaterializeAll(context);
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }
};

class ObjectConstructorIterator final
    : public CloneableIterator<ObjectConstructorIterator> {
 public:
  const char* Name() const override { return "object-constructor"; }
  ObjectConstructorIterator(EngineContextPtr engine,
                            std::vector<RuntimeIteratorPtr> keys,
                            std::vector<RuntimeIteratorPtr> values)
      : CloneableIterator(std::move(engine), {}), num_fields_(keys.size()) {
    children_.reserve(keys.size() + values.size());
    for (auto& key : keys) children_.push_back(std::move(key));
    for (auto& value : values) children_.push_back(std::move(value));
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    std::vector<std::pair<std::string, ItemPtr>> fields;
    fields.reserve(num_fields_);
    for (std::size_t i = 0; i < num_fields_; ++i) {
      ItemPtr key =
          children_[i]->MaterializeAtMostOne(context, "object key");
      if (key == nullptr || !key->IsString()) {
        common::ThrowError(ErrorCode::kTypeError,
                           "object constructor key must be a single string");
      }
      ItemSequence value =
          children_[num_fields_ + i]->MaterializeAll(context);
      // JSONiq pair-construction rules: () -> null, one item -> the item,
      // several items -> an array.
      ItemPtr boxed;
      if (value.empty()) {
        boxed = item::MakeNull();
      } else if (value.size() == 1) {
        boxed = value.front();
      } else {
        boxed = item::MakeArray(std::move(value));
      }
      fields.emplace_back(key->StringValue(), std::move(boxed));
    }
    return {item::MakeObject(std::move(fields), /*check_duplicates=*/true)};
  }

 private:
  std::size_t num_fields_;
};

class ArrayConstructorIterator final
    : public CloneableIterator<ArrayConstructorIterator> {
 public:
  const char* Name() const override { return "array-constructor"; }
  ArrayConstructorIterator(EngineContextPtr engine, RuntimeIteratorPtr content)
      : CloneableIterator(std::move(engine), {}) {
    if (content != nullptr) children_.push_back(std::move(content));
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemSequence members;
    if (!children_.empty()) {
      members = children_.front()->MaterializeAll(context);
    }
    return {item::MakeArray(std::move(members))};
  }
};

class StringConcatIterator final
    : public CloneableIterator<StringConcatIterator> {
 public:
  const char* Name() const override { return "string-concat"; }
  StringConcatIterator(EngineContextPtr engine,
                       std::vector<RuntimeIteratorPtr> parts)
      : CloneableIterator(std::move(engine), std::move(parts)) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    std::string out;
    for (const auto& child : children_) {
      ItemPtr value = child->MaterializeAtMostOne(context, "||");
      if (value == nullptr || value->IsNull()) continue;  // () and null -> ""
      if (value->IsString()) {
        out += value->StringValue();
      } else if (value->IsAtomic()) {
        out += value->Serialize();
      } else {
        common::ThrowError(ErrorCode::kTypeError,
                           "|| operand must be an atomic or empty");
      }
    }
    return {item::MakeString(std::move(out))};
  }
};

}  // namespace

RuntimeIteratorPtr MakeLiteralIterator(EngineContextPtr engine,
                                       ItemPtr value) {
  return std::make_shared<LiteralIterator>(std::move(engine),
                                           std::move(value));
}

RuntimeIteratorPtr MakeVariableRefIterator(EngineContextPtr engine,
                                           std::string name) {
  return std::make_shared<VariableRefIterator>(std::move(engine),
                                               std::move(name));
}

RuntimeIteratorPtr MakeContextItemIterator(EngineContextPtr engine) {
  return std::make_shared<ContextItemIterator>(std::move(engine));
}

RuntimeIteratorPtr MakeSequenceIterator(
    EngineContextPtr engine, std::vector<RuntimeIteratorPtr> parts) {
  return std::make_shared<SequenceIterator>(std::move(engine),
                                            std::move(parts));
}

RuntimeIteratorPtr MakeObjectConstructorIterator(
    EngineContextPtr engine, std::vector<RuntimeIteratorPtr> keys,
    std::vector<RuntimeIteratorPtr> values) {
  return std::make_shared<ObjectConstructorIterator>(
      std::move(engine), std::move(keys), std::move(values));
}

RuntimeIteratorPtr MakeArrayConstructorIterator(EngineContextPtr engine,
                                                RuntimeIteratorPtr content) {
  return std::make_shared<ArrayConstructorIterator>(std::move(engine),
                                                    std::move(content));
}

RuntimeIteratorPtr MakeStringConcatIterator(
    EngineContextPtr engine, std::vector<RuntimeIteratorPtr> parts) {
  return std::make_shared<StringConcatIterator>(std::move(engine),
                                                std::move(parts));
}

}  // namespace rumble::jsoniq
