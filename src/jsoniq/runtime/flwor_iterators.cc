#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/common/error.h"
#include "src/exec/cancellation.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/flwor.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

CompiledClause::GroupSpec CloneGroupSpec(const CompiledClause::GroupSpec& spec) {
  CompiledClause::GroupSpec out = spec;
  if (out.expr) out.expr = out.expr->Clone();
  return out;
}

CompiledClause CloneClause(const CompiledClause& clause) {
  CompiledClause out = clause;
  if (out.expr) out.expr = out.expr->Clone();
  out.group_specs.clear();
  for (const auto& spec : clause.group_specs) {
    out.group_specs.push_back(CloneGroupSpec(spec));
  }
  out.order_specs.clear();
  for (const auto& spec : clause.order_specs) {
    CompiledClause::OrderSpec copy = spec;
    if (copy.expr) copy.expr = copy.expr->Clone();
    out.order_specs.push_back(std::move(copy));
  }
  return out;
}

CompiledFlwor CloneFlwor(const CompiledFlwor& flwor) {
  CompiledFlwor out;
  out.clauses.reserve(flwor.clauses.size());
  for (const auto& clause : flwor.clauses) {
    out.clauses.push_back(CloneClause(clause));
  }
  out.return_expr = flwor.return_expr->Clone();
  out.return_free_vars = flwor.return_free_vars;
  return out;
}

/// Approximate footprint of a tuple including the bound items' payloads,
/// for the memory budget charged by the single-threaded baselines
/// (Figure 12's out-of-memory reproduction). Items are shared between
/// tuples in reality; charging their full size per tuple models engines
/// that materialize copies into their stores, which is what the simulated
/// engines' blocking operators do.
std::size_t TupleFootprint(const FlworTuple& tuple) {
  std::size_t total = sizeof(FlworTuple);
  for (const auto& [name, value] : tuple) {
    total += name.size() + 32 + value.size() * sizeof(ItemPtr);
    for (const auto& item : value) {
      total += item->FootprintBytes();
    }
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared key helpers
// ---------------------------------------------------------------------------

void EncodeGroupKey(const ItemSequence& value, std::string* out) {
  if (value.empty()) {
    out->push_back('\x00');
    return;
  }
  if (value.size() > 1) {
    common::ThrowError(ErrorCode::kInvalidGroupingKey,
                       "grouping key bound to more than one item");
  }
  const item::Item& key = *value.front();
  switch (key.type()) {
    case item::ItemType::kNull:
      out->push_back('\x01');
      return;
    case item::ItemType::kBoolean:
      out->push_back(key.BooleanValue() ? '\x03' : '\x02');
      return;
    case item::ItemType::kInteger:
    case item::ItemType::kDecimal:
    case item::ItemType::kDouble: {
      out->push_back('\x04');
      double numeric = key.NumericValue();
      if (numeric == 0.0) numeric = 0.0;  // normalize -0.0
      char bytes[sizeof(double)];
      std::memcpy(bytes, &numeric, sizeof(double));
      out->append(bytes, sizeof(double));
      return;
    }
    case item::ItemType::kString:
      out->push_back('\x05');
      out->append(key.StringValue());
      return;
    default:
      common::ThrowError(ErrorCode::kInvalidGroupingKey,
                         "grouping key must be an atomic, found " +
                             std::string(item::ItemTypeName(key.type())));
  }
}

SortKeyValue MakeSortKeyValue(const ItemSequence& value) {
  if (value.empty()) return std::nullopt;
  if (value.size() > 1 || !value.front()->IsAtomic()) {
    common::ThrowError(
        ErrorCode::kInvalidSortKey,
        "order-by key must be a single atomic or the empty sequence");
  }
  return value.front();
}

int CompareSortKeys(const SortKeyValue& left, const SortKeyValue& right,
                    bool empty_greatest) {
  bool le = !left.has_value();
  bool re = !right.has_value();
  if (le || re) {
    if (le && re) return 0;
    int empty_side = empty_greatest ? 1 : -1;
    return le ? empty_side : -empty_side;
  }
  return item::CompareAtomics(**left, **right);
}

std::int64_t SortKeyTypeTag(const SortKeyValue& value, bool empty_greatest) {
  if (!value.has_value()) return empty_greatest ? 7 : 1;
  switch ((*value)->type()) {
    case item::ItemType::kNull: return 2;
    case item::ItemType::kBoolean: return (*value)->BooleanValue() ? 4 : 3;
    default: return 5;
  }
}

void BindTuple(const FlworTuple& tuple, DynamicContext* context) {
  for (const auto& [name, value] : tuple) {
    context->Bind(name, value);
  }
}

// ---------------------------------------------------------------------------
// Local (pull-based) tuple pipeline — paper Section 5.5
// ---------------------------------------------------------------------------

namespace {

class LocalFlworPipeline {
 public:
  LocalFlworPipeline(const EngineContextPtr& engine,
                     const CompiledFlwor& flwor,
                     const DynamicContext& context)
      : engine_(engine), flwor_(flwor), context_(context) {}

  ItemSequence Run() {
    std::vector<FlworTuple> tuples;
    tuples.emplace_back();  // the initial tuple stream: one empty tuple
    for (const auto& clause : flwor_.clauses) {
      // Clause boundaries are the local pipeline's cancellation points —
      // the equivalent of the task boundaries the executor pool checks.
      CancelCheck();
      switch (clause.kind) {
        case FlworClause::Kind::kFor: tuples = RunFor(clause, tuples); break;
        case FlworClause::Kind::kLet: tuples = RunLet(clause, tuples); break;
        case FlworClause::Kind::kWhere:
          tuples = RunWhere(clause, tuples);
          break;
        case FlworClause::Kind::kGroupBy:
          tuples = RunGroupBy(clause, tuples);
          break;
        case FlworClause::Kind::kOrderBy:
          tuples = RunOrderBy(clause, tuples);
          break;
        case FlworClause::Kind::kCount:
          tuples = RunCount(clause, tuples);
          break;
      }
    }
    ItemSequence out;
    for (const auto& tuple : tuples) {
      DynamicContext scope(&context_);
      BindTuple(tuple, &scope);
      ItemSequence part = flwor_.return_expr->MaterializeAll(scope);
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }

 private:
  void CancelCheck() {
    if (engine_->spark != nullptr) {
      engine_->spark->cancellation().Check();
    }
  }

  void Charge(const FlworTuple& tuple) {
    // Blocking operators call Charge once per held tuple, which makes it a
    // natural rate-limited cancellation point inside long tuple loops.
    if ((++charge_calls_ & 0x3FF) == 0) CancelCheck();
    if (engine_->memory != nullptr) {
      engine_->memory->Allocate(TupleFootprint(tuple));
    }
  }

  ItemSequence Evaluate(const RuntimeIteratorPtr& expr,
                        const FlworTuple& tuple) {
    DynamicContext scope(&context_);
    BindTuple(tuple, &scope);
    return expr->MaterializeAll(scope);
  }

  std::vector<FlworTuple> RunFor(const CompiledClause& clause,
                                 const std::vector<FlworTuple>& input) {
    std::vector<FlworTuple> out;
    for (const auto& tuple : input) {
      ItemSequence values = Evaluate(clause.expr, tuple);
      if (values.empty() && clause.allowing_empty) {
        FlworTuple extended = tuple;
        extended.emplace_back(clause.variable, ItemSequence{});
        if (!clause.position_variable.empty()) {
          extended.emplace_back(clause.position_variable,
                                ItemSequence{item::MakeInteger(0)});
        }
        out.push_back(std::move(extended));
        continue;
      }
      std::int64_t position = 1;
      for (auto& value : values) {
        FlworTuple extended = tuple;
        extended.emplace_back(clause.variable, ItemSequence{std::move(value)});
        if (!clause.position_variable.empty()) {
          extended.emplace_back(clause.position_variable,
                                ItemSequence{item::MakeInteger(position)});
        }
        ++position;
        out.push_back(std::move(extended));
      }
    }
    return out;
  }

  std::vector<FlworTuple> RunLet(const CompiledClause& clause,
                                 std::vector<FlworTuple> input) {
    for (auto& tuple : input) {
      ItemSequence value = Evaluate(clause.expr, tuple);
      // Variable redeclaration rebinds (Section 4.5).
      bool rebound = false;
      for (auto& [name, bound] : tuple) {
        if (name == clause.variable) {
          bound = std::move(value);
          rebound = true;
          break;
        }
      }
      if (!rebound) {
        tuple.emplace_back(clause.variable, std::move(value));
      }
    }
    return input;
  }

  std::vector<FlworTuple> RunWhere(const CompiledClause& clause,
                                   std::vector<FlworTuple> input) {
    std::vector<FlworTuple> out;
    for (auto& tuple : input) {
      ItemSequence value = Evaluate(clause.expr, tuple);
      if (item::EffectiveBooleanValue(value)) {
        out.push_back(std::move(tuple));
      }
    }
    return out;
  }

  std::vector<FlworTuple> RunGroupBy(const CompiledClause& clause,
                                     std::vector<FlworTuple> input) {
    // Bind grouping variables that come with expressions.
    for (auto& tuple : input) {
      for (const auto& spec : clause.group_specs) {
        if (spec.expr == nullptr) continue;
        ItemSequence value = Evaluate(spec.expr, tuple);
        tuple.emplace_back(spec.variable, std::move(value));
      }
    }

    struct Group {
      FlworTuple witness_keys;
      std::vector<FlworTuple> tuples;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, std::size_t> index;

    auto lookup_binding =
        [](const FlworTuple& tuple,
           const std::string& name) -> const ItemSequence* {
      // Last binding wins (redeclaration).
      for (auto it = tuple.rbegin(); it != tuple.rend(); ++it) {
        if (it->first == name) return &it->second;
      }
      return nullptr;
    };

    for (auto& tuple : input) {
      // Group-by is a blocking operator: every tuple is held in memory
      // simultaneously, so the budget is charged here (Figure 12's
      // out-of-memory model; see DESIGN.md).
      Charge(tuple);
      std::string key;
      FlworTuple witness;
      for (const auto& spec : clause.group_specs) {
        const ItemSequence* value = lookup_binding(tuple, spec.variable);
        static const ItemSequence kEmpty;
        const ItemSequence& bound = value != nullptr ? *value : kEmpty;
        EncodeGroupKey(bound, &key);
        key.push_back('\x1f');
        witness.emplace_back(spec.variable, bound);
      }
      auto [it, inserted] = index.try_emplace(key, groups.size());
      if (inserted) {
        groups.push_back(Group{std::move(witness), {}});
      }
      groups[it->second].tuples.push_back(std::move(tuple));
    }

    std::vector<FlworTuple> out;
    out.reserve(groups.size());
    for (auto& group : groups) {
      FlworTuple result = std::move(group.witness_keys);
      for (const auto& [name, usage] : clause.nongroup_vars) {
        switch (usage) {
          case VarUsage::kUnused:
            break;
          case VarUsage::kCountOnly: {
            std::int64_t count = 0;
            for (const auto& tuple : group.tuples) {
              const ItemSequence* value = lookup_binding(tuple, name);
              if (value != nullptr) {
                count += static_cast<std::int64_t>(value->size());
              }
            }
            result.emplace_back(name, ItemSequence{item::MakeInteger(count)});
            break;
          }
          case VarUsage::kGeneral: {
            ItemSequence all;
            for (const auto& tuple : group.tuples) {
              const ItemSequence* value = lookup_binding(tuple, name);
              if (value != nullptr) {
                all.insert(all.end(), value->begin(), value->end());
              }
            }
            result.emplace_back(name, std::move(all));
            break;
          }
        }
      }
      Charge(result);
      out.push_back(std::move(result));
    }
    return out;
  }

  std::vector<FlworTuple> RunOrderBy(const CompiledClause& clause,
                                     std::vector<FlworTuple> input) {
    struct Keyed {
      std::vector<SortKeyValue> keys;
      std::size_t original;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
      Keyed entry;
      entry.original = i;
      for (const auto& spec : clause.order_specs) {
        entry.keys.push_back(
            MakeSortKeyValue(Evaluate(spec.expr, input[i])));
      }
      Charge(input[i]);
      keyed.push_back(std::move(entry));
    }
    std::stable_sort(
        keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
          for (std::size_t k = 0; k < clause.order_specs.size(); ++k) {
            const auto& spec = clause.order_specs[k];
            int cmp = CompareSortKeys(a.keys[k], b.keys[k],
                                      spec.empty_greatest);
            if (cmp != 0) return spec.ascending ? cmp < 0 : cmp > 0;
          }
          return false;
        });
    std::vector<FlworTuple> out;
    out.reserve(input.size());
    for (const auto& entry : keyed) {
      out.push_back(std::move(input[entry.original]));
    }
    return out;
  }

  std::vector<FlworTuple> RunCount(const CompiledClause& clause,
                                   std::vector<FlworTuple> input) {
    std::int64_t position = 1;
    for (auto& tuple : input) {
      tuple.emplace_back(clause.variable,
                         ItemSequence{item::MakeInteger(position++)});
    }
    return input;
  }

  const EngineContextPtr& engine_;
  const CompiledFlwor& flwor_;
  const DynamicContext& context_;
  std::uint64_t charge_calls_ = 0;
};

// ---------------------------------------------------------------------------
// FLWOR expression iterator — backend switching (Sections 5.5, 5.8)
// ---------------------------------------------------------------------------

const char* ClauseKindName(FlworClause::Kind kind) {
  switch (kind) {
    case FlworClause::Kind::kFor: return "for";
    case FlworClause::Kind::kLet: return "let";
    case FlworClause::Kind::kWhere: return "where";
    case FlworClause::Kind::kGroupBy: return "group-by";
    case FlworClause::Kind::kOrderBy: return "order-by";
    case FlworClause::Kind::kCount: return "count";
  }
  return "clause";
}

class FlworExpressionIterator final : public RuntimeIterator {
 public:
  FlworExpressionIterator(EngineContextPtr engine, CompiledFlwor flwor)
      : RuntimeIterator(std::move(engine), {}), flwor_(std::move(flwor)) {}

  const char* Name() const override { return "flwor"; }

  std::string ExecModeTag() const override {
    if (!IsRddAble()) return "local";
    return engine_->config.flwor_backend == common::FlworBackend::kTupleRdd
               ? "RDD(tuple)"
               : "DF";
  }

  /// EXPLAIN: clauses with their nested expression subtrees, the return
  /// expression, and — on the DataFrame backend — the translated logical
  /// plan. Never executes the query.
  void ExplainTree(const DynamicContext& context, int depth,
                   std::string* out,
                   const ExplainOptions& options) const override {
    std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    out->append(indent);
    out->append("flwor [");
    out->append(ExecModeTag());
    out->append("]");
    if (options.analyze) AppendAnalyzeAnnotation(options, out);
    out->append("\n");
    for (const auto& clause : flwor_.clauses) {
      out->append(indent);
      out->append("  ");
      out->append(ClauseKindName(clause.kind));
      if (!clause.variable.empty()) out->append(" $" + clause.variable);
      out->append("\n");
      if (clause.expr != nullptr) {
        clause.expr->ExplainTree(context, depth + 2, out, options);
      }
      for (const auto& spec : clause.group_specs) {
        if (spec.expr != nullptr) {
          spec.expr->ExplainTree(context, depth + 2, out, options);
        }
      }
      for (const auto& spec : clause.order_specs) {
        if (spec.expr != nullptr) {
          spec.expr->ExplainTree(context, depth + 2, out, options);
        }
      }
    }
    out->append(indent);
    out->append("  return\n");
    if (flwor_.return_expr != nullptr) {
      flwor_.return_expr->ExplainTree(context, depth + 2, out, options);
    }
    if (IsRddAble() &&
        engine_->config.flwor_backend == common::FlworBackend::kDataFrame) {
      try {
        std::string plan = ExplainFlworOnDataFrames(engine_, flwor_, context);
        out->append(indent);
        out->append("  dataframe plan:\n");
        std::size_t start = 0;
        while (start < plan.size()) {
          std::size_t end = plan.find('\n', start);
          if (end == std::string::npos) end = plan.size();
          out->append(indent);
          out->append("    ");
          out->append(plan, start, end - start);
          out->push_back('\n');
          start = end + 1;
        }
      } catch (const std::exception& error) {
        // Plan translation touches input metadata (split planning); a
        // missing file must not make EXPLAIN itself fail.
        out->append(indent);
        out->append("  dataframe plan: <unavailable: ");
        out->append(error.what());
        out->append(">\n");
      }
    }
  }

  bool IsRddAble() const override {
    if (!engine_->ParallelEnabled()) return false;
    if (engine_->config.flwor_backend == common::FlworBackend::kLocalOnly) {
      return false;
    }
    const CompiledClause& first = flwor_.clauses.front();
    // `allowing empty` on the initial clause must yield one tuple when the
    // whole input is empty — a driver-side decision, so it stays local.
    return first.kind == FlworClause::Kind::kFor &&
           !first.allowing_empty && first.expr->IsRddAble();
  }

  spark::Rdd<item::ItemPtr> GetRdd(const DynamicContext& context) override {
    if (engine_->config.flwor_backend == common::FlworBackend::kTupleRdd) {
      return ExecuteFlworOnTupleRdd(engine_, flwor_, context);
    }
    return ExecuteFlworOnDataFrames(engine_, flwor_, context);
  }

  RuntimeIteratorPtr Clone() const override {
    auto copy = std::make_shared<FlworExpressionIterator>(engine_,
                                                          CloneFlwor(flwor_));
    // A fresh object, not a copy: adopt this node's shared stats so work a
    // clone does on an executor shows up under this plan node in ANALYZE.
    copy->ShareObservability(*this);
    return copy;
  }

 protected:
  void AppendStatChildren(
      std::vector<const RuntimeIterator*>* out) const override {
    // Nested iterators live out-of-band in the clause list, not children_.
    for (const auto& clause : flwor_.clauses) {
      if (clause.expr != nullptr) out->push_back(clause.expr.get());
      for (const auto& spec : clause.group_specs) {
        if (spec.expr != nullptr) out->push_back(spec.expr.get());
      }
      for (const auto& spec : clause.order_specs) {
        if (spec.expr != nullptr) out->push_back(spec.expr.get());
      }
    }
    if (flwor_.return_expr != nullptr) {
      out->push_back(flwor_.return_expr.get());
    }
  }

  ItemSequence Compute(const DynamicContext& context) override {
    if (IsRddAble()) {
      // Collected through Spark, then served locally (Section 5.5).
      return MaterializeViaRdd(context);
    }
    if (obs::EventBus* bus = engine_->bus()) {
      bus->AddToCounter("flwor.backend.local", 1);
    }
    return LocalFlworPipeline(engine_, flwor_, context).Run();
  }

 private:
  ItemSequence MaterializeViaRdd(const DynamicContext& context) {
    ItemSequence items = GetRdd(context).Collect();
    const auto& config = engine_->config;
    if (items.size() > config.materialization_cap && !config.warn_only_on_cap) {
      common::ThrowError(
          ErrorCode::kMaterializationCap,
          "materialized " + std::to_string(items.size()) + " items; cap is " +
              std::to_string(config.materialization_cap));
    }
    return items;
  }

  CompiledFlwor flwor_;
};

}  // namespace

RuntimeIteratorPtr MakeFlworIterator(EngineContextPtr engine,
                                     CompiledFlwor flwor) {
  return std::make_shared<FlworExpressionIterator>(std::move(engine),
                                                   std::move(flwor));
}

}  // namespace rumble::jsoniq
