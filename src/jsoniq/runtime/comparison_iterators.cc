#include <utility>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

bool IsValueOp(CompareOp op) {
  switch (op) {
    case CompareOp::kValueEq:
    case CompareOp::kValueNe:
    case CompareOp::kValueLt:
    case CompareOp::kValueLe:
    case CompareOp::kValueGt:
    case CompareOp::kValueGe:
      return true;
    default:
      return false;
  }
}

enum class Relation { kEq, kNe, kLt, kLe, kGt, kGe };

Relation RelationOf(CompareOp op) {
  switch (op) {
    case CompareOp::kValueEq:
    case CompareOp::kGeneralEq: return Relation::kEq;
    case CompareOp::kValueNe:
    case CompareOp::kGeneralNe: return Relation::kNe;
    case CompareOp::kValueLt:
    case CompareOp::kGeneralLt: return Relation::kLt;
    case CompareOp::kValueLe:
    case CompareOp::kGeneralLe: return Relation::kLe;
    case CompareOp::kValueGt:
    case CompareOp::kGeneralGt: return Relation::kGt;
    case CompareOp::kValueGe:
    case CompareOp::kGeneralGe: return Relation::kGe;
  }
  return Relation::kEq;
}

/// Compares two atomic items under a relation. Equality across incompatible
/// atomic families is false (messy data must not error on eq/ne — the
/// behaviour the paper's heterogeneity examples rely on); ordering across
/// incompatible families raises a type error, per the JSONiq spec.
bool CompareItems(const item::Item& left, const item::Item& right,
                  Relation relation) {
  if (!left.IsAtomic() || !right.IsAtomic()) {
    common::ThrowError(ErrorCode::kTypeError,
                       "comparison operands must be atomic values");
  }
  switch (relation) {
    case Relation::kEq: return item::AtomicEquals(left, right);
    case Relation::kNe: return !item::AtomicEquals(left, right);
    default: break;
  }
  int cmp = item::CompareAtomics(left, right);
  switch (relation) {
    case Relation::kLt: return cmp < 0;
    case Relation::kLe: return cmp <= 0;
    case Relation::kGt: return cmp > 0;
    case Relation::kGe: return cmp >= 0;
    default: return false;
  }
}

class ComparisonIterator final : public CloneableIterator<ComparisonIterator> {
 public:
  const char* Name() const override { return "comparison"; }
  ComparisonIterator(EngineContextPtr engine, CompareOp op,
                     RuntimeIteratorPtr left, RuntimeIteratorPtr right)
      : CloneableIterator(std::move(engine),
                          {std::move(left), std::move(right)}),
        op_(op) {}

  bool DescribeComparison(ComparisonShape* out) const override {
    out->op = op_;
    out->left = children_[0].get();
    out->right = children_[1].get();
    return true;
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    if (IsValueOp(op_)) {
      ItemPtr left =
          children_[0]->MaterializeAtMostOne(context, "value comparison");
      ItemPtr right =
          children_[1]->MaterializeAtMostOne(context, "value comparison");
      // Value comparison with an empty operand yields the empty sequence.
      if (left == nullptr || right == nullptr) return {};
      return {item::MakeBoolean(CompareItems(*left, *right, RelationOf(op_)))};
    }
    // General comparison: existential over both sequences.
    ItemSequence left = children_[0]->MaterializeAll(context);
    ItemSequence right = children_[1]->MaterializeAll(context);
    Relation relation = RelationOf(op_);
    for (const auto& l : left) {
      for (const auto& r : right) {
        if (CompareItems(*l, *r, relation)) {
          return {item::MakeBoolean(true)};
        }
      }
    }
    return {item::MakeBoolean(false)};
  }

 private:
  CompareOp op_;
};

}  // namespace

bool IsValueCompareOp(CompareOp op) { return IsValueOp(op); }

bool CompareItemsForOp(const item::Item& left, const item::Item& right,
                       CompareOp op) {
  return CompareItems(left, right, RelationOf(op));
}

RuntimeIteratorPtr MakeComparisonIterator(EngineContextPtr engine,
                                          CompareOp op,
                                          RuntimeIteratorPtr left,
                                          RuntimeIteratorPtr right) {
  return std::make_shared<ComparisonIterator>(std::move(engine), op,
                                              std::move(left),
                                              std::move(right));
}

}  // namespace rumble::jsoniq
