#include <utility>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"
#include "src/jsoniq/sequence_type.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

class IfIterator final : public CloneableIterator<IfIterator> {
 public:
  const char* Name() const override { return "if"; }
  IfIterator(EngineContextPtr engine, RuntimeIteratorPtr condition,
             RuntimeIteratorPtr then_branch, RuntimeIteratorPtr else_branch)
      : CloneableIterator(std::move(engine),
                          {std::move(condition), std::move(then_branch),
                           std::move(else_branch)}) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    bool condition = children_[0]->MaterializeBoolean(context);
    return children_[condition ? 1 : 2]->MaterializeAll(context);
  }
};

/// switch: the operand atomizes to at most one atomic; the first case whose
/// key equals it (empty matches empty, equality per AtomicEquals) wins.
class SwitchIterator final : public CloneableIterator<SwitchIterator> {
 public:
  const char* Name() const override { return "switch"; }
  SwitchIterator(EngineContextPtr engine,
                 std::vector<RuntimeIteratorPtr> parts)
      : CloneableIterator(std::move(engine), std::move(parts)) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemPtr operand =
        children_.front()->MaterializeAtMostOne(context, "switch operand");
    if (operand != nullptr && !operand->IsAtomic()) {
      common::ThrowError(ErrorCode::kTypeError,
                         "switch operand must be an atomic or empty");
    }
    // children: operand, (key, value)*, default.
    for (std::size_t i = 1; i + 1 < children_.size(); i += 2) {
      ItemPtr key =
          children_[i]->MaterializeAtMostOne(context, "switch case");
      bool matches;
      if (operand == nullptr || key == nullptr) {
        matches = operand == nullptr && key == nullptr;
      } else {
        matches = key->IsAtomic() && item::AtomicEquals(*operand, *key);
      }
      if (matches) {
        return children_[i + 1]->MaterializeAll(context);
      }
    }
    return children_.back()->MaterializeAll(context);
  }
};

class TryCatchIterator final : public CloneableIterator<TryCatchIterator> {
 public:
  const char* Name() const override { return "try-catch"; }
  TryCatchIterator(EngineContextPtr engine, RuntimeIteratorPtr body,
                   RuntimeIteratorPtr handler)
      : CloneableIterator(std::move(engine),
                          {std::move(body), std::move(handler)}) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    try {
      return children_[0]->MaterializeAll(context);
    } catch (const common::RumbleException& error) {
      // Static errors and engine invariants are not catchable, per spec.
      if (error.IsStaticError() ||
          error.code() == ErrorCode::kInternal) {
        throw;
      }
      return children_[1]->MaterializeAll(context);
    }
  }
};

class QuantifiedIterator final : public CloneableIterator<QuantifiedIterator> {
 public:
  const char* Name() const override { return "quantified"; }
  QuantifiedIterator(EngineContextPtr engine, QuantifierKind kind,
                     std::vector<std::string> variables,
                     std::vector<RuntimeIteratorPtr> bindings,
                     RuntimeIteratorPtr satisfies)
      : CloneableIterator(std::move(engine), {}),
        kind_(kind),
        variables_(std::move(variables)) {
    children_ = std::move(bindings);
    children_.push_back(std::move(satisfies));
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    bool result = Recurse(context, 0);
    return {item::MakeBoolean(result)};
  }

 private:
  /// Depth-first product over binding sequences: some -> exists a binding
  /// satisfying; every -> all bindings satisfy.
  bool Recurse(const DynamicContext& context, std::size_t depth) {
    if (depth == variables_.size()) {
      return children_.back()->MaterializeBoolean(context);
    }
    ItemSequence values = children_[depth]->MaterializeAll(context);
    for (const auto& value : values) {
      DynamicContext scope(&context);
      scope.Bind(variables_[depth], {value});
      bool satisfied = Recurse(scope, depth + 1);
      if (kind_ == QuantifierKind::kSome && satisfied) return true;
      if (kind_ == QuantifierKind::kEvery && !satisfied) return false;
    }
    return kind_ == QuantifierKind::kEvery;
  }

  QuantifierKind kind_;
  std::vector<std::string> variables_;
};

class InstanceOfIterator final : public CloneableIterator<InstanceOfIterator> {
 public:
  const char* Name() const override { return "instance-of"; }
  InstanceOfIterator(EngineContextPtr engine, RuntimeIteratorPtr child,
                     SequenceType type)
      : CloneableIterator(std::move(engine), {std::move(child)}),
        type_(type) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemSequence value = children_[0]->MaterializeAll(context);
    return {item::MakeBoolean(SequenceMatchesType(value, type_))};
  }

 private:
  SequenceType type_;
};

class TreatAsIterator final : public CloneableIterator<TreatAsIterator> {
 public:
  const char* Name() const override { return "treat-as"; }
  TreatAsIterator(EngineContextPtr engine, RuntimeIteratorPtr child,
                  SequenceType type)
      : CloneableIterator(std::move(engine), {std::move(child)}),
        type_(type) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemSequence value = children_[0]->MaterializeAll(context);
    if (!SequenceMatchesType(value, type_)) {
      common::ThrowError(ErrorCode::kTypeError,
                         "treat as " + type_.ToString() +
                             ": value does not match the type");
    }
    return value;
  }

 private:
  SequenceType type_;
};

class CastAsIterator final : public CloneableIterator<CastAsIterator> {
 public:
  const char* Name() const override { return "cast-as"; }
  CastAsIterator(EngineContextPtr engine, RuntimeIteratorPtr child,
                 SequenceType type)
      : CloneableIterator(std::move(engine), {std::move(child)}),
        type_(type) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemPtr value = children_[0]->MaterializeAtMostOne(context, "cast as");
    if (value == nullptr) {
      if (type_.arity == Arity::kOptional) return {};
      common::ThrowError(ErrorCode::kTypeError,
                         "cast as " + type_.ToString() +
                             " of the empty sequence");
    }
    return {CastAtomic(value, type_.type)};
  }

 private:
  SequenceType type_;
};

}  // namespace

RuntimeIteratorPtr MakeIfIterator(EngineContextPtr engine,
                                  RuntimeIteratorPtr condition,
                                  RuntimeIteratorPtr then_branch,
                                  RuntimeIteratorPtr else_branch) {
  return std::make_shared<IfIterator>(std::move(engine), std::move(condition),
                                      std::move(then_branch),
                                      std::move(else_branch));
}

RuntimeIteratorPtr MakeSwitchIterator(EngineContextPtr engine,
                                      std::vector<RuntimeIteratorPtr> parts) {
  return std::make_shared<SwitchIterator>(std::move(engine), std::move(parts));
}

RuntimeIteratorPtr MakeTryCatchIterator(EngineContextPtr engine,
                                        RuntimeIteratorPtr body,
                                        RuntimeIteratorPtr handler) {
  return std::make_shared<TryCatchIterator>(std::move(engine),
                                            std::move(body),
                                            std::move(handler));
}

RuntimeIteratorPtr MakeQuantifiedIterator(
    EngineContextPtr engine, QuantifierKind kind,
    std::vector<std::string> variables,
    std::vector<RuntimeIteratorPtr> bindings, RuntimeIteratorPtr satisfies) {
  return std::make_shared<QuantifiedIterator>(
      std::move(engine), kind, std::move(variables), std::move(bindings),
      std::move(satisfies));
}

RuntimeIteratorPtr MakeInstanceOfIterator(EngineContextPtr engine,
                                          RuntimeIteratorPtr child,
                                          SequenceType type) {
  return std::make_shared<InstanceOfIterator>(std::move(engine),
                                              std::move(child), type);
}

RuntimeIteratorPtr MakeTreatAsIterator(EngineContextPtr engine,
                                       RuntimeIteratorPtr child,
                                       SequenceType type) {
  return std::make_shared<TreatAsIterator>(std::move(engine),
                                           std::move(child), type);
}

RuntimeIteratorPtr MakeCastAsIterator(EngineContextPtr engine,
                                      RuntimeIteratorPtr child,
                                      SequenceType type) {
  return std::make_shared<CastAsIterator>(std::move(engine), std::move(child),
                                          type);
}

}  // namespace rumble::jsoniq
