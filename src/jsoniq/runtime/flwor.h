#ifndef RUMBLE_JSONIQ_RUNTIME_FLWOR_H_
#define RUMBLE_JSONIQ_RUNTIME_FLWOR_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/jsoniq/ast.h"
#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

/// A FLWOR tuple: variable-name -> materialized sequence bindings (paper
/// Section 4.2 — not a database tuple). Kept as a small vector: tuples
/// rarely carry more than a handful of variables.
using FlworTuple = std::vector<std::pair<std::string, item::ItemSequence>>;

/// How a non-grouping variable is consumed downstream of a group-by clause
/// (paper Section 4.7): materialized as a sequence, only ever counted, or
/// never used.
enum class VarUsage { kGeneral, kCountOnly, kUnused };

/// One compiled FLWOR clause: AST metadata plus prebuilt runtime iterators
/// for the nested expressions. Produced by the iterator builder; consumed by
/// all three tuple-stream backends (local pull, DataFrame, RDD-of-tuples).
struct CompiledClause {
  FlworClause::Kind kind = FlworClause::Kind::kFor;

  // kFor / kLet / kCount
  std::string variable;
  std::string position_variable;  // kFor only
  bool allowing_empty = false;    // kFor only
  RuntimeIteratorPtr expr;        // kFor / kLet binding, kWhere condition
  /// Variables the expression references (drives DataFrame column pruning).
  std::vector<std::string> free_vars;

  // kGroupBy
  struct GroupSpec {
    std::string variable;
    RuntimeIteratorPtr expr;  // null: group by an already-bound variable
    std::vector<std::string> free_vars;
  };
  std::vector<GroupSpec> group_specs;
  /// Usage classification for every non-grouping live variable.
  std::vector<std::pair<std::string, VarUsage>> nongroup_vars;

  // kOrderBy
  struct OrderSpec {
    RuntimeIteratorPtr expr;
    bool ascending = true;
    bool empty_greatest = false;
    std::vector<std::string> free_vars;
  };
  std::vector<OrderSpec> order_specs;
};

/// A fully compiled FLWOR expression.
struct CompiledFlwor {
  std::vector<CompiledClause> clauses;
  RuntimeIteratorPtr return_expr;
  std::vector<std::string> return_free_vars;
};

/// Creates the FLWOR expression iterator, which switches between local
/// pull-based execution and the configured distributed backend (paper
/// Sections 5.5 and 5.8).
RuntimeIteratorPtr MakeFlworIterator(EngineContextPtr engine,
                                     CompiledFlwor flwor);

// ---- Helpers shared by the three backends ---------------------------------

/// Validates a grouping value (at most one atomic item) and appends its
/// canonical byte encoding to `out`. Equal atomics encode equally across
/// numeric kinds (1 == 1.0), matching JSONiq group-by semantics.
void EncodeGroupKey(const item::ItemSequence& value, std::string* out);

/// An order-by key value: empty optional = the empty sequence.
using SortKeyValue = std::optional<item::ItemPtr>;

/// Validates an order-by key (at most one atomic item; kInvalidSortKey on
/// arrays/objects or multi-item sequences).
SortKeyValue MakeSortKeyValue(const item::ItemSequence& value);

/// Three-way comparison of two sort keys under one order spec's empty
/// handling (ascending is applied by the caller). Throws
/// kIncompatibleSortKeys across families, per Section 4.8.
int CompareSortKeys(const SortKeyValue& left, const SortKeyValue& right,
                    bool empty_greatest);

/// The paper's Section 4.7/4.8 native type tag for a key value: 1 empty (or
/// 7 when empty sorts greatest), 2 null, 3 false, 4 true, 5 string/number
/// value present. (We order false < true, unlike the paper's merely
/// illustrative 3/4 assignment, so ORDER BY is spec-correct.)
std::int64_t SortKeyTypeTag(const SortKeyValue& value, bool empty_greatest);

/// Binds a tuple's variables into a dynamic context.
void BindTuple(const FlworTuple& tuple, DynamicContext* context);

/// Per-backend entry points (implemented in flwor_dataframe.cc and
/// flwor_tuple_rdd.cc). Both require the first clause to be a `for` whose
/// expression is RDD-able.
spark::Rdd<item::ItemPtr> ExecuteFlworOnDataFrames(
    const EngineContextPtr& engine, const CompiledFlwor& flwor,
    const DynamicContext& context);
spark::Rdd<item::ItemPtr> ExecuteFlworOnTupleRdd(
    const EngineContextPtr& engine, const CompiledFlwor& flwor,
    const DynamicContext& context);

/// EXPLAIN support: renders the DataFrame logical plan the FLWOR would run,
/// without executing anything (the order-by type-discovery pass is skipped).
/// Same preconditions as ExecuteFlworOnDataFrames.
std::string ExplainFlworOnDataFrames(const EngineContextPtr& engine,
                                     const CompiledFlwor& flwor,
                                     const DynamicContext& context);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUNTIME_FLWOR_H_
