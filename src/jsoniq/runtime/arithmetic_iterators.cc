#include <cmath>
#include <utility>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"
#include "src/util/stopwatch.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;
using item::ItemType;

/// Numeric type promotion lattice: integer < decimal < double.
ItemType PromotedType(ItemType left, ItemType right) {
  auto rank = [](ItemType t) {
    switch (t) {
      case ItemType::kInteger: return 0;
      case ItemType::kDecimal: return 1;
      default: return 2;
    }
  };
  return rank(left) >= rank(right) ? left : right;
}

ItemPtr MakeNumeric(ItemType type, double value) {
  switch (type) {
    case ItemType::kInteger:
      return item::MakeInteger(static_cast<std::int64_t>(value));
    case ItemType::kDecimal: return item::MakeDecimal(value);
    default: return item::MakeDouble(value);
  }
}

class ArithmeticIterator final : public CloneableIterator<ArithmeticIterator> {
 public:
  const char* Name() const override { return "arithmetic"; }
  ArithmeticIterator(EngineContextPtr engine, ArithmeticOp op,
                     RuntimeIteratorPtr left, RuntimeIteratorPtr right)
      : CloneableIterator(std::move(engine),
                          {std::move(left), std::move(right)}),
        op_(op) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemPtr left = children_[0]->MaterializeAtMostOne(context, "arithmetic");
    ItemPtr right = children_[1]->MaterializeAtMostOne(context, "arithmetic");
    // The empty sequence propagates: () + 1 is ().
    if (left == nullptr || right == nullptr) return {};
    if (!left->IsNumeric() || !right->IsNumeric()) {
      common::ThrowError(
          ErrorCode::kTypeError,
          "arithmetic requires numeric operands, found " +
              std::string(item::ItemTypeName(left->type())) + " and " +
              std::string(item::ItemTypeName(right->type())));
    }

    // Fast exact path for integer +, -, *.
    if (left->IsInteger() && right->IsInteger()) {
      std::int64_t l = left->IntegerValue();
      std::int64_t r = right->IntegerValue();
      switch (op_) {
        case ArithmeticOp::kAdd: return {item::MakeInteger(l + r)};
        case ArithmeticOp::kSub: return {item::MakeInteger(l - r)};
        case ArithmeticOp::kMul: return {item::MakeInteger(l * r)};
        case ArithmeticOp::kIDiv:
          if (r == 0) {
            common::ThrowError(ErrorCode::kDivisionByZero, "idiv by zero");
          }
          return {item::MakeInteger(l / r)};
        case ArithmeticOp::kMod:
          if (r == 0) {
            common::ThrowError(ErrorCode::kDivisionByZero, "mod by zero");
          }
          return {item::MakeInteger(l % r)};
        case ArithmeticOp::kDiv: {
          if (r == 0) {
            common::ThrowError(ErrorCode::kDivisionByZero, "div by zero");
          }
          // Integer div yields a decimal per the JSONiq semantics.
          return {item::MakeDecimal(static_cast<double>(l) /
                                    static_cast<double>(r))};
        }
      }
    }

    double l = left->NumericValue();
    double r = right->NumericValue();
    ItemType out = PromotedType(left->type(), right->type());
    switch (op_) {
      case ArithmeticOp::kAdd: return {MakeNumeric(out, l + r)};
      case ArithmeticOp::kSub: return {MakeNumeric(out, l - r)};
      case ArithmeticOp::kMul: return {MakeNumeric(out, l * r)};
      case ArithmeticOp::kDiv:
        if (r == 0.0 && out != ItemType::kDouble) {
          common::ThrowError(ErrorCode::kDivisionByZero, "div by zero");
        }
        // double division by zero yields ±Infinity, as in XPath.
        if (out == ItemType::kInteger) out = ItemType::kDecimal;
        return {MakeNumeric(out, l / r)};
      case ArithmeticOp::kIDiv:
        if (r == 0.0) {
          common::ThrowError(ErrorCode::kDivisionByZero, "idiv by zero");
        }
        return {item::MakeInteger(static_cast<std::int64_t>(l / r))};
      case ArithmeticOp::kMod:
        if (r == 0.0 && out != ItemType::kDouble) {
          common::ThrowError(ErrorCode::kDivisionByZero, "mod by zero");
        }
        return {MakeNumeric(out, std::fmod(l, r))};
    }
    common::ThrowError(ErrorCode::kInternal, "unknown arithmetic operator");
  }

 private:
  ArithmeticOp op_;
};

class UnaryMinusIterator final : public CloneableIterator<UnaryMinusIterator> {
 public:
  const char* Name() const override { return "unary-minus"; }
  UnaryMinusIterator(EngineContextPtr engine, RuntimeIteratorPtr child)
      : CloneableIterator(std::move(engine), {std::move(child)}) {}

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    ItemPtr value = children_[0]->MaterializeAtMostOne(context, "unary -");
    if (value == nullptr) return {};
    switch (value->type()) {
      case ItemType::kInteger:
        return {item::MakeInteger(-value->IntegerValue())};
      case ItemType::kDecimal:
        return {item::MakeDecimal(-value->NumericValue())};
      case ItemType::kDouble:
        return {item::MakeDouble(-value->NumericValue())};
      default:
        common::ThrowError(ErrorCode::kTypeError,
                           "unary minus requires a numeric operand");
    }
  }
};

/// Streaming 1-to-N range; `1 to 1000000000` must not materialize eagerly in
/// the iterator itself.
class RangeIterator final : public CloneableIterator<RangeIterator> {
 public:
  const char* Name() const override { return "range"; }
  RangeIterator(EngineContextPtr engine, RuntimeIteratorPtr from,
                RuntimeIteratorPtr to)
      : CloneableIterator(std::move(engine), {std::move(from), std::move(to)}) {}

  void Open(const DynamicContext& context) override {
    // Streaming override of the whole local API: record the (cheap) endpoint
    // evaluation here and the produced count at Close, since the base
    // class's timed Open/Compute never runs for this iterator.
    traced_ = TracingEnabled();
    if (traced_) {
      util::Stopwatch watch;
      OpenEndpoints(context);
      op_stats_->busy_nanos.fetch_add(watch.ElapsedNanos(),
                                      std::memory_order_relaxed);
      op_stats_->opens.fetch_add(1, std::memory_order_relaxed);
    } else {
      OpenEndpoints(context);
    }
    produced_ = 0;
  }

  bool HasNext() override { return next_ <= last_; }

  item::ItemPtr Next() override {
    ++produced_;
    return item::MakeInteger(next_++);
  }

  void Close() override {
    if (traced_ && produced_ > 0) {
      op_stats_->items.fetch_add(produced_, std::memory_order_relaxed);
    }
    next_ = 1;
    last_ = 0;
    produced_ = 0;
  }

 private:
  void OpenEndpoints(const DynamicContext& context) {
    ItemPtr from = children_[0]->MaterializeAtMostOne(context, "range");
    ItemPtr to = children_[1]->MaterializeAtMostOne(context, "range");
    if (from == nullptr || to == nullptr) {
      next_ = 1;
      last_ = 0;  // empty
      return;
    }
    if (!from->IsInteger() || !to->IsInteger()) {
      common::ThrowError(ErrorCode::kTypeError,
                         "'to' requires integer endpoints");
    }
    next_ = from->IntegerValue();
    last_ = to->IntegerValue();
  }

  std::int64_t next_ = 1;
  std::int64_t last_ = 0;
  std::int64_t produced_ = 0;
  bool traced_ = false;
};

}  // namespace

RuntimeIteratorPtr MakeArithmeticIterator(EngineContextPtr engine,
                                          ArithmeticOp op,
                                          RuntimeIteratorPtr left,
                                          RuntimeIteratorPtr right) {
  return std::make_shared<ArithmeticIterator>(std::move(engine), op,
                                              std::move(left),
                                              std::move(right));
}

RuntimeIteratorPtr MakeUnaryMinusIterator(EngineContextPtr engine,
                                          RuntimeIteratorPtr child) {
  return std::make_shared<UnaryMinusIterator>(std::move(engine),
                                              std::move(child));
}

RuntimeIteratorPtr MakeRangeIterator(EngineContextPtr engine,
                                     RuntimeIteratorPtr from,
                                     RuntimeIteratorPtr to) {
  return std::make_shared<RangeIterator>(std::move(engine), std::move(from),
                                         std::move(to));
}

}  // namespace rumble::jsoniq
