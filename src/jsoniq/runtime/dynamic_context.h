#ifndef RUMBLE_JSONIQ_RUNTIME_DYNAMIC_CONTEXT_H_
#define RUMBLE_JSONIQ_RUNTIME_DYNAMIC_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/item/item.h"

namespace rumble::jsoniq {

class DynamicContext;
using DynamicContextPtr = std::shared_ptr<const DynamicContext>;

/// Dynamic context (paper Section 5.5): variable bindings plus the context
/// item ($$) with its position. Contexts chain to their parent so nested
/// scopes do not copy bindings; Snapshot() flattens a chain into one
/// heap-owned context for capture inside RDD/DataFrame closures.
class DynamicContext {
 public:
  DynamicContext() = default;
  explicit DynamicContext(const DynamicContext* parent) : parent_(parent) {}

  /// Binds (or rebinds, shadowing) a variable in this scope.
  void Bind(std::string name, item::ItemSequence value);

  /// Copy-binding that reuses the existing binding's capacity — the hot path
  /// for per-row rebinding inside DataFrame UDFs, where the same scope is
  /// rebound for every row of a batch.
  void BindCopy(const std::string& name, const item::ItemSequence& value);

  /// Looks a variable up through the parent chain; nullptr when unbound.
  const item::ItemSequence* Lookup(std::string_view name) const;

  void SetContextItem(item::ItemPtr item, std::int64_t position,
                      std::int64_t size);
  const item::ItemPtr& context_item() const { return context_item_; }
  std::int64_t context_position() const { return context_position_; }
  std::int64_t context_size() const { return context_size_; }

  /// Flattens the visible bindings (and context item) of `context` into a
  /// single self-contained context safe to capture in closures.
  static DynamicContextPtr Snapshot(const DynamicContext& context);

  /// An empty shared context for top-level evaluation.
  static DynamicContextPtr Empty();

 private:
  const DynamicContext* parent_ = nullptr;
  std::vector<std::pair<std::string, item::ItemSequence>> bindings_;
  item::ItemPtr context_item_;
  std::int64_t context_position_ = 0;
  std::int64_t context_size_ = 0;
};

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUNTIME_DYNAMIC_CONTEXT_H_
