#include "src/jsoniq/runtime/runtime_iterator.h"

#include <algorithm>
#include <cstdio>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/util/stopwatch.h"

namespace rumble::jsoniq {

using common::ErrorCode;

void RuntimeIterator::Open(const DynamicContext& context) {
  CountOpen();
  if (TracingEnabled()) {
    util::Stopwatch watch;
    buffer_ = Compute(context);
    op_stats_->busy_nanos.fetch_add(watch.ElapsedNanos(),
                                    std::memory_order_relaxed);
    op_stats_->opens.fetch_add(1, std::memory_order_relaxed);
    op_stats_->items.fetch_add(static_cast<std::int64_t>(buffer_.size()),
                               std::memory_order_relaxed);
  } else {
    buffer_ = Compute(context);
  }
  buffer_index_ = 0;
  opened_ = true;
}

bool RuntimeIterator::HasNext() { return buffer_index_ < buffer_.size(); }

item::ItemPtr RuntimeIterator::Next() {
  if (buffer_index_ >= buffer_.size()) {
    common::ThrowError(ErrorCode::kInternal,
                       "Next() called on an exhausted iterator");
  }
  return buffer_[buffer_index_++];
}

void RuntimeIterator::Close() {
  CountClose();
  buffer_.clear();
  buffer_index_ = 0;
  opened_ = false;
}

void RuntimeIterator::CountOpen() {
  if (opens_cell_ == nullptr) {
    obs::EventBus* bus = engine_ != nullptr ? engine_->bus() : nullptr;
    if (bus == nullptr) return;
    opens_cell_ = bus->GetCounter("iterator.opens");
  }
  opens_cell_->value.fetch_add(1, std::memory_order_relaxed);
}

void RuntimeIterator::CountClose() {
  if (closes_cell_ == nullptr) {
    obs::EventBus* bus = engine_ != nullptr ? engine_->bus() : nullptr;
    if (bus == nullptr) return;
    closes_cell_ = bus->GetCounter("iterator.closes");
  }
  closes_cell_->value.fetch_add(1, std::memory_order_relaxed);
}

bool RuntimeIterator::TracingEnabled() {
  if (tracer_ == nullptr) {
    obs::EventBus* bus = engine_ != nullptr ? engine_->bus() : nullptr;
    if (bus == nullptr) return false;
    tracer_ = bus->tracer();
  }
  return tracer_->enabled();
}

void RuntimeIterator::ShareObservability(const RuntimeIterator& from) {
  debug_name_ = from.debug_name_;
  op_stats_ = from.op_stats_;
  tracer_ = from.tracer_;
}

void RuntimeIterator::AppendStatChildren(
    std::vector<const RuntimeIterator*>* out) const {
  for (const auto& child : children_) {
    if (child != nullptr) out->push_back(child.get());
  }
}

namespace {

void AppendMs(std::int64_t nanos, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) / 1e6);
  out->append(buf);
  out->append("ms");
}

}  // namespace

void RuntimeIterator::AppendAnalyzeAnnotation(const ExplainOptions& options,
                                              std::string* out) const {
  std::int64_t inclusive = op_stats_->busy_nanos.load(std::memory_order_relaxed);
  std::vector<const RuntimeIterator*> stat_children;
  AppendStatChildren(&stat_children);
  std::int64_t children_nanos = 0;
  for (const RuntimeIterator* child : stat_children) {
    children_nanos +=
        child->op_stats_->busy_nanos.load(std::memory_order_relaxed);
  }
  std::int64_t exclusive = std::max<std::int64_t>(0, inclusive - children_nanos);
  out->append("  (actual: total=");
  AppendMs(inclusive, out);
  out->append(" self=");
  AppendMs(exclusive, out);
  out->append(" rows=");
  out->append(
      std::to_string(op_stats_->items.load(std::memory_order_relaxed)));
  out->append(" opens=");
  out->append(
      std::to_string(op_stats_->opens.load(std::memory_order_relaxed)));
  if (options.job_wall_nanos > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.1f%%",
                  100.0 * static_cast<double>(inclusive) /
                      static_cast<double>(options.job_wall_nanos));
    out->append(buf);
  }
  out->append(")");
}

void RuntimeIterator::ExplainTree(const DynamicContext& context, int depth,
                                  std::string* out,
                                  const ExplainOptions& options) const {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(DisplayName());
  out->append(" [");
  out->append(ExecModeTag());
  out->append("]");
  if (options.analyze) AppendAnalyzeAnnotation(options, out);
  out->append("\n");
  for (const auto& child : children_) {
    if (child != nullptr) child->ExplainTree(context, depth + 1, out, options);
  }
}

spark::Rdd<item::ItemPtr> RuntimeIterator::GetRdd(const DynamicContext&) {
  common::ThrowError(ErrorCode::kInternal,
                     "GetRdd() called on a non-RDD-able iterator");
}

item::ItemSequence RuntimeIterator::Compute(const DynamicContext&) {
  common::ThrowError(ErrorCode::kInternal,
                     "iterator implements neither Compute nor the local API");
}

item::ItemSequence RuntimeIterator::MaterializeAll(
    const DynamicContext& context) {
  if (const item::ItemSequence* borrowed = TryBorrow(context)) {
    return *borrowed;  // one copy instead of compute-then-drain
  }
  if (IsRddAble()) {
    // Section 5.5: collect the RDD and serve items locally, respecting the
    // configured materialization cap. This path bypasses Open(), so it
    // records the operator span/stats itself (the stage spans the collect
    // spawns nest inside the operator span via the thread stack).
    bool traced = TracingEnabled();
    obs::ScopedSpan span(traced ? tracer_ : nullptr, "operator",
                         DisplayName());
    util::Stopwatch watch;
    spark::Rdd<item::ItemPtr> rdd = GetRdd(context);
    item::ItemSequence items = rdd.Collect();
    if (traced) {
      op_stats_->busy_nanos.fetch_add(watch.ElapsedNanos(),
                                      std::memory_order_relaxed);
      op_stats_->opens.fetch_add(1, std::memory_order_relaxed);
      op_stats_->items.fetch_add(static_cast<std::int64_t>(items.size()),
                                 std::memory_order_relaxed);
      span.AddArg("rows", static_cast<std::int64_t>(items.size()));
    }
    const auto& config = engine_->config;
    if (items.size() > config.materialization_cap &&
        !config.warn_only_on_cap) {
      common::ThrowError(
          ErrorCode::kMaterializationCap,
          "materialized " + std::to_string(items.size()) +
              " items; cap is " + std::to_string(config.materialization_cap));
    }
    if (obs::EventBus* bus = engine_->bus()) {
      bus->AddToCounter("iterator.rows_materialized",
                        static_cast<std::int64_t>(items.size()));
    }
    return items;
  }
  item::ItemSequence items;
  Open(context);
  while (HasNext()) {
    items.push_back(Next());
  }
  Close();
  if (engine_ != nullptr) {
    if (obs::EventBus* bus = engine_->bus()) {
      bus->AddToCounter("iterator.rows_materialized",
                        static_cast<std::int64_t>(items.size()));
    }
  }
  return items;
}

item::ItemPtr RuntimeIterator::MaterializeAtMostOne(
    const DynamicContext& context, const char* what) {
  Open(context);
  item::ItemPtr result;
  if (HasNext()) {
    result = Next();
    if (HasNext()) {
      Close();
      common::ThrowError(ErrorCode::kCardinalityError,
                         std::string(what) +
                             ": expected at most one item, found several");
    }
  }
  Close();
  return result;
}

bool RuntimeIterator::MaterializeBoolean(const DynamicContext& context) {
  // The effective boolean value only needs the first two items; pull lazily
  // so `boolean()` over a large sequence stays cheap.
  Open(context);
  item::ItemSequence prefix;
  while (HasNext() && prefix.size() < 2) {
    prefix.push_back(Next());
  }
  Close();
  if (prefix.size() == 2 && !prefix.front()->IsObject() &&
      !prefix.front()->IsArray()) {
    common::ThrowError(
        ErrorCode::kTypeError,
        "effective boolean value of a multi-item atomic sequence");
  }
  return item::EffectiveBooleanValue(prefix);
}

void RuntimeIterator::AfterClone() {
  children_ = CloneIterators(children_);
  buffer_.clear();
  buffer_index_ = 0;
  opened_ = false;
}

std::vector<RuntimeIteratorPtr> CloneIterators(
    const std::vector<RuntimeIteratorPtr>& iterators) {
  std::vector<RuntimeIteratorPtr> clones;
  clones.reserve(iterators.size());
  for (const auto& iterator : iterators) {
    clones.push_back(iterator ? iterator->Clone() : nullptr);
  }
  return clones;
}

}  // namespace rumble::jsoniq
