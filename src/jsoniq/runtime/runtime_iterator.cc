#include "src/jsoniq/runtime/runtime_iterator.h"

#include "src/common/error.h"
#include "src/item/item_compare.h"

namespace rumble::jsoniq {

using common::ErrorCode;

void RuntimeIterator::Open(const DynamicContext& context) {
  CountOpen();
  buffer_ = Compute(context);
  buffer_index_ = 0;
  opened_ = true;
}

bool RuntimeIterator::HasNext() { return buffer_index_ < buffer_.size(); }

item::ItemPtr RuntimeIterator::Next() {
  if (buffer_index_ >= buffer_.size()) {
    common::ThrowError(ErrorCode::kInternal,
                       "Next() called on an exhausted iterator");
  }
  return buffer_[buffer_index_++];
}

void RuntimeIterator::Close() {
  CountClose();
  buffer_.clear();
  buffer_index_ = 0;
  opened_ = false;
}

void RuntimeIterator::CountOpen() {
  if (opens_cell_ == nullptr) {
    obs::EventBus* bus = engine_ != nullptr ? engine_->bus() : nullptr;
    if (bus == nullptr) return;
    opens_cell_ = bus->GetCounter("iterator.opens");
  }
  opens_cell_->value.fetch_add(1, std::memory_order_relaxed);
}

void RuntimeIterator::CountClose() {
  if (closes_cell_ == nullptr) {
    obs::EventBus* bus = engine_ != nullptr ? engine_->bus() : nullptr;
    if (bus == nullptr) return;
    closes_cell_ = bus->GetCounter("iterator.closes");
  }
  closes_cell_->value.fetch_add(1, std::memory_order_relaxed);
}

void RuntimeIterator::ExplainTree(const DynamicContext& context, int depth,
                                  std::string* out) const {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(DisplayName());
  out->append(" [");
  out->append(ExecModeTag());
  out->append("]\n");
  for (const auto& child : children_) {
    if (child != nullptr) child->ExplainTree(context, depth + 1, out);
  }
}

spark::Rdd<item::ItemPtr> RuntimeIterator::GetRdd(const DynamicContext&) {
  common::ThrowError(ErrorCode::kInternal,
                     "GetRdd() called on a non-RDD-able iterator");
}

item::ItemSequence RuntimeIterator::Compute(const DynamicContext&) {
  common::ThrowError(ErrorCode::kInternal,
                     "iterator implements neither Compute nor the local API");
}

item::ItemSequence RuntimeIterator::MaterializeAll(
    const DynamicContext& context) {
  if (const item::ItemSequence* borrowed = TryBorrow(context)) {
    return *borrowed;  // one copy instead of compute-then-drain
  }
  if (IsRddAble()) {
    // Section 5.5: collect the RDD and serve items locally, respecting the
    // configured materialization cap.
    spark::Rdd<item::ItemPtr> rdd = GetRdd(context);
    item::ItemSequence items = rdd.Collect();
    const auto& config = engine_->config;
    if (items.size() > config.materialization_cap &&
        !config.warn_only_on_cap) {
      common::ThrowError(
          ErrorCode::kMaterializationCap,
          "materialized " + std::to_string(items.size()) +
              " items; cap is " + std::to_string(config.materialization_cap));
    }
    if (obs::EventBus* bus = engine_->bus()) {
      bus->AddToCounter("iterator.rows_materialized",
                        static_cast<std::int64_t>(items.size()));
    }
    return items;
  }
  item::ItemSequence items;
  Open(context);
  while (HasNext()) {
    items.push_back(Next());
  }
  Close();
  if (engine_ != nullptr) {
    if (obs::EventBus* bus = engine_->bus()) {
      bus->AddToCounter("iterator.rows_materialized",
                        static_cast<std::int64_t>(items.size()));
    }
  }
  return items;
}

item::ItemPtr RuntimeIterator::MaterializeAtMostOne(
    const DynamicContext& context, const char* what) {
  Open(context);
  item::ItemPtr result;
  if (HasNext()) {
    result = Next();
    if (HasNext()) {
      Close();
      common::ThrowError(ErrorCode::kCardinalityError,
                         std::string(what) +
                             ": expected at most one item, found several");
    }
  }
  Close();
  return result;
}

bool RuntimeIterator::MaterializeBoolean(const DynamicContext& context) {
  // The effective boolean value only needs the first two items; pull lazily
  // so `boolean()` over a large sequence stays cheap.
  Open(context);
  item::ItemSequence prefix;
  while (HasNext() && prefix.size() < 2) {
    prefix.push_back(Next());
  }
  Close();
  if (prefix.size() == 2 && !prefix.front()->IsObject() &&
      !prefix.front()->IsArray()) {
    common::ThrowError(
        ErrorCode::kTypeError,
        "effective boolean value of a multi-item atomic sequence");
  }
  return item::EffectiveBooleanValue(prefix);
}

void RuntimeIterator::AfterClone() {
  children_ = CloneIterators(children_);
  buffer_.clear();
  buffer_index_ = 0;
  opened_ = false;
}

std::vector<RuntimeIteratorPtr> CloneIterators(
    const std::vector<RuntimeIteratorPtr>& iterators) {
  std::vector<RuntimeIteratorPtr> clones;
  clones.reserve(iterators.size());
  for (const auto& iterator : iterators) {
    clones.push_back(iterator ? iterator->Clone() : nullptr);
  }
  return clones;
}

}  // namespace rumble::jsoniq
