#ifndef RUMBLE_JSONIQ_RUNTIME_RUNTIME_ITERATOR_H_
#define RUMBLE_JSONIQ_RUNTIME_RUNTIME_ITERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/item/item.h"
#include "src/jsoniq/runtime/dynamic_context.h"
#include "src/jsoniq/runtime/engine_context.h"
#include "src/spark/rdd.h"

namespace rumble::jsoniq {

class RuntimeIterator;
using RuntimeIteratorPtr = std::shared_ptr<RuntimeIterator>;

enum class CompareOp;  // src/jsoniq/ast.h

/// Expression shapes the DataFrame backend compiles into vectorized columnar
/// kernels instead of per-row iterator evaluation (docs/PERFORMANCE.md).
/// A field path is a chain of constant-key object lookups rooted at a
/// variable reference — $v.k1.k2...; zero keys is the bare variable.
struct ColumnFieldPath {
  std::string variable;
  std::vector<std::string> keys;
};

/// A comparison node's operator and operand subtrees (borrowed, not owned).
struct ComparisonShape {
  CompareOp op;
  const RuntimeIterator* left = nullptr;
  const RuntimeIterator* right = nullptr;
};

/// Per-operator accumulators behind EXPLAIN ANALYZE: evaluation wall time
/// (inclusive of children, since an operator's Compute pulls its children),
/// open count, and items produced. Shared between an iterator and every
/// clone shipped to executor tasks — the atomics make concurrent task-side
/// accumulation safe, and the sharing is what routes executor-side work back
/// to the plan node the user sees. Only populated while the engine tracer is
/// enabled, so normal runs pay nothing.
struct OperatorStats {
  std::atomic<std::int64_t> opens{0};
  std::atomic<std::int64_t> items{0};
  std::atomic<std::int64_t> busy_nanos{0};
};
using OperatorStatsPtr = std::shared_ptr<OperatorStats>;

/// Options threaded through ExplainTree. `analyze` switches on the per-node
/// "(actual: ...)" annotations; `job_wall_nanos` (the job_end duration) turns
/// them into %-of-job figures.
struct ExplainOptions {
  bool analyze = false;
  std::int64_t job_wall_nanos = 0;
};

/// Base class for expression runtime iterators (paper Section 5.4). Offers:
///  - the pull-based local API: Open / HasNext / Next / Close (Section 5.5);
///  - the RDD API: IsRddAble / GetRdd (Section 5.6);
///  - Clone(), which deep-copies the iterator tree so closures shipped to
///    executor tasks can evaluate nested iterators without sharing mutable
///    state (the C++ analogue of Rumble serializing closures to the
///    cluster).
///
/// The default local API materializes via Compute(); genuinely streaming
/// iterators override the four local methods instead.
class RuntimeIterator {
 public:
  RuntimeIterator(EngineContextPtr engine,
                  std::vector<RuntimeIteratorPtr> children)
      : engine_(std::move(engine)), children_(std::move(children)) {}
  virtual ~RuntimeIterator() = default;

  // ---- Local (pull) API -------------------------------------------------
  virtual void Open(const DynamicContext& context);
  virtual bool HasNext();
  virtual item::ItemPtr Next();
  virtual void Close();
  void Reset(const DynamicContext& context) {
    Close();
    Open(context);
  }

  // ---- RDD API ------------------------------------------------------------
  /// Whether this iterator can produce its sequence as an RDD in the given
  /// engine configuration. Must not evaluate anything.
  virtual bool IsRddAble() const { return false; }

  /// Returns the sequence as an RDD of items. Only valid when IsRddAble().
  virtual spark::Rdd<item::ItemPtr> GetRdd(const DynamicContext& context);

  // ---- Helpers ------------------------------------------------------------
  /// Fully materializes the sequence. When the iterator is RDD-able the
  /// collection happens through Spark with the configured materialization
  /// cap (Section 5.5), otherwise through the local API.
  item::ItemSequence MaterializeAll(const DynamicContext& context);

  /// Materializes expecting zero-or-one items; throws kCardinalityError on
  /// more.
  item::ItemPtr MaterializeAtMostOne(const DynamicContext& context,
                                     const char* what);

  /// Effective boolean value of the sequence.
  bool MaterializeBoolean(const DynamicContext& context);

  /// Deep-copies this iterator tree with fresh (closed) state.
  virtual RuntimeIteratorPtr Clone() const = 0;

  // ---- Observability / EXPLAIN --------------------------------------------
  /// Short operator name shown in EXPLAIN trees ("comparison", "json-file").
  virtual const char* Name() const { return "iterator"; }

  /// Execution-mode tag for EXPLAIN: which backend would evaluate this node.
  /// Default reflects the RDD API; the FLWOR iterator overrides it with
  /// "DF" / "RDD(tuple)" / "local" depending on the chosen backend.
  virtual std::string ExecModeTag() const {
    return IsRddAble() ? "RDD" : "local";
  }

  /// Renders this subtree one node per line ("name [mode]"), two spaces of
  /// indent per depth level. Must not evaluate the query; `context` is only
  /// passed through so FLWOR can build (not run) its DataFrame plan. With
  /// options.analyze the node line carries the operator's recorded stats —
  /// EXPLAIN ANALYZE renders the same tree after running the query.
  virtual void ExplainTree(const DynamicContext& context, int depth,
                           std::string* out,
                           const ExplainOptions& options) const;

  /// Display-name override (e.g. "fn:count" on the generic function-call
  /// iterator), set by the iterator builder. Survives Clone().
  void set_debug_name(std::string name) { debug_name_ = std::move(name); }
  const std::string& debug_name() const { return debug_name_; }

  /// The name ExplainTree prints: debug name when set, Name() otherwise.
  std::string DisplayName() const {
    return debug_name_.empty() ? std::string(Name()) : debug_name_;
  }

  /// When the iterator is a single-item constant (a literal), returns the
  /// item; nullptr otherwise. Lets hot paths (e.g. object lookup keys)
  /// avoid per-row evaluation.
  virtual item::ItemPtr ConstantValue() const { return nullptr; }

  /// Describes this subtree as a constant-key field path, without
  /// evaluating anything. Only variable references and object lookups with
  /// constant atomic keys return true; everything else keeps the generic
  /// per-row evaluation path.
  virtual bool DescribeFieldPath(ColumnFieldPath*) const { return false; }

  /// Describes this node as a comparison of two operand subtrees, without
  /// evaluating anything. Only the comparison iterator returns true.
  virtual bool DescribeComparison(ComparisonShape*) const { return false; }

  /// Zero-copy fast path: when the iterator's whole result already exists
  /// as a materialized sequence owned by the context (a variable binding),
  /// returns a pointer to it — valid until the context changes. Navigation
  /// and comparison iterators use this to avoid one copy per evaluation,
  /// which matters because FLWOR UDFs evaluate per row.
  virtual const item::ItemSequence* TryBorrow(const DynamicContext&) {
    return nullptr;
  }

  const EngineContextPtr& engine() const { return engine_; }
  const std::vector<RuntimeIteratorPtr>& children() const { return children_; }
  const OperatorStats& op_stats() const { return *op_stats_; }

 protected:
  /// The children whose stats EXPLAIN ANALYZE subtracts to compute this
  /// node's exclusive time. Default: children_; iterators holding nested
  /// iterators out-of-band (FLWOR) override to expose them.
  virtual void AppendStatChildren(
      std::vector<const RuntimeIterator*>* out) const;

  /// Whether span/stat recording is on, caching the engine tracer pointer on
  /// first use — the disabled hot path is one relaxed atomic load.
  bool TracingEnabled();

  /// Appends the "(actual: ...)" EXPLAIN ANALYZE annotation for this node:
  /// inclusive/exclusive time, items, opens, and %-of-job. Exclusive time is
  /// clamped at zero — children evaluated on executor threads can overlap
  /// each other, so the naive subtraction may go negative under parallelism.
  void AppendAnalyzeAnnotation(const ExplainOptions& options,
                               std::string* out) const;

  /// Adopts `from`'s observability identity (debug name, shared operator
  /// stats, cached tracer). Custom Clone() implementations that build a
  /// fresh object instead of copying — FLWOR — call this so executor-side
  /// clones keep accumulating into the original plan node's stats.
  void ShareObservability(const RuntimeIterator& from);
  /// Materializing evaluation hook used by the default local API.
  virtual item::ItemSequence Compute(const DynamicContext& context);

  /// Deep-clones children and clears local state; called on the copy by
  /// Clone() implementations. Keeps debug_name_ (clones shipped to executor
  /// tasks should explain/count under the same name).
  void AfterClone();

  /// Counter bumps for the local pull API; cells are looked up once per
  /// iterator instance and shared with clones' engine, so the hot path is a
  /// single relaxed atomic add.
  void CountOpen();
  void CountClose();

  EngineContextPtr engine_;
  std::vector<RuntimeIteratorPtr> children_;
  std::string debug_name_;
  /// Shared with clones (the implicit copy constructor copies the
  /// shared_ptr; AfterClone keeps it, custom clones use ShareObservability).
  OperatorStatsPtr op_stats_ = std::make_shared<OperatorStats>();

  // Default local-API state.
  item::ItemSequence buffer_;
  std::size_t buffer_index_ = 0;
  bool opened_ = false;

 private:
  obs::CounterCell* opens_cell_ = nullptr;
  obs::CounterCell* closes_cell_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

/// CRTP helper providing Clone() via the copy constructor + AfterClone().
/// Subclasses keep all nested iterators inside children_ so the deep copy
/// is complete.
template <typename Derived>
class CloneableIterator : public RuntimeIterator {
 public:
  using RuntimeIterator::RuntimeIterator;

  RuntimeIteratorPtr Clone() const override {
    auto copy = std::make_shared<Derived>(static_cast<const Derived&>(*this));
    copy->AfterClone();
    return copy;
  }

 private:
  friend Derived;
};

/// Clones a vector of iterators (for Clone implementations with out-of-band
/// children).
std::vector<RuntimeIteratorPtr> CloneIterators(
    const std::vector<RuntimeIteratorPtr>& iterators);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUNTIME_RUNTIME_ITERATOR_H_
