#include "src/jsoniq/runtime/dynamic_context.h"

#include <set>

namespace rumble::jsoniq {

void DynamicContext::Bind(std::string name, item::ItemSequence value) {
  for (auto& [existing, bound] : bindings_) {
    if (existing == name) {
      bound = std::move(value);
      return;
    }
  }
  bindings_.emplace_back(std::move(name), std::move(value));
}

void DynamicContext::BindCopy(const std::string& name,
                              const item::ItemSequence& value) {
  for (auto& [existing, bound] : bindings_) {
    if (existing == name) {
      bound.assign(value.begin(), value.end());
      return;
    }
  }
  bindings_.emplace_back(name, value);
}

const item::ItemSequence* DynamicContext::Lookup(std::string_view name) const {
  for (const DynamicContext* scope = this; scope != nullptr;
       scope = scope->parent_) {
    for (const auto& [existing, bound] : scope->bindings_) {
      if (existing == name) return &bound;
    }
  }
  return nullptr;
}

void DynamicContext::SetContextItem(item::ItemPtr item, std::int64_t position,
                                    std::int64_t size) {
  context_item_ = std::move(item);
  context_position_ = position;
  context_size_ = size;
}

DynamicContextPtr DynamicContext::Snapshot(const DynamicContext& context) {
  auto flat = std::make_shared<DynamicContext>();
  std::set<std::string> seen;
  for (const DynamicContext* scope = &context; scope != nullptr;
       scope = scope->parent_) {
    for (const auto& [name, value] : scope->bindings_) {
      if (seen.insert(name).second) {
        flat->bindings_.emplace_back(name, value);
      }
    }
  }
  flat->context_item_ = context.context_item_;
  flat->context_position_ = context.context_position_;
  flat->context_size_ = context.context_size_;
  return flat;
}

DynamicContextPtr DynamicContext::Empty() {
  static const DynamicContextPtr kEmpty = std::make_shared<DynamicContext>();
  return kEmpty;
}

}  // namespace rumble::jsoniq
