#include <algorithm>
#include <atomic>
#include <set>
#include <utility>

#include "src/common/error.h"
#include "src/df/dataframe.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/expression_iterators.h"
#include "src/jsoniq/runtime/flwor.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using df::DataFrame;
using df::DataType;
using df::NamedExpr;
using df::RecordBatch;
using item::ItemPtr;
using item::ItemSequence;

/// Names of engine-internal columns start with '#', which can never clash
/// with JSONiq variable names.
constexpr char kPositionColumn[] = "#pos";
constexpr char kCountColumn[] = "#cnt";

/// Pass-through references for every column except those in `exclude`.
std::vector<NamedExpr> RefsExcept(const df::Schema& schema,
                                  const std::set<std::string>& exclude) {
  std::vector<NamedExpr> out;
  for (const auto& field : schema.fields()) {
    if (exclude.count(field.name) > 0) continue;
    out.push_back(NamedExpr::Ref(field.name, field.name, field.type));
  }
  return out;
}

/// Variables referenced by an expression that are currently tuple columns;
/// everything else resolves through the captured outer context.
std::vector<std::string> ColumnInputs(const std::vector<std::string>& free_vars,
                                      const df::Schema& schema) {
  std::vector<std::string> out;
  for (const auto& name : free_vars) {
    if (schema.IndexOf(name) >= 0) out.push_back(name);
  }
  return out;
}

// ---- vectorized expression kernels (docs/PERFORMANCE.md) -------------------

/// Applies a constant-key lookup chain to a bound sequence exactly as the
/// chained object-lookup iterators would: non-objects are filtered out and
/// absent keys contribute nothing. `a` and `b` are reusable scratch buffers
/// so the per-row hot path stays allocation-free once warm; the returned
/// pointer aliases `bound` or one of the scratches.
const ItemSequence* EvalFieldPath(const ItemSequence& bound,
                                  const std::vector<std::string>& keys,
                                  ItemSequence* a, ItemSequence* b) {
  const ItemSequence* current = &bound;
  for (const auto& key : keys) {
    ItemSequence* next = (current == a) ? b : a;
    next->clear();
    for (const auto& item : *current) {
      if (!item->IsObject()) continue;
      ItemPtr value = item->ValueForKey(key);
      if (value != nullptr) next->push_back(std::move(value));
    }
    current = next;
  }
  return current;
}

/// One bump per expression compiled to a columnar kernel instead of per-row
/// iterator evaluation (docs/METRICS.md).
void CountVectorizedKernel(const EngineContextPtr& engine) {
  if (obs::EventBus* bus = engine->bus()) {
    bus->AddToCounter("df.udf.vectorized", 1);
  }
}

/// Effective boolean value with MaterializeBoolean's exact semantics: a
/// sequence of two or more items raises kTypeError unless it starts with an
/// object or array.
bool SequenceBooleanValue(const ItemSequence& sequence) {
  if (sequence.size() >= 2 && !sequence.front()->IsObject() &&
      !sequence.front()->IsArray()) {
    common::ThrowError(
        ErrorCode::kTypeError,
        "effective boolean value of a multi-item atomic sequence");
  }
  return item::EffectiveBooleanValue(sequence);
}

/// One side of a describable comparison: either a constant (a singleton
/// sequence fixed at plan time) or a field path over a tuple column.
struct CompareOperand {
  bool is_constant = false;
  ItemSequence constant;
  ColumnFieldPath path;
};

bool DescribeOperand(const RuntimeIterator* node, const df::Schema& schema,
                     CompareOperand* out) {
  if (node->DescribeFieldPath(&out->path) &&
      schema.IndexOf(out->path.variable) >= 0) {
    return true;
  }
  ItemPtr constant = node->ConstantValue();
  if (constant != nullptr) {
    out->is_constant = true;
    out->constant = {std::move(constant)};
    return true;
  }
  return false;
}

/// The paper's EVALUATE_EXPRESSION UDF (Section 4.4): evaluates a runtime
/// iterator per row, binding the referenced tuple variables from their
/// item-seq columns, and appends the resulting sequence. Field-path
/// expressions rooted at a tuple column skip all of that and run as a
/// columnar kernel: no per-row context binding, iterator cloning or buffer
/// churn.
df::Udf SeqUdf(RuntimeIteratorPtr prototype, DynamicContextPtr captured,
               std::vector<std::string> inputs) {
  df::Udf udf;
  udf.inputs = inputs;
  ColumnFieldPath path;
  if (prototype->DescribeFieldPath(&path) &&
      std::find(inputs.begin(), inputs.end(), path.variable) != inputs.end()) {
    CountVectorizedKernel(prototype->engine());
    udf.eval = [path](const df::Schema& schema, const RecordBatch& batch,
                      df::Column* out) {
      const df::Column& column =
          batch.columns[schema.RequireIndex(path.variable)];
      ItemSequence a, b;
      for (std::size_t row = 0; row < batch.num_rows; ++row) {
        out->AppendSeq(*EvalFieldPath(column.SeqAt(row), path.keys, &a, &b));
      }
    };
    return udf;
  }
  udf.eval = [prototype, captured, inputs](const df::Schema& schema,
                                           const RecordBatch& batch,
                                           df::Column* out) {
    RuntimeIteratorPtr iterator = prototype->Clone();
    std::vector<std::size_t> indices;
    indices.reserve(inputs.size());
    for (const auto& name : inputs) {
      indices.push_back(schema.RequireIndex(name));
    }
    // One scope reused across rows: rebinding reuses binding capacity.
    DynamicContext scope(captured.get());
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        scope.BindCopy(inputs[i], batch.columns[indices[i]].SeqAt(row));
      }
      out->AppendSeq(iterator->MaterializeAll(scope));
    }
  };
  return udf;
}

/// Converts an int64 column to a singleton-integer item-seq column,
/// optionally with an offset (count clause: index + 1).
df::Udf Int64ToSeqUdf(std::string source, std::int64_t offset) {
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, offset](const df::Schema& schema,
                              const RecordBatch& batch, df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      out->AppendSeq(
          {item::MakeInteger(batch.columns[index].Int64At(row) + offset)});
    }
  };
  return udf;
}

/// Projection keeping all columns, with `name` replaced (or appended) by a
/// computed item-seq column.
DataFrame ProjectWithVariable(const DataFrame& df, const std::string& name,
                              df::Udf udf) {
  std::vector<NamedExpr> exprs = RefsExcept(df.schema(), {name});
  exprs.push_back(NamedExpr::Computed(name, DataType::kItemSeq, std::move(udf)));
  return df.Project(std::move(exprs));
}

// ---- group-by key encoding (Section 4.7) -----------------------------------

/// The three native columns per grouping variable. Tags follow the paper:
/// 1 empty sequence, 2 null, 3 true, 4 false, 5 string, 6 number.
df::Udf GroupTagUdf(std::string variable) {
  df::Udf udf;
  udf.inputs = {variable};
  udf.eval = [variable](const df::Schema& schema, const RecordBatch& batch,
                        df::Column* out) {
    std::size_t index = schema.RequireIndex(variable);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value = batch.columns[index].SeqAt(row);
      if (value.empty()) {
        out->AppendInt64(1);
        continue;
      }
      if (value.size() > 1) {
        common::ThrowError(ErrorCode::kInvalidGroupingKey,
                           "grouping key bound to more than one item");
      }
      switch (value.front()->type()) {
        case item::ItemType::kNull: out->AppendInt64(2); break;
        case item::ItemType::kBoolean:
          out->AppendInt64(value.front()->BooleanValue() ? 3 : 4);
          break;
        case item::ItemType::kString: out->AppendInt64(5); break;
        case item::ItemType::kInteger:
        case item::ItemType::kDecimal:
        case item::ItemType::kDouble: out->AppendInt64(6); break;
        default:
          common::ThrowError(
              ErrorCode::kInvalidGroupingKey,
              "grouping key must be an atomic, found " +
                  std::string(item::ItemTypeName(value.front()->type())));
      }
    }
  };
  return udf;
}

df::Udf GroupStringUdf(std::string variable) {
  df::Udf udf;
  udf.inputs = {variable};
  udf.eval = [variable](const df::Schema& schema, const RecordBatch& batch,
                        df::Column* out) {
    std::size_t index = schema.RequireIndex(variable);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value = batch.columns[index].SeqAt(row);
      if (value.size() == 1 && value.front()->IsString()) {
        out->AppendString(value.front()->StringValue());
      } else {
        out->AppendString("");
      }
    }
  };
  return udf;
}

df::Udf GroupNumberUdf(std::string variable) {
  df::Udf udf;
  udf.inputs = {variable};
  udf.eval = [variable](const df::Schema& schema, const RecordBatch& batch,
                        df::Column* out) {
    std::size_t index = schema.RequireIndex(variable);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value = batch.columns[index].SeqAt(row);
      if (value.size() == 1 && value.front()->IsNumeric()) {
        double numeric = value.front()->NumericValue();
        if (numeric == 0.0) numeric = 0.0;  // normalize -0.0
        out->AppendFloat64(numeric);
      } else {
        out->AppendFloat64(0.0);
      }
    }
  };
  return udf;
}

// ---- join key encoding (docs/OPTIMIZER.md) ---------------------------------

/// Build-side batches are chunked so FromBatches yields several partitions
/// and the statistics pass sees realistic per-batch byte counts.
constexpr std::size_t kJoinBuildBatchRows = 4096;

/// Join keys reuse the group-by triple encoding (tag/string/number), with
/// two `eq` — value-comparison — differences: an empty key sequence encodes
/// as a native NULL tag cell, which the hash join never matches (`() eq x`
/// is the empty sequence, whose effective boolean value is false), and a
/// multi-item key raises kCardinalityError exactly as the comparison
/// iterator would. JSON null keeps tag 2 and so joins with other nulls
/// (`null eq null` is true).
df::Udf JoinTagUdf(ColumnFieldPath path) {
  df::Udf udf;
  udf.inputs = {path.variable};
  udf.eval = [path](const df::Schema& schema, const RecordBatch& batch,
                    df::Column* out) {
    std::size_t index = schema.RequireIndex(path.variable);
    ItemSequence a, b;
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value =
          *EvalFieldPath(batch.columns[index].SeqAt(row), path.keys, &a, &b);
      if (value.empty()) {
        out->AppendNull();
        continue;
      }
      if (value.size() > 1) {
        common::ThrowError(
            ErrorCode::kCardinalityError,
            "value comparison: expected at most one item, found several");
      }
      switch (value.front()->type()) {
        case item::ItemType::kNull: out->AppendInt64(2); break;
        case item::ItemType::kBoolean:
          out->AppendInt64(value.front()->BooleanValue() ? 3 : 4);
          break;
        case item::ItemType::kString: out->AppendInt64(5); break;
        case item::ItemType::kInteger:
        case item::ItemType::kDecimal:
        case item::ItemType::kDouble: out->AppendInt64(6); break;
        default:
          common::ThrowError(
              ErrorCode::kTypeError,
              "join key must be an atomic, found " +
                  std::string(item::ItemTypeName(value.front()->type())));
      }
    }
  };
  return udf;
}

df::Udf JoinStringUdf(ColumnFieldPath path) {
  df::Udf udf;
  udf.inputs = {path.variable};
  udf.eval = [path](const df::Schema& schema, const RecordBatch& batch,
                    df::Column* out) {
    std::size_t index = schema.RequireIndex(path.variable);
    ItemSequence a, b;
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value =
          *EvalFieldPath(batch.columns[index].SeqAt(row), path.keys, &a, &b);
      if (value.size() == 1 && value.front()->IsString()) {
        out->AppendString(value.front()->StringValue());
      } else {
        out->AppendString("");
      }
    }
  };
  return udf;
}

df::Udf JoinNumberUdf(ColumnFieldPath path) {
  df::Udf udf;
  udf.inputs = {path.variable};
  udf.eval = [path](const df::Schema& schema, const RecordBatch& batch,
                    df::Column* out) {
    std::size_t index = schema.RequireIndex(path.variable);
    ItemSequence a, b;
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value =
          *EvalFieldPath(batch.columns[index].SeqAt(row), path.keys, &a, &b);
      if (value.size() == 1 && value.front()->IsNumeric()) {
        double numeric = value.front()->NumericValue();
        if (numeric == 0.0) numeric = 0.0;  // normalize -0.0
        out->AppendFloat64(numeric);
      } else {
        out->AppendFloat64(0.0);
      }
    }
  };
  return udf;
}

// ---- order-by key encoding (Section 4.8) -----------------------------------

enum class KeyFamily { kNone, kBoolean, kString, kNumber };

df::Udf SortTagUdf(std::string source, bool empty_greatest) {
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, empty_greatest](const df::Schema& schema,
                                      const RecordBatch& batch,
                                      df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      SortKeyValue value =
          MakeSortKeyValue(batch.columns[index].SeqAt(row));
      out->AppendInt64(SortKeyTypeTag(value, empty_greatest));
    }
  };
  return udf;
}

df::Udf SortValueUdf(std::string source, KeyFamily family) {
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, family](const df::Schema& schema,
                              const RecordBatch& batch, df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& seq = batch.columns[index].SeqAt(row);
      if (family == KeyFamily::kString) {
        if (seq.size() == 1 && seq.front()->IsString()) {
          out->AppendString(seq.front()->StringValue());
        } else {
          out->AppendString("");
        }
      } else {
        if (seq.size() == 1 && seq.front()->IsNumeric()) {
          out->AppendFloat64(seq.front()->NumericValue());
        } else {
          out->AppendFloat64(0.0);
        }
      }
    }
  };
  return udf;
}

/// SortTagUdf with the compliant type check (Section 4.8) fused into the
/// same pass: every non-empty, non-null key value CAS-merges its type family
/// into state shared across all copies of the UDF, and a conflict raises
/// kIncompatibleSortKeys — the error the former separate discovery pass
/// raised, now detected during the single materialization the sort performs
/// anyway instead of an extra pass over the whole stream.
df::Udf ValidatingSortTagUdf(std::string source, bool empty_greatest) {
  auto family = std::make_shared<std::atomic<int>>(0);  // 0 = none yet
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, empty_greatest, family](const df::Schema& schema,
                                              const RecordBatch& batch,
                                              df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      SortKeyValue value = MakeSortKeyValue(batch.columns[index].SeqAt(row));
      if (value.has_value() &&
          (*value)->type() != item::ItemType::kNull) {  // null compares to all
        int observed;
        switch ((*value)->type()) {
          case item::ItemType::kBoolean:
            observed = static_cast<int>(KeyFamily::kBoolean);
            break;
          case item::ItemType::kString:
            observed = static_cast<int>(KeyFamily::kString);
            break;
          default:
            observed = static_cast<int>(KeyFamily::kNumber);
            break;
        }
        int expected = 0;
        if (!family->compare_exchange_strong(expected, observed) &&
            expected != observed) {
          common::ThrowError(
              ErrorCode::kIncompatibleSortKeys,
              "order-by key mixes incompatible types across the stream");
        }
      }
      out->AppendInt64(SortKeyTypeTag(value, empty_greatest));
    }
  };
  return udf;
}

// ---- Clause translation ------------------------------------------------------

struct Translator {
  const EngineContextPtr& engine;
  DynamicContextPtr captured;
  DataFrame df;
  /// EXPLAIN mode: build the logical plan without ever executing it. The
  /// order-by type-discovery pass runs the plan, so plan-only translation
  /// takes the lazy no-type-check path instead.
  bool plan_only = false;

  void Apply(const CompiledClause& clause) {
    switch (clause.kind) {
      case FlworClause::Kind::kFor: ApplyFor(clause); break;
      case FlworClause::Kind::kLet: ApplyLet(clause); break;
      case FlworClause::Kind::kWhere: ApplyWhere(clause); break;
      case FlworClause::Kind::kGroupBy: ApplyGroupBy(clause); break;
      case FlworClause::Kind::kOrderBy: ApplyOrderBy(clause); break;
      case FlworClause::Kind::kCount: ApplyCount(clause); break;
    }
  }

  void ApplyFor(const CompiledClause& clause) {
    df = ProjectWithVariable(
        df, clause.variable,
        SeqUdf(clause.expr, captured,
               ColumnInputs(clause.free_vars, df.schema())));
    bool with_position = !clause.position_variable.empty();
    df = df.Explode(clause.variable, clause.allowing_empty,
                    with_position ? kPositionColumn : "");
    if (with_position) {
      std::vector<NamedExpr> exprs =
          RefsExcept(df.schema(), {kPositionColumn, clause.position_variable});
      exprs.push_back(NamedExpr::Computed(clause.position_variable,
                                          DataType::kItemSeq,
                                          Int64ToSeqUdf(kPositionColumn, 0)));
      df = df.Project(std::move(exprs));
    }
  }

  void ApplyLet(const CompiledClause& clause) {
    df = ProjectWithVariable(
        df, clause.variable,
        SeqUdf(clause.expr, captured,
               ColumnInputs(clause.free_vars, df.schema())));
  }

  /// Compiles where clauses of the shapes `<operand> <cmp> <operand>` (each
  /// operand a tuple-column field path or a constant) and `<field path>`
  /// (effective boolean value) into columnar mask kernels. Returns false for
  /// anything else, leaving the generic per-row path in charge.
  bool TryVectorizedWhere(const CompiledClause& clause,
                          df::Predicate* predicate) {
    ComparisonShape shape;
    if (clause.expr->DescribeComparison(&shape)) {
      CompareOperand left;
      CompareOperand right;
      if (!DescribeOperand(shape.left, df.schema(), &left) ||
          !DescribeOperand(shape.right, df.schema(), &right)) {
        return false;
      }
      CountVectorizedKernel(engine);
      CompareOp op = shape.op;
      predicate->eval = [op, left, right](const df::Schema& schema,
                                          const RecordBatch& batch) {
        const df::Column* left_column =
            left.is_constant
                ? nullptr
                : &batch.columns[schema.RequireIndex(left.path.variable)];
        const df::Column* right_column =
            right.is_constant
                ? nullptr
                : &batch.columns[schema.RequireIndex(right.path.variable)];
        std::vector<char> mask(batch.num_rows, 0);
        ItemSequence la, lb, ra, rb;
        bool value_op = IsValueCompareOp(op);
        for (std::size_t row = 0; row < batch.num_rows; ++row) {
          // Left evaluates (and may throw) before right, like the iterator.
          const ItemSequence* lseq =
              left.is_constant ? &left.constant
                               : EvalFieldPath(left_column->SeqAt(row),
                                               left.path.keys, &la, &lb);
          if (value_op && lseq->size() > 1) {
            common::ThrowError(
                ErrorCode::kCardinalityError,
                "value comparison: expected at most one item, found several");
          }
          const ItemSequence* rseq =
              right.is_constant ? &right.constant
                                : EvalFieldPath(right_column->SeqAt(row),
                                                right.path.keys, &ra, &rb);
          if (value_op) {
            if (rseq->size() > 1) {
              common::ThrowError(
                  ErrorCode::kCardinalityError,
                  "value comparison: expected at most one item, found "
                  "several");
            }
            // Empty operand: the comparison yields (), whose EBV is false.
            if (lseq->empty() || rseq->empty()) continue;
            mask[row] = CompareItemsForOp(*lseq->front(), *rseq->front(), op)
                            ? 1
                            : 0;
            continue;
          }
          // General comparison: existential over both sequences.
          for (const auto& l : *lseq) {
            for (const auto& r : *rseq) {
              if (CompareItemsForOp(*l, *r, op)) {
                mask[row] = 1;
                break;
              }
            }
            if (mask[row]) break;
          }
        }
        return mask;
      };
      return true;
    }
    ColumnFieldPath path;
    if (clause.expr->DescribeFieldPath(&path) &&
        df.schema().IndexOf(path.variable) >= 0) {
      CountVectorizedKernel(engine);
      predicate->eval = [path](const df::Schema& schema,
                               const RecordBatch& batch) {
        const df::Column& column =
            batch.columns[schema.RequireIndex(path.variable)];
        std::vector<char> mask(batch.num_rows, 0);
        ItemSequence a, b;
        for (std::size_t row = 0; row < batch.num_rows; ++row) {
          mask[row] = SequenceBooleanValue(
                          *EvalFieldPath(column.SeqAt(row), path.keys, &a, &b))
                          ? 1
                          : 0;
        }
        return mask;
      };
      return true;
    }
    return false;
  }

  void ApplyWhere(const CompiledClause& clause) {
    df::Predicate predicate;
    predicate.inputs = ColumnInputs(clause.free_vars, df.schema());
    if (TryVectorizedWhere(clause, &predicate)) {
      df = df.Filter(std::move(predicate));
      return;
    }
    RuntimeIteratorPtr prototype = clause.expr;
    DynamicContextPtr outer = captured;
    std::vector<std::string> inputs = predicate.inputs;
    predicate.eval = [prototype, outer, inputs](const df::Schema& schema,
                                                const RecordBatch& batch) {
      RuntimeIteratorPtr iterator = prototype->Clone();
      std::vector<std::size_t> indices;
      indices.reserve(inputs.size());
      for (const auto& name : inputs) {
        indices.push_back(schema.RequireIndex(name));
      }
      std::vector<char> mask(batch.num_rows, 0);
      DynamicContext scope(outer.get());
      for (std::size_t row = 0; row < batch.num_rows; ++row) {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          scope.BindCopy(inputs[i], batch.columns[indices[i]].SeqAt(row));
        }
        mask[row] = iterator->MaterializeBoolean(scope) ? 1 : 0;
      }
      return mask;
    };
    df = df.Filter(std::move(predicate));
  }

  /// Whether a mid-stream for clause could be the build side of a join: an
  /// independent distributed source (no references to current tuple
  /// columns), plain binding (no position variable, no allowing empty — both
  /// change per-probe-row semantics), and a fresh variable name. Candidates
  /// that fail the where-shape test fall back to the nested-loop path
  /// (ApplyFor's per-row evaluation) and count df.join.fallback.
  bool JoinCandidate(const CompiledClause& clause) const {
    return engine->config.enable_join_translation &&
           clause.kind == FlworClause::Kind::kFor && !clause.allowing_empty &&
           clause.position_variable.empty() && clause.expr->IsRddAble() &&
           df.schema().IndexOf(clause.variable) < 0 &&
           ColumnInputs(clause.free_vars, df.schema()).empty();
  }

  /// The build side as a one-column DataFrame of singleton sequences. During
  /// execution the source materializes here so scan statistics exist and the
  /// cost model picks broadcast vs shuffle before the join runs; plan-only
  /// EXPLAIN must not execute anything, so it wraps the lazy RDD instead and
  /// the printed strategy stays "auto" (resolved from the actual build
  /// footprint at execution time).
  DataFrame BuildSideFrame(const CompiledClause& clause) {
    auto schema = std::make_shared<df::Schema>(std::vector<df::Field>{
        df::Field{clause.variable, DataType::kItemSeq}});
    if (plan_only) {
      spark::Rdd<RecordBatch> batches =
          clause.expr->GetRdd(*captured).MapPartitions(
              [](ItemSequence&& items) {
                RecordBatch batch;
                df::Column column(DataType::kItemSeq);
                column.Reserve(items.size());
                for (auto& item : items) {
                  column.AppendSeq({std::move(item)});
                }
                batch.num_rows = column.size();
                batch.columns.push_back(std::move(column));
                return std::vector<RecordBatch>{std::move(batch)};
              });
      return DataFrame::FromRdd(engine->spark.get(), std::move(schema),
                                std::move(batches));
    }
    std::vector<ItemPtr> items = clause.expr->GetRdd(*captured).Collect();
    std::vector<RecordBatch> batches;
    for (std::size_t begin = 0; begin < items.size();
         begin += kJoinBuildBatchRows) {
      std::size_t end = std::min(items.size(), begin + kJoinBuildBatchRows);
      RecordBatch batch;
      df::Column column(DataType::kItemSeq);
      column.Reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        column.AppendSeq({std::move(items[i])});
      }
      batch.num_rows = column.size();
      batch.columns.push_back(std::move(column));
      batches.push_back(std::move(batch));
    }
    if (batches.empty()) {
      RecordBatch batch;
      batch.columns.emplace_back(DataType::kItemSeq);
      batches.push_back(std::move(batch));
    }
    return DataFrame::FromBatches(engine->spark.get(), std::move(schema),
                                  std::move(batches));
  }

  /// Compiles `for $r in <source> where <key eq key>` into a Join node when
  /// the where clause is a value-equality between a field path over the new
  /// variable and a field path over an existing tuple column
  /// (docs/QUERY_LANGUAGE.md). General `=` comparisons are existential over
  /// sequences and stay on the nested-loop path. Returns false without
  /// changing any state when the shape does not match.
  bool TryApplyJoin(const CompiledClause& for_clause,
                    const CompiledClause& where_clause) {
    ComparisonShape shape;
    if (!where_clause.expr->DescribeComparison(&shape)) return false;
    if (shape.op != CompareOp::kValueEq) return false;
    ColumnFieldPath lhs;
    ColumnFieldPath rhs;
    if (!shape.left->DescribeFieldPath(&lhs) ||
        !shape.right->DescribeFieldPath(&rhs)) {
      return false;
    }
    const bool left_is_build = lhs.variable == for_clause.variable;
    const bool right_is_build = rhs.variable == for_clause.variable;
    if (left_is_build == right_is_build) return false;
    const ColumnFieldPath& build_path = left_is_build ? lhs : rhs;
    const ColumnFieldPath& probe_path = left_is_build ? rhs : lhs;
    if (df.schema().IndexOf(probe_path.variable) < 0) return false;

    // Probe (left) side: the current tuple stream plus its key triple.
    std::vector<NamedExpr> left_exprs = RefsExcept(df.schema(), {});
    left_exprs.push_back(NamedExpr::Computed("#jl0t", DataType::kInt64,
                                             JoinTagUdf(probe_path)));
    left_exprs.push_back(NamedExpr::Computed("#jl0s", DataType::kString,
                                             JoinStringUdf(probe_path)));
    left_exprs.push_back(NamedExpr::Computed("#jl0d", DataType::kFloat64,
                                             JoinNumberUdf(probe_path)));
    DataFrame probe = df.Project(std::move(left_exprs));

    // Build (right) side: the new source plus its key triple.
    DataFrame build = BuildSideFrame(for_clause);
    std::vector<NamedExpr> right_exprs = RefsExcept(build.schema(), {});
    right_exprs.push_back(NamedExpr::Computed("#jr0t", DataType::kInt64,
                                              JoinTagUdf(build_path)));
    right_exprs.push_back(NamedExpr::Computed("#jr0s", DataType::kString,
                                              JoinStringUdf(build_path)));
    right_exprs.push_back(NamedExpr::Computed("#jr0d", DataType::kFloat64,
                                              JoinNumberUdf(build_path)));
    build = build.Project(std::move(right_exprs));

    df = probe.Join(build, {df::JoinKey{"#jl0t", "#jr0t"},
                            df::JoinKey{"#jl0s", "#jr0s"},
                            df::JoinKey{"#jl0d", "#jr0d"}});
    df = df.Project(RefsExcept(
        df.schema(),
        {"#jl0t", "#jl0s", "#jl0d", "#jr0t", "#jr0s", "#jr0d"}));
    return true;
  }

  void ApplyGroupBy(const CompiledClause& clause) {
    // 1. Bind grouping variables that come with expressions.
    for (const auto& spec : clause.group_specs) {
      if (spec.expr == nullptr) continue;
      df = ProjectWithVariable(
          df, spec.variable,
          SeqUdf(spec.expr, captured,
                 ColumnInputs(spec.free_vars, df.schema())));
    }

    // 2. Add the paper's three native key columns per grouping variable.
    std::vector<NamedExpr> with_keys = RefsExcept(df.schema(), {});
    std::vector<std::string> key_columns;
    for (std::size_t i = 0; i < clause.group_specs.size(); ++i) {
      const auto& variable = clause.group_specs[i].variable;
      std::string base = "#k" + std::to_string(i);
      with_keys.push_back(NamedExpr::Computed(base + "t", DataType::kInt64,
                                              GroupTagUdf(variable)));
      with_keys.push_back(NamedExpr::Computed(base + "s", DataType::kString,
                                              GroupStringUdf(variable)));
      with_keys.push_back(NamedExpr::Computed(base + "d", DataType::kFloat64,
                                              GroupNumberUdf(variable)));
      key_columns.push_back(base + "t");
      key_columns.push_back(base + "s");
      key_columns.push_back(base + "d");
    }
    df = df.Project(std::move(with_keys));

    // 3. Aggregate: grouping variables keep a witness value; non-grouping
    //    variables materialize (SEQUENCE()), count (COUNT()) or disappear.
    std::vector<df::Aggregate> aggregates;
    std::vector<std::string> counted;
    for (const auto& spec : clause.group_specs) {
      aggregates.push_back(
          df::Aggregate{spec.variable, spec.variable, df::AggKind::kFirst});
    }
    for (const auto& [name, usage] : clause.nongroup_vars) {
      switch (usage) {
        case VarUsage::kUnused:
          break;
        case VarUsage::kCountOnly:
          aggregates.push_back(
              df::Aggregate{name, "#c_" + name, df::AggKind::kCount});
          counted.push_back(name);
          break;
        case VarUsage::kGeneral:
          aggregates.push_back(
              df::Aggregate{name, name, df::AggKind::kCollect});
          break;
      }
    }
    df = df.GroupBy(key_columns, std::move(aggregates));

    // 4. Project away the native key columns and convert counts back to
    //    singleton integers.
    std::set<std::string> drop(key_columns.begin(), key_columns.end());
    for (const auto& name : counted) drop.insert("#c_" + name);
    std::vector<NamedExpr> cleanup = RefsExcept(df.schema(), drop);
    for (const auto& name : counted) {
      cleanup.push_back(NamedExpr::Computed(name, DataType::kItemSeq,
                                            Int64ToSeqUdf("#c_" + name, 0)));
    }
    df = df.Project(std::move(cleanup));
  }

  void ApplyOrderBy(const CompiledClause& clause) {
    // 1. Add one item-seq key column per order spec.
    std::vector<NamedExpr> with_keys = RefsExcept(df.schema(), {});
    for (std::size_t i = 0; i < clause.order_specs.size(); ++i) {
      with_keys.push_back(NamedExpr::Computed(
          "#o" + std::to_string(i), DataType::kItemSeq,
          SeqUdf(clause.order_specs[i].expr, captured,
                 ColumnInputs(clause.order_specs[i].free_vars, df.schema()))));
    }
    df = df.Project(std::move(with_keys));

    // 2. Both paths use the three-native-columns-per-key encoding; the
    //    compliant path fuses the Section 4.8 type check into the tag UDFs
    //    (ValidatingSortTagUdf), replacing the former separate discovery
    //    pass that materialized the whole stream an extra time. When the
    //    stream's families are valid (uniform per key), the unused value
    //    column of each key is constant, so ordering is identical to the
    //    family-specific encoding.
    ApplyOrderByNative(clause, /*validate_families=*/!(
                           plan_only ||
                           engine->config.orderby_skip_type_check));
  }

  /// The shared native sort-key encoding: every key gets all three native
  /// columns (as group-by does). With `validate_families` the tag UDFs
  /// additionally enforce type compatibility across the stream; without it
  /// this is Section 4.8's alternate skip-type-check design (also used for
  /// plan-only EXPLAIN, which must not execute anything).
  void ApplyOrderByNative(const CompiledClause& clause,
                          bool validate_families) {
    std::vector<NamedExpr> with_native = RefsExcept(df.schema(), {});
    std::vector<df::SortKey> sort_keys;
    std::set<std::string> drop;
    for (std::size_t i = 0; i < clause.order_specs.size(); ++i) {
      const auto& spec = clause.order_specs[i];
      std::string source = "#o" + std::to_string(i);
      std::string tag = "#s" + std::to_string(i) + "t";
      std::string str = "#s" + std::to_string(i) + "s";
      std::string num = "#s" + std::to_string(i) + "d";
      with_native.push_back(NamedExpr::Computed(
          tag, DataType::kInt64,
          validate_families
              ? ValidatingSortTagUdf(source, spec.empty_greatest)
              : SortTagUdf(source, spec.empty_greatest)));
      with_native.push_back(NamedExpr::Computed(
          str, DataType::kString, SortValueUdf(source, KeyFamily::kString)));
      with_native.push_back(NamedExpr::Computed(
          num, DataType::kFloat64, SortValueUdf(source, KeyFamily::kNumber)));
      sort_keys.push_back(df::SortKey{tag, spec.ascending, true});
      sort_keys.push_back(df::SortKey{str, spec.ascending, true});
      sort_keys.push_back(df::SortKey{num, spec.ascending, true});
      drop.insert(source);
      drop.insert(tag);
      drop.insert(str);
      drop.insert(num);
    }
    df = df.Project(std::move(with_native)).Sort(std::move(sort_keys));
    df = df.Project(RefsExcept(df.schema(), drop));
  }

  void ApplyCount(const CompiledClause& clause) {
    df = df.ZipIndex(kCountColumn);
    std::vector<NamedExpr> exprs =
        RefsExcept(df.schema(), {kCountColumn, clause.variable});
    exprs.push_back(NamedExpr::Computed(clause.variable, DataType::kItemSeq,
                                        Int64ToSeqUdf(kCountColumn, 1)));
    df = df.Project(std::move(exprs));
  }
};

/// Shared translation for execution and EXPLAIN: builds the tuple-stream
/// DataFrame covering every clause (the return clause is applied by the
/// caller). With `plan_only` the translation never executes the plan.
DataFrame TranslateFlwor(const EngineContextPtr& engine,
                         const CompiledFlwor& flwor,
                         const DynamicContext& context,
                         DynamicContextPtr* captured_out, bool plan_only) {
  const CompiledClause& first = flwor.clauses.front();
  if (first.kind != FlworClause::Kind::kFor || !first.expr->IsRddAble()) {
    common::ThrowError(ErrorCode::kInternal,
                       "DataFrame FLWOR execution requires a distributed "
                       "initial for clause");
  }

  DynamicContextPtr captured = DynamicContext::Snapshot(context);
  *captured_out = captured;

  // Initial for clause: the input RDD of items becomes a one-column
  // DataFrame of singleton sequences (Section 4.4, "if the underlying FLWOR
  // expression physically supports an RDD ... mapped to a DataFrame in
  // parallel on the cluster").
  spark::Rdd<ItemPtr> input = first.expr->GetRdd(context);
  spark::Rdd<RecordBatch> batches =
      input.MapPartitions([](ItemSequence&& items) {
        RecordBatch batch;
        df::Column column(DataType::kItemSeq);
        column.Reserve(items.size());
        for (auto& item : items) {
          column.AppendSeq({std::move(item)});
        }
        batch.num_rows = column.size();
        batch.columns.push_back(std::move(column));
        return std::vector<RecordBatch>{std::move(batch)};
      });
  auto schema = std::make_shared<df::Schema>(std::vector<df::Field>{
      df::Field{first.variable, DataType::kItemSeq}});
  Translator translator{engine, captured,
                        DataFrame::FromRdd(engine->spark.get(),
                                           std::move(schema),
                                           std::move(batches)),
                        plan_only};

  if (!first.position_variable.empty()) {
    translator.df = translator.df.ZipIndex(kPositionColumn);
    std::vector<NamedExpr> exprs =
        RefsExcept(translator.df.schema(), {kPositionColumn});
    exprs.push_back(NamedExpr::Computed(first.position_variable,
                                        DataType::kItemSeq,
                                        Int64ToSeqUdf(kPositionColumn, 1)));
    translator.df = translator.df.Project(std::move(exprs));
  }

  obs::EventBus* bus = engine->bus();
  for (std::size_t i = 1; i < flwor.clauses.size(); ++i) {
    const CompiledClause& clause = flwor.clauses[i];
    if (translator.JoinCandidate(clause)) {
      if (i + 1 < flwor.clauses.size() &&
          flwor.clauses[i + 1].kind == FlworClause::Kind::kWhere &&
          translator.TryApplyJoin(clause, flwor.clauses[i + 1])) {
        if (bus != nullptr) bus->AddToCounter("df.join.compiled", 1);
        ++i;  // the where clause became the join condition
        continue;
      }
      // A multi-source for without a recognized equi-key: nested loop via
      // the per-row path (docs/QUERY_LANGUAGE.md).
      if (bus != nullptr) bus->AddToCounter("df.join.fallback", 1);
    }
    translator.Apply(clause);
  }
  return translator.df;
}

}  // namespace

spark::Rdd<ItemPtr> ExecuteFlworOnDataFrames(const EngineContextPtr& engine,
                                             const CompiledFlwor& flwor,
                                             const DynamicContext& context) {
  DynamicContextPtr captured;
  DataFrame df =
      TranslateFlwor(engine, flwor, context, &captured, /*plan_only=*/false);
  if (obs::EventBus* bus = engine->bus()) {
    bus->AddToCounter("flwor.backend.dataframe", 1);
  }

  // Return clause (Section 4.10): flatMap rows back to an RDD of items.
  df::SchemaPtr final_schema = df.schema_ptr();
  std::vector<std::string> inputs =
      ColumnInputs(flwor.return_free_vars, *final_schema);
  RuntimeIteratorPtr prototype = flwor.return_expr;

  // Field-path returns (`return $e`, `return $e.name`) skip the per-row
  // context binding and iterator cloning entirely.
  ColumnFieldPath return_path;
  if (prototype->DescribeFieldPath(&return_path) &&
      final_schema->IndexOf(return_path.variable) >= 0) {
    CountVectorizedKernel(engine);
    return df.Execute().MapPartitions(
        [final_schema, return_path](std::vector<RecordBatch>&& parts) {
          ItemSequence out;
          ItemSequence a, b;
          for (const auto& batch : parts) {
            const df::Column& column =
                batch.columns[final_schema->RequireIndex(
                    return_path.variable)];
            for (std::size_t row = 0; row < batch.num_rows; ++row) {
              const ItemSequence* result =
                  EvalFieldPath(column.SeqAt(row), return_path.keys, &a, &b);
              out.insert(out.end(), result->begin(), result->end());
            }
          }
          return out;
        });
  }
  return df.Execute().MapPartitions(
      [final_schema, inputs, prototype,
       captured](std::vector<RecordBatch>&& parts) {
        RuntimeIteratorPtr iterator = prototype->Clone();
        std::vector<std::size_t> indices;
        indices.reserve(inputs.size());
        for (const auto& name : inputs) {
          indices.push_back(final_schema->RequireIndex(name));
        }
        ItemSequence out;
        DynamicContext scope(captured.get());
        for (const auto& batch : parts) {
          for (std::size_t row = 0; row < batch.num_rows; ++row) {
            for (std::size_t i = 0; i < inputs.size(); ++i) {
              scope.BindCopy(inputs[i], batch.columns[indices[i]].SeqAt(row));
            }
            ItemSequence part = iterator->MaterializeAll(scope);
            out.insert(out.end(), std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
          }
        }
        return out;
      });
}

std::string ExplainFlworOnDataFrames(const EngineContextPtr& engine,
                                     const CompiledFlwor& flwor,
                                     const DynamicContext& context) {
  DynamicContextPtr captured;
  DataFrame df =
      TranslateFlwor(engine, flwor, context, &captured, /*plan_only=*/true);
  return df.Explain();
}

}  // namespace rumble::jsoniq
