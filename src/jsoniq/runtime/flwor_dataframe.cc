#include <set>
#include <utility>

#include "src/common/error.h"
#include "src/df/dataframe.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/runtime/flwor.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using df::DataFrame;
using df::DataType;
using df::NamedExpr;
using df::RecordBatch;
using item::ItemPtr;
using item::ItemSequence;

/// Names of engine-internal columns start with '#', which can never clash
/// with JSONiq variable names.
constexpr char kPositionColumn[] = "#pos";
constexpr char kCountColumn[] = "#cnt";

std::vector<std::string> ColumnsOf(const df::Schema& schema) {
  std::vector<std::string> out;
  out.reserve(schema.num_fields());
  for (const auto& field : schema.fields()) out.push_back(field.name);
  return out;
}

/// Pass-through references for every column except those in `exclude`.
std::vector<NamedExpr> RefsExcept(const df::Schema& schema,
                                  const std::set<std::string>& exclude) {
  std::vector<NamedExpr> out;
  for (const auto& field : schema.fields()) {
    if (exclude.count(field.name) > 0) continue;
    out.push_back(NamedExpr::Ref(field.name, field.name, field.type));
  }
  return out;
}

/// Variables referenced by an expression that are currently tuple columns;
/// everything else resolves through the captured outer context.
std::vector<std::string> ColumnInputs(const std::vector<std::string>& free_vars,
                                      const df::Schema& schema) {
  std::vector<std::string> out;
  for (const auto& name : free_vars) {
    if (schema.IndexOf(name) >= 0) out.push_back(name);
  }
  return out;
}

/// The paper's EVALUATE_EXPRESSION UDF (Section 4.4): evaluates a runtime
/// iterator per row, binding the referenced tuple variables from their
/// item-seq columns, and appends the resulting sequence.
df::Udf SeqUdf(RuntimeIteratorPtr prototype, DynamicContextPtr captured,
               std::vector<std::string> inputs) {
  df::Udf udf;
  udf.inputs = inputs;
  udf.eval = [prototype, captured, inputs](const df::Schema& schema,
                                           const RecordBatch& batch,
                                           df::Column* out) {
    RuntimeIteratorPtr iterator = prototype->Clone();
    std::vector<std::size_t> indices;
    indices.reserve(inputs.size());
    for (const auto& name : inputs) {
      indices.push_back(schema.RequireIndex(name));
    }
    // One scope reused across rows: rebinding reuses binding capacity.
    DynamicContext scope(captured.get());
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        scope.BindCopy(inputs[i], batch.columns[indices[i]].SeqAt(row));
      }
      out->AppendSeq(iterator->MaterializeAll(scope));
    }
  };
  return udf;
}

/// Converts an int64 column to a singleton-integer item-seq column,
/// optionally with an offset (count clause: index + 1).
df::Udf Int64ToSeqUdf(std::string source, std::int64_t offset) {
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, offset](const df::Schema& schema,
                              const RecordBatch& batch, df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      out->AppendSeq(
          {item::MakeInteger(batch.columns[index].Int64At(row) + offset)});
    }
  };
  return udf;
}

/// Projection keeping all columns, with `name` replaced (or appended) by a
/// computed item-seq column.
DataFrame ProjectWithVariable(const DataFrame& df, const std::string& name,
                              df::Udf udf) {
  std::vector<NamedExpr> exprs = RefsExcept(df.schema(), {name});
  exprs.push_back(NamedExpr::Computed(name, DataType::kItemSeq, std::move(udf)));
  return df.Project(std::move(exprs));
}

// ---- group-by key encoding (Section 4.7) -----------------------------------

/// The three native columns per grouping variable. Tags follow the paper:
/// 1 empty sequence, 2 null, 3 true, 4 false, 5 string, 6 number.
df::Udf GroupTagUdf(std::string variable) {
  df::Udf udf;
  udf.inputs = {variable};
  udf.eval = [variable](const df::Schema& schema, const RecordBatch& batch,
                        df::Column* out) {
    std::size_t index = schema.RequireIndex(variable);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value = batch.columns[index].SeqAt(row);
      if (value.empty()) {
        out->AppendInt64(1);
        continue;
      }
      if (value.size() > 1) {
        common::ThrowError(ErrorCode::kInvalidGroupingKey,
                           "grouping key bound to more than one item");
      }
      switch (value.front()->type()) {
        case item::ItemType::kNull: out->AppendInt64(2); break;
        case item::ItemType::kBoolean:
          out->AppendInt64(value.front()->BooleanValue() ? 3 : 4);
          break;
        case item::ItemType::kString: out->AppendInt64(5); break;
        case item::ItemType::kInteger:
        case item::ItemType::kDecimal:
        case item::ItemType::kDouble: out->AppendInt64(6); break;
        default:
          common::ThrowError(
              ErrorCode::kInvalidGroupingKey,
              "grouping key must be an atomic, found " +
                  std::string(item::ItemTypeName(value.front()->type())));
      }
    }
  };
  return udf;
}

df::Udf GroupStringUdf(std::string variable) {
  df::Udf udf;
  udf.inputs = {variable};
  udf.eval = [variable](const df::Schema& schema, const RecordBatch& batch,
                        df::Column* out) {
    std::size_t index = schema.RequireIndex(variable);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value = batch.columns[index].SeqAt(row);
      if (value.size() == 1 && value.front()->IsString()) {
        out->AppendString(value.front()->StringValue());
      } else {
        out->AppendString("");
      }
    }
  };
  return udf;
}

df::Udf GroupNumberUdf(std::string variable) {
  df::Udf udf;
  udf.inputs = {variable};
  udf.eval = [variable](const df::Schema& schema, const RecordBatch& batch,
                        df::Column* out) {
    std::size_t index = schema.RequireIndex(variable);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& value = batch.columns[index].SeqAt(row);
      if (value.size() == 1 && value.front()->IsNumeric()) {
        double numeric = value.front()->NumericValue();
        if (numeric == 0.0) numeric = 0.0;  // normalize -0.0
        out->AppendFloat64(numeric);
      } else {
        out->AppendFloat64(0.0);
      }
    }
  };
  return udf;
}

// ---- order-by key encoding (Section 4.8) -----------------------------------

enum class KeyFamily { kNone, kBoolean, kString, kNumber };

df::Udf SortTagUdf(std::string source, bool empty_greatest) {
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, empty_greatest](const df::Schema& schema,
                                      const RecordBatch& batch,
                                      df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      SortKeyValue value =
          MakeSortKeyValue(batch.columns[index].SeqAt(row));
      out->AppendInt64(SortKeyTypeTag(value, empty_greatest));
    }
  };
  return udf;
}

df::Udf SortValueUdf(std::string source, KeyFamily family) {
  df::Udf udf;
  udf.inputs = {source};
  udf.eval = [source, family](const df::Schema& schema,
                              const RecordBatch& batch, df::Column* out) {
    std::size_t index = schema.RequireIndex(source);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      const ItemSequence& seq = batch.columns[index].SeqAt(row);
      if (family == KeyFamily::kString) {
        if (seq.size() == 1 && seq.front()->IsString()) {
          out->AppendString(seq.front()->StringValue());
        } else {
          out->AppendString("");
        }
      } else {
        if (seq.size() == 1 && seq.front()->IsNumeric()) {
          out->AppendFloat64(seq.front()->NumericValue());
        } else {
          out->AppendFloat64(0.0);
        }
      }
    }
  };
  return udf;
}

// ---- Clause translation ------------------------------------------------------

struct Translator {
  const EngineContextPtr& engine;
  DynamicContextPtr captured;
  DataFrame df;
  /// EXPLAIN mode: build the logical plan without ever executing it. The
  /// order-by type-discovery pass runs the plan, so plan-only translation
  /// takes the lazy no-type-check path instead.
  bool plan_only = false;

  void Apply(const CompiledClause& clause) {
    switch (clause.kind) {
      case FlworClause::Kind::kFor: ApplyFor(clause); break;
      case FlworClause::Kind::kLet: ApplyLet(clause); break;
      case FlworClause::Kind::kWhere: ApplyWhere(clause); break;
      case FlworClause::Kind::kGroupBy: ApplyGroupBy(clause); break;
      case FlworClause::Kind::kOrderBy: ApplyOrderBy(clause); break;
      case FlworClause::Kind::kCount: ApplyCount(clause); break;
    }
  }

  void ApplyFor(const CompiledClause& clause) {
    df = ProjectWithVariable(
        df, clause.variable,
        SeqUdf(clause.expr, captured,
               ColumnInputs(clause.free_vars, df.schema())));
    bool with_position = !clause.position_variable.empty();
    df = df.Explode(clause.variable, clause.allowing_empty,
                    with_position ? kPositionColumn : "");
    if (with_position) {
      std::vector<NamedExpr> exprs =
          RefsExcept(df.schema(), {kPositionColumn, clause.position_variable});
      exprs.push_back(NamedExpr::Computed(clause.position_variable,
                                          DataType::kItemSeq,
                                          Int64ToSeqUdf(kPositionColumn, 0)));
      df = df.Project(std::move(exprs));
    }
  }

  void ApplyLet(const CompiledClause& clause) {
    df = ProjectWithVariable(
        df, clause.variable,
        SeqUdf(clause.expr, captured,
               ColumnInputs(clause.free_vars, df.schema())));
  }

  void ApplyWhere(const CompiledClause& clause) {
    df::Predicate predicate;
    predicate.inputs = ColumnInputs(clause.free_vars, df.schema());
    RuntimeIteratorPtr prototype = clause.expr;
    DynamicContextPtr outer = captured;
    std::vector<std::string> inputs = predicate.inputs;
    predicate.eval = [prototype, outer, inputs](const df::Schema& schema,
                                                const RecordBatch& batch) {
      RuntimeIteratorPtr iterator = prototype->Clone();
      std::vector<std::size_t> indices;
      indices.reserve(inputs.size());
      for (const auto& name : inputs) {
        indices.push_back(schema.RequireIndex(name));
      }
      std::vector<char> mask(batch.num_rows, 0);
      DynamicContext scope(outer.get());
      for (std::size_t row = 0; row < batch.num_rows; ++row) {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          scope.BindCopy(inputs[i], batch.columns[indices[i]].SeqAt(row));
        }
        mask[row] = iterator->MaterializeBoolean(scope) ? 1 : 0;
      }
      return mask;
    };
    df = df.Filter(std::move(predicate));
  }

  void ApplyGroupBy(const CompiledClause& clause) {
    // 1. Bind grouping variables that come with expressions.
    for (const auto& spec : clause.group_specs) {
      if (spec.expr == nullptr) continue;
      df = ProjectWithVariable(
          df, spec.variable,
          SeqUdf(spec.expr, captured,
                 ColumnInputs(spec.free_vars, df.schema())));
    }

    // 2. Add the paper's three native key columns per grouping variable.
    std::vector<NamedExpr> with_keys = RefsExcept(df.schema(), {});
    std::vector<std::string> key_columns;
    for (std::size_t i = 0; i < clause.group_specs.size(); ++i) {
      const auto& variable = clause.group_specs[i].variable;
      std::string base = "#k" + std::to_string(i);
      with_keys.push_back(NamedExpr::Computed(base + "t", DataType::kInt64,
                                              GroupTagUdf(variable)));
      with_keys.push_back(NamedExpr::Computed(base + "s", DataType::kString,
                                              GroupStringUdf(variable)));
      with_keys.push_back(NamedExpr::Computed(base + "d", DataType::kFloat64,
                                              GroupNumberUdf(variable)));
      key_columns.push_back(base + "t");
      key_columns.push_back(base + "s");
      key_columns.push_back(base + "d");
    }
    df = df.Project(std::move(with_keys));

    // 3. Aggregate: grouping variables keep a witness value; non-grouping
    //    variables materialize (SEQUENCE()), count (COUNT()) or disappear.
    std::vector<df::Aggregate> aggregates;
    std::vector<std::string> counted;
    for (const auto& spec : clause.group_specs) {
      aggregates.push_back(
          df::Aggregate{spec.variable, spec.variable, df::AggKind::kFirst});
    }
    for (const auto& [name, usage] : clause.nongroup_vars) {
      switch (usage) {
        case VarUsage::kUnused:
          break;
        case VarUsage::kCountOnly:
          aggregates.push_back(
              df::Aggregate{name, "#c_" + name, df::AggKind::kCount});
          counted.push_back(name);
          break;
        case VarUsage::kGeneral:
          aggregates.push_back(
              df::Aggregate{name, name, df::AggKind::kCollect});
          break;
      }
    }
    df = df.GroupBy(key_columns, std::move(aggregates));

    // 4. Project away the native key columns and convert counts back to
    //    singleton integers.
    std::set<std::string> drop(key_columns.begin(), key_columns.end());
    for (const auto& name : counted) drop.insert("#c_" + name);
    std::vector<NamedExpr> cleanup = RefsExcept(df.schema(), drop);
    for (const auto& name : counted) {
      cleanup.push_back(NamedExpr::Computed(name, DataType::kItemSeq,
                                            Int64ToSeqUdf("#c_" + name, 0)));
    }
    df = df.Project(std::move(cleanup));
  }

  void ApplyOrderBy(const CompiledClause& clause) {
    // 1. Add one item-seq key column per order spec.
    std::vector<NamedExpr> with_keys = RefsExcept(df.schema(), {});
    for (std::size_t i = 0; i < clause.order_specs.size(); ++i) {
      with_keys.push_back(NamedExpr::Computed(
          "#o" + std::to_string(i), DataType::kItemSeq,
          SeqUdf(clause.order_specs[i].expr, captured,
                 ColumnInputs(clause.order_specs[i].free_vars, df.schema()))));
    }
    df = df.Project(std::move(with_keys));

    if (plan_only || engine->config.orderby_skip_type_check) {
      ApplyOrderByWithoutTypeCheck(clause);
      return;
    }

    // 2. First pass (Section 4.8): discover each key's type family and
    //    throw on incompatibilities before sorting. The intermediate result
    //    is materialized so the plan does not run twice.
    std::vector<RecordBatch> batches = df.Execute().Collect();
    std::vector<KeyFamily> families(clause.order_specs.size(),
                                    KeyFamily::kNone);
    df::SchemaPtr schema = df.schema_ptr();
    for (std::size_t i = 0; i < clause.order_specs.size(); ++i) {
      std::size_t index = schema->RequireIndex("#o" + std::to_string(i));
      for (const auto& batch : batches) {
        for (std::size_t row = 0; row < batch.num_rows; ++row) {
          SortKeyValue value =
              MakeSortKeyValue(batch.columns[index].SeqAt(row));
          if (!value.has_value()) continue;
          KeyFamily family = KeyFamily::kNone;
          switch ((*value)->type()) {
            case item::ItemType::kNull: continue;  // comparable to anything
            case item::ItemType::kBoolean: family = KeyFamily::kBoolean; break;
            case item::ItemType::kString: family = KeyFamily::kString; break;
            default: family = KeyFamily::kNumber; break;
          }
          if (families[i] == KeyFamily::kNone) {
            families[i] = family;
          } else if (families[i] != family) {
            common::ThrowError(
                ErrorCode::kIncompatibleSortKeys,
                "order-by key mixes incompatible types across the stream");
          }
        }
      }
    }
    df = DataFrame::FromBatches(engine->spark.get(), schema,
                                std::move(batches));

    // 3. Only the needed native columns are created per key (tag always;
    //    a value column only for string/number families).
    std::vector<NamedExpr> with_native = RefsExcept(df.schema(), {});
    std::vector<df::SortKey> sort_keys;
    std::set<std::string> drop;
    for (std::size_t i = 0; i < clause.order_specs.size(); ++i) {
      const auto& spec = clause.order_specs[i];
      std::string source = "#o" + std::to_string(i);
      std::string tag = "#s" + std::to_string(i) + "t";
      with_native.push_back(NamedExpr::Computed(
          tag, DataType::kInt64, SortTagUdf(source, spec.empty_greatest)));
      sort_keys.push_back(df::SortKey{tag, spec.ascending, true});
      drop.insert(source);
      drop.insert(tag);
      if (families[i] == KeyFamily::kString ||
          families[i] == KeyFamily::kNumber) {
        std::string value = "#s" + std::to_string(i) + "v";
        with_native.push_back(NamedExpr::Computed(
            value,
            families[i] == KeyFamily::kString ? DataType::kString
                                              : DataType::kFloat64,
            SortValueUdf(source, families[i])));
        sort_keys.push_back(df::SortKey{value, spec.ascending, true});
        drop.insert(value);
      }
    }
    df = df.Project(std::move(with_native)).Sort(std::move(sort_keys));
    df = df.Project(RefsExcept(df.schema(), drop));
  }

  /// Section 4.8's alternate design: no discovery pass; every key gets all
  /// three native columns (as group-by does) and sorting proceeds without
  /// validating type compatibility across the stream.
  void ApplyOrderByWithoutTypeCheck(const CompiledClause& clause) {
    std::vector<NamedExpr> with_native = RefsExcept(df.schema(), {});
    std::vector<df::SortKey> sort_keys;
    std::set<std::string> drop;
    for (std::size_t i = 0; i < clause.order_specs.size(); ++i) {
      const auto& spec = clause.order_specs[i];
      std::string source = "#o" + std::to_string(i);
      std::string tag = "#s" + std::to_string(i) + "t";
      std::string str = "#s" + std::to_string(i) + "s";
      std::string num = "#s" + std::to_string(i) + "d";
      with_native.push_back(NamedExpr::Computed(
          tag, DataType::kInt64, SortTagUdf(source, spec.empty_greatest)));
      with_native.push_back(NamedExpr::Computed(
          str, DataType::kString, SortValueUdf(source, KeyFamily::kString)));
      with_native.push_back(NamedExpr::Computed(
          num, DataType::kFloat64, SortValueUdf(source, KeyFamily::kNumber)));
      sort_keys.push_back(df::SortKey{tag, spec.ascending, true});
      sort_keys.push_back(df::SortKey{str, spec.ascending, true});
      sort_keys.push_back(df::SortKey{num, spec.ascending, true});
      drop.insert(source);
      drop.insert(tag);
      drop.insert(str);
      drop.insert(num);
    }
    df = df.Project(std::move(with_native)).Sort(std::move(sort_keys));
    df = df.Project(RefsExcept(df.schema(), drop));
  }

  void ApplyCount(const CompiledClause& clause) {
    df = df.ZipIndex(kCountColumn);
    std::vector<NamedExpr> exprs =
        RefsExcept(df.schema(), {kCountColumn, clause.variable});
    exprs.push_back(NamedExpr::Computed(clause.variable, DataType::kItemSeq,
                                        Int64ToSeqUdf(kCountColumn, 1)));
    df = df.Project(std::move(exprs));
  }
};

/// Shared translation for execution and EXPLAIN: builds the tuple-stream
/// DataFrame covering every clause (the return clause is applied by the
/// caller). With `plan_only` the translation never executes the plan.
DataFrame TranslateFlwor(const EngineContextPtr& engine,
                         const CompiledFlwor& flwor,
                         const DynamicContext& context,
                         DynamicContextPtr* captured_out, bool plan_only) {
  const CompiledClause& first = flwor.clauses.front();
  if (first.kind != FlworClause::Kind::kFor || !first.expr->IsRddAble()) {
    common::ThrowError(ErrorCode::kInternal,
                       "DataFrame FLWOR execution requires a distributed "
                       "initial for clause");
  }

  DynamicContextPtr captured = DynamicContext::Snapshot(context);
  *captured_out = captured;

  // Initial for clause: the input RDD of items becomes a one-column
  // DataFrame of singleton sequences (Section 4.4, "if the underlying FLWOR
  // expression physically supports an RDD ... mapped to a DataFrame in
  // parallel on the cluster").
  spark::Rdd<ItemPtr> input = first.expr->GetRdd(context);
  spark::Rdd<RecordBatch> batches =
      input.MapPartitions([](ItemSequence&& items) {
        RecordBatch batch;
        df::Column column(DataType::kItemSeq);
        column.Reserve(items.size());
        for (auto& item : items) {
          column.AppendSeq({std::move(item)});
        }
        batch.num_rows = column.size();
        batch.columns.push_back(std::move(column));
        return std::vector<RecordBatch>{std::move(batch)};
      });
  auto schema = std::make_shared<df::Schema>(std::vector<df::Field>{
      df::Field{first.variable, DataType::kItemSeq}});
  Translator translator{engine, captured,
                        DataFrame::FromRdd(engine->spark.get(),
                                           std::move(schema),
                                           std::move(batches)),
                        plan_only};

  if (!first.position_variable.empty()) {
    translator.df = translator.df.ZipIndex(kPositionColumn);
    std::vector<NamedExpr> exprs =
        RefsExcept(translator.df.schema(), {kPositionColumn});
    exprs.push_back(NamedExpr::Computed(first.position_variable,
                                        DataType::kItemSeq,
                                        Int64ToSeqUdf(kPositionColumn, 1)));
    translator.df = translator.df.Project(std::move(exprs));
  }

  for (std::size_t i = 1; i < flwor.clauses.size(); ++i) {
    translator.Apply(flwor.clauses[i]);
  }
  return translator.df;
}

}  // namespace

spark::Rdd<ItemPtr> ExecuteFlworOnDataFrames(const EngineContextPtr& engine,
                                             const CompiledFlwor& flwor,
                                             const DynamicContext& context) {
  DynamicContextPtr captured;
  DataFrame df =
      TranslateFlwor(engine, flwor, context, &captured, /*plan_only=*/false);
  if (obs::EventBus* bus = engine->bus()) {
    bus->AddToCounter("flwor.backend.dataframe", 1);
  }

  // Return clause (Section 4.10): flatMap rows back to an RDD of items.
  df::SchemaPtr final_schema = df.schema_ptr();
  std::vector<std::string> inputs =
      ColumnInputs(flwor.return_free_vars, *final_schema);
  RuntimeIteratorPtr prototype = flwor.return_expr;
  return df.Execute().MapPartitions(
      [final_schema, inputs, prototype,
       captured](std::vector<RecordBatch>&& parts) {
        RuntimeIteratorPtr iterator = prototype->Clone();
        std::vector<std::size_t> indices;
        indices.reserve(inputs.size());
        for (const auto& name : inputs) {
          indices.push_back(final_schema->RequireIndex(name));
        }
        ItemSequence out;
        DynamicContext scope(captured.get());
        for (const auto& batch : parts) {
          for (std::size_t row = 0; row < batch.num_rows; ++row) {
            for (std::size_t i = 0; i < inputs.size(); ++i) {
              scope.BindCopy(inputs[i], batch.columns[indices[i]].SeqAt(row));
            }
            ItemSequence part = iterator->MaterializeAll(scope);
            out.insert(out.end(), std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
          }
        }
        return out;
      });
}

std::string ExplainFlworOnDataFrames(const EngineContextPtr& engine,
                                     const CompiledFlwor& flwor,
                                     const DynamicContext& context) {
  DynamicContextPtr captured;
  DataFrame df =
      TranslateFlwor(engine, flwor, context, &captured, /*plan_only=*/true);
  return df.Explain();
}

}  // namespace rumble::jsoniq
