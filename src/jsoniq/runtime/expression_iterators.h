#ifndef RUMBLE_JSONIQ_RUNTIME_EXPRESSION_ITERATORS_H_
#define RUMBLE_JSONIQ_RUNTIME_EXPRESSION_ITERATORS_H_

#include <string>
#include <vector>

#include "src/jsoniq/ast.h"
#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

// Factory functions for every expression iterator family. Implementations
// live in the per-family .cc files (primary / arithmetic / comparison /
// logic / navigation / control); only the iterator builder needs these.

// -- primary_iterators.cc ---------------------------------------------------
RuntimeIteratorPtr MakeLiteralIterator(EngineContextPtr engine,
                                       item::ItemPtr value);
RuntimeIteratorPtr MakeVariableRefIterator(EngineContextPtr engine,
                                           std::string name);
RuntimeIteratorPtr MakeContextItemIterator(EngineContextPtr engine);
/// Sequence concatenation (the comma operator); no children = ().
RuntimeIteratorPtr MakeSequenceIterator(EngineContextPtr engine,
                                        std::vector<RuntimeIteratorPtr> parts);
RuntimeIteratorPtr MakeObjectConstructorIterator(
    EngineContextPtr engine, std::vector<RuntimeIteratorPtr> keys,
    std::vector<RuntimeIteratorPtr> values);
/// `content` may be null for [].
RuntimeIteratorPtr MakeArrayConstructorIterator(EngineContextPtr engine,
                                                RuntimeIteratorPtr content);
RuntimeIteratorPtr MakeStringConcatIterator(
    EngineContextPtr engine, std::vector<RuntimeIteratorPtr> parts);

// -- arithmetic_iterators.cc ----------------------------------------------
RuntimeIteratorPtr MakeArithmeticIterator(EngineContextPtr engine,
                                          ArithmeticOp op,
                                          RuntimeIteratorPtr left,
                                          RuntimeIteratorPtr right);
RuntimeIteratorPtr MakeUnaryMinusIterator(EngineContextPtr engine,
                                          RuntimeIteratorPtr child);
RuntimeIteratorPtr MakeRangeIterator(EngineContextPtr engine,
                                     RuntimeIteratorPtr from,
                                     RuntimeIteratorPtr to);

// -- comparison_iterators.cc ------------------------------------------------
RuntimeIteratorPtr MakeComparisonIterator(EngineContextPtr engine,
                                          CompareOp op,
                                          RuntimeIteratorPtr left,
                                          RuntimeIteratorPtr right);

/// Whether `op` is a value comparison (eq..ge) as opposed to a general
/// (existential) one. Shared with the DataFrame backend's filter kernel.
bool IsValueCompareOp(CompareOp op);

/// Compares two items under `op`'s relation with the comparison iterator's
/// exact semantics: non-atomics raise kTypeError, eq/ne across incompatible
/// atomic families is false, ordering across families raises kTypeError.
bool CompareItemsForOp(const item::Item& left, const item::Item& right,
                       CompareOp op);

// -- logic_iterators.cc -------------------------------------------------------
RuntimeIteratorPtr MakeAndIterator(EngineContextPtr engine,
                                   std::vector<RuntimeIteratorPtr> parts);
RuntimeIteratorPtr MakeOrIterator(EngineContextPtr engine,
                                  std::vector<RuntimeIteratorPtr> parts);

// -- navigation_iterators.cc --------------------------------------------------
RuntimeIteratorPtr MakeObjectLookupIterator(EngineContextPtr engine,
                                            RuntimeIteratorPtr target,
                                            RuntimeIteratorPtr key);
RuntimeIteratorPtr MakeArrayLookupIterator(EngineContextPtr engine,
                                           RuntimeIteratorPtr target,
                                           RuntimeIteratorPtr index);
RuntimeIteratorPtr MakeArrayUnboxIterator(EngineContextPtr engine,
                                          RuntimeIteratorPtr target);
RuntimeIteratorPtr MakePredicateIterator(EngineContextPtr engine,
                                         RuntimeIteratorPtr target,
                                         RuntimeIteratorPtr predicate);

// -- control_iterators.cc -------------------------------------------------------
RuntimeIteratorPtr MakeIfIterator(EngineContextPtr engine,
                                  RuntimeIteratorPtr condition,
                                  RuntimeIteratorPtr then_branch,
                                  RuntimeIteratorPtr else_branch);
/// children layout: operand, key1, value1, ..., keyN, valueN, default.
RuntimeIteratorPtr MakeSwitchIterator(EngineContextPtr engine,
                                      std::vector<RuntimeIteratorPtr> parts);
RuntimeIteratorPtr MakeTryCatchIterator(EngineContextPtr engine,
                                        RuntimeIteratorPtr body,
                                        RuntimeIteratorPtr handler);
RuntimeIteratorPtr MakeQuantifiedIterator(
    EngineContextPtr engine, QuantifierKind kind,
    std::vector<std::string> variables,
    std::vector<RuntimeIteratorPtr> bindings, RuntimeIteratorPtr satisfies);
RuntimeIteratorPtr MakeInstanceOfIterator(EngineContextPtr engine,
                                          RuntimeIteratorPtr child,
                                          SequenceType type);
RuntimeIteratorPtr MakeTreatAsIterator(EngineContextPtr engine,
                                       RuntimeIteratorPtr child,
                                       SequenceType type);
RuntimeIteratorPtr MakeCastAsIterator(EngineContextPtr engine,
                                      RuntimeIteratorPtr child,
                                      SequenceType type);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUNTIME_EXPRESSION_ITERATORS_H_
