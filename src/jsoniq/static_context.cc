#include "src/jsoniq/static_context.h"

#include "src/common/error.h"
#include "src/jsoniq/functions/function_library.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;

// ---------------------------------------------------------------------------
// Static binding / function resolution checks
// ---------------------------------------------------------------------------

class StaticChecker {
 public:
  StaticChecker(const FunctionLibrary& library,
                const std::set<std::string>& outer)
      : library_(library), scope_(outer) {}

  void Check(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kVariableRef:
        if (scope_.count(expr.variable) == 0) {
          common::ThrowError(
              ErrorCode::kUndeclaredVariable,
              "variable $" + expr.variable + " is not in scope at line " +
                  std::to_string(expr.line) + ", column " +
                  std::to_string(expr.column));
        }
        return;

      case Expr::Kind::kFunctionCall: {
        int arity = static_cast<int>(expr.children.size());
        if (library_.Lookup(expr.function_name, arity) == nullptr) {
          std::string message =
              "unknown function " + expr.function_name + "#" +
              std::to_string(arity);
          if (library_.HasName(expr.function_name)) {
            message += " (the name exists with a different arity)";
          }
          common::ThrowError(ErrorCode::kUnknownFunction,
                             message + " at line " +
                                 std::to_string(expr.line) + ", column " +
                                 std::to_string(expr.column));
        }
        CheckChildren(expr);
        return;
      }

      case Expr::Kind::kQuantified: {
        std::set<std::string> saved = scope_;
        for (const auto& [variable, binding] : expr.quantifier_bindings) {
          Check(*binding);
          scope_.insert(variable);
        }
        Check(*expr.children.back());
        scope_ = std::move(saved);
        return;
      }

      case Expr::Kind::kFlwor: {
        std::set<std::string> saved = scope_;
        for (const auto& clause : expr.clauses) {
          CheckClause(clause);
        }
        Check(*expr.return_expr);
        scope_ = std::move(saved);
        return;
      }

      case Expr::Kind::kObjectConstructor:
        for (const auto& key : expr.object_keys) Check(*key);
        for (const auto& value : expr.object_values) Check(*value);
        return;

      default:
        CheckChildren(expr);
        return;
    }
  }

 private:
  void CheckChildren(const Expr& expr) {
    for (const auto& child : expr.children) {
      if (child) Check(*child);
    }
  }

  void CheckClause(const FlworClause& clause) {
    switch (clause.kind) {
      case FlworClause::Kind::kFor:
        Check(*clause.expr);
        scope_.insert(clause.variable);
        if (!clause.position_variable.empty()) {
          scope_.insert(clause.position_variable);
        }
        return;
      case FlworClause::Kind::kLet:
        Check(*clause.expr);
        scope_.insert(clause.variable);
        return;
      case FlworClause::Kind::kWhere:
        Check(*clause.expr);
        return;
      case FlworClause::Kind::kGroupBy:
        for (const auto& spec : clause.group_specs) {
          if (spec.expr != nullptr) {
            Check(*spec.expr);
          } else if (scope_.count(spec.variable) == 0) {
            common::ThrowError(ErrorCode::kUndeclaredVariable,
                               "grouping variable $" + spec.variable +
                                   " is not in scope");
          }
          scope_.insert(spec.variable);
        }
        return;
      case FlworClause::Kind::kOrderBy:
        for (const auto& spec : clause.order_specs) {
          Check(*spec.expr);
        }
        return;
      case FlworClause::Kind::kCount:
        scope_.insert(clause.variable);
        return;
    }
  }

  const FunctionLibrary& library_;
  std::set<std::string> scope_;
};

// ---------------------------------------------------------------------------
// Free variables
// ---------------------------------------------------------------------------

void CollectFree(const Expr& expr, std::set<std::string>& bound,
                 std::set<std::string>* out) {
  switch (expr.kind) {
    case Expr::Kind::kVariableRef:
      if (bound.count(expr.variable) == 0) out->insert(expr.variable);
      return;

    case Expr::Kind::kQuantified: {
      std::set<std::string> inner = bound;
      for (const auto& [variable, binding] : expr.quantifier_bindings) {
        CollectFree(*binding, inner, out);
        inner.insert(variable);
      }
      CollectFree(*expr.children.back(), inner, out);
      return;
    }

    case Expr::Kind::kFlwor: {
      std::set<std::string> inner = bound;
      for (const auto& clause : expr.clauses) {
        switch (clause.kind) {
          case FlworClause::Kind::kFor:
            CollectFree(*clause.expr, inner, out);
            inner.insert(clause.variable);
            if (!clause.position_variable.empty()) {
              inner.insert(clause.position_variable);
            }
            break;
          case FlworClause::Kind::kLet:
            CollectFree(*clause.expr, inner, out);
            inner.insert(clause.variable);
            break;
          case FlworClause::Kind::kWhere:
            CollectFree(*clause.expr, inner, out);
            break;
          case FlworClause::Kind::kGroupBy:
            for (const auto& spec : clause.group_specs) {
              if (spec.expr != nullptr) CollectFree(*spec.expr, inner, out);
              inner.insert(spec.variable);
            }
            break;
          case FlworClause::Kind::kOrderBy:
            for (const auto& spec : clause.order_specs) {
              CollectFree(*spec.expr, inner, out);
            }
            break;
          case FlworClause::Kind::kCount:
            inner.insert(clause.variable);
            break;
        }
      }
      CollectFree(*expr.return_expr, inner, out);
      return;
    }

    case Expr::Kind::kObjectConstructor:
      for (const auto& key : expr.object_keys) CollectFree(*key, bound, out);
      for (const auto& value : expr.object_values) {
        CollectFree(*value, bound, out);
      }
      return;

    default:
      for (const auto& child : expr.children) {
        if (child) CollectFree(*child, bound, out);
      }
      return;
  }
}

// ---------------------------------------------------------------------------
// Usage analysis and count rewriting (Section 4.7)
// ---------------------------------------------------------------------------

bool IsCountOfVariable(const Expr& expr, const std::string& variable) {
  return expr.kind == Expr::Kind::kFunctionCall &&
         expr.function_name == "count" && expr.children.size() == 1 &&
         expr.children[0]->kind == Expr::Kind::kVariableRef &&
         expr.children[0]->variable == variable;
}

UsageKind Combine(UsageKind left, UsageKind right) {
  if (left == UsageKind::kGeneral || right == UsageKind::kGeneral) {
    return UsageKind::kGeneral;
  }
  if (left == UsageKind::kCountOnly || right == UsageKind::kCountOnly) {
    return UsageKind::kCountOnly;
  }
  return UsageKind::kUnused;
}

/// Returns whether a FLWOR clause rebinds (shadows) the variable.
bool ClauseRebinds(const FlworClause& clause, const std::string& variable) {
  switch (clause.kind) {
    case FlworClause::Kind::kFor:
      return clause.variable == variable ||
             clause.position_variable == variable;
    case FlworClause::Kind::kLet:
    case FlworClause::Kind::kCount:
      return clause.variable == variable;
    case FlworClause::Kind::kGroupBy:
      for (const auto& spec : clause.group_specs) {
        if (spec.variable == variable && spec.expr != nullptr) return true;
      }
      return false;
    default:
      return false;
  }
}

UsageKind Analyze(const Expr& expr, const std::string& variable) {
  if (IsCountOfVariable(expr, variable)) return UsageKind::kCountOnly;

  switch (expr.kind) {
    case Expr::Kind::kVariableRef:
      return expr.variable == variable ? UsageKind::kGeneral
                                       : UsageKind::kUnused;

    case Expr::Kind::kQuantified: {
      UsageKind usage = UsageKind::kUnused;
      for (const auto& [bound, binding] : expr.quantifier_bindings) {
        usage = Combine(usage, Analyze(*binding, variable));
        if (bound == variable) return usage;  // shadowed from here on
      }
      return Combine(usage, Analyze(*expr.children.back(), variable));
    }

    case Expr::Kind::kFlwor: {
      UsageKind usage = UsageKind::kUnused;
      for (const auto& clause : expr.clauses) {
        switch (clause.kind) {
          case FlworClause::Kind::kFor:
          case FlworClause::Kind::kLet:
          case FlworClause::Kind::kWhere:
            usage = Combine(usage, Analyze(*clause.expr, variable));
            break;
          case FlworClause::Kind::kGroupBy:
            for (const auto& spec : clause.group_specs) {
              if (spec.expr != nullptr) {
                usage = Combine(usage, Analyze(*spec.expr, variable));
              }
            }
            break;
          case FlworClause::Kind::kOrderBy:
            for (const auto& spec : clause.order_specs) {
              usage = Combine(usage, Analyze(*spec.expr, variable));
            }
            break;
          case FlworClause::Kind::kCount:
            break;
        }
        if (ClauseRebinds(clause, variable)) return usage;
      }
      return Combine(usage, Analyze(*expr.return_expr, variable));
    }

    case Expr::Kind::kObjectConstructor: {
      UsageKind usage = UsageKind::kUnused;
      for (const auto& key : expr.object_keys) {
        usage = Combine(usage, Analyze(*key, variable));
      }
      for (const auto& value : expr.object_values) {
        usage = Combine(usage, Analyze(*value, variable));
      }
      return usage;
    }

    default: {
      UsageKind usage = UsageKind::kUnused;
      for (const auto& child : expr.children) {
        if (child) usage = Combine(usage, Analyze(*child, variable));
      }
      return usage;
    }
  }
}

ExprPtr Rewrite(const ExprPtr& expr, const std::string& variable);

FlworClause RewriteClause(const FlworClause& clause,
                          const std::string& variable) {
  FlworClause out = clause;
  if (out.expr) out.expr = Rewrite(out.expr, variable);
  for (auto& spec : out.group_specs) {
    if (spec.expr) spec.expr = Rewrite(spec.expr, variable);
  }
  for (auto& spec : out.order_specs) {
    spec.expr = Rewrite(spec.expr, variable);
  }
  return out;
}

ExprPtr Rewrite(const ExprPtr& expr, const std::string& variable) {
  if (IsCountOfVariable(*expr, variable)) {
    auto ref = std::make_shared<Expr>();
    ref->kind = Expr::Kind::kVariableRef;
    ref->variable = variable;
    ref->line = expr->line;
    ref->column = expr->column;
    return ref;
  }

  auto copy = std::make_shared<Expr>(*expr);

  if (expr->kind == Expr::Kind::kQuantified) {
    bool shadowed = false;
    copy->quantifier_bindings.clear();
    for (const auto& [bound, binding] : expr->quantifier_bindings) {
      copy->quantifier_bindings.emplace_back(
          bound, shadowed ? binding : Rewrite(binding, variable));
      if (bound == variable) shadowed = true;
    }
    if (!shadowed) {
      copy->children.back() = Rewrite(expr->children.back(), variable);
    }
    return copy;
  }

  if (expr->kind == Expr::Kind::kFlwor) {
    bool shadowed = false;
    copy->clauses.clear();
    for (const auto& clause : expr->clauses) {
      copy->clauses.push_back(shadowed ? clause
                                       : RewriteClause(clause, variable));
      if (!shadowed && ClauseRebinds(clause, variable)) shadowed = true;
    }
    if (!shadowed) {
      copy->return_expr = Rewrite(expr->return_expr, variable);
    }
    return copy;
  }

  for (auto& child : copy->children) {
    if (child) child = Rewrite(child, variable);
  }
  if (expr->kind == Expr::Kind::kObjectConstructor) {
    for (auto& key : copy->object_keys) key = Rewrite(key, variable);
    for (auto& value : copy->object_values) value = Rewrite(value, variable);
  }
  return copy;
}

}  // namespace

void CheckStaticContext(const Expr& expr, const FunctionLibrary& library,
                        const std::set<std::string>& outer_variables) {
  StaticChecker(library, outer_variables).Check(expr);
}

std::set<std::string> FreeVariables(const Expr& expr) {
  std::set<std::string> bound;
  std::set<std::string> out;
  CollectFree(expr, bound, &out);
  return out;
}

UsageKind AnalyzeVariableUsage(const Expr& expr, const std::string& variable) {
  return Analyze(expr, variable);
}

ExprPtr RewriteCountToVariable(const ExprPtr& expr,
                               const std::string& variable) {
  return Rewrite(expr, variable);
}

}  // namespace rumble::jsoniq
