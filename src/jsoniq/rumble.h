#ifndef RUMBLE_JSONIQ_RUMBLE_H_
#define RUMBLE_JSONIQ_RUMBLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/exec/cancellation.h"
#include "src/item/item.h"
#include "src/jsoniq/runtime/engine_context.h"
#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

/// The public engine facade. One Rumble instance corresponds to one Spark
/// application (the shell keeps a single instance alive so executors are set
/// up once — Section 5.4). All methods catch engine exceptions and return
/// Status/Result; no exception escapes this API.
///
/// Example:
///   rumble::jsoniq::Rumble engine;
///   auto result = engine.Run(
///       "for $x in json-file(\"people.json\") where $x.age le 65 "
///       "return $x.name");
///   if (result.ok()) { ... result.value() ... }
class Rumble {
 public:
  explicit Rumble(common::RumbleConfig config = {});

  /// Parses, statically checks, executes, and materializes the result
  /// sequence (honouring the materialization cap).
  common::Result<item::ItemSequence> Run(const std::string& query);

  /// Run + JSON-Lines serialization of the result.
  common::Result<std::string> RunToJson(const std::string& query);

  /// Executes the query and writes the result to a DFS dataset. When the
  /// root iterator supports the RDD API the items are serialized and
  /// written in parallel, one part file per partition, without ever
  /// materializing the whole output on the driver (Section 5.4).
  common::Status RunToDataset(const std::string& query,
                              const std::string& output_path);

  /// Parses and statically checks only; OK means the query would compile.
  common::Status Check(const std::string& query) const;

  /// EXPLAIN: the runtime-iterator tree with every node tagged with its
  /// execution mode (local / RDD / DF), the DataFrame logical plan where a
  /// FLWOR takes that backend, and a summary line for the root. Never
  /// executes the query.
  common::Result<std::string> Explain(const std::string& query) const;

  /// EXPLAIN ANALYZE: runs the query with operator tracing enabled, then
  /// renders the EXPLAIN tree annotated per node with inclusive/exclusive
  /// wall time, rows produced, open count, and %-of-job, plus a footer with
  /// the job wall time and task/stage latency quantiles (docs/TRACING.md).
  /// Restores the tracer's previous enabled state afterwards.
  common::Result<std::string> ExplainAnalyze(const std::string& query);

  /// Binds a host-provided external variable visible to queries.
  void BindVariable(const std::string& name, item::ItemSequence value);

  /// Requests cooperative cancellation of a running job by id (the id
  /// BeginJob assigned, as shown by /jobs on the metrics server). Returns
  /// false when no job with that id is currently running — including when it
  /// already completed (cancellation racing completion is a no-op). The
  /// query observes the request at its next task boundary or kernel
  /// cancellation point and fails with kCancelled (docs/MEMORY.md).
  bool CancelJob(std::int64_t job_id);

  /// The engine's cancellation token (shell Ctrl-C hooks Cancel on it).
  exec::CancellationToken& cancellation() {
    return engine_->spark->cancellation();
  }

  /// Internal contexts, exposed for tests and the benchmark harness.
  const EngineContextPtr& engine() const { return engine_; }

  /// The per-application event bus: jobs, stages, tasks, counters. Consumers
  /// attach a JSONL log (SetLogFile) or render summaries (SummarySince).
  obs::EventBus& event_bus() { return engine_->spark->bus(); }

 private:
  common::Result<RuntimeIteratorPtr> Compile(const std::string& query) const;

  /// Runs a compiled query under memory governance: admission control,
  /// cancellation token reset + deadline arming, job registration for
  /// CancelJob, and cancelled-query observability. The compiled tree is
  /// destroyed before this returns, so every reservation it held is back in
  /// the pool.
  common::Result<item::ItemSequence> RunGoverned(const std::string& query);

  /// Post-query invariants: failed/cancelled queries leave no spill files
  /// behind, and the execution pool always drains back to zero reservations.
  void FinishQuery(bool ok);

  EngineContextPtr engine_;
  std::shared_ptr<DynamicContext> globals_;
  std::set<std::string> globals_names_;

  std::mutex jobs_mu_;
  std::set<std::int64_t> active_jobs_;
};

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUMBLE_H_
