#ifndef RUMBLE_JSONIQ_RUMBLE_H_
#define RUMBLE_JSONIQ_RUMBLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/exec/cancellation.h"
#include "src/item/item.h"
#include "src/jsoniq/plan_cache.h"
#include "src/jsoniq/runtime/engine_context.h"
#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

/// Per-request knobs for Rumble::ServeQuery (docs/SERVING.md). The HTTP
/// layer fills these from the X-Rumble-* request headers.
struct ServeOptions {
  /// Tenant label for observability (span args, /jobs); empty = anonymous.
  std::string tenant;
  /// Per-query timeout: < 0 uses the engine's query_timeout_ms, 0 disables,
  /// > 0 overrides in milliseconds.
  std::int64_t timeout_ms = -1;
  /// Per-query memory cap carved from the engine-wide limit; 0 = uncapped.
  std::uint64_t memory_cap_bytes = 0;
  /// Compile through the plan cache (repeat queries skip parse/translate).
  bool use_plan_cache = true;
  /// Admission wait already spent in the serving scheduler before ServeQuery
  /// was entered; recorded on the query profile (docs/PROFILING.md).
  std::int64_t queue_wait_nanos = 0;
};

/// Delivered to the on_start callback once a served query is compiled,
/// admitted, and registered — the moment the HTTP layer can commit response
/// headers (job id, cache verdict) before the first row exists.
struct ServeStart {
  std::int64_t job_id = -1;
  bool plan_cache_hit = false;
};

/// Outcome of a completed served query.
struct ServeResult {
  std::int64_t job_id = -1;
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
  bool plan_cache_hit = false;
  /// Resource attribution from the query's profile (docs/PROFILING.md): the
  /// serving layer reports these as the X-Rumble-CPU-Ms / X-Rumble-Peak-Bytes
  /// response trailers and folds them into the per-tenant totals.
  std::int64_t cpu_nanos = 0;
  std::int64_t peak_bytes = 0;
  std::int64_t spill_bytes = 0;
};

/// The public engine facade. One Rumble instance corresponds to one Spark
/// application (the shell keeps a single instance alive so executors are set
/// up once — Section 5.4). All methods catch engine exceptions and return
/// Status/Result; no exception escapes this API.
///
/// Example:
///   rumble::jsoniq::Rumble engine;
///   auto result = engine.Run(
///       "for $x in json-file(\"people.json\") where $x.age le 65 "
///       "return $x.name");
///   if (result.ok()) { ... result.value() ... }
class Rumble {
 public:
  explicit Rumble(common::RumbleConfig config = {});

  /// Parses, statically checks, executes, and materializes the result
  /// sequence (honouring the materialization cap).
  common::Result<item::ItemSequence> Run(const std::string& query);

  /// Run + JSON-Lines serialization of the result.
  common::Result<std::string> RunToJson(const std::string& query);

  /// Executes the query and writes the result to a DFS dataset. When the
  /// root iterator supports the RDD API the items are serialized and
  /// written in parallel, one part file per partition, without ever
  /// materializing the whole output on the driver (Section 5.4).
  common::Status RunToDataset(const std::string& query,
                              const std::string& output_path);

  /// Parses and statically checks only; OK means the query would compile.
  common::Status Check(const std::string& query) const;

  /// EXPLAIN: the runtime-iterator tree with every node tagged with its
  /// execution mode (local / RDD / DF), the DataFrame logical plan where a
  /// FLWOR takes that backend, and a summary line for the root. Never
  /// executes the query.
  common::Result<std::string> Explain(const std::string& query) const;

  /// EXPLAIN ANALYZE: runs the query with operator tracing enabled, then
  /// renders the EXPLAIN tree annotated per node with inclusive/exclusive
  /// wall time, rows produced, open count, and %-of-job, plus a footer with
  /// the job wall time and task/stage latency quantiles (docs/TRACING.md).
  /// Restores the tracer's previous enabled state afterwards.
  common::Result<std::string> ExplainAnalyze(const std::string& query);

  /// Binds a host-provided external variable visible to queries. Not safe
  /// to call while queries are being served concurrently.
  void BindVariable(const std::string& name, item::ItemSequence value);

  /// The concurrent serving path (docs/SERVING.md): compiles `query` through
  /// the plan cache, then runs it under its *own* cancellation token and
  /// optional per-query memory sub-pool — both bound to this thread and
  /// re-bound around every executor task — so any number of callers may
  /// serve queries on the shared engine simultaneously, each cancellable
  /// independently via CancelJob.
  ///
  /// `on_start` fires after compilation and job registration, before
  /// evaluation (the HTTP layer sends response headers there). `sink`
  /// receives JSON-Lines output in chunks as rows are produced (local roots
  /// stream row by row; RDD-able roots materialize exactly as the shell
  /// does — same bytes — then stream out); returning false from the sink
  /// means the client is gone and cancels the query with origin kHttp.
  ///
  /// Serialization is item->Serialize() + "\n" per row, byte-identical to
  /// the shell's --query output.
  common::Result<ServeResult> ServeQuery(
      const std::string& query, const ServeOptions& options,
      const std::function<void(const ServeStart&)>& on_start,
      const std::function<bool(std::string_view)>& sink);

  /// Replaces the serving plan cache with a fresh one of `capacity` entries
  /// (0 disables caching). Call before serving begins; not safe against
  /// in-flight ServeQuery calls.
  void ResetPlanCache(std::size_t capacity);

  /// The serving plan cache (stats for /serving and tests).
  PlanCache* plan_cache() { return plan_cache_.get(); }

  /// Requests cooperative cancellation of a running job by id (the id
  /// BeginJob assigned, as shown by /jobs on the metrics server). Returns
  /// false when no job with that id is currently running — including when it
  /// already completed (cancellation racing completion is a no-op). Each
  /// registered job cancels through its own token — a shell query through
  /// the session token, a served query through its per-query token — so
  /// cancelling one served query never touches its neighbours. The query
  /// observes the request at its next task boundary or kernel cancellation
  /// point and fails with kCancelled (docs/MEMORY.md).
  bool CancelJob(std::int64_t job_id);

  /// Cancels every currently-running job (shell and served alike) — the
  /// drain-deadline hammer: when a graceful drain times out, the serving
  /// layer cancels the stragglers through their own tokens so their streams
  /// terminate with the documented trailing-error-line protocol and every
  /// reservation/spill file unwinds (docs/SERVING.md, "Operations").
  /// Returns the number of jobs cancelled.
  int CancelAllJobs();

  /// Jobs currently executing (shell or served); the drain loop polls this.
  int active_jobs();

  /// The engine's session cancellation token (shell Ctrl-C hooks Cancel on
  /// it). Served queries use their own tokens; see ServeQuery.
  exec::CancellationToken& cancellation() {
    return engine_->spark->session_cancellation();
  }

  /// Internal contexts, exposed for tests and the benchmark harness.
  const EngineContextPtr& engine() const { return engine_; }

  /// The per-application event bus: jobs, stages, tasks, counters. Consumers
  /// attach a JSONL log (SetLogFile) or render summaries (SummarySince).
  obs::EventBus& event_bus() { return engine_->spark->bus(); }

 private:
  /// Compile-phase wall timings, recorded on the query profile.
  struct CompileTimings {
    std::int64_t parse_nanos = 0;
    std::int64_t translate_nanos = 0;
  };

  common::Result<RuntimeIteratorPtr> Compile(
      const std::string& query, CompileTimings* timings = nullptr) const;

  /// Runs a compiled query under memory governance: admission control,
  /// cancellation token reset + deadline arming, job registration for
  /// CancelJob, and cancelled-query observability. The compiled tree is
  /// destroyed before this returns, so every reservation it held is back in
  /// the pool.
  common::Result<item::ItemSequence> RunGoverned(const std::string& query);

  /// Post-query invariants: failed/cancelled queries leave no spill files
  /// behind, and — once the *last* in-flight query finishes (`last`) — the
  /// execution pool drains back to zero reservations. The invariant is only
  /// checkable when no concurrent query still holds reservations.
  void FinishQuery(bool ok, bool last = true);

  EngineContextPtr engine_;
  std::shared_ptr<DynamicContext> globals_;
  std::set<std::string> globals_names_;
  std::unique_ptr<PlanCache> plan_cache_;

  /// Queries currently executing (shell or served), keyed by job id, each
  /// with the token CancelJob must trip. Tokens for served queries live on
  /// their serving thread's stack; Cancel is called under jobs_mu_, and the
  /// owner erases its entry (also under jobs_mu_) before the token dies, so
  /// the pointer is never dereferenced after free.
  std::mutex jobs_mu_;
  std::map<std::int64_t, exec::CancellationToken*> active_jobs_;
  std::atomic<int> in_flight_{0};
  /// Bumped at the start of every query (shell or served). Run()'s
  /// ASSERT_METRICS profile-vs-counter cross-check only fires when the
  /// generation advanced by exactly one across the run — i.e. the query
  /// verifiably ran alone, so counter deltas are attributable to it.
  std::atomic<std::int64_t> query_generation_{0};
};

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_RUMBLE_H_
