#include "src/jsoniq/parser.h"

#include <cstdlib>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/lexer.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;

class Parser {
 public:
  explicit Parser(std::string_view query) : tokens_(Tokenize(query)) {}

  ExprPtr Parse() {
    ExprPtr expr = ParseExpr();
    Expect(TokenKind::kEof, "end of query");
    return expr;
  }

 private:
  // ---- Token helpers -----------------------------------------------------

  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (Peek().Is(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchName(std::string_view name) {
    if (Peek().IsName(name)) {
      ++pos_;
      return true;
    }
    return false;
  }

  const Token& Expect(TokenKind kind, const char* what) {
    if (!Peek().Is(kind)) Fail(std::string("expected ") + what);
    return Advance();
  }

  /// `[[` and `]]` lex as single tokens (array lookup), but array
  /// constructors can legitimately juxtapose brackets ("[[1], 2]",
  /// "[1, [2]]"). The parser splits a double token into two singles when
  /// the grammar needs a single bracket at that position.
  void SplitDoubleToken(TokenKind single_kind) {
    Token second = tokens_[pos_];
    tokens_[pos_].kind = single_kind;
    second.kind = single_kind;
    second.column += 1;
    tokens_.insert(tokens_.begin() + static_cast<std::ptrdiff_t>(pos_) + 1,
                   second);
  }

  void ExpectSingleRBracket() {
    if (Peek().Is(TokenKind::kDoubleRBracket)) {
      SplitDoubleToken(TokenKind::kRBracket);
    }
    Expect(TokenKind::kRBracket, "']'");
  }

  void ExpectDoubleRBracket() {
    if (Peek().Is(TokenKind::kRBracket) &&
        Peek(1).Is(TokenKind::kRBracket)) {
      pos_ += 2;
      return;
    }
    Expect(TokenKind::kDoubleRBracket, "']]'");
  }

  void ExpectName(std::string_view name) {
    if (!Peek().IsName(name)) Fail("expected keyword '" + std::string(name) + "'");
    ++pos_;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    const Token& token = Peek();
    std::string got = token.Is(TokenKind::kEof)
                          ? "end of input"
                          : (token.text.empty() ? "symbol" : "'" + token.text + "'");
    common::ThrowError(ErrorCode::kStaticSyntax,
                       message + " but found " + got + " at line " +
                           std::to_string(token.line) + ", column " +
                           std::to_string(token.column));
  }

  template <typename T>
  std::shared_ptr<T> Stamp(std::shared_ptr<T> expr) const {
    return expr;
  }

  ExprPtr WithPos(std::shared_ptr<Expr> expr, const Token& token) const {
    expr->line = token.line;
    expr->column = token.column;
    return expr;
  }

  // ---- Grammar -------------------------------------------------------------

  // Expr := ExprSingle ("," ExprSingle)*
  ExprPtr ParseExpr() {
    const Token& start = Peek();
    std::vector<ExprPtr> parts;
    parts.push_back(ParseExprSingle());
    while (Match(TokenKind::kComma)) {
      parts.push_back(ParseExprSingle());
    }
    if (parts.size() == 1) return parts.front();
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kSequence;
    expr->children = std::move(parts);
    return WithPos(std::move(expr), start);
  }

  ExprPtr ParseExprSingle() {
    const Token& token = Peek();
    if (token.Is(TokenKind::kName)) {
      if ((token.text == "for" || token.text == "let") &&
          Peek(1).Is(TokenKind::kVariable)) {
        return ParseFlwor();
      }
      if ((token.text == "some" || token.text == "every") &&
          Peek(1).Is(TokenKind::kVariable)) {
        return ParseQuantified();
      }
      if (token.text == "if" && Peek(1).Is(TokenKind::kLParen)) {
        return ParseIf();
      }
      if (token.text == "switch" && Peek(1).Is(TokenKind::kLParen)) {
        return ParseSwitch();
      }
      if (token.text == "try" && Peek(1).Is(TokenKind::kLBrace)) {
        return ParseTryCatch();
      }
    }
    return ParseOr();
  }

  // ---- FLWOR ---------------------------------------------------------------

  ExprPtr ParseFlwor() {
    const Token& start = Peek();
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kFlwor;

    bool first = true;
    while (true) {
      const Token& token = Peek();
      if (!token.Is(TokenKind::kName)) break;
      if (token.text == "for") {
        ++pos_;
        ParseForBindings(&expr->clauses);
      } else if (token.text == "let") {
        ++pos_;
        ParseLetBindings(&expr->clauses);
      } else if (token.text == "where") {
        ++pos_;
        FlworClause clause;
        clause.kind = FlworClause::Kind::kWhere;
        clause.expr = ParseExprSingle();
        expr->clauses.push_back(std::move(clause));
      } else if (token.text == "group" && Peek(1).IsName("by")) {
        pos_ += 2;
        FlworClause clause;
        clause.kind = FlworClause::Kind::kGroupBy;
        do {
          FlworClause::GroupSpec spec;
          spec.variable = Expect(TokenKind::kVariable, "grouping variable").text;
          if (Match(TokenKind::kAssign)) {
            spec.expr = ParseExprSingle();
          }
          clause.group_specs.push_back(std::move(spec));
        } while (Match(TokenKind::kComma));
        expr->clauses.push_back(std::move(clause));
      } else if ((token.text == "order" && Peek(1).IsName("by")) ||
                 (token.text == "stable" && Peek(1).IsName("order"))) {
        if (token.text == "stable") {
          pos_ += 3;  // stable order by
        } else {
          pos_ += 2;  // order by
        }
        FlworClause clause;
        clause.kind = FlworClause::Kind::kOrderBy;
        do {
          FlworClause::OrderSpec spec;
          spec.expr = ParseExprSingle();
          if (MatchName("ascending")) {
            spec.ascending = true;
          } else if (MatchName("descending")) {
            spec.ascending = false;
          }
          if (MatchName("empty")) {
            if (MatchName("greatest")) {
              spec.empty_greatest = true;
            } else {
              ExpectName("least");
              spec.empty_greatest = false;
            }
          }
          clause.order_specs.push_back(std::move(spec));
        } while (Match(TokenKind::kComma));
        expr->clauses.push_back(std::move(clause));
      } else if (token.text == "count" && Peek(1).Is(TokenKind::kVariable)) {
        ++pos_;
        FlworClause clause;
        clause.kind = FlworClause::Kind::kCount;
        clause.variable = Advance().text;
        expr->clauses.push_back(std::move(clause));
      } else if (token.text == "return") {
        ++pos_;
        expr->return_expr = ParseExprSingle();
        break;
      } else {
        Fail("expected a FLWOR clause or 'return'");
      }
      first = false;
    }
    (void)first;
    if (!expr->return_expr) Fail("FLWOR expression lacks a 'return' clause");
    if (expr->clauses.empty()) Fail("FLWOR expression lacks clauses");
    return WithPos(std::move(expr), start);
  }

  void ParseForBindings(std::vector<FlworClause>* clauses) {
    do {
      FlworClause clause;
      clause.kind = FlworClause::Kind::kFor;
      clause.variable = Expect(TokenKind::kVariable, "for variable").text;
      if (MatchName("allowing")) {
        ExpectName("empty");
        clause.allowing_empty = true;
      }
      if (MatchName("at")) {
        clause.position_variable =
            Expect(TokenKind::kVariable, "positional variable").text;
      }
      ExpectName("in");
      clause.expr = ParseExprSingle();
      clauses->push_back(std::move(clause));
    } while (Match(TokenKind::kComma));
  }

  void ParseLetBindings(std::vector<FlworClause>* clauses) {
    do {
      FlworClause clause;
      clause.kind = FlworClause::Kind::kLet;
      clause.variable = Expect(TokenKind::kVariable, "let variable").text;
      Expect(TokenKind::kAssign, "':='");
      clause.expr = ParseExprSingle();
      clauses->push_back(std::move(clause));
    } while (Match(TokenKind::kComma));
  }

  // ---- Other control expressions --------------------------------------------

  ExprPtr ParseQuantified() {
    const Token& start = Advance();  // some | every
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kQuantified;
    expr->quantifier = start.text == "some" ? QuantifierKind::kSome
                                            : QuantifierKind::kEvery;
    do {
      std::string variable =
          Expect(TokenKind::kVariable, "quantifier variable").text;
      ExpectName("in");
      expr->quantifier_bindings.emplace_back(std::move(variable),
                                             ParseExprSingle());
    } while (Match(TokenKind::kComma));
    ExpectName("satisfies");
    expr->children.push_back(ParseExprSingle());
    return WithPos(std::move(expr), start);
  }

  ExprPtr ParseIf() {
    const Token& start = Advance();  // if
    Expect(TokenKind::kLParen, "'(' after 'if'");
    ExprPtr condition = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    ExpectName("then");
    ExprPtr then_branch = ParseExprSingle();
    ExpectName("else");
    ExprPtr else_branch = ParseExprSingle();
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kIfThenElse;
    expr->children = {std::move(condition), std::move(then_branch),
                      std::move(else_branch)};
    return WithPos(std::move(expr), start);
  }

  // switch (op) case k1 return v1 ... default return d
  // Each case may list several keys: case 1 case 2 return v.
  ExprPtr ParseSwitch() {
    const Token& start = Advance();  // switch
    Expect(TokenKind::kLParen, "'(' after 'switch'");
    ExprPtr operand = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kSwitch;
    expr->children.push_back(std::move(operand));
    bool saw_case = false;
    while (MatchName("case")) {
      saw_case = true;
      std::vector<ExprPtr> keys;
      keys.push_back(ParseExprSingle());
      while (MatchName("case")) {
        keys.push_back(ParseExprSingle());
      }
      ExpectName("return");
      ExprPtr value = ParseExprSingle();
      for (auto& key : keys) {
        expr->children.push_back(std::move(key));
        expr->children.push_back(value);  // shared: the AST is immutable
      }
    }
    if (!saw_case) Fail("switch needs at least one 'case'");
    ExpectName("default");
    ExpectName("return");
    expr->children.push_back(ParseExprSingle());
    return WithPos(std::move(expr), start);
  }

  ExprPtr ParseTryCatch() {
    const Token& start = Advance();  // try
    Expect(TokenKind::kLBrace, "'{' after 'try'");
    ExprPtr body = ParseExpr();
    Expect(TokenKind::kRBrace, "'}'");
    ExpectName("catch");
    // Only the catch-all form is supported: catch * { ... }.
    Expect(TokenKind::kStar, "'*' (catch-all)");
    Expect(TokenKind::kLBrace, "'{' after 'catch *'");
    ExprPtr handler = ParseExpr();
    Expect(TokenKind::kRBrace, "'}'");
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kTryCatch;
    expr->children = {std::move(body), std::move(handler)};
    return WithPos(std::move(expr), start);
  }

  // ---- Operator precedence chain --------------------------------------------

  ExprPtr ParseOr() {
    const Token& start = Peek();
    std::vector<ExprPtr> parts;
    parts.push_back(ParseAnd());
    while (MatchName("or")) {
      parts.push_back(ParseAnd());
    }
    if (parts.size() == 1) return parts.front();
    return WithPos(
        std::const_pointer_cast<Expr>(MakeVariadic(Expr::Kind::kOr,
                                                   std::move(parts))),
        start);
  }

  ExprPtr ParseAnd() {
    const Token& start = Peek();
    std::vector<ExprPtr> parts;
    parts.push_back(ParseComparison());
    while (MatchName("and")) {
      parts.push_back(ParseComparison());
    }
    if (parts.size() == 1) return parts.front();
    return WithPos(
        std::const_pointer_cast<Expr>(MakeVariadic(Expr::Kind::kAnd,
                                                   std::move(parts))),
        start);
  }

  ExprPtr ParseComparison() {
    const Token& start = Peek();
    ExprPtr left = ParseStringConcat();
    CompareOp op;
    const Token& token = Peek();
    if (token.Is(TokenKind::kName)) {
      if (token.text == "eq") op = CompareOp::kValueEq;
      else if (token.text == "ne") op = CompareOp::kValueNe;
      else if (token.text == "lt") op = CompareOp::kValueLt;
      else if (token.text == "le") op = CompareOp::kValueLe;
      else if (token.text == "gt") op = CompareOp::kValueGt;
      else if (token.text == "ge") op = CompareOp::kValueGe;
      else return left;
      ++pos_;
    } else if (token.Is(TokenKind::kEq)) {
      op = CompareOp::kGeneralEq;
      ++pos_;
    } else if (token.Is(TokenKind::kNe)) {
      op = CompareOp::kGeneralNe;
      ++pos_;
    } else if (token.Is(TokenKind::kLt)) {
      op = CompareOp::kGeneralLt;
      ++pos_;
    } else if (token.Is(TokenKind::kLe)) {
      op = CompareOp::kGeneralLe;
      ++pos_;
    } else if (token.Is(TokenKind::kGt)) {
      op = CompareOp::kGeneralGt;
      ++pos_;
    } else if (token.Is(TokenKind::kGe)) {
      op = CompareOp::kGeneralGe;
      ++pos_;
    } else {
      return left;
    }
    ExprPtr right = ParseStringConcat();
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kComparison;
    expr->compare_op = op;
    expr->children = {std::move(left), std::move(right)};
    return WithPos(std::move(expr), start);
  }

  ExprPtr ParseStringConcat() {
    const Token& start = Peek();
    std::vector<ExprPtr> parts;
    parts.push_back(ParseRange());
    while (Match(TokenKind::kConcat)) {
      parts.push_back(ParseRange());
    }
    if (parts.size() == 1) return parts.front();
    return WithPos(
        std::const_pointer_cast<Expr>(
            MakeVariadic(Expr::Kind::kStringConcat, std::move(parts))),
        start);
  }

  ExprPtr ParseRange() {
    const Token& start = Peek();
    ExprPtr left = ParseAdditive();
    if (MatchName("to")) {
      ExprPtr right = ParseAdditive();
      return WithPos(std::const_pointer_cast<Expr>(MakeBinary(
                         Expr::Kind::kRange, std::move(left),
                         std::move(right))),
                     start);
    }
    return left;
  }

  ExprPtr ParseAdditive() {
    const Token& start = Peek();
    ExprPtr left = ParseMultiplicative();
    while (true) {
      ArithmeticOp op;
      if (Match(TokenKind::kPlus)) {
        op = ArithmeticOp::kAdd;
      } else if (Match(TokenKind::kMinus)) {
        op = ArithmeticOp::kSub;
      } else {
        return left;
      }
      ExprPtr right = ParseMultiplicative();
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kArithmetic;
      expr->arithmetic_op = op;
      expr->children = {std::move(left), std::move(right)};
      left = WithPos(std::move(expr), start);
    }
  }

  ExprPtr ParseMultiplicative() {
    const Token& start = Peek();
    ExprPtr left = ParseInstanceOf();
    while (true) {
      ArithmeticOp op;
      if (Match(TokenKind::kStar)) {
        op = ArithmeticOp::kMul;
      } else if (MatchName("div")) {
        op = ArithmeticOp::kDiv;
      } else if (MatchName("idiv")) {
        op = ArithmeticOp::kIDiv;
      } else if (MatchName("mod")) {
        op = ArithmeticOp::kMod;
      } else {
        return left;
      }
      ExprPtr right = ParseInstanceOf();
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kArithmetic;
      expr->arithmetic_op = op;
      expr->children = {std::move(left), std::move(right)};
      left = WithPos(std::move(expr), start);
    }
  }

  ExprPtr ParseInstanceOf() {
    const Token& start = Peek();
    ExprPtr child = ParseTreat();
    if (Peek().IsName("instance") && Peek(1).IsName("of")) {
      pos_ += 2;
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kInstanceOf;
      expr->children = {std::move(child)};
      expr->sequence_type = ParseSequenceType();
      return WithPos(std::move(expr), start);
    }
    return child;
  }

  ExprPtr ParseTreat() {
    const Token& start = Peek();
    ExprPtr child = ParseCast();
    if (Peek().IsName("treat") && Peek(1).IsName("as")) {
      pos_ += 2;
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kTreatAs;
      expr->children = {std::move(child)};
      expr->sequence_type = ParseSequenceType();
      return WithPos(std::move(expr), start);
    }
    return child;
  }

  ExprPtr ParseCast() {
    const Token& start = Peek();
    ExprPtr child = ParseUnary();
    if (Peek().IsName("cast") && Peek(1).IsName("as")) {
      pos_ += 2;
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kCastAs;
      expr->children = {std::move(child)};
      expr->sequence_type = ParseSequenceType();
      if (expr->sequence_type.arity != Arity::kOne &&
          expr->sequence_type.arity != Arity::kOptional) {
        Fail("cast target must be a single type, optionally with '?'");
      }
      return WithPos(std::move(expr), start);
    }
    return child;
  }

  ExprPtr ParseUnary() {
    const Token& start = Peek();
    bool negate = false;
    while (true) {
      if (Match(TokenKind::kMinus)) {
        negate = !negate;
      } else if (Match(TokenKind::kPlus)) {
        // no-op
      } else {
        break;
      }
    }
    ExprPtr expr = ParsePostfix();
    if (negate) {
      return WithPos(std::const_pointer_cast<Expr>(
                         MakeUnary(Expr::Kind::kUnaryMinus, std::move(expr))),
                     start);
    }
    return expr;
  }

  ExprPtr ParsePostfix() {
    const Token& start = Peek();
    ExprPtr target = ParsePrimary();
    while (true) {
      const Token& token = Peek();
      if (token.Is(TokenKind::kDot)) {
        ++pos_;
        target = ParseObjectLookup(std::move(target), start);
      } else if (token.Is(TokenKind::kDoubleLBracket)) {
        ++pos_;
        ExprPtr index = ParseExpr();
        ExpectDoubleRBracket();
        target = WithPos(
            std::const_pointer_cast<Expr>(MakeBinary(
                Expr::Kind::kArrayLookup, std::move(target), std::move(index))),
            start);
      } else if (token.Is(TokenKind::kLBracket)) {
        if (Peek(1).Is(TokenKind::kRBracket)) {
          pos_ += 2;
          target = WithPos(std::const_pointer_cast<Expr>(MakeUnary(
                               Expr::Kind::kArrayUnbox, std::move(target))),
                           start);
        } else {
          ++pos_;
          ExprPtr predicate = ParseExpr();
          ExpectSingleRBracket();
          target = WithPos(std::const_pointer_cast<Expr>(
                               MakeBinary(Expr::Kind::kPredicate,
                                          std::move(target),
                                          std::move(predicate))),
                           start);
        }
      } else {
        return target;
      }
    }
  }

  ExprPtr ParseObjectLookup(ExprPtr target, const Token& start) {
    const Token& token = Peek();
    ExprPtr key;
    if (token.Is(TokenKind::kName)) {
      ++pos_;
      key = MakeLiteral(item::MakeString(token.text));
    } else if (token.Is(TokenKind::kString)) {
      ++pos_;
      key = MakeLiteral(item::MakeString(token.text));
    } else if (token.Is(TokenKind::kVariable)) {
      ++pos_;
      auto ref = std::make_shared<Expr>();
      ref->kind = Expr::Kind::kVariableRef;
      ref->variable = token.text;
      key = WithPos(std::move(ref), token);
    } else if (token.Is(TokenKind::kLParen)) {
      ++pos_;
      key = ParseExpr();
      Expect(TokenKind::kRParen, "')'");
    } else if (token.Is(TokenKind::kInteger)) {
      // .5 style lookups are not valid; numbers as keys come quoted.
      Fail("expected object lookup key");
    } else {
      Fail("expected object lookup key");
    }
    return WithPos(std::const_pointer_cast<Expr>(
                       MakeBinary(Expr::Kind::kObjectLookup, std::move(target),
                                  std::move(key))),
                   start);
  }

  ExprPtr ParsePrimary() {
    // Copy: SplitDoubleToken below may reallocate the token vector.
    const Token token = Peek();
    switch (token.kind) {
      case TokenKind::kString:
        ++pos_;
        return WithPos(std::const_pointer_cast<Expr>(
                           MakeLiteral(item::MakeString(token.text))),
                       token);
      case TokenKind::kInteger: {
        ++pos_;
        return WithPos(std::const_pointer_cast<Expr>(MakeLiteral(
                           item::MakeInteger(std::atoll(token.text.c_str())))),
                       token);
      }
      case TokenKind::kDecimal: {
        ++pos_;
        return WithPos(std::const_pointer_cast<Expr>(MakeLiteral(
                           item::MakeDecimal(std::atof(token.text.c_str())))),
                       token);
      }
      case TokenKind::kDouble: {
        ++pos_;
        return WithPos(std::const_pointer_cast<Expr>(MakeLiteral(
                           item::MakeDouble(std::atof(token.text.c_str())))),
                       token);
      }
      case TokenKind::kVariable: {
        ++pos_;
        auto expr = std::make_shared<Expr>();
        expr->kind = Expr::Kind::kVariableRef;
        expr->variable = token.text;
        return WithPos(std::move(expr), token);
      }
      case TokenKind::kContextItem: {
        ++pos_;
        auto expr = std::make_shared<Expr>();
        expr->kind = Expr::Kind::kContextItem;
        return WithPos(std::move(expr), token);
      }
      case TokenKind::kLParen: {
        ++pos_;
        if (Match(TokenKind::kRParen)) {
          auto expr = std::make_shared<Expr>();
          expr->kind = Expr::Kind::kSequence;  // empty sequence
          return WithPos(std::move(expr), token);
        }
        ExprPtr inner = ParseExpr();
        Expect(TokenKind::kRParen, "')'");
        return inner;
      }
      case TokenKind::kLBrace:
        return ParseObjectConstructor();
      case TokenKind::kDoubleLBracket:
        // An array constructor immediately containing another one.
        SplitDoubleToken(TokenKind::kLBracket);
        [[fallthrough]];
      case TokenKind::kLBracket: {
        ++pos_;
        auto expr = std::make_shared<Expr>();
        expr->kind = Expr::Kind::kArrayConstructor;
        if (!Peek().Is(TokenKind::kRBracket) &&
            !Peek().Is(TokenKind::kDoubleRBracket)) {
          expr->children.push_back(ParseExpr());
        }
        ExpectSingleRBracket();
        return WithPos(std::move(expr), token);
      }
      case TokenKind::kName: {
        // Literals true/false/null unless used as a function call.
        if (!Peek(1).Is(TokenKind::kLParen)) {
          if (token.text == "true") {
            ++pos_;
            return WithPos(std::const_pointer_cast<Expr>(
                               MakeLiteral(item::MakeBoolean(true))),
                           token);
          }
          if (token.text == "false") {
            ++pos_;
            return WithPos(std::const_pointer_cast<Expr>(
                               MakeLiteral(item::MakeBoolean(false))),
                           token);
          }
          if (token.text == "null") {
            ++pos_;
            return WithPos(
                std::const_pointer_cast<Expr>(MakeLiteral(item::MakeNull())),
                token);
          }
          Fail("unexpected name; function calls need parentheses");
        }
        return ParseFunctionCall();
      }
      default:
        Fail("expected an expression");
    }
  }

  ExprPtr ParseFunctionCall() {
    const Token& name = Advance();
    Expect(TokenKind::kLParen, "'('");
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kFunctionCall;
    expr->function_name = name.text;
    if (!Peek().Is(TokenKind::kRParen)) {
      do {
        expr->children.push_back(ParseExprSingle());
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, "')'");
    return WithPos(std::move(expr), name);
  }

  ExprPtr ParseObjectConstructor() {
    const Token& start = Advance();  // {
    auto expr = std::make_shared<Expr>();
    expr->kind = Expr::Kind::kObjectConstructor;
    if (Match(TokenKind::kRBrace)) {
      return WithPos(std::move(expr), start);
    }
    do {
      // Unquoted NCName keys: { foo : 1 }.
      ExprPtr key;
      if (Peek().Is(TokenKind::kName) && Peek(1).Is(TokenKind::kColon)) {
        key = MakeLiteral(item::MakeString(Advance().text));
      } else {
        key = ParseExprSingle();
      }
      Expect(TokenKind::kColon, "':' in object constructor");
      ExprPtr value = ParseExprSingle();
      expr->object_keys.push_back(std::move(key));
      expr->object_values.push_back(std::move(value));
    } while (Match(TokenKind::kComma));
    Expect(TokenKind::kRBrace, "'}'");
    return WithPos(std::move(expr), start);
  }

  SequenceType ParseSequenceType() {
    SequenceType type;
    const Token& name = Expect(TokenKind::kName, "type name");
    if (name.text == "empty-sequence") {
      Expect(TokenKind::kLParen, "'('");
      Expect(TokenKind::kRParen, "')'");
      type.is_empty_sequence = true;
      return type;
    }
    auto parsed = TypeNameFromString(name.text);
    if (!parsed.has_value()) {
      Fail("unknown type name '" + name.text + "'");
    }
    type.type = *parsed;
    // Some type names are written with parentheses: object(), array().
    if (Match(TokenKind::kLParen)) {
      Expect(TokenKind::kRParen, "')'");
    }
    if (Match(TokenKind::kQuestion)) {
      type.arity = Arity::kOptional;
    } else if (Match(TokenKind::kStar)) {
      type.arity = Arity::kStar;
    } else if (Match(TokenKind::kPlus)) {
      type.arity = Arity::kPlus;
    }
    return type;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr ParseQuery(std::string_view query) { return Parser(query).Parse(); }

}  // namespace rumble::jsoniq
