#ifndef RUMBLE_JSONIQ_PARSER_H_
#define RUMBLE_JSONIQ_PARSER_H_

#include <string_view>

#include "src/jsoniq/ast.h"

namespace rumble::jsoniq {

/// Parses a JSONiq query into an expression tree. Throws
/// RumbleException(kStaticSyntax) with line/column information on syntax
/// errors. The supported grammar subset is documented in DESIGN.md §3.
ExprPtr ParseQuery(std::string_view query);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_PARSER_H_
