#ifndef RUMBLE_JSONIQ_AST_H_
#define RUMBLE_JSONIQ_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/item/item.h"
#include "src/jsoniq/sequence_type.h"

namespace rumble::jsoniq {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Comparison operators. Value comparisons (eq..ge) require singleton
/// atomics (or empty); general comparisons (=..>=) are existential.
enum class CompareOp {
  kValueEq, kValueNe, kValueLt, kValueLe, kValueGt, kValueGe,
  kGeneralEq, kGeneralNe, kGeneralLt, kGeneralLe, kGeneralGt, kGeneralGe,
};

enum class ArithmeticOp { kAdd, kSub, kMul, kDiv, kIDiv, kMod };

enum class QuantifierKind { kSome, kEvery };

/// One FLWOR clause (paper Section 4). Tagged struct; fields used per kind
/// are documented next to the kind.
struct FlworClause {
  enum class Kind { kFor, kLet, kWhere, kGroupBy, kOrderBy, kCount };

  struct GroupSpec {
    std::string variable;
    ExprPtr expr;  // null: group by an already-bound variable
  };
  struct OrderSpec {
    ExprPtr expr;
    bool ascending = true;
    bool empty_greatest = false;
  };

  Kind kind = Kind::kFor;

  // kFor
  std::string variable;       // also kLet, kCount
  std::string position_variable;  // "at $p"; empty when absent
  bool allowing_empty = false;
  ExprPtr expr;               // also kLet binding expr, kWhere condition

  // kGroupBy
  std::vector<GroupSpec> group_specs;

  // kOrderBy
  std::vector<OrderSpec> order_specs;
};

/// Expression tree node (paper Section 5.3). One tagged struct covering all
/// expression kinds implemented by this engine; the per-kind payload fields
/// are grouped below.
struct Expr {
  enum class Kind {
    kLiteral,           // literal: atomic item
    kVariableRef,       // $name
    kContextItem,       // $$
    kSequence,          // e1, e2, ...  (also the empty sequence: no children)
    kIfThenElse,        // if (c) then t else e
    kSwitch,            // switch (op) case k return v ... default return d
                        // children layout: op, k1, v1, ..., kN, vN, default
    kQuantified,        // some/every $v in e (, ...) satisfies p
    kOr, kAnd,          // two-valued logic over children
    kComparison,        // left op right
    kArithmetic,        // left op right
    kUnaryMinus,        // -e
    kStringConcat,      // e1 || e2
    kRange,             // e1 to e2
    kObjectConstructor, // { k : v, ... }
    kArrayConstructor,  // [ e ]
    kObjectLookup,      // target.key / target.$v / target.("k")
    kArrayLookup,       // target[[i]]
    kArrayUnbox,        // target[]
    kPredicate,         // target[p]
    kFunctionCall,      // fn(args...)
    kFlwor,             // for/let/.../return
    kTryCatch,          // try { e } catch * { h }
    kInstanceOf,        // e instance of T
    kTreatAs,           // e treat as T
    kCastAs,            // e cast as T / T?
  };

  Kind kind = Kind::kLiteral;

  // Common child slots. Unary expressions use children[0]; binary use
  // children[0] and children[1]; variadic (sequence, concat, and/or,
  // function args) use all.
  std::vector<ExprPtr> children;

  // kLiteral
  item::ItemPtr literal;

  // kVariableRef
  std::string variable;

  // kComparison / kArithmetic
  CompareOp compare_op = CompareOp::kValueEq;
  ArithmeticOp arithmetic_op = ArithmeticOp::kAdd;

  // kQuantified
  QuantifierKind quantifier = QuantifierKind::kSome;
  std::vector<std::pair<std::string, ExprPtr>> quantifier_bindings;

  // kObjectConstructor: parallel arrays of key expressions and value
  // expressions (keys are computed; constant keys are literal exprs).
  std::vector<ExprPtr> object_keys;
  std::vector<ExprPtr> object_values;

  // kObjectLookup: children[0] is the target, children[1] the key expr.

  // kFunctionCall
  std::string function_name;

  // kFlwor
  std::vector<FlworClause> clauses;
  ExprPtr return_expr;

  // kInstanceOf / kTreatAs / kCastAs
  SequenceType sequence_type;

  // Source position for error messages (1-based line/column).
  int line = 0;
  int column = 0;
};

/// Builders used by the parser; they allocate and fill common fields.
ExprPtr MakeLiteral(item::ItemPtr value);
ExprPtr MakeUnary(Expr::Kind kind, ExprPtr child);
ExprPtr MakeBinary(Expr::Kind kind, ExprPtr left, ExprPtr right);
ExprPtr MakeVariadic(Expr::Kind kind, std::vector<ExprPtr> children);

/// Pretty-prints the expression kind for diagnostics.
std::string_view ExprKindName(Expr::Kind kind);

/// Indented tree dump of an expression — the EXPLAIN surface for queries
/// (the compiled runtime iterators mirror this tree one-to-one, paper
/// Section 5.4).
std::string ExprToString(const Expr& expr);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_AST_H_
