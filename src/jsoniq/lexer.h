#ifndef RUMBLE_JSONIQ_LEXER_H_
#define RUMBLE_JSONIQ_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rumble::jsoniq {

/// Token kinds. JSONiq keywords are not reserved; the lexer emits kName for
/// all words and the parser matches keyword text contextually, as the
/// JSONiq/XQuery grammars require.
enum class TokenKind {
  kEof,
  kName,          // NCName, possibly containing '-' (e.g. json-file)
  kVariable,      // $name (text = name without '$')
  kContextItem,   // $$
  kString,        // quoted string (text = decoded value)
  kInteger,       // 42
  kDecimal,       // 3.14
  kDouble,        // 1e6
  // Punctuation / operators:
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kDoubleLBracket, kDoubleRBracket,
  kComma, kColon, kSemicolon, kDot, kAssign,         // :=
  kPlus, kMinus, kStar, kSlash,
  kEq, kNe, kLt, kLe, kGt, kGe,                      // = != < <= > >=
  kConcat,                                           // ||
  kQuestion, kBang,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // decoded payload for names/strings/numbers
  int line = 1;
  int column = 1;

  bool Is(TokenKind k) const { return kind == k; }
  bool IsName(std::string_view name) const {
    return kind == TokenKind::kName && text == name;
  }
};

/// Tokenizes a whole query. Throws RumbleException(kStaticSyntax) on lexical
/// errors (unterminated strings, stray characters). Comments use the XQuery
/// smiley form `(: ... :)` and nest.
std::vector<Token> Tokenize(std::string_view query);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_LEXER_H_
