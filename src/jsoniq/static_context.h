#ifndef RUMBLE_JSONIQ_STATIC_CONTEXT_H_
#define RUMBLE_JSONIQ_STATIC_CONTEXT_H_

#include <set>
#include <string>
#include <vector>

#include "src/jsoniq/ast.h"

namespace rumble::jsoniq {

class FunctionLibrary;

/// Static (compile-time) checks over the expression tree, per paper Section
/// 5.3: every variable reference must be in scope (XPST0008) and every
/// function call must resolve to a known name#arity (XPST0017). Scopes chain
/// exactly as the runtime ones do. `outer_variables` are bindings provided
/// by the host (the shell, tests).
void CheckStaticContext(const Expr& expr, const FunctionLibrary& library,
                        const std::set<std::string>& outer_variables = {});

/// Free variables of an expression: referenced variables not bound within
/// the expression itself. Drives FLWOR column pruning.
std::set<std::string> FreeVariables(const Expr& expr);

/// How `variable` is consumed by an expression (paper Section 4.7): never,
/// only as count($v), or generally. Nested scopes that rebind the variable
/// shadow it.
enum class UsageKind { kUnused, kCountOnly, kGeneral };
UsageKind AnalyzeVariableUsage(const Expr& expr, const std::string& variable);

/// Rewrites count($v) calls into $v (used after a group-by clause replaces
/// the materialized sequence with a precomputed count). Shadowing scopes are
/// left untouched.
ExprPtr RewriteCountToVariable(const ExprPtr& expr,
                               const std::string& variable);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_STATIC_CONTEXT_H_
