#ifndef RUMBLE_JSONIQ_SEQUENCE_TYPE_H_
#define RUMBLE_JSONIQ_SEQUENCE_TYPE_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/item/item.h"

namespace rumble::jsoniq {

/// Item-type component of a JSONiq sequence type. `kNumber` is the JSONiq
/// convenience union of integer/decimal/double; `kAtomic` any non-JSON item;
/// `kJsonItem` object-or-array.
enum class TypeName {
  kItem,
  kAtomic,
  kJsonItem,
  kObject,
  kArray,
  kString,
  kInteger,
  kDecimal,
  kDouble,
  kNumber,
  kBoolean,
  kNull,
};

/// Occurrence indicator.
enum class Arity {
  kOne,        // T
  kOptional,   // T?
  kStar,       // T*
  kPlus,       // T+
};

struct SequenceType {
  TypeName type = TypeName::kItem;
  Arity arity = Arity::kOne;
  /// `empty-sequence()`.
  bool is_empty_sequence = false;

  std::string ToString() const;
};

/// Parses a type name keyword; returns nullopt for unknown names.
std::optional<TypeName> TypeNameFromString(std::string_view name);

/// True iff `item` matches the item-type component.
bool ItemMatchesType(const item::Item& item, TypeName type);

/// True iff the whole sequence matches (arity + item type).
bool SequenceMatchesType(const item::ItemSequence& sequence,
                         const SequenceType& type);

/// Casts an atomic item to the target atomic type. Throws kInvalidCast when
/// the value is not castable and kTypeError when the kinds are not atomic.
item::ItemPtr CastAtomic(const item::ItemPtr& value, TypeName target);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_SEQUENCE_TYPE_H_
