#ifndef RUMBLE_JSONIQ_PLAN_CACHE_H_
#define RUMBLE_JSONIQ_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

/// LRU cache of compiled query plans for the serving path (docs/SERVING.md).
/// Keys are normalized query text (whitespace collapsed outside string
/// literals), so trivially reformatted repeats of the same query hit too.
///
/// Entries are never-executed *template* iterator trees: Lookup returns a
/// fresh Clone() with closed state, and the execution that follows runs on
/// the clone — the cached template stays pristine, so concurrent hits on the
/// same entry are safe and a cancelled execution cannot poison the cache.
/// Operator stats stay shared between template and clones (ShareObservability
/// semantics), exactly as clones shipped to executor tasks already behave.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Collapses runs of whitespace to single spaces and trims the ends,
  /// leaving string literals untouched. The serving path keys the cache on
  /// this.
  static std::string NormalizeQueryText(const std::string& query);

  /// A clone of the cached plan for `normalized_query`, refreshed to
  /// most-recently-used; nullptr on miss. Never returns the template itself.
  RuntimeIteratorPtr Lookup(const std::string& normalized_query);

  /// Caches `plan` as the template for `normalized_query`, evicting the
  /// least-recently-used entry beyond capacity. The caller must not execute
  /// `plan` afterwards (execute a Clone() instead).
  void Insert(const std::string& normalized_query, RuntimeIteratorPtr plan);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    RuntimeIteratorPtr plan;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  /// Most-recently-used at the front.
  std::list<Entry> entries_;
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_PLAN_CACHE_H_
