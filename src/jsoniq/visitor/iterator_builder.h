#ifndef RUMBLE_JSONIQ_VISITOR_ITERATOR_BUILDER_H_
#define RUMBLE_JSONIQ_VISITOR_ITERATOR_BUILDER_H_

#include "src/jsoniq/ast.h"
#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

/// Code generation (paper Section 5.4): converts the expression tree into a
/// tree of runtime iterators, resolving builtin function calls against the
/// global function library and compiling FLWOR expressions (including the
/// Section 4.7 group-by rewrites: COUNT pushdown and unused-variable
/// dropping, controlled by the engine configuration).
RuntimeIteratorPtr BuildRuntimeIterator(const ExprPtr& expr,
                                        const EngineContextPtr& engine);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_VISITOR_ITERATOR_BUILDER_H_
