#include "src/jsoniq/visitor/iterator_builder.h"

#include <set>
#include <utility>

#include "src/common/error.h"
#include "src/jsoniq/functions/function_library.h"
#include "src/jsoniq/runtime/expression_iterators.h"
#include "src/jsoniq/runtime/flwor.h"
#include "src/jsoniq/static_context.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;

std::vector<std::string> FreeVariableList(const Expr& expr) {
  std::set<std::string> free = FreeVariables(expr);
  return {free.begin(), free.end()};
}

std::vector<RuntimeIteratorPtr> BuildChildren(
    const std::vector<ExprPtr>& children, const EngineContextPtr& engine) {
  std::vector<RuntimeIteratorPtr> out;
  out.reserve(children.size());
  for (const auto& child : children) {
    out.push_back(BuildRuntimeIterator(child, engine));
  }
  return out;
}

/// Compiles a FLWOR expression. Applies the Section 4.7 static rewrites per
/// group-by clause before building iterators for the downstream clauses:
///  - a non-grouping variable used only as count($v) downstream is
///    aggregated as COUNT() and the downstream count($v) calls become $v
///    (only when $v is guaranteed singleton-per-tuple, i.e. bound by a
///    plain for clause or a positional/count variable);
///  - a non-grouping variable never used downstream is dropped entirely.
RuntimeIteratorPtr BuildFlwor(const Expr& expr,
                              const EngineContextPtr& engine) {
  std::vector<FlworClause> clauses = expr.clauses;
  ExprPtr return_expr = expr.return_expr;

  // Variables currently live (bound by preceding clauses) and the subset
  // guaranteed to hold exactly one item per tuple.
  std::vector<std::string> live;
  std::set<std::string> singleton;
  auto bind = [&](const std::string& name, bool is_singleton) {
    for (const auto& existing : live) {
      if (existing == name) {
        if (is_singleton) {
          singleton.insert(name);
        } else {
          singleton.erase(name);
        }
        return;
      }
    }
    live.push_back(name);
    if (is_singleton) singleton.insert(name);
  };

  CompiledFlwor compiled;

  for (std::size_t index = 0; index < clauses.size(); ++index) {
    // Note: clauses[index] may be replaced by rewrites below, so take
    // copies of the fields we mutate.
    FlworClause clause = clauses[index];
    CompiledClause out;
    out.kind = clause.kind;
    switch (clause.kind) {
      case FlworClause::Kind::kFor:
        out.variable = clause.variable;
        out.position_variable = clause.position_variable;
        out.allowing_empty = clause.allowing_empty;
        out.expr = BuildRuntimeIterator(clause.expr, engine);
        out.free_vars = FreeVariableList(*clause.expr);
        bind(clause.variable, !clause.allowing_empty);
        if (!clause.position_variable.empty()) {
          bind(clause.position_variable, true);
        }
        break;

      case FlworClause::Kind::kLet:
        out.variable = clause.variable;
        out.expr = BuildRuntimeIterator(clause.expr, engine);
        out.free_vars = FreeVariableList(*clause.expr);
        bind(clause.variable, false);
        break;

      case FlworClause::Kind::kWhere:
        out.expr = BuildRuntimeIterator(clause.expr, engine);
        out.free_vars = FreeVariableList(*clause.expr);
        break;

      case FlworClause::Kind::kCount:
        out.variable = clause.variable;
        bind(clause.variable, true);
        break;

      case FlworClause::Kind::kOrderBy:
        for (const auto& spec : clause.order_specs) {
          CompiledClause::OrderSpec compiled_spec;
          compiled_spec.expr = BuildRuntimeIterator(spec.expr, engine);
          compiled_spec.ascending = spec.ascending;
          compiled_spec.empty_greatest = spec.empty_greatest;
          compiled_spec.free_vars = FreeVariableList(*spec.expr);
          out.order_specs.push_back(std::move(compiled_spec));
        }
        break;

      case FlworClause::Kind::kGroupBy: {
        std::set<std::string> grouping;
        for (const auto& spec : clause.group_specs) {
          CompiledClause::GroupSpec compiled_spec;
          compiled_spec.variable = spec.variable;
          if (spec.expr != nullptr) {
            compiled_spec.expr = BuildRuntimeIterator(spec.expr, engine);
            compiled_spec.free_vars = FreeVariableList(*spec.expr);
          }
          grouping.insert(spec.variable);
          out.group_specs.push_back(std::move(compiled_spec));
        }

        // Classify every live non-grouping variable by downstream usage.
        auto analyze_downstream =
            [&](const std::string& name) -> UsageKind {
          UsageKind usage = UsageKind::kUnused;
          auto combine = [&usage](UsageKind other) {
            if (other == UsageKind::kGeneral) {
              usage = UsageKind::kGeneral;
            } else if (other == UsageKind::kCountOnly &&
                       usage == UsageKind::kUnused) {
              usage = UsageKind::kCountOnly;
            }
          };
          for (std::size_t later = index + 1; later < clauses.size();
               ++later) {
            const FlworClause& downstream = clauses[later];
            if (downstream.expr != nullptr) {
              combine(AnalyzeVariableUsage(*downstream.expr, name));
            }
            for (const auto& spec : downstream.group_specs) {
              if (spec.expr != nullptr) {
                combine(AnalyzeVariableUsage(*spec.expr, name));
              }
            }
            for (const auto& spec : downstream.order_specs) {
              combine(AnalyzeVariableUsage(*spec.expr, name));
            }
            // A later clause rebinding the variable shadows it.
            bool rebinds = false;
            switch (downstream.kind) {
              case FlworClause::Kind::kFor:
                rebinds = downstream.variable == name ||
                          downstream.position_variable == name;
                break;
              case FlworClause::Kind::kLet:
              case FlworClause::Kind::kCount:
                rebinds = downstream.variable == name;
                break;
              case FlworClause::Kind::kGroupBy:
                for (const auto& spec : downstream.group_specs) {
                  if (spec.variable == name && spec.expr != nullptr) {
                    rebinds = true;
                  }
                }
                break;
              default:
                break;
            }
            if (rebinds) return usage;
          }
          combine(AnalyzeVariableUsage(*return_expr, name));
          return usage;
        };

        auto rewrite_downstream = [&](const std::string& name) {
          for (std::size_t later = index + 1; later < clauses.size();
               ++later) {
            FlworClause& downstream = clauses[later];
            if (downstream.expr != nullptr) {
              downstream.expr = RewriteCountToVariable(downstream.expr, name);
            }
            for (auto& spec : downstream.group_specs) {
              if (spec.expr != nullptr) {
                spec.expr = RewriteCountToVariable(spec.expr, name);
              }
            }
            for (auto& spec : downstream.order_specs) {
              spec.expr = RewriteCountToVariable(spec.expr, name);
            }
          }
          return_expr = RewriteCountToVariable(return_expr, name);
        };

        std::vector<std::string> new_live;
        std::set<std::string> new_singleton;
        for (const auto& spec : clause.group_specs) {
          new_live.push_back(spec.variable);
        }
        for (const auto& name : live) {
          if (grouping.count(name) > 0) continue;
          UsageKind usage = analyze_downstream(name);
          VarUsage resolved = VarUsage::kGeneral;
          if (usage == UsageKind::kUnused &&
              engine->config.groupby_drop_unused) {
            resolved = VarUsage::kUnused;
          } else if (usage == UsageKind::kCountOnly &&
                     engine->config.groupby_count_pushdown &&
                     singleton.count(name) > 0) {
            resolved = VarUsage::kCountOnly;
            rewrite_downstream(name);
          }
          out.nongroup_vars.emplace_back(name, resolved);
          if (resolved != VarUsage::kUnused) {
            new_live.push_back(name);
          }
          if (resolved == VarUsage::kCountOnly) {
            new_singleton.insert(name);
          }
        }
        live = std::move(new_live);
        singleton = std::move(new_singleton);
        break;
      }
    }
    compiled.clauses.push_back(std::move(out));
  }

  compiled.return_expr = BuildRuntimeIterator(return_expr, engine);
  compiled.return_free_vars = FreeVariableList(*return_expr);
  return MakeFlworIterator(engine, std::move(compiled));
}

}  // namespace

RuntimeIteratorPtr BuildRuntimeIterator(const ExprPtr& expr,
                                        const EngineContextPtr& engine) {
  const Expr& node = *expr;
  switch (node.kind) {
    case Expr::Kind::kLiteral:
      return MakeLiteralIterator(engine, node.literal);

    case Expr::Kind::kVariableRef:
      return MakeVariableRefIterator(engine, node.variable);

    case Expr::Kind::kContextItem:
      return MakeContextItemIterator(engine);

    case Expr::Kind::kSequence:
      return MakeSequenceIterator(engine, BuildChildren(node.children, engine));

    case Expr::Kind::kIfThenElse:
      return MakeIfIterator(engine,
                            BuildRuntimeIterator(node.children[0], engine),
                            BuildRuntimeIterator(node.children[1], engine),
                            BuildRuntimeIterator(node.children[2], engine));

    case Expr::Kind::kSwitch:
      return MakeSwitchIterator(engine, BuildChildren(node.children, engine));

    case Expr::Kind::kQuantified: {
      std::vector<std::string> variables;
      std::vector<RuntimeIteratorPtr> bindings;
      for (const auto& [variable, binding] : node.quantifier_bindings) {
        variables.push_back(variable);
        bindings.push_back(BuildRuntimeIterator(binding, engine));
      }
      return MakeQuantifiedIterator(
          engine, node.quantifier, std::move(variables), std::move(bindings),
          BuildRuntimeIterator(node.children.back(), engine));
    }

    case Expr::Kind::kOr:
      return MakeOrIterator(engine, BuildChildren(node.children, engine));

    case Expr::Kind::kAnd:
      return MakeAndIterator(engine, BuildChildren(node.children, engine));

    case Expr::Kind::kComparison:
      return MakeComparisonIterator(
          engine, node.compare_op,
          BuildRuntimeIterator(node.children[0], engine),
          BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kArithmetic:
      return MakeArithmeticIterator(
          engine, node.arithmetic_op,
          BuildRuntimeIterator(node.children[0], engine),
          BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kUnaryMinus:
      return MakeUnaryMinusIterator(
          engine, BuildRuntimeIterator(node.children[0], engine));

    case Expr::Kind::kStringConcat:
      return MakeStringConcatIterator(engine,
                                      BuildChildren(node.children, engine));

    case Expr::Kind::kRange:
      return MakeRangeIterator(engine,
                               BuildRuntimeIterator(node.children[0], engine),
                               BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kObjectConstructor:
      return MakeObjectConstructorIterator(
          engine, BuildChildren(node.object_keys, engine),
          BuildChildren(node.object_values, engine));

    case Expr::Kind::kArrayConstructor:
      return MakeArrayConstructorIterator(
          engine, node.children.empty()
                      ? nullptr
                      : BuildRuntimeIterator(node.children[0], engine));

    case Expr::Kind::kObjectLookup:
      return MakeObjectLookupIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kArrayLookup:
      return MakeArrayLookupIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kArrayUnbox:
      return MakeArrayUnboxIterator(
          engine, BuildRuntimeIterator(node.children[0], engine));

    case Expr::Kind::kPredicate:
      return MakePredicateIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kFunctionCall: {
      const FunctionFactory* factory = FunctionLibrary::Global().Lookup(
          node.function_name, static_cast<int>(node.children.size()));
      if (factory == nullptr) {
        common::ThrowError(ErrorCode::kUnknownFunction,
                           "unknown function " + node.function_name + "#" +
                               std::to_string(node.children.size()));
      }
      RuntimeIteratorPtr call =
          (*factory)(engine, BuildChildren(node.children, engine));
      // Label the call for EXPLAIN; specialized iterators (json-file, fn:count)
      // already self-identify through Name().
      if (call != nullptr && std::string(call->Name()) == "function-call") {
        call->set_debug_name("fn:" + node.function_name);
      }
      return call;
    }

    case Expr::Kind::kFlwor:
      return BuildFlwor(node, engine);

    case Expr::Kind::kTryCatch:
      return MakeTryCatchIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          BuildRuntimeIterator(node.children[1], engine));

    case Expr::Kind::kInstanceOf:
      return MakeInstanceOfIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          node.sequence_type);

    case Expr::Kind::kTreatAs:
      return MakeTreatAsIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          node.sequence_type);

    case Expr::Kind::kCastAs:
      return MakeCastAsIterator(
          engine, BuildRuntimeIterator(node.children[0], engine),
          node.sequence_type);
  }
  common::ThrowError(ErrorCode::kInternal, "unknown expression kind");
}

}  // namespace rumble::jsoniq
