#include "src/jsoniq/rumble.h"

#include <set>

#include "src/json/writer.h"
#include "src/storage/dfs.h"
#include "src/jsoniq/functions/function_library.h"
#include "src/jsoniq/parser.h"
#include "src/jsoniq/static_context.h"
#include "src/jsoniq/visitor/iterator_builder.h"

namespace rumble::jsoniq {

EngineContextPtr MakeEngineContext(common::RumbleConfig config) {
  auto engine = std::make_shared<EngineContext>();
  engine->config = config;
  engine->spark = std::make_shared<spark::Context>(config);
  if (config.memory_budget_bytes > 0) {
    engine->memory =
        std::make_shared<util::MemoryBudget>(config.memory_budget_bytes);
  }
  return engine;
}

Rumble::Rumble(common::RumbleConfig config)
    : engine_(MakeEngineContext(config)),
      globals_(std::make_shared<DynamicContext>()) {}

void Rumble::BindVariable(const std::string& name, item::ItemSequence value) {
  globals_->Bind(name, std::move(value));
  globals_names_.insert(name);
}

common::Result<RuntimeIteratorPtr> Rumble::Compile(
    const std::string& query) const {
  try {
    ExprPtr ast = ParseQuery(query);
    // Host-bound globals are visible to static checking.
    CheckStaticContext(*ast, FunctionLibrary::Global(), globals_names_);
    return BuildRuntimeIterator(ast, engine_);
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }
}

common::Result<item::ItemSequence> Rumble::Run(const std::string& query) {
  common::Result<RuntimeIteratorPtr> compiled = Compile(query);
  if (!compiled.ok()) return compiled.status();
  // One query run = one job in the event log; every stage the executor pool
  // runs during evaluation lands under this job id.
  obs::EventBus& bus = engine_->spark->bus();
  std::int64_t job = bus.BeginJob(query);
  try {
    if (engine_->memory != nullptr) {
      engine_->memory->Reset();
    }
    item::ItemSequence items = compiled.value()->MaterializeAll(*globals_);
    bus.EndJob(job, {{"query.rows_out",
                      static_cast<std::int64_t>(items.size())}});
    return items;
  } catch (const common::RumbleException& error) {
    bus.EndJob(job, {{"failed", 1}});
    return common::Status::FromException(error);
  }
}

common::Result<std::string> Rumble::RunToJson(const std::string& query) {
  common::Result<item::ItemSequence> result = Run(query);
  if (!result.ok()) return result.status();
  return json::SerializeLines(result.value());
}

common::Status Rumble::RunToDataset(const std::string& query,
                                    const std::string& output_path) {
  common::Result<RuntimeIteratorPtr> compiled = Compile(query);
  if (!compiled.ok()) return compiled.status();
  try {
    if (engine_->memory != nullptr) {
      engine_->memory->Reset();
    }
    RuntimeIteratorPtr root = compiled.value();
    if (root->IsRddAble()) {
      // Parallel write path: serialize each partition on its executor.
      spark::Rdd<std::string> lines =
          root->GetRdd(*globals_).Map([](const item::ItemPtr& item) {
            return item->Serialize();
          });
      engine_->spark->SaveAsTextFile(lines, output_path);
      return common::Status::OK();
    }
    item::ItemSequence items = root->MaterializeAll(*globals_);
    storage::Dfs::WritePartitioned(output_path,
                                   {json::SerializeLines(items)});
    return common::Status::OK();
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }
}

common::Status Rumble::Check(const std::string& query) const {
  common::Result<RuntimeIteratorPtr> compiled = Compile(query);
  return compiled.status();
}

common::Result<std::string> Rumble::Explain(const std::string& query) const {
  try {
    ExprPtr ast = ParseQuery(query);
    CheckStaticContext(*ast, FunctionLibrary::Global(), globals_names_);
    RuntimeIteratorPtr root = BuildRuntimeIterator(ast, engine_);
    std::string out = ExprToString(*ast);
    out += "iterator tree:\n";
    root->ExplainTree(*globals_, 1, &out);
    out += "execution: ";
    if (root->IsRddAble()) {
      out += engine_->config.flwor_backend == common::FlworBackend::kTupleRdd
                 ? "distributed (RDD-of-tuples FLWOR backend)\n"
                 : "distributed (DataFrame FLWOR backend)\n";
    } else {
      out += "local (pull-based iterators)\n";
    }
    return out;
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }
}

}  // namespace rumble::jsoniq
