#include "src/jsoniq/rumble.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>
#include <utility>

#include "src/exec/query_scope.h"
#include "src/exec/spill_file.h"
#include "src/json/writer.h"
#include "src/obs/query_profiler.h"
#include "src/storage/dfs.h"
#include "src/jsoniq/functions/function_library.h"
#include "src/jsoniq/parser.h"
#include "src/jsoniq/static_context.h"
#include "src/jsoniq/visitor/iterator_builder.h"
#include "src/util/stopwatch.h"

namespace rumble::jsoniq {

EngineContextPtr MakeEngineContext(common::RumbleConfig config) {
  auto engine = std::make_shared<EngineContext>();
  engine->config = config;
  engine->spark = std::make_shared<spark::Context>(config);
  if (config.memory_budget_bytes > 0) {
    // Budget-mode manager for the local-execution baselines: Allocate throws
    // kOutOfMemory. Deliberately bus-less — only the spark context's
    // spill-capable manager publishes mem.* gauges, so reservations are not
    // double-counted.
    engine->memory =
        std::make_shared<exec::MemoryManager>(config.memory_budget_bytes);
  }
  return engine;
}

namespace {

/// Default serving plan-cache capacity; --plan-cache / ResetPlanCache
/// override it.
constexpr std::size_t kDefaultPlanCacheCapacity = 64;

/// Flattens the executed tree's operator stats (pre-order) into the
/// profile's operators array. Stats only accumulate while the tracer is
/// enabled, so callers gate on that. Exclusive time is clamped at zero —
/// children evaluated on executor threads can overlap each other.
void CollectOperatorProfiles(const RuntimeIterator& node,
                             std::vector<obs::OperatorProfile>* out) {
  obs::OperatorProfile op;
  op.name = node.DisplayName();
  op.rows = node.op_stats().items.load(std::memory_order_relaxed);
  op.opens = node.op_stats().opens.load(std::memory_order_relaxed);
  op.total_nanos = node.op_stats().busy_nanos.load(std::memory_order_relaxed);
  std::int64_t child_nanos = 0;
  for (const RuntimeIteratorPtr& child : node.children()) {
    child_nanos +=
        child->op_stats().busy_nanos.load(std::memory_order_relaxed);
  }
  op.self_nanos = std::max<std::int64_t>(0, op.total_nanos - child_nanos);
  out->push_back(std::move(op));
  for (const RuntimeIteratorPtr& child : node.children()) {
    CollectOperatorProfiles(*child, out);
  }
}

/// Copies the query's resource stats onto its profile; the caller holds
/// profile->mu. Reads are relaxed: the owning thread calls this after
/// execution finished and the scope unbound, so no stats writer is
/// concurrent.
void FillResourceStats(const exec::QueryResourceStats& stats,
                       obs::QueryProfile* profile) {
  profile->peak_bytes = static_cast<std::int64_t>(
      stats.peak_bytes.load(std::memory_order_relaxed));
  profile->spill_bytes_written =
      stats.spill_bytes_written.load(std::memory_order_relaxed);
  profile->spill_bytes_read =
      stats.spill_bytes_read.load(std::memory_order_relaxed);
  profile->spill_files = stats.spill_files.load(std::memory_order_relaxed);
}

}  // namespace

Rumble::Rumble(common::RumbleConfig config)
    : engine_(MakeEngineContext(config)),
      globals_(std::make_shared<DynamicContext>()),
      plan_cache_(std::make_unique<PlanCache>(kDefaultPlanCacheCapacity)) {
  if (!config.slow_query_log_path.empty() && config.slow_query_ms > 0) {
    engine_->spark->bus().profiler()->SetSlowQueryLog(
        config.slow_query_log_path, config.slow_query_ms);
  }
}

void Rumble::ResetPlanCache(std::size_t capacity) {
  plan_cache_ = std::make_unique<PlanCache>(capacity);
}

void Rumble::BindVariable(const std::string& name, item::ItemSequence value) {
  globals_->Bind(name, std::move(value));
  globals_names_.insert(name);
}

common::Result<RuntimeIteratorPtr> Rumble::Compile(
    const std::string& query, CompileTimings* timings) const {
  try {
    util::Stopwatch watch;
    ExprPtr ast = ParseQuery(query);
    // Host-bound globals are visible to static checking.
    CheckStaticContext(*ast, FunctionLibrary::Global(), globals_names_);
    if (timings != nullptr) timings->parse_nanos = watch.ElapsedNanos();
    watch.Restart();
    common::Result<RuntimeIteratorPtr> root =
        BuildRuntimeIterator(ast, engine_);
    if (timings != nullptr) timings->translate_nanos = watch.ElapsedNanos();
    return root;
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }
}

common::Result<item::ItemSequence> Rumble::Run(const std::string& query) {
  bool was_idle = in_flight_.fetch_add(1, std::memory_order_acq_rel) == 0;
  (void)was_idle;
#ifdef RUMBLE_ASSERT_METRICS
  obs::EventBus& bus = engine_->spark->bus();
  std::int64_t generation_before =
      query_generation_.load(std::memory_order_acquire);
  std::int64_t spill_written_before = bus.CounterValue("spill.bytes_written");
  std::int64_t spill_read_before = bus.CounterValue("spill.bytes_read");
  std::int64_t spill_files_before = bus.CounterValue("spill.files");
  std::int64_t charged_before = bus.CounterValue("mem.charged_bytes_total");
  std::int64_t forced_before = bus.CounterValue("mem.spill_triggered");
#endif
  common::Result<item::ItemSequence> result = RunGoverned(query);
  bool last = in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
#ifdef RUMBLE_ASSERT_METRICS
  // Profile-vs-counter cross-check. Counters are engine-global, so their
  // deltas are attributable to this query only when it verifiably ran alone:
  // in_flight_ was zero on both sides and the generation advanced by exactly
  // one (no query started or finished anywhere in between).
  bool solo = was_idle && last &&
              query_generation_.load(std::memory_order_acquire) ==
                  generation_before + 1;
  std::shared_ptr<const obs::QueryProfile> profile = bus.profiler()->Latest();
  if (solo && profile != nullptr && profile->query == query) {
    std::int64_t written_delta =
        bus.CounterValue("spill.bytes_written") - spill_written_before;
    std::int64_t read_delta =
        bus.CounterValue("spill.bytes_read") - spill_read_before;
    std::int64_t files_delta =
        bus.CounterValue("spill.files") - spill_files_before;
    if (bus.CounterValue("mem.spill_triggered") == forced_before) {
      // No forced-spill pass ran, so every spill byte the counters saw was
      // written under this query's scope — the attribution must be exact.
      RUMBLE_METRICS_CHECK(
          profile->spill_bytes_written == written_delta &&
              profile->spill_bytes_read == read_delta &&
              profile->spill_files == files_delta,
          "query profile spill attribution disagrees with spill.* counters");
    } else {
      // Forced spills run under a suspended scope (unattributed by design),
      // so the profile can only under-count the engine-global counters.
      RUMBLE_METRICS_CHECK(
          profile->spill_bytes_written <= written_delta &&
              profile->spill_bytes_read <= read_delta &&
              profile->spill_files <= files_delta,
          "query profile spill attribution exceeds spill.* counters");
    }
    if (engine_->memory == nullptr) {
      // The budget-mode manager is deliberately bus-less: its charges reach
      // the profile but not the counter, so only cross-check without it.
      RUMBLE_METRICS_CHECK(
          profile->peak_bytes <=
              bus.CounterValue("mem.charged_bytes_total") - charged_before,
          "query profile peak memory exceeds total bytes charged");
    }
    std::int64_t cpu = profile->cpu_nanos();
    std::int64_t bound =
        profile->wall_nanos * (engine_->config.executors + 1) + 50'000'000;
    RUMBLE_METRICS_CHECK(
        cpu >= 0 && cpu <= bound,
        "query profile CPU time " + std::to_string(cpu) +
            "ns outside [0, wall*(executors+1)] sanity bound " +
            std::to_string(bound) + "ns");
  }
#endif
  FinishQuery(result.ok(), last);
  return result;
}

common::Result<item::ItemSequence> Rumble::RunGoverned(
    const std::string& query) {
  util::Stopwatch wall_watch;
  std::int64_t driver_cpu_start = obs::ThreadCpuNanos();
  query_generation_.fetch_add(1, std::memory_order_acq_rel);
  exec::MemoryManager& memory = engine_->spark->memory_manager();
  exec::CancellationToken& cancel = engine_->spark->session_cancellation();
  // Admission control: a pool already exhausted beyond what spilling could
  // reclaim rejects new queries outright rather than queueing them.
  try {
    memory.AdmitQuery();
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }
  CompileTimings timings;
  common::Result<RuntimeIteratorPtr> compiled = Compile(query, &timings);
  if (!compiled.ok()) return compiled.status();
  cancel.Reset();
  cancel.SetDeadlineAfterMs(engine_->config.query_timeout_ms);
  // Resource-attribution scope for the shell path: same session token, no
  // per-query pool (the shell is governed by the engine-wide limit), but a
  // stats block so memory charges and spill I/O — on this thread and on
  // every executor task, which re-binds the scope — land on this query's
  // profile (docs/PROFILING.md).
  exec::QueryResourceStats stats;
  exec::QueryScope scope;
  scope.cancel = &cancel;
  scope.memory = nullptr;
  scope.stats = &stats;
  exec::QueryScopeBinding scope_binding(&scope);
  // One query run = one job in the event log; every stage the executor pool
  // runs during evaluation lands under this job id.
  obs::EventBus& bus = engine_->spark->bus();
  std::int64_t job = bus.BeginJob(query);
  std::shared_ptr<obs::QueryProfile> profile =
      bus.profiler()->Begin(job, query, /*tenant=*/"", /*served=*/false);
  // Plain profile fields are written under profile->mu throughout: the
  // metrics server renders live profiles from other threads (docs/PROFILING.md).
  {
    std::lock_guard<std::mutex> profile_lock(profile->mu);
    profile->parse_nanos = timings.parse_nanos;
    profile->translate_nanos = timings.translate_nanos;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_jobs_[job] = &cancel;
  }
  // Bind the job to this thread so every stage the pool runs during
  // evaluation can look up this query's profile and credit its tasks'
  // CPU time (docs/PROFILING.md).
  obs::ThreadJobBinding job_binding(job);
  // Root of the span hierarchy: stage spans begun on this thread during
  // evaluation parent to the job span implicitly (docs/TRACING.md).
  obs::ScopedSpan job_span(bus.tracer(), "job", query);
  util::Stopwatch execute_watch;
  common::Result<item::ItemSequence> result = [&] {
    try {
      if (engine_->memory != nullptr) {
        engine_->memory->Reset();
      }
      item::ItemSequence items = compiled.value()->MaterializeAll(*globals_);
      job_span.AddArg("rows_out", static_cast<std::int64_t>(items.size()));
      bus.EndJob(job, {{"query.rows_out",
                        static_cast<std::int64_t>(items.size())}});
      {
        std::lock_guard<std::mutex> profile_lock(profile->mu);
        profile->rows_out = static_cast<std::int64_t>(items.size());
      }
      return common::Result<item::ItemSequence>(std::move(items));
    } catch (const common::RumbleException& error) {
      job_span.AddArg("failed", 1);
      if (error.code() == common::ErrorCode::kCancelled) {
        bus.QueryCancelled(job, exec::CancellationToken::OriginName(
                                    cancel.origin()));
        bus.AddToCounter("cancel.observed", 1);
      }
      bus.EndJob(job, {{"failed", 1}});
      {
        std::lock_guard<std::mutex> profile_lock(profile->mu);
        profile->failed = true;
        profile->error = error.what();
      }
      return common::Result<item::ItemSequence>(
          common::Status::FromException(error));
    }
  }();
  std::int64_t execute_nanos = execute_watch.ElapsedNanos();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_jobs_.erase(job);
  }
  cancel.SetDeadlineAfterMs(0);
  {
    std::lock_guard<std::mutex> profile_lock(profile->mu);
    profile->execute_nanos = execute_nanos;
    // Operator actuals only accumulate under tracing (EXPLAIN ANALYZE or
    // --trace); skip the walk otherwise — the stats would be all zeros.
    if (bus.tracer()->enabled()) {
      CollectOperatorProfiles(*compiled.value(), &profile->operators);
    }
    FillResourceStats(stats, profile.get());
    profile->driver_cpu_nanos = obs::ThreadCpuNanos() - driver_cpu_start;
    profile->wall_nanos = wall_watch.ElapsedNanos();
  }
  bus.profiler()->Finalize(profile);
  return result;
}

void Rumble::FinishQuery(bool ok, bool last) {
  // A failed or cancelled query must leave nothing behind: the compiled tree
  // died inside RunGoverned/ServeQuery, releasing every reservation and
  // unlinking its spill files; sweep catches stragglers (e.g. a crash path
  // that skipped a destructor — live spill files of concurrent queries are
  // skipped by the sweeper) and the metrics check pins the drained-pool
  // invariant once no other query is in flight.
  if (!ok) exec::SweepSpillFiles();
  if (!last) return;
  RUMBLE_METRICS_CHECK(
      engine_->spark->memory_manager().reserved_bytes() == 0,
      "execution-memory reservations leaked past the end of a query");
}

bool Rumble::CancelJob(std::int64_t job_id) {
  // Cancel under jobs_mu_: a served query's token lives on its serving
  // thread's stack and is erased from the map (also under jobs_mu_) before
  // it dies, so holding the lock across Cancel keeps the pointer alive.
  std::lock_guard<std::mutex> lock(jobs_mu_);
  auto it = active_jobs_.find(job_id);
  if (it == active_jobs_.end()) return false;
  it->second->Cancel(exec::CancellationToken::Origin::kHttp);
  engine_->spark->bus().AddToCounter("cancel.requested", 1);
  return true;
}

int Rumble::CancelAllJobs() {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  for (auto& [job_id, token] : active_jobs_) {
    token->Cancel(exec::CancellationToken::Origin::kHttp);
  }
  int cancelled = static_cast<int>(active_jobs_.size());
  if (cancelled > 0) {
    engine_->spark->bus().AddToCounter("cancel.requested", cancelled);
  }
  return cancelled;
}

int Rumble::active_jobs() {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return static_cast<int>(active_jobs_.size());
}

common::Result<ServeResult> Rumble::ServeQuery(
    const std::string& query, const ServeOptions& options,
    const std::function<void(const ServeStart&)>& on_start,
    const std::function<bool(std::string_view)>& sink) {
  util::Stopwatch wall_watch;
  std::int64_t driver_cpu_start = obs::ThreadCpuNanos();
  query_generation_.fetch_add(1, std::memory_order_acq_rel);
  exec::MemoryManager& memory = engine_->spark->memory_manager();
  obs::EventBus& bus = engine_->spark->bus();
  try {
    memory.AdmitQuery();
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }

  // Compile through the plan cache: a hit returns a fresh clone of the
  // cached template and skips parse/translate entirely (no serve.parse /
  // serve.translate spans — the acceptance signal for cache hits).
  std::string key = PlanCache::NormalizeQueryText(query);
  RuntimeIteratorPtr root;
  bool cache_hit = false;
  CompileTimings timings;
  if (options.use_plan_cache && plan_cache_ != nullptr) {
    root = plan_cache_->Lookup(key);
    cache_hit = root != nullptr;
    bus.AddToCounter(
        cache_hit ? "serving.plan_cache.hit" : "serving.plan_cache.miss", 1);
  }
  if (root == nullptr) {
    try {
      ExprPtr ast;
      util::Stopwatch compile_watch;
      {
        obs::ScopedSpan parse_span(bus.tracer(), "serve.parse", query);
        ast = ParseQuery(query);
        CheckStaticContext(*ast, FunctionLibrary::Global(), globals_names_);
      }
      timings.parse_nanos = compile_watch.ElapsedNanos();
      compile_watch.Restart();
      obs::ScopedSpan translate_span(bus.tracer(), "serve.translate", query);
      root = BuildRuntimeIterator(ast, engine_);
      timings.translate_nanos = compile_watch.ElapsedNanos();
    } catch (const common::RumbleException& error) {
      return common::Status::FromException(error);
    }
    if (options.use_plan_cache && plan_cache_ != nullptr) {
      // The pristine tree becomes the cached template; execution runs on a
      // clone so the template is never opened.
      RuntimeIteratorPtr template_plan = std::move(root);
      root = template_plan->Clone();
      plan_cache_->Insert(key, std::move(template_plan));
    }
  }

  // Per-query governance: this query's own token and (optionally) its own
  // memory sub-pool, bound to this thread for the whole evaluation and
  // re-bound by the executor pool around every task it spawns.
  exec::CancellationToken token;
  token.SetDeadlineAfterMs(options.timeout_ms >= 0
                               ? options.timeout_ms
                               : engine_->config.query_timeout_ms);
  std::optional<exec::QueryMemoryPool> pool;
  if (options.memory_cap_bytes > 0) pool.emplace(options.memory_cap_bytes);
  exec::QueryResourceStats stats;
  exec::QueryScope scope;
  scope.cancel = &token;
  scope.memory = pool.has_value() ? &pool.value() : nullptr;
  scope.stats = &stats;
  exec::QueryScopeBinding scope_binding(&scope);

  // Detached job: visible and cancellable on /jobs without stealing stage
  // attribution from a concurrent shell query.
  std::int64_t job = bus.BeginJob(query, /*detached=*/true);
  std::shared_ptr<obs::QueryProfile> profile =
      bus.profiler()->Begin(job, query, options.tenant, /*served=*/true);
  // Plain profile fields are written under profile->mu throughout: the
  // metrics server renders live profiles from other threads (docs/PROFILING.md).
  {
    std::lock_guard<std::mutex> profile_lock(profile->mu);
    profile->plan_cache_hit = cache_hit;
    profile->queue_wait_nanos = options.queue_wait_nanos;
    profile->parse_nanos = timings.parse_nanos;
    profile->translate_nanos = timings.translate_nanos;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_jobs_[job] = &token;
  }
  obs::ThreadJobBinding job_binding(job);
  in_flight_.fetch_add(1, std::memory_order_acq_rel);

  ServeStart start;
  start.job_id = job;
  start.plan_cache_hit = cache_hit;
  if (on_start) on_start(start);

  ServeResult out;
  out.job_id = job;
  out.plan_cache_hit = cache_hit;
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
  util::Stopwatch execute_watch;
  common::Result<ServeResult> result = [&]() -> common::Result<ServeResult> {
    obs::ScopedSpan request_span(
        bus.tracer(), "serve.request",
        options.tenant.empty() ? query : options.tenant + ": " + query);
    try {
      constexpr std::size_t kChunkBytes = 32 * 1024;
      std::string chunk;
      auto flush = [&] {
        if (chunk.empty()) return;
        if (!sink(chunk)) {
          // The client hung up mid-stream: cancel with the HTTP origin so
          // cleanup and observability follow the normal cancelled path.
          token.Cancel(exec::CancellationToken::Origin::kHttp);
          token.Check();
        }
        bytes += chunk.size();
        chunk.clear();
      };
      auto emit = [&](const item::ItemPtr& item) {
        item->SerializeTo(&chunk);
        chunk += '\n';
        ++rows;
        if (chunk.size() >= kChunkBytes) flush();
      };
      if (root->IsRddAble()) {
        // Distributed roots collect exactly as the shell does (same bytes,
        // same materialization cap), then stream the result out in chunks.
        for (const item::ItemPtr& item : root->MaterializeAll(*globals_)) {
          emit(item);
        }
      } else {
        // Local roots genuinely stream: rows reach the client as the pull
        // pipeline produces them, without a driver-side materialization.
        root->Open(*globals_);
        std::uint64_t pulled = 0;
        while (root->HasNext()) {
          emit(root->Next());
          if ((++pulled & 0x3F) == 0) token.Check();
        }
        root->Close();
      }
      flush();
      request_span.AddArg("rows_out", static_cast<std::int64_t>(rows));
      request_span.AddArg("bytes_out", static_cast<std::int64_t>(bytes));
      request_span.AddArg("plan_cache_hit", cache_hit ? 1 : 0);
      bus.EndJob(job, {{"query.rows_out", static_cast<std::int64_t>(rows)},
                       {"serving.bytes", static_cast<std::int64_t>(bytes)}});
      out.rows = rows;
      out.bytes = bytes;
      return out;
    } catch (const common::RumbleException& error) {
      request_span.AddArg("failed", 1);
      if (error.code() == common::ErrorCode::kCancelled) {
        bus.QueryCancelled(
            job, exec::CancellationToken::OriginName(token.origin()));
        bus.AddToCounter("cancel.observed", 1);
      }
      bus.EndJob(job, {{"failed", 1}});
      {
        std::lock_guard<std::mutex> profile_lock(profile->mu);
        profile->failed = true;
        profile->error = error.what();
      }
      return common::Result<ServeResult>(common::Status::FromException(error));
    }
  }();
  {
    std::lock_guard<std::mutex> profile_lock(profile->mu);
    profile->execute_nanos = execute_watch.ElapsedNanos();
    profile->rows_out = static_cast<std::int64_t>(rows);
    profile->bytes_out = static_cast<std::int64_t>(bytes);
  }
  bus.AddToCounter("serving.rows_streamed", static_cast<std::int64_t>(rows));
  bus.AddToCounter("serving.bytes_streamed", static_cast<std::int64_t>(bytes));
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_jobs_.erase(job);
  }
  if (bus.tracer()->enabled() && root != nullptr) {
    std::lock_guard<std::mutex> profile_lock(profile->mu);
    CollectOperatorProfiles(*root, &profile->operators);
  }
  // Destroy the executed tree before the drained-pool check: its destructors
  // release every reservation and unlink every spill file it still held.
  root.reset();
  {
    std::lock_guard<std::mutex> profile_lock(profile->mu);
    FillResourceStats(stats, profile.get());
    profile->driver_cpu_nanos = obs::ThreadCpuNanos() - driver_cpu_start;
    // The profile's wall time is end-to-end from the client's perspective:
    // scheduler admission wait (spent before ServeQuery was entered) plus
    // everything from entry to here. The slow-query threshold keys off this.
    profile->wall_nanos = options.queue_wait_nanos + wall_watch.ElapsedNanos();
  }
  bus.profiler()->Finalize(profile);
  if (result.ok()) {
    result.value().cpu_nanos = profile->cpu_nanos();
    result.value().peak_bytes = profile->peak_bytes;
    result.value().spill_bytes = profile->spill_bytes_written;
  }
  bool last = in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  FinishQuery(result.ok(), last);
  return result;
}

common::Result<std::string> Rumble::RunToJson(const std::string& query) {
  common::Result<item::ItemSequence> result = Run(query);
  if (!result.ok()) return result.status();
  return json::SerializeLines(result.value());
}

common::Status Rumble::RunToDataset(const std::string& query,
                                    const std::string& output_path) {
  common::Result<RuntimeIteratorPtr> compiled = Compile(query);
  if (!compiled.ok()) return compiled.status();
  exec::CancellationToken& cancel = engine_->spark->session_cancellation();
  cancel.Reset();
  cancel.SetDeadlineAfterMs(engine_->config.query_timeout_ms);
  try {
    if (engine_->memory != nullptr) {
      engine_->memory->Reset();
    }
    RuntimeIteratorPtr root = compiled.value();
    if (root->IsRddAble()) {
      // Parallel write path: serialize each partition on its executor.
      spark::Rdd<std::string> lines =
          root->GetRdd(*globals_).Map([](const item::ItemPtr& item) {
            return item->Serialize();
          });
      engine_->spark->SaveAsTextFile(lines, output_path);
      return common::Status::OK();
    }
    item::ItemSequence items = root->MaterializeAll(*globals_);
    storage::Dfs::WritePartitioned(output_path,
                                   {json::SerializeLines(items)});
    cancel.SetDeadlineAfterMs(0);
    return common::Status::OK();
  } catch (const common::RumbleException& error) {
    cancel.SetDeadlineAfterMs(0);
    return common::Status::FromException(error);
  }
}

common::Status Rumble::Check(const std::string& query) const {
  common::Result<RuntimeIteratorPtr> compiled = Compile(query);
  return compiled.status();
}

common::Result<std::string> Rumble::Explain(const std::string& query) const {
  try {
    ExprPtr ast = ParseQuery(query);
    CheckStaticContext(*ast, FunctionLibrary::Global(), globals_names_);
    RuntimeIteratorPtr root = BuildRuntimeIterator(ast, engine_);
    std::string out = ExprToString(*ast);
    out += "iterator tree:\n";
    root->ExplainTree(*globals_, 1, &out, ExplainOptions{});
    out += "execution: ";
    if (root->IsRddAble()) {
      out += engine_->config.flwor_backend == common::FlworBackend::kTupleRdd
                 ? "distributed (RDD-of-tuples FLWOR backend)\n"
                 : "distributed (DataFrame FLWOR backend)\n";
    } else {
      out += "local (pull-based iterators)\n";
    }
    return out;
  } catch (const common::RumbleException& error) {
    return common::Status::FromException(error);
  }
}

namespace {

std::string FormatMs(double nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", nanos / 1e6);
  return std::string(buf) + "ms";
}

}  // namespace

common::Result<std::string> Rumble::ExplainAnalyze(const std::string& query) {
  common::Result<RuntimeIteratorPtr> compiled = Compile(query);
  if (!compiled.ok()) return compiled.status();
  RuntimeIteratorPtr root = compiled.value();
  obs::EventBus& bus = engine_->spark->bus();
  obs::Tracer* tracer = bus.tracer();
  // Operator stats only accumulate while the tracer is enabled; turn it on
  // for this run and restore the caller's choice afterwards.
  bool was_enabled = tracer->enabled();
  tracer->set_enabled(true);
  exec::CancellationToken& cancel = engine_->spark->session_cancellation();
  cancel.Reset();
  cancel.SetDeadlineAfterMs(engine_->config.query_timeout_ms);
  std::int64_t since = bus.NextSequence();
  std::int64_t job = bus.BeginJob(query);
  std::int64_t rows_out = 0;
  // Join actuals are counter deltas over this run (estimates are printed by
  // the plan via EXPLAIN; docs/OPTIMIZER.md explains reading the two
  // together).
  std::int64_t join_build_before = bus.CounterValue("df.join.build_rows");
  std::int64_t join_probe_before = bus.CounterValue("df.join.probe_rows");
  std::int64_t join_out_before = bus.CounterValue("df.join.output_rows");
  try {
    if (engine_->memory != nullptr) {
      engine_->memory->Reset();
    }
    {
      obs::ScopedSpan job_span(tracer, "job", query);
      item::ItemSequence items = root->MaterializeAll(*globals_);
      rows_out = static_cast<std::int64_t>(items.size());
      job_span.AddArg("rows_out", rows_out);
    }
    bus.EndJob(job, {{"query.rows_out", rows_out}});
  } catch (const common::RumbleException& error) {
    bus.EndJob(job, {{"failed", 1}});
    tracer->set_enabled(was_enabled);
    cancel.SetDeadlineAfterMs(0);
    return common::Status::FromException(error);
  }
  tracer->set_enabled(was_enabled);
  cancel.SetDeadlineAfterMs(0);

  std::int64_t wall = 0;
  for (const auto& event : bus.EventsSince(since)) {
    if (event.kind == obs::EventKind::kJobEnd && event.job_id == job) {
      wall = event.duration_nanos;
    }
  }
  // Cross-check (assert builds): the root operator's inclusive time is the
  // whole evaluation, so it must agree with the job wall from job_end — a
  // wiring drift here would render confident but wrong percentages. The
  // tolerance absorbs job bookkeeping outside the operator (event publish,
  // memory reset) and scheduling noise.
  std::int64_t root_nanos =
      root->op_stats().busy_nanos.load(std::memory_order_relaxed);
  RUMBLE_METRICS_CHECK(
      root_nanos <= wall + 5'000'000 &&
          root_nanos + std::max<std::int64_t>(wall / 4, 10'000'000) >= wall,
      "EXPLAIN ANALYZE root time " + std::to_string(root_nanos) +
          "ns disagrees with job wall " + std::to_string(wall) + "ns");

  ExplainOptions options;
  options.analyze = true;
  options.job_wall_nanos = wall;
  std::string out = "iterator tree (analyzed):\n";
  root->ExplainTree(*globals_, 1, &out, options);
  out += "job wall: " + FormatMs(static_cast<double>(wall)) +
         ", rows out: " + std::to_string(rows_out) + "\n";
  auto histograms = bus.metrics()->Snapshot();
  for (const char* name : {"task.duration_ns", "stage.duration_ns"}) {
    auto it = histograms.find(name);
    if (it == histograms.end() || it->second.count == 0) continue;
    const auto& snap = it->second;
    out += std::string(name) + ": p50=" + FormatMs(snap.Quantile(0.50)) +
           " p95=" + FormatMs(snap.Quantile(0.95)) +
           " p99=" + FormatMs(snap.Quantile(0.99)) +
           " (n=" + std::to_string(snap.count) + ", all jobs this session)\n";
  }
  std::int64_t join_build = bus.CounterValue("df.join.build_rows") -
                            join_build_before;
  std::int64_t join_probe = bus.CounterValue("df.join.probe_rows") -
                            join_probe_before;
  std::int64_t join_out = bus.CounterValue("df.join.output_rows") -
                          join_out_before;
  if (join_build > 0 || join_probe > 0 || join_out > 0) {
    out += "join actuals: build rows=" + std::to_string(join_build) +
           ", probe rows=" + std::to_string(join_probe) +
           ", output rows=" + std::to_string(join_out) + "\n";
  }
  return out;
}

}  // namespace rumble::jsoniq
