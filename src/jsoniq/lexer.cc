#include "src/jsoniq/lexer.h"

#include <cctype>

#include "src/common/error.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;

class Lexer {
 public:
  explicit Lexer(std::string_view query) : text_(query) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token = NextToken();
      bool done = token.kind == TokenKind::kEof;
      tokens.push_back(std::move(token));
      if (done) return tokens;
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& message) {
    common::ThrowError(ErrorCode::kStaticSyntax,
                       message + " at line " + std::to_string(line_) +
                           ", column " + std::to_string(column_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
        continue;
      }
      if (c == '(' && Peek(1) == ':') {
        Advance();
        Advance();
        int depth = 1;
        while (depth > 0) {
          if (AtEnd()) Fail("unterminated comment");
          if (Peek() == '(' && Peek(1) == ':') {
            Advance();
            Advance();
            ++depth;
          } else if (Peek() == ':' && Peek(1) == ')') {
            Advance();
            Advance();
            --depth;
          } else {
            Advance();
          }
        }
        continue;
      }
      return;
    }
  }

  Token Make(TokenKind kind, std::string text = {}) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = token_line_;
    token.column = token_column_;
    return token;
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  Token NextToken() {
    token_line_ = line_;
    token_column_ = column_;
    if (AtEnd()) return Make(TokenKind::kEof);
    char c = Advance();
    switch (c) {
      case '(': return Make(TokenKind::kLParen);
      case ')': return Make(TokenKind::kRParen);
      case '{': return Make(TokenKind::kLBrace);
      case '}': return Make(TokenKind::kRBrace);
      case '[':
        if (Peek() == '[') {
          Advance();
          return Make(TokenKind::kDoubleLBracket);
        }
        return Make(TokenKind::kLBracket);
      case ']':
        if (Peek() == ']') {
          Advance();
          return Make(TokenKind::kDoubleRBracket);
        }
        return Make(TokenKind::kRBracket);
      case ',': return Make(TokenKind::kComma);
      case ';': return Make(TokenKind::kSemicolon);
      case '?': return Make(TokenKind::kQuestion);
      case ':':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kAssign);
        }
        return Make(TokenKind::kColon);
      case '.':
        if (std::isdigit(static_cast<unsigned char>(Peek()))) {
          return LexNumber(c);
        }
        return Make(TokenKind::kDot);
      case '+': return Make(TokenKind::kPlus);
      case '-': return Make(TokenKind::kMinus);
      case '*': return Make(TokenKind::kStar);
      case '/': return Make(TokenKind::kSlash);
      case '=': return Make(TokenKind::kEq);
      case '!':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kNe);
        }
        return Make(TokenKind::kBang);
      case '<':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kLe);
        }
        return Make(TokenKind::kLt);
      case '>':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kGe);
        }
        return Make(TokenKind::kGt);
      case '|':
        if (Peek() == '|') {
          Advance();
          return Make(TokenKind::kConcat);
        }
        Fail("unexpected '|'");
      case '$':
        if (Peek() == '$') {
          Advance();
          return Make(TokenKind::kContextItem);
        }
        return LexVariable();
      case '"':
      case '\'':
        return LexString(c);
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          return LexNumber(c);
        }
        if (IsNameStart(c)) {
          return LexName(c);
        }
        Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token LexVariable() {
    if (AtEnd() || !IsNameStart(Peek())) {
      Fail("expected variable name after '$'");
    }
    std::string name;
    name.push_back(Advance());
    while (!AtEnd()) {
      char c = Peek();
      if (IsNameChar(c)) {
        name.push_back(Advance());
      } else if (c == '-' && IsNameStart(Peek(1))) {
        name.push_back(Advance());
        name.push_back(Advance());
      } else {
        break;
      }
    }
    return Make(TokenKind::kVariable, std::move(name));
  }

  Token LexName(char first) {
    std::string name;
    name.push_back(first);
    while (!AtEnd()) {
      char c = Peek();
      if (IsNameChar(c)) {
        name.push_back(Advance());
      } else if (c == '-' && IsNameStart(Peek(1))) {
        // Hyphenated names (json-file, distinct-values). Binary minus before
        // a letter needs surrounding whitespace, as in XQuery; a digit after
        // '-' always lexes as subtraction.
        name.push_back(Advance());
        name.push_back(Advance());
      } else {
        break;
      }
    }
    return Make(TokenKind::kName, std::move(name));
  }

  Token LexString(char quote) {
    std::string value;
    while (true) {
      if (AtEnd()) Fail("unterminated string literal");
      char c = Advance();
      if (c == quote) break;
      if (c != '\\') {
        value.push_back(c);
        continue;
      }
      if (AtEnd()) Fail("unterminated escape sequence");
      char esc = Advance();
      switch (esc) {
        case '"': value.push_back('"'); break;
        case '\'': value.push_back('\''); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd()) Fail("truncated \\u escape");
            char h = Advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (BMP only in string literals; surrogate pairs
          // in queries are rare enough to reject).
          if (code < 0x80) {
            value.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.push_back(static_cast<char>(0xE0 | (code >> 12)));
            value.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: Fail("invalid escape sequence");
      }
    }
    return Make(TokenKind::kString, std::move(value));
  }

  Token LexNumber(char first) {
    std::string number;
    number.push_back(first);
    bool has_dot = first == '.';
    bool has_exp = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number.push_back(Advance());
      } else if (c == '.' && !has_dot && !has_exp) {
        has_dot = true;
        number.push_back(Advance());
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        number.push_back(Advance());
        if (Peek() == '+' || Peek() == '-') {
          number.push_back(Advance());
        }
      } else {
        break;
      }
    }
    TokenKind kind = has_exp ? TokenKind::kDouble
                             : (has_dot ? TokenKind::kDecimal
                                        : TokenKind::kInteger);
    return Make(kind, std::move(number));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view query) {
  return Lexer(query).Run();
}

}  // namespace rumble::jsoniq
