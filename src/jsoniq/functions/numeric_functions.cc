#include <cmath>
#include <utility>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/functions/function_library.h"
#include "src/jsoniq/sequence_type.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;
using item::ItemType;

ItemPtr RequireNumeric(const ItemSequence& seq, const char* what,
                       bool* is_empty) {
  *is_empty = seq.empty();
  if (seq.empty()) return nullptr;
  if (seq.size() > 1 || !seq.front()->IsNumeric()) {
    common::ThrowError(ErrorCode::kInvalidArgument,
                       std::string(what) + ": expected a single number");
  }
  return seq.front();
}

/// Rebuilds a numeric item of the same kind as `like` from a double value.
ItemPtr SameKind(const item::Item& like, double value) {
  switch (like.type()) {
    case ItemType::kInteger:
      return item::MakeInteger(static_cast<std::int64_t>(value));
    case ItemType::kDecimal: return item::MakeDecimal(value);
    default: return item::MakeDouble(value);
  }
}

}  // namespace

void RegisterNumericFunctions(FunctionLibrary* library) {
  library->Register(
      "abs", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        bool empty = false;
        ItemPtr value = RequireNumeric(args[0], "abs", &empty);
        if (empty) return ItemSequence{};
        if (value->IsInteger()) {
          std::int64_t v = value->IntegerValue();
          return ItemSequence{item::MakeInteger(v < 0 ? -v : v)};
        }
        return ItemSequence{SameKind(*value, std::fabs(value->NumericValue()))};
      }));

  library->Register(
      "ceiling", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        bool empty = false;
        ItemPtr value = RequireNumeric(args[0], "ceiling", &empty);
        if (empty) return ItemSequence{};
        if (value->IsInteger()) return ItemSequence{value};
        return ItemSequence{SameKind(*value, std::ceil(value->NumericValue()))};
      }));

  library->Register(
      "floor", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        bool empty = false;
        ItemPtr value = RequireNumeric(args[0], "floor", &empty);
        if (empty) return ItemSequence{};
        if (value->IsInteger()) return ItemSequence{value};
        return ItemSequence{
            SameKind(*value, std::floor(value->NumericValue()))};
      }));

  auto round = [](auto& args, const DynamicContext&, const EngineContext&) {
    bool empty = false;
    ItemPtr value = RequireNumeric(args[0], "round", &empty);
    if (empty) return ItemSequence{};
    int precision = 0;
    if (args.size() > 1 && !args[1].empty()) {
      if (!args[1].front()->IsNumeric()) {
        common::ThrowError(ErrorCode::kInvalidArgument,
                           "round: precision must be a number");
      }
      precision = static_cast<int>(args[1].front()->NumericValue());
    }
    if (value->IsInteger() && precision >= 0) return ItemSequence{value};
    double scale = std::pow(10.0, precision);
    // round-half-up, as XPath fn:round specifies.
    double rounded = std::floor(value->NumericValue() * scale + 0.5) / scale;
    return ItemSequence{SameKind(*value, rounded)};
  };
  library->Register("round", 1, MakeSimpleFunction(round));
  library->Register("round", 2, MakeSimpleFunction(round));

  library->Register(
      "number", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        // fn:number never errors: uncastable values become NaN.
        if (args[0].size() != 1) {
          return ItemSequence{item::MakeDouble(std::nan(""))};
        }
        try {
          return ItemSequence{CastAtomic(args[0].front(), TypeName::kDouble)};
        } catch (const common::RumbleException&) {
          return ItemSequence{item::MakeDouble(std::nan(""))};
        }
      }));

  library->Register(
      "integer", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].empty()) return ItemSequence{};
        if (args[0].size() > 1) {
          common::ThrowError(ErrorCode::kInvalidArgument,
                             "integer: expected at most one item");
        }
        return ItemSequence{CastAtomic(args[0].front(), TypeName::kInteger)};
      }));

  library->Register(
      "sqrt", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        bool empty = false;
        ItemPtr value = RequireNumeric(args[0], "sqrt", &empty);
        if (empty) return ItemSequence{};
        return ItemSequence{
            item::MakeDouble(std::sqrt(value->NumericValue()))};
      }));

  library->Register(
      "pow", 2, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        bool empty = false;
        ItemPtr base = RequireNumeric(args[0], "pow", &empty);
        if (empty) return ItemSequence{};
        ItemPtr exponent = RequireNumeric(args[1], "pow", &empty);
        if (empty) return ItemSequence{};
        return ItemSequence{item::MakeDouble(
            std::pow(base->NumericValue(), exponent->NumericValue()))};
      }));
}

}  // namespace rumble::jsoniq
