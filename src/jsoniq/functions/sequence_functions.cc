#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/functions/function_library.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// Aggregate functions push a Spark action down to the child RDD when the
/// argument is distributed (Section 4.1.2: "the count() function can be
/// implemented with a count action"); otherwise they fold locally.
class AggregateIterator final : public CloneableIterator<AggregateIterator> {
 public:
  AggregateIterator(EngineContextPtr engine, AggKind kind,
                    RuntimeIteratorPtr argument)
      : CloneableIterator(std::move(engine), {std::move(argument)}),
        kind_(kind) {}

  const char* Name() const override {
    switch (kind_) {
      case AggKind::kCount: return "fn:count";
      case AggKind::kSum: return "fn:sum";
      case AggKind::kAvg: return "fn:avg";
      case AggKind::kMin: return "fn:min";
      case AggKind::kMax: return "fn:max";
    }
    return "aggregate";
  }

 protected:
  item::ItemSequence Compute(const DynamicContext& context) override {
    if (children_[0]->IsRddAble()) {
      return ComputeDistributed(context);
    }
    ItemSequence values = children_[0]->MaterializeAll(context);
    return Fold(values);
  }

 private:
  struct SumState {
    double sum = 0;
    std::int64_t int_sum = 0;
    bool all_integers = true;
    bool any_double = false;
    std::int64_t count = 0;
  };

  static SumState Accumulate(SumState state, const ItemPtr& value) {
    if (!value->IsNumeric()) {
      common::ThrowError(ErrorCode::kInvalidArgument,
                         "sum/avg over a non-numeric item: " +
                             value->Serialize());
    }
    state.sum += value->NumericValue();
    if (value->IsInteger()) {
      state.int_sum += value->IntegerValue();
    } else {
      state.all_integers = false;
      if (value->type() == item::ItemType::kDouble) state.any_double = true;
    }
    ++state.count;
    return state;
  }

  static SumState MergeSum(SumState left, const SumState& right) {
    left.sum += right.sum;
    left.int_sum += right.int_sum;
    left.all_integers = left.all_integers && right.all_integers;
    left.any_double = left.any_double || right.any_double;
    left.count += right.count;
    return left;
  }

  static ItemPtr SumItem(const SumState& state) {
    if (state.all_integers) return item::MakeInteger(state.int_sum);
    if (state.any_double) return item::MakeDouble(state.sum);
    return item::MakeDecimal(state.sum);
  }

  static ItemPtr Extreme(const ItemPtr& left, const ItemPtr& right,
                         bool want_max) {
    if (left == nullptr) return right;
    if (right == nullptr) return left;
    int cmp = item::CompareAtomics(*left, *right);
    return (want_max ? cmp >= 0 : cmp <= 0) ? left : right;
  }

  ItemSequence Fold(const ItemSequence& values) {
    switch (kind_) {
      case AggKind::kCount:
        return {item::MakeInteger(static_cast<std::int64_t>(values.size()))};
      case AggKind::kSum: {
        SumState state;
        for (const auto& value : values) {
          state = Accumulate(std::move(state), value);
        }
        return {SumItem(state)};
      }
      case AggKind::kAvg: {
        if (values.empty()) return {};
        SumState state;
        for (const auto& value : values) {
          state = Accumulate(std::move(state), value);
        }
        return {item::MakeDecimal(state.sum /
                                  static_cast<double>(state.count))};
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (values.empty()) return {};
        ItemPtr best;
        for (const auto& value : values) {
          best = Extreme(best, value, kind_ == AggKind::kMax);
        }
        return {best};
      }
    }
    common::ThrowError(ErrorCode::kInternal, "unknown aggregate kind");
  }

  ItemSequence ComputeDistributed(const DynamicContext& context) {
    spark::Rdd<ItemPtr> rdd = children_[0]->GetRdd(context);
    switch (kind_) {
      case AggKind::kCount:
        return {item::MakeInteger(static_cast<std::int64_t>(rdd.Count()))};
      case AggKind::kSum: {
        SumState state = rdd.Aggregate(
            SumState{},
            [](SumState acc, const ItemPtr& value) {
              return Accumulate(std::move(acc), value);
            },
            &MergeSum);
        return {SumItem(state)};
      }
      case AggKind::kAvg: {
        // sum and count in one pass.
        SumState state = rdd.Aggregate(
            SumState{},
            [](SumState acc, const ItemPtr& value) {
              return Accumulate(std::move(acc), value);
            },
            &MergeSum);
        if (state.count == 0) return {};
        return {item::MakeDecimal(state.sum /
                                  static_cast<double>(state.count))};
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        bool want_max = kind_ == AggKind::kMax;
        auto pick = [want_max](ItemPtr acc, const ItemPtr& value) {
          return Extreme(acc, value, want_max);
        };
        ItemPtr best = rdd.Aggregate(ItemPtr{}, pick, pick);
        if (best == nullptr) return {};
        return {best};
      }
    }
    common::ThrowError(ErrorCode::kInternal, "unknown aggregate kind");
  }

  AggKind kind_;
};

ItemPtr RequireSingle(const ItemSequence& seq, const char* what) {
  if (seq.size() != 1) {
    common::ThrowError(ErrorCode::kInvalidArgument,
                       std::string(what) + ": expected exactly one item");
  }
  return seq.front();
}

std::int64_t RequireInteger(const ItemSequence& seq, const char* what) {
  ItemPtr value = RequireSingle(seq, what);
  if (value->IsInteger()) return value->IntegerValue();
  if (value->IsNumeric()) {
    return static_cast<std::int64_t>(value->NumericValue());
  }
  common::ThrowError(ErrorCode::kInvalidArgument,
                     std::string(what) + ": expected a number");
}

void RegisterAggregate(FunctionLibrary* library, const std::string& name,
                       AggKind kind) {
  library->Register(
      name, 1,
      [kind](EngineContextPtr engine,
             std::vector<RuntimeIteratorPtr> args) -> RuntimeIteratorPtr {
        return std::make_shared<AggregateIterator>(std::move(engine), kind,
                                                   std::move(args[0]));
      });
}

}  // namespace

void RegisterSequenceFunctions(FunctionLibrary* library) {
  RegisterAggregate(library, "count", AggKind::kCount);
  RegisterAggregate(library, "sum", AggKind::kSum);
  RegisterAggregate(library, "avg", AggKind::kAvg);
  RegisterAggregate(library, "min", AggKind::kMin);
  RegisterAggregate(library, "max", AggKind::kMax);

  library->Register(
      "empty", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        return ItemSequence{item::MakeBoolean(args[0].empty())};
      }));

  library->Register(
      "exists", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        return ItemSequence{item::MakeBoolean(!args[0].empty())};
      }));

  library->Register(
      "head", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].empty()) return ItemSequence{};
        return ItemSequence{args[0].front()};
      }));

  library->Register(
      "tail", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].size() <= 1) return ItemSequence{};
        return ItemSequence(args[0].begin() + 1, args[0].end());
      }));

  library->Register(
      "reverse", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        ItemSequence out = std::move(args[0]);
        std::reverse(out.begin(), out.end());
        return out;
      }));

  library->Register(
      "insert-before", 3,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::int64_t position = RequireInteger(args[1], "insert-before");
        if (position < 1) position = 1;
        auto at = std::min<std::size_t>(static_cast<std::size_t>(position - 1),
                                        args[0].size());
        ItemSequence out = std::move(args[0]);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   args[2].begin(), args[2].end());
        return out;
      }));

  library->Register(
      "remove", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::int64_t position = RequireInteger(args[1], "remove");
        ItemSequence out = std::move(args[0]);
        if (position >= 1 &&
            static_cast<std::size_t>(position) <= out.size()) {
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(position - 1));
        }
        return out;
      }));

  auto subsequence = [](auto& args, const DynamicContext&,
                        const EngineContext&) {
    ItemSequence& input = args[0];
    double start = 1;
    if (!args[1].empty()) {
      start = RequireSingle(args[1], "subsequence")->NumericValue();
    }
    double length = static_cast<double>(input.size()) + 1 - start;
    if (args.size() > 2 && !args[2].empty()) {
      length = RequireSingle(args[2], "subsequence")->NumericValue();
    }
    ItemSequence out;
    for (std::size_t i = 0; i < input.size(); ++i) {
      double position = static_cast<double>(i) + 1;
      if (position >= start && position < start + length) {
        out.push_back(input[i]);
      }
    }
    return out;
  };
  library->Register("subsequence", 2, MakeSimpleFunction(subsequence));
  library->Register("subsequence", 3, MakeSimpleFunction(subsequence));

  library->Register(
      "distinct-values", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        // Hash-bucketed dedup (AtomicHash is consistent with AtomicEquals),
        // keeping first-appearance order.
        ItemSequence out;
        std::unordered_multimap<std::size_t, std::size_t> by_hash;
        for (const auto& value : args[0]) {
          if (!value->IsAtomic()) {
            common::ThrowError(ErrorCode::kInvalidArgument,
                               "distinct-values requires atomic items");
          }
          std::size_t h = item::AtomicHash(*value);
          bool seen = false;
          auto [begin, end] = by_hash.equal_range(h);
          for (auto it = begin; it != end; ++it) {
            if (item::AtomicEquals(*out[it->second], *value)) {
              seen = true;
              break;
            }
          }
          if (!seen) {
            by_hash.emplace(h, out.size());
            out.push_back(value);
          }
        }
        return out;
      }));

  library->Register(
      "boolean", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        return ItemSequence{
            item::MakeBoolean(item::EffectiveBooleanValue(args[0]))};
      }));

  library->Register(
      "not", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        return ItemSequence{
            item::MakeBoolean(!item::EffectiveBooleanValue(args[0]))};
      }));

  library->Register(
      "deep-equal", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].size() != args[1].size()) {
          return ItemSequence{item::MakeBoolean(false)};
        }
        for (std::size_t i = 0; i < args[0].size(); ++i) {
          if (!item::DeepEquals(*args[0][i], *args[1][i])) {
            return ItemSequence{item::MakeBoolean(false)};
          }
        }
        return ItemSequence{item::MakeBoolean(true)};
      }));

  library->Register(
      "position", 0,
      MakeSimpleFunction([](auto&, const DynamicContext& context,
                            const auto&) {
        if (context.context_item() == nullptr) {
          common::ThrowError(ErrorCode::kAbsentContextItem,
                             "position() outside of a predicate");
        }
        return ItemSequence{item::MakeInteger(context.context_position())};
      }));

  library->Register(
      "last", 0,
      MakeSimpleFunction([](auto&, const DynamicContext& context,
                            const auto&) {
        if (context.context_item() == nullptr) {
          common::ThrowError(ErrorCode::kAbsentContextItem,
                             "last() outside of a predicate");
        }
        return ItemSequence{item::MakeInteger(context.context_size())};
      }));

  // index-of($seq, $search): 1-based positions where $search occurs.
  library->Register(
      "index-of", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        ItemPtr search = RequireSingle(args[1], "index-of");
        if (!search->IsAtomic()) {
          common::ThrowError(ErrorCode::kInvalidArgument,
                             "index-of: the search value must be atomic");
        }
        ItemSequence out;
        for (std::size_t i = 0; i < args[0].size(); ++i) {
          if (args[0][i]->IsAtomic() &&
              item::AtomicEquals(*args[0][i], *search)) {
            out.push_back(item::MakeInteger(static_cast<std::int64_t>(i + 1)));
          }
        }
        return out;
      }));

  // Cardinality assertions from the XPath function library.
  library->Register(
      "exactly-one", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].size() != 1) {
          common::ThrowError(ErrorCode::kCardinalityError,
                             "exactly-one: sequence has " +
                                 std::to_string(args[0].size()) + " items");
        }
        return std::move(args[0]);
      }));

  library->Register(
      "zero-or-one", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].size() > 1) {
          common::ThrowError(ErrorCode::kCardinalityError,
                             "zero-or-one: sequence has " +
                                 std::to_string(args[0].size()) + " items");
        }
        return std::move(args[0]);
      }));

  library->Register(
      "one-or-more", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].empty()) {
          common::ThrowError(ErrorCode::kCardinalityError,
                             "one-or-more: sequence is empty");
        }
        return std::move(args[0]);
      }));

  auto error_fn = [](auto& args, const DynamicContext&,
                     const EngineContext&) -> ItemSequence {
    std::string message = "fn:error() called";
    if (!args.empty() && !args[0].empty() && args[0].front()->IsString()) {
      message = args[0].front()->StringValue();
    }
    common::ThrowError(ErrorCode::kUserError, message);
  };
  library->Register("error", 0, MakeSimpleFunction(error_fn));
  library->Register("error", 1, MakeSimpleFunction(error_fn));
}

}  // namespace rumble::jsoniq
