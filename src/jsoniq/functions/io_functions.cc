#include <utility>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/json/dom.h"
#include "src/json/item_parser.h"
#include "src/jsoniq/functions/function_library.h"
#include "src/storage/dfs.h"
#include "src/storage/text_source.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

/// Parses one JSON Lines record into an item, honouring the configured
/// parser strategy: streaming (build items directly, the JSONiter design of
/// Section 5.7) or DOM-first (the slower two-representation path kept for
/// the parser ablation and the Xidel baseline).
ItemPtr ParseRecord(const std::string& line, std::size_t line_number,
                    bool streaming, json::StringPool* pool) {
  if (streaming) {
    return json::ParseLine(line, line_number, pool);
  }
  return json::DomToItem(*json::ParseDom(line));
}

/// How many malformed lines get their text sampled into the event log in
/// permissive mode; beyond this only the counter grows.
constexpr std::int64_t kMalformedSampleCap = 8;

/// Permissive-mode parse (RumbleConfig::skip_malformed_lines): a malformed
/// JSON line returns nullptr — counted in json.malformed_lines, the first
/// few sampled into the event log — instead of aborting the query. The
/// paper's "messy data" story: one bad line must not kill a billion-line
/// job. Only kJsonParseError is absorbed; every other error (type errors,
/// memory caps) still propagates.
ItemPtr ParseRecordPermissive(const std::string& line,
                              std::size_t line_number, bool streaming,
                              bool skip_malformed, obs::EventBus* bus,
                              json::StringPool* pool) {
  if (!skip_malformed) return ParseRecord(line, line_number, streaming, pool);
  try {
    return ParseRecord(line, line_number, streaming, pool);
  } catch (const common::RumbleException& e) {
    if (e.code() != ErrorCode::kJsonParseError || bus == nullptr) throw;
    if (bus->CounterValue("json.malformed_lines") < kMalformedSampleCap) {
      bus->MalformedLine(static_cast<std::int64_t>(line_number), line);
    }
    bus->AddToCounter("json.malformed_lines", 1);
    return nullptr;
  }
}

/// json-file("path"[, $partitions]) — the paper's primary input function
/// (Section 5.7). Logically a sequence of JSON objects read from a JSON
/// Lines dataset; physically an RDD built from text splits with a
/// mapPartitions parse, or a local streaming read when Spark execution is
/// disabled.
class JsonFileIterator final : public CloneableIterator<JsonFileIterator> {
 public:
  JsonFileIterator(EngineContextPtr engine,
                   std::vector<RuntimeIteratorPtr> args)
      : CloneableIterator(std::move(engine), std::move(args)) {}

  const char* Name() const override { return "json-file"; }

  bool IsRddAble() const override { return engine_->ParallelEnabled(); }

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    auto [path, partitions] = EvaluateArgs(context);
    bool streaming = engine_->config.streaming_parser;
    bool skip_malformed = engine_->config.skip_malformed_lines;
    obs::EventBus* bus = engine_->bus();
    spark::Rdd<std::string> lines =
        engine_->spark->TextFile(path, partitions);
    return lines.MapPartitions(
        [streaming, skip_malformed, bus](std::vector<std::string>&& part) {
          ItemSequence items;
          items.reserve(part.size());
          // One interning pool per parse task: repeated values across the
          // partition's records share one item each.
          json::StringPool pool;
          std::size_t line_number = 0;
          for (const auto& line : part) {
            ItemPtr item = ParseRecordPermissive(line, ++line_number,
                                                 streaming, skip_malformed,
                                                 bus, &pool);
            if (item != nullptr) items.push_back(std::move(item));
          }
          return items;
        });
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    auto [path, partitions] = EvaluateArgs(context);
    bool streaming = engine_->config.streaming_parser;
    bool skip_malformed = engine_->config.skip_malformed_lines;
    obs::EventBus* bus = engine_->bus();
    ItemSequence items;
    json::StringPool pool;
    std::size_t line_number = 0;
    for (const auto& split :
         storage::TextSource::PlanSplits(path, partitions)) {
      for (const auto& line : storage::TextSource::ReadSplit(split)) {
        ItemPtr item = ParseRecordPermissive(line, ++line_number, streaming,
                                             skip_malformed, bus, &pool);
        if (item == nullptr) continue;
        if (engine_->memory != nullptr &&
            engine_->config.charge_parse_to_budget) {
          engine_->memory->Allocate(item->FootprintBytes());
        }
        items.push_back(std::move(item));
      }
    }
    return items;
  }

 private:
  std::pair<std::string, int> EvaluateArgs(const DynamicContext& context) {
    ItemPtr path = children_[0]->MaterializeAtMostOne(context, "json-file");
    if (path == nullptr || !path->IsString()) {
      common::ThrowError(ErrorCode::kInvalidArgument,
                         "json-file: the path must be a single string");
    }
    int partitions = engine_->config.default_partitions;
    if (children_.size() > 1) {
      ItemPtr count =
          children_[1]->MaterializeAtMostOne(context, "json-file");
      if (count == nullptr || !count->IsNumeric()) {
        common::ThrowError(ErrorCode::kInvalidArgument,
                           "json-file: the partition count must be a number");
      }
      partitions = static_cast<int>(count->NumericValue());
    }
    return {path->StringValue(), partitions};
  }
};

/// parallelize($items[, $partitions]) — the JSONiq wrapper for Spark's
/// parallelize (Section 5.7): materializes the argument locally and creates
/// an RDD from it, so downstream FLWOR expressions take the distributed
/// path.
class ParallelizeIterator final
    : public CloneableIterator<ParallelizeIterator> {
 public:
  ParallelizeIterator(EngineContextPtr engine,
                      std::vector<RuntimeIteratorPtr> args)
      : CloneableIterator(std::move(engine), std::move(args)) {}

  const char* Name() const override { return "parallelize"; }

  bool IsRddAble() const override { return engine_->ParallelEnabled(); }

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    ItemSequence items = children_[0]->MaterializeAll(context);
    int partitions = engine_->config.default_partitions;
    if (children_.size() > 1) {
      ItemPtr count =
          children_[1]->MaterializeAtMostOne(context, "parallelize");
      if (count == nullptr || !count->IsNumeric()) {
        common::ThrowError(
            ErrorCode::kInvalidArgument,
            "parallelize: the partition count must be a number");
      }
      partitions = static_cast<int>(count->NumericValue());
    }
    return engine_->spark->Parallelize(std::move(items), partitions);
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    return children_[0]->MaterializeAll(context);
  }
};

/// text-file("path"[, $partitions]) — each line of a text dataset becomes a
/// string item; the textual sibling of json-file for log-style inputs.
class TextFileIterator final : public CloneableIterator<TextFileIterator> {
 public:
  TextFileIterator(EngineContextPtr engine,
                   std::vector<RuntimeIteratorPtr> args)
      : CloneableIterator(std::move(engine), std::move(args)) {}

  const char* Name() const override { return "text-file"; }

  bool IsRddAble() const override { return engine_->ParallelEnabled(); }

  spark::Rdd<ItemPtr> GetRdd(const DynamicContext& context) override {
    auto [path, partitions] = EvaluateArgs(context);
    return engine_->spark->TextFile(path, partitions)
        .Map([](const std::string& line) -> ItemPtr {
          return item::MakeString(line);
        });
  }

 protected:
  ItemSequence Compute(const DynamicContext& context) override {
    auto [path, partitions] = EvaluateArgs(context);
    ItemSequence items;
    for (const auto& split :
         storage::TextSource::PlanSplits(path, partitions)) {
      for (auto& line : storage::TextSource::ReadSplit(split)) {
        items.push_back(item::MakeString(std::move(line)));
      }
    }
    return items;
  }

 private:
  std::pair<std::string, int> EvaluateArgs(const DynamicContext& context) {
    ItemPtr path = children_[0]->MaterializeAtMostOne(context, "text-file");
    if (path == nullptr || !path->IsString()) {
      common::ThrowError(ErrorCode::kInvalidArgument,
                         "text-file: the path must be a single string");
    }
    int partitions = engine_->config.default_partitions;
    if (children_.size() > 1) {
      ItemPtr count =
          children_[1]->MaterializeAtMostOne(context, "text-file");
      if (count == nullptr || !count->IsNumeric()) {
        common::ThrowError(ErrorCode::kInvalidArgument,
                           "text-file: the partition count must be a number");
      }
      partitions = static_cast<int>(count->NumericValue());
    }
    return {path->StringValue(), partitions};
  }
};

}  // namespace

void RegisterIoFunctions(FunctionLibrary* library) {
  auto text_file = [](EngineContextPtr engine,
                      std::vector<RuntimeIteratorPtr> args)
      -> RuntimeIteratorPtr {
    return std::make_shared<TextFileIterator>(std::move(engine),
                                              std::move(args));
  };
  library->Register("text-file", 1, text_file);
  library->Register("text-file", 2, text_file);

  auto json_file = [](EngineContextPtr engine,
                      std::vector<RuntimeIteratorPtr> args)
      -> RuntimeIteratorPtr {
    return std::make_shared<JsonFileIterator>(std::move(engine),
                                              std::move(args));
  };
  library->Register("json-file", 1, json_file);
  library->Register("json-file", 2, json_file);
  // json-lines is the modern RumbleDB alias.
  library->Register("json-lines", 1, json_file);
  library->Register("json-lines", 2, json_file);

  auto parallelize = [](EngineContextPtr engine,
                        std::vector<RuntimeIteratorPtr> args)
      -> RuntimeIteratorPtr {
    return std::make_shared<ParallelizeIterator>(std::move(engine),
                                                 std::move(args));
  };
  library->Register("parallelize", 1, parallelize);
  library->Register("parallelize", 2, parallelize);

  // json-doc("path"): parses one whole file as a single JSON document.
  library->Register(
      "json-doc", 1,
      MakeSimpleFunction([](auto& args, const DynamicContext&,
                            const EngineContext& engine) {
        if (args[0].size() != 1 || !args[0].front()->IsString()) {
          common::ThrowError(ErrorCode::kInvalidArgument,
                             "json-doc: the path must be a single string");
        }
        std::string content =
            storage::Dfs::ReadFile(args[0].front()->StringValue());
        if (engine.config.streaming_parser) {
          return ItemSequence{json::ParseItem(content)};
        }
        return ItemSequence{json::DomToItem(*json::ParseDom(content))};
      }));

  // parse-json("text"): parses a JSON string into an item.
  library->Register(
      "parse-json", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].size() != 1 || !args[0].front()->IsString()) {
          common::ThrowError(ErrorCode::kInvalidArgument,
                             "parse-json: expected a single string");
        }
        return ItemSequence{json::ParseItem(args[0].front()->StringValue())};
      }));
}

}  // namespace rumble::jsoniq
