#include <regex>
#include <utility>

#include "src/common/error.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/functions/function_library.h"
#include "src/util/strings.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

/// String value of a zero-or-one argument: () and null become "" (the
/// XPath/JSONiq string() coercion used throughout this family); other
/// atomics stringify canonically.
std::string StringArg(const ItemSequence& seq, const char* what) {
  if (seq.empty()) return "";
  if (seq.size() > 1) {
    common::ThrowError(ErrorCode::kInvalidArgument,
                       std::string(what) + ": expected at most one item");
  }
  const item::Item& value = *seq.front();
  if (value.IsString()) return value.StringValue();
  if (value.IsNull()) return "";
  if (value.IsAtomic()) return value.Serialize();
  common::ThrowError(ErrorCode::kInvalidArgument,
                     std::string(what) + ": expected an atomic value");
}

std::regex CompileRegex(const std::string& pattern, const char* what) {
  try {
    return std::regex(pattern, std::regex::ECMAScript);
  } catch (const std::regex_error&) {
    common::ThrowError(ErrorCode::kRegexError,
                       std::string(what) + ": invalid pattern '" + pattern +
                           "'");
  }
}

}  // namespace

void RegisterStringFunctions(FunctionLibrary* library) {
  library->Register(
      "string", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].empty()) return ItemSequence{};
        return ItemSequence{item::MakeString(StringArg(args[0], "string"))};
      }));

  // concat is variadic: concat("a", 1, (), "b").
  library->Register(
      "concat", -1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string out;
        for (const auto& arg : args) {
          out += StringArg(arg, "concat");
        }
        return ItemSequence{item::MakeString(std::move(out))};
      }));

  auto string_join = [](auto& args, const DynamicContext&,
                        const EngineContext&) {
    std::string sep =
        args.size() > 1 ? StringArg(args[1], "string-join") : "";
    std::string out;
    for (std::size_t i = 0; i < args[0].size(); ++i) {
      if (i > 0) out += sep;
      out += StringArg({args[0][i]}, "string-join");
    }
    return ItemSequence{item::MakeString(std::move(out))};
  };
  library->Register("string-join", 1, MakeSimpleFunction(string_join));
  library->Register("string-join", 2, MakeSimpleFunction(string_join));

  // string-length and substring count Unicode codepoints, not bytes, as
  // the W3C function library specifies.
  library->Register(
      "string-length", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        return ItemSequence{item::MakeInteger(static_cast<std::int64_t>(
            util::Utf8Length(StringArg(args[0], "string-length"))))};
      }));

  auto substring = [](auto& args, const DynamicContext&,
                      const EngineContext&) {
    std::string input = StringArg(args[0], "substring");
    if (args[1].empty() || !args[1].front()->IsNumeric()) {
      common::ThrowError(ErrorCode::kInvalidArgument,
                         "substring: start must be a number");
    }
    double start = args[1].front()->NumericValue();
    double length = static_cast<double>(input.size()) + 1.0 - start;
    if (args.size() > 2) {
      if (args[2].empty() || !args[2].front()->IsNumeric()) {
        common::ThrowError(ErrorCode::kInvalidArgument,
                           "substring: length must be a number");
      }
      length = args[2].front()->NumericValue();
    }
    return ItemSequence{
        item::MakeString(util::Utf8Substring(input, start, length))};
  };
  library->Register("substring", 2, MakeSimpleFunction(substring));
  library->Register("substring", 3, MakeSimpleFunction(substring));

  library->Register(
      "contains", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string haystack = StringArg(args[0], "contains");
        std::string needle = StringArg(args[1], "contains");
        return ItemSequence{item::MakeBoolean(
            needle.empty() || haystack.find(needle) != std::string::npos)};
      }));

  library->Register(
      "starts-with", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "starts-with");
        std::string prefix = StringArg(args[1], "starts-with");
        return ItemSequence{
            item::MakeBoolean(text.rfind(prefix, 0) == 0)};
      }));

  library->Register(
      "ends-with", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "ends-with");
        std::string suffix = StringArg(args[1], "ends-with");
        return ItemSequence{item::MakeBoolean(
            text.size() >= suffix.size() &&
            text.compare(text.size() - suffix.size(), suffix.size(),
                         suffix) == 0)};
      }));

  library->Register(
      "upper-case", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "upper-case");
        for (char& c : text) {
          c = static_cast<char>(
              std::toupper(static_cast<unsigned char>(c)));
        }
        return ItemSequence{item::MakeString(std::move(text))};
      }));

  library->Register(
      "lower-case", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "lower-case");
        for (char& c : text) {
          c = static_cast<char>(
              std::tolower(static_cast<unsigned char>(c)));
        }
        return ItemSequence{item::MakeString(std::move(text))};
      }));

  library->Register(
      "normalize-space", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "normalize-space");
        std::string out;
        bool in_space = true;
        for (char c : text) {
          bool space = c == ' ' || c == '\t' || c == '\n' || c == '\r';
          if (space) {
            if (!in_space) out.push_back(' ');
            in_space = true;
          } else {
            out.push_back(c);
            in_space = false;
          }
        }
        while (!out.empty() && out.back() == ' ') out.pop_back();
        return ItemSequence{item::MakeString(std::move(out))};
      }));

  library->Register(
      "tokenize", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "tokenize");
        std::regex pattern =
            CompileRegex(StringArg(args[1], "tokenize"), "tokenize");
        ItemSequence out;
        std::sregex_token_iterator it(text.begin(), text.end(), pattern, -1);
        std::sregex_token_iterator end;
        for (; it != end; ++it) {
          out.push_back(item::MakeString(*it));
        }
        return out;
      }));

  library->Register(
      "matches", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "matches");
        std::regex pattern =
            CompileRegex(StringArg(args[1], "matches"), "matches");
        return ItemSequence{
            item::MakeBoolean(std::regex_search(text, pattern))};
      }));

  library->Register(
      "replace", 3,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "replace");
        std::regex pattern =
            CompileRegex(StringArg(args[1], "replace"), "replace");
        std::string replacement = StringArg(args[2], "replace");
        return ItemSequence{item::MakeString(
            std::regex_replace(text, pattern, replacement))};
      }));

  library->Register(
      "substring-before", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "substring-before");
        std::string sep = StringArg(args[1], "substring-before");
        std::size_t at = sep.empty() ? std::string::npos : text.find(sep);
        return ItemSequence{item::MakeString(
            at == std::string::npos ? "" : text.substr(0, at))};
      }));

  library->Register(
      "substring-after", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "substring-after");
        std::string sep = StringArg(args[1], "substring-after");
        std::size_t at = sep.empty() ? std::string::npos : text.find(sep);
        return ItemSequence{item::MakeString(
            at == std::string::npos ? "" : text.substr(at + sep.size()))};
      }));

  library->Register(
      "translate", 3,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string text = StringArg(args[0], "translate");
        std::string from = StringArg(args[1], "translate");
        std::string to = StringArg(args[2], "translate");
        std::string out;
        out.reserve(text.size());
        for (char c : text) {
          std::size_t at = from.find(c);
          if (at == std::string::npos) {
            out.push_back(c);
          } else if (at < to.size()) {
            out.push_back(to[at]);
          }  // mapped past `to`: dropped, per fn:translate
        }
        return ItemSequence{item::MakeString(std::move(out))};
      }));

  library->Register(
      "serialize", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::string out;
        for (std::size_t i = 0; i < args[0].size(); ++i) {
          if (i > 0) out += ", ";
          args[0][i]->SerializeTo(&out);
        }
        return ItemSequence{item::MakeString(std::move(out))};
      }));
}

}  // namespace rumble::jsoniq
