#ifndef RUMBLE_JSONIQ_FUNCTIONS_FUNCTION_LIBRARY_H_
#define RUMBLE_JSONIQ_FUNCTIONS_FUNCTION_LIBRARY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/jsoniq/runtime/runtime_iterator.h"

namespace rumble::jsoniq {

/// Builds the runtime iterator for one call of a builtin function.
using FunctionFactory = std::function<RuntimeIteratorPtr(
    EngineContextPtr, std::vector<RuntimeIteratorPtr>)>;

/// Registry of builtin functions keyed by (name, arity); arity -1 entries
/// are variadic fallbacks (e.g. concat). Immutable after construction; the
/// global instance registers every family in its constructor.
class FunctionLibrary {
 public:
  static const FunctionLibrary& Global();

  void Register(const std::string& name, int arity, FunctionFactory factory);

  /// Exact-arity match first, then variadic; nullptr when absent.
  const FunctionFactory* Lookup(const std::string& name, int arity) const;

  /// True when any arity of this name exists (for error messages).
  bool HasName(const std::string& name) const;

  /// Sorted list of registered "name#arity" signatures (documentation and
  /// tests).
  std::vector<std::string> Signatures() const;

 private:
  std::map<std::pair<std::string, int>, FunctionFactory> factories_;
};

/// A builtin whose semantics need only the materialized argument sequences,
/// the dynamic context, and the engine. Covers most of the library.
using SimpleFunctionImpl = std::function<item::ItemSequence(
    std::vector<item::ItemSequence>& args, const DynamicContext& context,
    const EngineContext& engine)>;

/// Wraps a SimpleFunctionImpl as a FunctionFactory.
FunctionFactory MakeSimpleFunction(SimpleFunctionImpl impl);

// Per-family registration hooks (implemented in the sibling .cc files).
void RegisterSequenceFunctions(FunctionLibrary* library);
void RegisterStringFunctions(FunctionLibrary* library);
void RegisterNumericFunctions(FunctionLibrary* library);
void RegisterObjectFunctions(FunctionLibrary* library);
void RegisterIoFunctions(FunctionLibrary* library);

}  // namespace rumble::jsoniq

#endif  // RUMBLE_JSONIQ_FUNCTIONS_FUNCTION_LIBRARY_H_
