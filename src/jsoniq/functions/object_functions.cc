#include <utility>

#include "src/common/error.h"
#include "src/item/item_compare.h"
#include "src/item/item_factory.h"
#include "src/jsoniq/functions/function_library.h"

namespace rumble::jsoniq {

namespace {

using common::ErrorCode;
using item::ItemPtr;
using item::ItemSequence;

}  // namespace

void RegisterObjectFunctions(FunctionLibrary* library) {
  // keys($objects): distinct field names across all input objects, in first
  // appearance order.
  library->Register(
      "keys", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        ItemSequence out;
        std::vector<std::string> seen;
        for (const auto& object : args[0]) {
          if (!object->IsObject()) continue;
          for (const auto& key : object->Keys()) {
            bool duplicate = false;
            for (const auto& existing : seen) {
              if (existing == key) {
                duplicate = true;
                break;
              }
            }
            if (!duplicate) {
              seen.push_back(std::string(key));
              out.push_back(item::MakeString(std::string(key)));
            }
          }
        }
        return out;
      }));

  // values($objects): all field values of all input objects.
  library->Register(
      "values", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        ItemSequence out;
        for (const auto& object : args[0]) {
          if (!object->IsObject()) continue;
          for (const auto& key : object->Keys()) {
            out.push_back(object->ValueForKey(key));
          }
        }
        return out;
      }));

  // members($arrays): concatenated members of all input arrays.
  library->Register(
      "members", 1,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        ItemSequence out;
        for (const auto& array : args[0]) {
          if (!array->IsArray()) continue;
          const ItemSequence& members = array->Members();
          out.insert(out.end(), members.begin(), members.end());
        }
        return out;
      }));

  // size($array): the number of members; size(()) is ().
  library->Register(
      "size", 1, MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        if (args[0].empty()) return ItemSequence{};
        if (args[0].size() > 1 || !args[0].front()->IsArray()) {
          common::ThrowError(ErrorCode::kInvalidArgument,
                             "size: expected a single array");
        }
        return ItemSequence{item::MakeInteger(
            static_cast<std::int64_t>(args[0].front()->ArraySize()))};
      }));

  // project($objects, $keys): objects restricted to the given keys.
  library->Register(
      "project", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::vector<std::string> wanted;
        for (const auto& key : args[1]) {
          if (!key->IsString()) {
            common::ThrowError(ErrorCode::kInvalidArgument,
                               "project: keys must be strings");
          }
          wanted.push_back(key->StringValue());
        }
        ItemSequence out;
        for (const auto& object : args[0]) {
          if (!object->IsObject()) {
            out.push_back(object);
            continue;
          }
          std::vector<std::pair<std::string, ItemPtr>> fields;
          for (const auto& key : object->Keys()) {
            for (const auto& want : wanted) {
              if (key == want) {
                fields.emplace_back(key, object->ValueForKey(key));
                break;
              }
            }
          }
          out.push_back(item::MakeObject(std::move(fields)));
        }
        return out;
      }));

  // remove-keys($objects, $keys): objects without the given keys.
  library->Register(
      "remove-keys", 2,
      MakeSimpleFunction([](auto& args, const auto&, const auto&) {
        std::vector<std::string> banned;
        for (const auto& key : args[1]) {
          if (!key->IsString()) {
            common::ThrowError(ErrorCode::kInvalidArgument,
                               "remove-keys: keys must be strings");
          }
          banned.push_back(key->StringValue());
        }
        ItemSequence out;
        for (const auto& object : args[0]) {
          if (!object->IsObject()) {
            out.push_back(object);
            continue;
          }
          std::vector<std::pair<std::string, ItemPtr>> fields;
          for (const auto& key : object->Keys()) {
            bool drop = false;
            for (const auto& ban : banned) {
              if (key == ban) {
                drop = true;
                break;
              }
            }
            if (!drop) fields.emplace_back(key, object->ValueForKey(key));
          }
          out.push_back(item::MakeObject(std::move(fields)));
        }
        return out;
      }));

  // null(): the null item.
  library->Register(
      "null", 0, MakeSimpleFunction([](auto&, const auto&, const auto&) {
        return ItemSequence{item::MakeNull()};
      }));
}

}  // namespace rumble::jsoniq
