#include "src/jsoniq/functions/function_library.h"

namespace rumble::jsoniq {

namespace {

/// Iterator for SimpleFunctionImpl-based builtins: materializes all argument
/// sequences and delegates.
class SimpleFunctionIterator final
    : public CloneableIterator<SimpleFunctionIterator> {
 public:
  SimpleFunctionIterator(EngineContextPtr engine,
                         std::vector<RuntimeIteratorPtr> args,
                         SimpleFunctionImpl impl)
      : CloneableIterator(std::move(engine), std::move(args)),
        impl_(std::move(impl)) {}

  /// The builder attaches "fn:<name>" as the debug name; this is the
  /// fallback when it did not.
  const char* Name() const override { return "function-call"; }

 protected:
  item::ItemSequence Compute(const DynamicContext& context) override {
    std::vector<item::ItemSequence> args;
    args.reserve(children_.size());
    for (const auto& child : children_) {
      args.push_back(child->MaterializeAll(context));
    }
    return impl_(args, context, *engine_);
  }

 private:
  SimpleFunctionImpl impl_;
};

}  // namespace

const FunctionLibrary& FunctionLibrary::Global() {
  static const FunctionLibrary* kLibrary = [] {
    auto* library = new FunctionLibrary();
    RegisterSequenceFunctions(library);
    RegisterStringFunctions(library);
    RegisterNumericFunctions(library);
    RegisterObjectFunctions(library);
    RegisterIoFunctions(library);
    return library;
  }();
  return *kLibrary;
}

void FunctionLibrary::Register(const std::string& name, int arity,
                               FunctionFactory factory) {
  factories_[{name, arity}] = std::move(factory);
}

const FunctionFactory* FunctionLibrary::Lookup(const std::string& name,
                                               int arity) const {
  auto it = factories_.find({name, arity});
  if (it != factories_.end()) return &it->second;
  it = factories_.find({name, -1});
  if (it != factories_.end()) return &it->second;
  return nullptr;
}

bool FunctionLibrary::HasName(const std::string& name) const {
  auto it = factories_.lower_bound({name, -1});
  return it != factories_.end() && it->first.first == name;
}

std::vector<std::string> FunctionLibrary::Signatures() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) {
    out.push_back(key.first + "#" +
                  (key.second < 0 ? "N" : std::to_string(key.second)));
  }
  return out;
}

FunctionFactory MakeSimpleFunction(SimpleFunctionImpl impl) {
  return [impl](EngineContextPtr engine,
                std::vector<RuntimeIteratorPtr> args) -> RuntimeIteratorPtr {
    return std::make_shared<SimpleFunctionIterator>(std::move(engine),
                                                    std::move(args), impl);
  };
}

}  // namespace rumble::jsoniq
