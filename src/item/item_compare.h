#ifndef RUMBLE_ITEM_ITEM_COMPARE_H_
#define RUMBLE_ITEM_ITEM_COMPARE_H_

#include <cstddef>

#include "src/item/item.h"

namespace rumble::item {

/// Value equality across atomic items: numbers compare numerically across
/// integer/decimal/double, strings byte-wise, null equals only null. Used by
/// general comparison, distinct-values and group-by semantics. Comparing a
/// string with a number is simply `false` for equality (JSONiq group-by
/// tolerates mixed-type keys; Section 4.7).
bool AtomicEquals(const Item& left, const Item& right);

/// Three-way ordering for order-by (Section 4.8): null sorts below every
/// other atomic; booleans, strings and numbers are each internally ordered.
/// Comparing incompatible kinds (e.g. string vs number) raises
/// kIncompatibleSortKeys, as the JSONiq specification requires.
int CompareAtomics(const Item& left, const Item& right);

/// Hash consistent with AtomicEquals (numeric items hash by numeric value).
std::size_t AtomicHash(const Item& item);

/// Structural deep equality (objects: same key set with deep-equal values,
/// order-insensitive; arrays: same members in order; atomics: AtomicEquals).
bool DeepEquals(const Item& left, const Item& right);

/// Effective boolean value of a sequence per JSONiq: empty -> false; first
/// item object/array -> true (only if singleton is not required — JSONiq
/// allows a non-empty sequence starting with a JSON item to be true);
/// singleton atomic by kind; otherwise raises kTypeError.
bool EffectiveBooleanValue(const ItemSequence& sequence);

}  // namespace rumble::item

#endif  // RUMBLE_ITEM_ITEM_COMPARE_H_
