#include "src/item/item.h"

#include "src/common/error.h"

namespace rumble::item {

namespace {

[[noreturn]] void ThrowAccessor(const Item& item, std::string_view wanted) {
  common::ThrowError(
      common::ErrorCode::kTypeError,
      "cannot read a " + std::string(wanted) + " value from an item of type " +
          std::string(ItemTypeName(item.type())));
}

}  // namespace

std::string_view ItemTypeName(ItemType type) {
  switch (type) {
    case ItemType::kNull: return "null";
    case ItemType::kBoolean: return "boolean";
    case ItemType::kInteger: return "integer";
    case ItemType::kDecimal: return "decimal";
    case ItemType::kDouble: return "double";
    case ItemType::kString: return "string";
    case ItemType::kArray: return "array";
    case ItemType::kObject: return "object";
  }
  return "item";
}

bool Item::BooleanValue() const { ThrowAccessor(*this, "boolean"); }

std::int64_t Item::IntegerValue() const { ThrowAccessor(*this, "integer"); }

double Item::NumericValue() const { ThrowAccessor(*this, "numeric"); }

const std::string& Item::StringValue() const { ThrowAccessor(*this, "string"); }

std::vector<std::string_view> Item::Keys() const {
  ThrowAccessor(*this, "object-keys");
}

ItemPtr Item::ValueForKey(std::string_view) const { return nullptr; }

const ItemSequence& Item::Members() const { ThrowAccessor(*this, "array"); }

std::size_t Item::ArraySize() const { ThrowAccessor(*this, "array-size"); }

ItemPtr Item::MemberAt(std::size_t) const { ThrowAccessor(*this, "array-member"); }

std::string Item::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

}  // namespace rumble::item
