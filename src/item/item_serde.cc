#include "src/item/item_serde.h"

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/item/item_factory.h"

namespace rumble::item {

namespace {

void PutRaw(const void* data, std::size_t size, std::string* out) {
  out->append(static_cast<const char*>(data), size);
}

void GetRaw(const char** cursor, const char* end, void* data,
            std::size_t size) {
  if (static_cast<std::size_t>(end - *cursor) < size) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "spill decode: truncated item buffer");
  }
  std::memcpy(data, *cursor, size);
  *cursor += size;
}

void PutU32(std::uint32_t value, std::string* out) {
  PutRaw(&value, sizeof(value), out);
}

std::uint32_t GetU32(const char** cursor, const char* end) {
  std::uint32_t value = 0;
  GetRaw(cursor, end, &value, sizeof(value));
  return value;
}

void PutString(const std::string& value, std::string* out) {
  PutU32(static_cast<std::uint32_t>(value.size()), out);
  out->append(value);
}

std::string GetString(const char** cursor, const char* end) {
  std::uint32_t size = GetU32(cursor, end);
  if (static_cast<std::size_t>(end - *cursor) < size) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "spill decode: truncated string payload");
  }
  std::string value(*cursor, size);
  *cursor += size;
  return value;
}

}  // namespace

void EncodeItem(const ItemPtr& item, std::string* out) {
  ItemType type = item != nullptr ? item->type() : ItemType::kNull;
  out->push_back(static_cast<char>(type));
  switch (type) {
    case ItemType::kNull:
      break;
    case ItemType::kBoolean:
      out->push_back(item->BooleanValue() ? 1 : 0);
      break;
    case ItemType::kInteger: {
      std::int64_t value = item->IntegerValue();
      PutRaw(&value, sizeof(value), out);
      break;
    }
    case ItemType::kDecimal:
    case ItemType::kDouble: {
      // Raw bits: the decode side reconstructs the exact same double, so
      // serialization (which formats from the bits) stays byte-identical.
      double value = item->NumericValue();
      PutRaw(&value, sizeof(value), out);
      break;
    }
    case ItemType::kString:
      PutString(item->StringValue(), out);
      break;
    case ItemType::kArray: {
      const ItemSequence& members = item->Members();
      PutU32(static_cast<std::uint32_t>(members.size()), out);
      for (const ItemPtr& member : members) EncodeItem(member, out);
      break;
    }
    case ItemType::kObject: {
      std::vector<std::string_view> keys = item->Keys();
      PutU32(static_cast<std::uint32_t>(keys.size()), out);
      for (std::string_view key : keys) {
        PutU32(static_cast<std::uint32_t>(key.size()), out);
        out->append(key.data(), key.size());
        EncodeItem(item->ValueForKey(key), out);
      }
      break;
    }
  }
}

ItemPtr DecodeItem(const char** cursor, const char* end) {
  std::uint8_t tag = 0;
  GetRaw(cursor, end, &tag, 1);
  switch (static_cast<ItemType>(tag)) {
    case ItemType::kNull:
      return MakeNull();
    case ItemType::kBoolean: {
      std::uint8_t value = 0;
      GetRaw(cursor, end, &value, 1);
      return MakeBoolean(value != 0);
    }
    case ItemType::kInteger: {
      std::int64_t value = 0;
      GetRaw(cursor, end, &value, sizeof(value));
      return MakeInteger(value);
    }
    case ItemType::kDecimal: {
      double value = 0;
      GetRaw(cursor, end, &value, sizeof(value));
      return MakeDecimal(value);
    }
    case ItemType::kDouble: {
      double value = 0;
      GetRaw(cursor, end, &value, sizeof(value));
      return MakeDouble(value);
    }
    case ItemType::kString:
      return MakeString(GetString(cursor, end));
    case ItemType::kArray: {
      std::uint32_t count = GetU32(cursor, end);
      ItemSequence members;
      members.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        members.push_back(DecodeItem(cursor, end));
      }
      return MakeArray(std::move(members));
    }
    case ItemType::kObject: {
      std::uint32_t count = GetU32(cursor, end);
      std::vector<std::pair<std::string, ItemPtr>> fields;
      fields.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string key = GetString(cursor, end);
        ItemPtr value = DecodeItem(cursor, end);
        fields.emplace_back(std::move(key), std::move(value));
      }
      return MakeObject(std::move(fields));
    }
  }
  common::ThrowError(common::ErrorCode::kInternal,
                     "spill decode: unknown item tag " + std::to_string(tag));
}

}  // namespace rumble::item
