#ifndef RUMBLE_ITEM_ITEM_H_
#define RUMBLE_ITEM_ITEM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rumble::item {

class Item;

/// Items are immutable and shared; sequences copy pointers, never payloads.
/// This mirrors the paper's design of a single Item superclass so that an
/// RDD of Items supports heterogeneity (Section 4.1.1).
using ItemPtr = std::shared_ptr<const Item>;

/// A (flat) sequence of items — the value of every JSONiq expression.
using ItemSequence = std::vector<ItemPtr>;

/// JSONiq Data Model item kinds implemented in this engine. `decimal` is
/// approximated by double precision (documented substitution: the paper's
/// engine uses Java BigDecimal; none of its experiments depend on >53-bit
/// decimal precision).
enum class ItemType : std::uint8_t {
  kNull = 0,
  kBoolean = 1,
  kInteger = 2,
  kDecimal = 3,
  kDouble = 4,
  kString = 5,
  kArray = 6,
  kObject = 7,
};

/// Human-readable type name ("integer", "object", ...). Used in error
/// messages and by the `instance of` machinery.
std::string_view ItemTypeName(ItemType type);

/// Base class of the item hierarchy (paper Section 4.1.1). Accessors throw
/// RumbleException(kTypeError) when invoked on the wrong kind; callers that
/// must not throw test the type first.
class Item {
 public:
  virtual ~Item() = default;

  Item(const Item&) = delete;
  Item& operator=(const Item&) = delete;

  virtual ItemType type() const = 0;

  bool IsNull() const { return type() == ItemType::kNull; }
  bool IsBoolean() const { return type() == ItemType::kBoolean; }
  bool IsInteger() const { return type() == ItemType::kInteger; }
  bool IsString() const { return type() == ItemType::kString; }
  bool IsArray() const { return type() == ItemType::kArray; }
  bool IsObject() const { return type() == ItemType::kObject; }
  bool IsNumeric() const {
    ItemType t = type();
    return t == ItemType::kInteger || t == ItemType::kDecimal ||
           t == ItemType::kDouble;
  }
  bool IsAtomic() const {
    ItemType t = type();
    return t != ItemType::kArray && t != ItemType::kObject;
  }

  // -- Atomic accessors ------------------------------------------------
  virtual bool BooleanValue() const;
  virtual std::int64_t IntegerValue() const;
  /// Numeric value as double; valid for integer, decimal and double items.
  virtual double NumericValue() const;
  virtual const std::string& StringValue() const;

  // -- Object accessors ------------------------------------------------
  /// Keys in document order, as views into the object's field storage;
  /// valid for the item's lifetime. Computed on demand so objects on the
  /// parse hot path never materialize a key vector.
  virtual std::vector<std::string_view> Keys() const;
  /// Value for a key, or nullptr when absent (absence is the empty
  /// sequence in JSONiq, never an error).
  virtual ItemPtr ValueForKey(std::string_view key) const;

  // -- Array accessors -------------------------------------------------
  virtual const ItemSequence& Members() const;
  virtual std::size_t ArraySize() const;
  /// 0-based member access; callers perform bound checks.
  virtual ItemPtr MemberAt(std::size_t index) const;

  // -- Common ----------------------------------------------------------
  /// Appends the canonical JSON serialization of this item to `out`.
  virtual void SerializeTo(std::string* out) const = 0;
  std::string Serialize() const;

  /// Approximate heap footprint, used by MemoryBudget accounting.
  virtual std::size_t FootprintBytes() const = 0;

 protected:
  Item() = default;
};

/// Deterministic byte estimate used by shuffle-volume counters and memory
/// reservations. Found by ADL from the obs::ApproxByteSize templates, so an
/// RDD of items charges real payload sizes instead of sizeof(shared_ptr).
inline std::size_t ApproxByteSize(const ItemPtr& item) {
  return sizeof(ItemPtr) + (item != nullptr ? item->FootprintBytes() : 0);
}

}  // namespace rumble::item

#endif  // RUMBLE_ITEM_ITEM_H_
