#include "src/item/item_factory.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/error.h"
#include "src/util/strings.h"

namespace rumble::item {

namespace {

class NullItem final : public Item {
 public:
  ItemType type() const override { return ItemType::kNull; }
  void SerializeTo(std::string* out) const override { out->append("null"); }
  std::size_t FootprintBytes() const override { return sizeof(*this); }
};

class BooleanItem final : public Item {
 public:
  explicit BooleanItem(bool value) : value_(value) {}
  ItemType type() const override { return ItemType::kBoolean; }
  bool BooleanValue() const override { return value_; }
  void SerializeTo(std::string* out) const override {
    out->append(value_ ? "true" : "false");
  }
  std::size_t FootprintBytes() const override { return sizeof(*this); }

 private:
  bool value_;
};

class IntegerItem final : public Item {
 public:
  explicit IntegerItem(std::int64_t value) : value_(value) {}
  ItemType type() const override { return ItemType::kInteger; }
  std::int64_t IntegerValue() const override { return value_; }
  double NumericValue() const override {
    return static_cast<double>(value_);
  }
  void SerializeTo(std::string* out) const override {
    out->append(std::to_string(value_));
  }
  std::size_t FootprintBytes() const override { return sizeof(*this) + 16; }

 private:
  std::int64_t value_;
};

class DoubleLikeItem : public Item {
 public:
  explicit DoubleLikeItem(double value) : value_(value) {}
  double NumericValue() const override { return value_; }
  void SerializeTo(std::string* out) const override {
    out->append(util::FormatDouble(value_));
  }
  std::size_t FootprintBytes() const override { return sizeof(*this) + 16; }

 private:
  double value_;
};

class DecimalItem final : public DoubleLikeItem {
 public:
  using DoubleLikeItem::DoubleLikeItem;
  ItemType type() const override { return ItemType::kDecimal; }
};

class DoubleItem final : public DoubleLikeItem {
 public:
  using DoubleLikeItem::DoubleLikeItem;
  ItemType type() const override { return ItemType::kDouble; }
};

class StringItem final : public Item {
 public:
  explicit StringItem(std::string value) : value_(std::move(value)) {}
  ItemType type() const override { return ItemType::kString; }
  const std::string& StringValue() const override { return value_; }
  void SerializeTo(std::string* out) const override {
    out->push_back('"');
    out->append(util::JsonEscape(value_));
    out->push_back('"');
  }
  std::size_t FootprintBytes() const override {
    return sizeof(*this) + value_.capacity() + 16;
  }

 private:
  std::string value_;
};

class ArrayItem final : public Item {
 public:
  explicit ArrayItem(ItemSequence members) : members_(std::move(members)) {}
  ItemType type() const override { return ItemType::kArray; }
  const ItemSequence& Members() const override { return members_; }
  std::size_t ArraySize() const override { return members_.size(); }
  ItemPtr MemberAt(std::size_t index) const override {
    return index < members_.size() ? members_[index] : nullptr;
  }
  void SerializeTo(std::string* out) const override {
    out->push_back('[');
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i > 0) out->append(", ");
      members_[i]->SerializeTo(out);
    }
    out->push_back(']');
  }
  std::size_t FootprintBytes() const override {
    std::size_t total = sizeof(*this) + members_.capacity() * sizeof(ItemPtr);
    for (const auto& member : members_) total += member->FootprintBytes();
    return total;
  }

 private:
  ItemSequence members_;
};

class ObjectItem final : public Item {
 public:
  explicit ObjectItem(std::vector<std::pair<std::string, ItemPtr>> fields)
      : fields_(std::move(fields)) {}
  ItemType type() const override { return ItemType::kObject; }
  std::vector<std::string_view> Keys() const override {
    std::vector<std::string_view> keys;
    keys.reserve(fields_.size());
    for (const auto& [key, value] : fields_) keys.push_back(key);
    return keys;
  }
  ItemPtr ValueForKey(std::string_view key) const override {
    for (const auto& [field_key, value] : fields_) {
      if (field_key == key) return value;
    }
    return nullptr;
  }
  void SerializeTo(std::string* out) const override {
    out->push_back('{');
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out->append(", ");
      out->push_back('"');
      out->append(util::JsonEscape(fields_[i].first));
      out->append("\" : ");
      fields_[i].second->SerializeTo(out);
    }
    out->push_back('}');
  }
  std::size_t FootprintBytes() const override {
    std::size_t total = sizeof(*this);
    for (const auto& [key, value] : fields_) {
      total += key.capacity() + sizeof(ItemPtr) * 2 + value->FootprintBytes();
    }
    return total;
  }

 private:
  std::vector<std::pair<std::string, ItemPtr>> fields_;
};

}  // namespace

ItemPtr MakeNull() {
  static const ItemPtr kNull = std::make_shared<NullItem>();
  return kNull;
}

ItemPtr MakeBoolean(bool value) {
  static const ItemPtr kTrue = std::make_shared<BooleanItem>(true);
  static const ItemPtr kFalse = std::make_shared<BooleanItem>(false);
  return value ? kTrue : kFalse;
}

ItemPtr MakeInteger(std::int64_t value) {
  // Small integers are interned like booleans: counts, ages, years and enum
  // codes dominate messy datasets, and sharing one immutable item per value
  // removes an allocation (and later a destruction) per occurrence.
  static constexpr std::int64_t kCacheMin = -128;
  static constexpr std::int64_t kCacheMax = 1024;
  static const std::vector<ItemPtr> kCache = [] {
    std::vector<ItemPtr> cache;
    cache.reserve(static_cast<std::size_t>(kCacheMax - kCacheMin + 1));
    for (std::int64_t v = kCacheMin; v <= kCacheMax; ++v) {
      cache.push_back(std::make_shared<IntegerItem>(v));
    }
    return cache;
  }();
  if (value >= kCacheMin && value <= kCacheMax) {
    return kCache[static_cast<std::size_t>(value - kCacheMin)];
  }
  return std::make_shared<IntegerItem>(value);
}

ItemPtr MakeDecimal(double value) {
  return std::make_shared<DecimalItem>(value);
}

ItemPtr MakeDouble(double value) {
  return std::make_shared<DoubleItem>(value);
}

ItemPtr MakeString(std::string value) {
  return std::make_shared<StringItem>(std::move(value));
}

ItemPtr MakeArray(ItemSequence members) {
  return std::make_shared<ArrayItem>(std::move(members));
}

ItemPtr MakeObject(std::vector<std::pair<std::string, ItemPtr>> fields,
                   bool check_duplicates) {
  if (check_duplicates) {
    std::unordered_set<std::string_view> seen;
    for (const auto& [key, value] : fields) {
      if (!seen.insert(key).second) {
        common::ThrowError(common::ErrorCode::kDuplicateObjectKey,
                           "duplicate key in object constructor: " + key);
      }
    }
  }
  return std::make_shared<ObjectItem>(std::move(fields));
}

}  // namespace rumble::item
