#ifndef RUMBLE_ITEM_ITEM_SERDE_H_
#define RUMBLE_ITEM_ITEM_SERDE_H_

#include <string>

#include "src/item/item.h"

namespace rumble::item {

/// Compact binary item serialization for spill files (docs/MEMORY.md). The
/// format is a one-byte ItemType tag followed by the payload; numbers are
/// written as raw little-endian bits (distinct tags keep integer vs decimal
/// vs double apart), so a decode-encode round trip is byte-identical and a
/// decoded item serializes to exactly the same JSON as the original.
void EncodeItem(const ItemPtr& item, std::string* out);

/// Decodes one item, advancing *cursor. Throws RumbleException(kInternal) on
/// a truncated or corrupt buffer.
ItemPtr DecodeItem(const char** cursor, const char* end);

}  // namespace rumble::item

#endif  // RUMBLE_ITEM_ITEM_SERDE_H_
