#ifndef RUMBLE_ITEM_ITEM_FACTORY_H_
#define RUMBLE_ITEM_ITEM_FACTORY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/item/item.h"

namespace rumble::item {

/// Factory functions for every item kind. Null and the two booleans are
/// shared singletons; numbers and strings allocate.
ItemPtr MakeNull();
ItemPtr MakeBoolean(bool value);
ItemPtr MakeInteger(std::int64_t value);
ItemPtr MakeDecimal(double value);
ItemPtr MakeDouble(double value);
ItemPtr MakeString(std::string value);
ItemPtr MakeArray(ItemSequence members);

/// Object fields in document order. When `check_duplicates` is set, a
/// duplicate key raises kDuplicateObjectKey (JNDY0021) as the object
/// constructor expression requires; parsers pass false and keep the first
/// occurrence, mirroring common JSON parser behaviour.
ItemPtr MakeObject(std::vector<std::pair<std::string, ItemPtr>> fields,
                   bool check_duplicates = false);

}  // namespace rumble::item

#endif  // RUMBLE_ITEM_ITEM_FACTORY_H_
