#include "src/item/item_compare.h"

#include <functional>
#include <string>

#include "src/common/error.h"

namespace rumble::item {

namespace {

/// Rank used to detect comparable families: null(0), boolean(1), number(2),
/// string(3). Objects and arrays are not atomics.
int AtomicFamily(const Item& item) {
  switch (item.type()) {
    case ItemType::kNull: return 0;
    case ItemType::kBoolean: return 1;
    case ItemType::kInteger:
    case ItemType::kDecimal:
    case ItemType::kDouble: return 2;
    case ItemType::kString: return 3;
    default:
      common::ThrowError(common::ErrorCode::kTypeError,
                         std::string("not an atomic item: ") +
                             std::string(ItemTypeName(item.type())));
  }
}

}  // namespace

bool AtomicEquals(const Item& left, const Item& right) {
  int lf = AtomicFamily(left);
  int rf = AtomicFamily(right);
  if (lf != rf) return false;
  switch (lf) {
    case 0: return true;  // null == null
    case 1: return left.BooleanValue() == right.BooleanValue();
    case 2:
      if (left.IsInteger() && right.IsInteger()) {
        return left.IntegerValue() == right.IntegerValue();
      }
      return left.NumericValue() == right.NumericValue();
    default: return left.StringValue() == right.StringValue();
  }
}

int CompareAtomics(const Item& left, const Item& right) {
  int lf = AtomicFamily(left);
  int rf = AtomicFamily(right);
  // null is comparable to (and smaller than) every other atomic value.
  if (lf == 0 || rf == 0) {
    return (lf == 0 && rf == 0) ? 0 : (lf == 0 ? -1 : 1);
  }
  if (lf != rf) {
    common::ThrowError(
        common::ErrorCode::kIncompatibleSortKeys,
        std::string("cannot compare ") +
            std::string(ItemTypeName(left.type())) + " with " +
            std::string(ItemTypeName(right.type())));
  }
  switch (lf) {
    case 1: {
      int l = left.BooleanValue() ? 1 : 0;
      int r = right.BooleanValue() ? 1 : 0;
      return l - r;
    }
    case 2: {
      if (left.IsInteger() && right.IsInteger()) {
        std::int64_t l = left.IntegerValue();
        std::int64_t r = right.IntegerValue();
        return l < r ? -1 : (l > r ? 1 : 0);
      }
      double l = left.NumericValue();
      double r = right.NumericValue();
      return l < r ? -1 : (l > r ? 1 : 0);
    }
    default: {
      int cmp = left.StringValue().compare(right.StringValue());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
  }
}

std::size_t AtomicHash(const Item& item) {
  switch (AtomicFamily(item)) {
    case 0: return 0x9bf0'9573u;
    case 1: return item.BooleanValue() ? 0x85eb'ca6bu : 0xc2b2'ae35u;
    case 2: return std::hash<double>()(item.NumericValue());
    default: return std::hash<std::string>()(item.StringValue());
  }
}

bool DeepEquals(const Item& left, const Item& right) {
  if (left.IsObject() && right.IsObject()) {
    const auto& keys = left.Keys();
    if (keys.size() != right.Keys().size()) return false;
    for (const auto& key : keys) {
      ItemPtr lv = left.ValueForKey(key);
      ItemPtr rv = right.ValueForKey(key);
      if (rv == nullptr || !DeepEquals(*lv, *rv)) return false;
    }
    return true;
  }
  if (left.IsArray() && right.IsArray()) {
    if (left.ArraySize() != right.ArraySize()) return false;
    for (std::size_t i = 0; i < left.ArraySize(); ++i) {
      if (!DeepEquals(*left.MemberAt(i), *right.MemberAt(i))) return false;
    }
    return true;
  }
  if (left.IsAtomic() && right.IsAtomic()) {
    return AtomicEquals(left, right);
  }
  return false;
}

bool EffectiveBooleanValue(const ItemSequence& sequence) {
  if (sequence.empty()) return false;
  const Item& first = *sequence.front();
  if (first.IsObject() || first.IsArray()) return true;
  if (sequence.size() > 1) {
    common::ThrowError(
        common::ErrorCode::kTypeError,
        "effective boolean value of a multi-item atomic sequence");
  }
  switch (first.type()) {
    case ItemType::kNull: return false;
    case ItemType::kBoolean: return first.BooleanValue();
    case ItemType::kString: return !first.StringValue().empty();
    case ItemType::kInteger: return first.IntegerValue() != 0;
    case ItemType::kDecimal:
    case ItemType::kDouble: {
      double v = first.NumericValue();
      return v != 0.0 && v == v;  // false for 0 and NaN
    }
    default: return true;
  }
}

}  // namespace rumble::item
