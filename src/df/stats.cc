#include "src/df/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/df/batch_serde.h"
#include "src/df/key_hash.h"
#include "src/obs/event_bus.h"

namespace rumble::df {

namespace {

/// Per-column accumulator for one CollectTableStats pass. Distinct values
/// are tracked as 64-bit cell hashes (same tagged encoding as the hash-join
/// keys) so the tracker costs 8 bytes per distinct value and stops cleanly
/// at kStatsDistinctCap.
struct ColumnTracker {
  ColumnStats stats;
  std::unordered_set<std::uint64_t> hashes;

  void SeeHash(std::uint64_t h) {
    if (stats.distinct_capped) return;
    if (hashes.size() >= kStatsDistinctCap && hashes.count(h) == 0) {
      stats.distinct_capped = true;
      return;
    }
    hashes.insert(h);
  }

  /// A cell whose distinct identity we do not hash (multi-item sequences,
  /// arrays, objects): the distinct estimate degrades to a lower bound.
  void SeeOpaque() { stats.distinct_capped = true; }

  void SeeNumber(double value) {
    if (!stats.has_number || value < stats.min_number) {
      stats.min_number = value;
    }
    if (!stats.has_number || value > stats.max_number) {
      stats.max_number = value;
    }
    stats.has_number = true;
  }

  void SeeString(const std::string& value) {
    if (!stats.has_string || value < stats.min_string) {
      stats.min_string = value;
    }
    if (!stats.has_string || value > stats.max_string) {
      stats.max_string = value;
    }
    stats.has_string = true;
  }
};

void ProfileColumn(const Column& column, ColumnTracker* tracker) {
  std::size_t rows = column.size();
  switch (column.type()) {
    case DataType::kInt64: {
      const auto& values = column.Int64Values();
      const auto& nulls = column.NullMask();
      for (std::size_t r = 0; r < rows; ++r) {
        if (nulls[r]) {
          ++tracker->stats.null_count;
          continue;
        }
        tracker->SeeNumber(static_cast<double>(values[r]));
        tracker->SeeHash(
            MixHash(0x01, static_cast<std::uint64_t>(values[r])));
      }
      break;
    }
    case DataType::kFloat64: {
      const auto& values = column.Float64Values();
      const auto& nulls = column.NullMask();
      for (std::size_t r = 0; r < rows; ++r) {
        if (nulls[r]) {
          ++tracker->stats.null_count;
          continue;
        }
        tracker->SeeNumber(values[r]);
        tracker->SeeHash(MixHash(0x02, DoubleBits(values[r])));
      }
      break;
    }
    case DataType::kString: {
      const auto& values = column.StringValues();
      const auto& nulls = column.NullMask();
      for (std::size_t r = 0; r < rows; ++r) {
        if (nulls[r]) {
          ++tracker->stats.null_count;
          continue;
        }
        tracker->SeeString(values[r]);
        tracker->SeeHash(
            MixHash(0x03, HashBytes(values[r].data(), values[r].size())));
      }
      break;
    }
    case DataType::kBool: {
      const auto& nulls = column.NullMask();
      for (std::size_t r = 0; r < rows; ++r) {
        if (nulls[r]) {
          ++tracker->stats.null_count;
          continue;
        }
        tracker->SeeHash(column.BoolAt(r) ? 0x05ULL : 0x04ULL);
      }
      break;
    }
    case DataType::kItemSeq: {
      for (std::size_t r = 0; r < rows; ++r) {
        const item::ItemSequence& seq = column.SeqAt(r);
        if (seq.empty()) {
          // The empty sequence is this column family's "absent" value —
          // counted as null so join/filter selectivity sees missing keys.
          ++tracker->stats.null_count;
          continue;
        }
        if (seq.size() > 1) {
          tracker->SeeOpaque();
          continue;
        }
        const item::Item& only = *seq[0];
        if (only.IsNumeric()) {
          double value = only.NumericValue();
          tracker->SeeNumber(value);
          tracker->SeeHash(MixHash(0x02, DoubleBits(value)));
        } else if (only.IsString()) {
          tracker->SeeString(only.StringValue());
          tracker->SeeHash(MixHash(0x03, HashBytes(only.StringValue().data(),
                                                   only.StringValue().size())));
        } else if (only.IsBoolean()) {
          tracker->SeeHash(only.BooleanValue() ? 0x05ULL : 0x04ULL);
        } else if (only.IsNull()) {
          tracker->SeeHash(MixHash(0x06, 0));
        } else {
          tracker->SeeOpaque();  // arrays/objects: identity not hashed
        }
      }
      break;
    }
  }
}

}  // namespace

TableStatsPtr CollectTableStats(const Schema& schema,
                                const std::vector<RecordBatch>& batches,
                                obs::EventBus* bus) {
  auto stats = std::make_shared<TableStats>();
  std::vector<ColumnTracker> trackers(schema.num_fields());
  for (const RecordBatch& batch : batches) {
    stats->row_count += batch.num_rows;
    stats->bytes += ApproxBatchBytes(batch);
    for (std::size_t c = 0; c < schema.num_fields() && c < batch.columns.size();
         ++c) {
      ProfileColumn(batch.columns[c], &trackers[c]);
    }
  }
  stats->columns.reserve(trackers.size());
  for (ColumnTracker& tracker : trackers) {
    tracker.stats.distinct = tracker.hashes.size();
    stats->columns.push_back(std::move(tracker.stats));
  }
  if (bus != nullptr) {
    bus->AddToCounter("stats.collections", 1);
    bus->AddToCounter("stats.rows",
                      static_cast<std::int64_t>(stats->row_count));
  }
  return stats;
}

namespace {

/// Filter selectivity when the predicate carries no hint. Deliberately a
/// plain constant (docs/OPTIMIZER.md): with messy data we rarely know
/// better, and the join planner only needs the right order of magnitude.
constexpr double kDefaultFilterSelectivity = 0.5;

/// GroupBy output fraction when key distinct counts are unknown.
constexpr double kDefaultGroupFraction = 0.1;

}  // namespace

double EstimateColumnDistinct(const LogicalPlan& plan,
                              const std::string& column) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan: {
      if (!plan.scan_stats) return -1.0;
      int index = plan.schema->IndexOf(column);
      if (index < 0 ||
          static_cast<std::size_t>(index) >= plan.scan_stats->columns.size()) {
        return -1.0;
      }
      return static_cast<double>(
          plan.scan_stats->columns[static_cast<std::size_t>(index)].distinct);
    }
    case LogicalPlan::Kind::kProject: {
      for (const NamedExpr& expr : plan.exprs) {
        if (expr.name != column) continue;
        if (!expr.is_column_ref()) return -1.0;
        return EstimateColumnDistinct(*plan.child, expr.source_column);
      }
      return -1.0;
    }
    case LogicalPlan::Kind::kFilter:
    case LogicalPlan::Kind::kSort:
    case LogicalPlan::Kind::kLimit:
      return EstimateColumnDistinct(*plan.child, column);
    case LogicalPlan::Kind::kZipIndex:
      if (column == plan.index_column) return -1.0;
      return EstimateColumnDistinct(*plan.child, column);
    case LogicalPlan::Kind::kExplode:
      // Exploding rewrites the exploded column (and adds the position
      // column); other columns keep their identity but repeat, so the
      // distinct count still holds.
      if (column == plan.explode_column ||
          column == plan.explode_position_column) {
        return -1.0;
      }
      return EstimateColumnDistinct(*plan.child, column);
    case LogicalPlan::Kind::kGroupBy:
      for (const std::string& key : plan.group_keys) {
        if (key == column) return EstimateColumnDistinct(*plan.child, column);
      }
      return -1.0;
    case LogicalPlan::Kind::kJoin:
      if (plan.child->schema->IndexOf(column) >= 0) {
        return EstimateColumnDistinct(*plan.child, column);
      }
      return EstimateColumnDistinct(*plan.join_build, column);
  }
  return -1.0;
}

double EstimateRows(const LogicalPlan& plan) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan:
      if (!plan.scan_stats) return -1.0;
      return static_cast<double>(plan.scan_stats->row_count);
    case LogicalPlan::Kind::kProject:
    case LogicalPlan::Kind::kSort:
    case LogicalPlan::Kind::kZipIndex:
    case LogicalPlan::Kind::kExplode:
      // Explode's fan-out factor (average sequence length) is unknown at
      // plan time; we assume ~1 item per sequence, the common case for the
      // scalar field accesses the translator emits.
      return EstimateRows(*plan.child);
    case LogicalPlan::Kind::kFilter: {
      double child = EstimateRows(*plan.child);
      if (child < 0.0) return -1.0;
      double selectivity = plan.predicate.selectivity_hint;
      if (selectivity < 0.0 || selectivity > 1.0) {
        selectivity = kDefaultFilterSelectivity;
      }
      return child * selectivity;
    }
    case LogicalPlan::Kind::kGroupBy: {
      double child = EstimateRows(*plan.child);
      if (child < 0.0) return -1.0;
      if (plan.group_keys.empty()) return 1.0;
      double product = 1.0;
      for (const std::string& key : plan.group_keys) {
        double distinct = EstimateColumnDistinct(*plan.child, key);
        if (distinct < 0.0) return child * kDefaultGroupFraction;
        product *= std::max(distinct, 1.0);
      }
      return std::min(product, child);
    }
    case LogicalPlan::Kind::kLimit: {
      double child = EstimateRows(*plan.child);
      double limit = static_cast<double>(plan.limit_rows);
      if (child < 0.0) return limit;
      return std::min(child, limit);
    }
    case LogicalPlan::Kind::kJoin: {
      double left = EstimateRows(*plan.child);
      double right = EstimateRows(*plan.join_build);
      if (left < 0.0 || right < 0.0) return -1.0;
      // Classic System R estimate: |L x R| / max(distinct(Lk), distinct(Rk))
      // on the first key pair with known distinct counts.
      for (const JoinKey& key : plan.join_keys) {
        double dl = EstimateColumnDistinct(*plan.child, key.left_column);
        double dr = EstimateColumnDistinct(*plan.join_build, key.right_column);
        if (dl < 0.0 || dr < 0.0) continue;
        double denom = std::max({dl, dr, 1.0});
        return left * right / denom;
      }
      return std::max(left, right);
    }
  }
  return -1.0;
}

double EstimateAvgRowBytes(const LogicalPlan& plan) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan:
      if (!plan.scan_stats || plan.scan_stats->row_count == 0) return -1.0;
      return static_cast<double>(plan.scan_stats->bytes) /
             static_cast<double>(plan.scan_stats->row_count);
    case LogicalPlan::Kind::kJoin: {
      double left = EstimateAvgRowBytes(*plan.child);
      double right = EstimateAvgRowBytes(*plan.join_build);
      if (left < 0.0) return right;
      if (right < 0.0) return left;
      return left + right;  // a join row concatenates both sides
    }
    default:
      return plan.child ? EstimateAvgRowBytes(*plan.child) : -1.0;
  }
}

double EstimateBytes(const LogicalPlan& plan) {
  double rows = EstimateRows(plan);
  double avg = EstimateAvgRowBytes(plan);
  if (rows < 0.0 || avg < 0.0) return -1.0;
  return rows * avg;
}

std::string FormatEstimate(double rows) {
  if (rows < 0.0) return "? rows";
  return "~" + std::to_string(static_cast<long long>(std::llround(rows))) +
         " rows";
}

}  // namespace rumble::df
