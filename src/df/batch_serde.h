#ifndef RUMBLE_DF_BATCH_SERDE_H_
#define RUMBLE_DF_BATCH_SERDE_H_

#include <cstddef>
#include <string>

#include "src/df/column.h"

namespace rumble::df {

/// Binary (de)serialization of columnar batches for spill files
/// (docs/MEMORY.md). Scalars are raw little-endian bits, so a spilled and
/// restored batch compares and serializes byte-identically to the original.
/// Null rows carry no typed payload; decoding rebuilds them with AppendNull.
void EncodeColumn(const Column& column, std::string* out);
Column DecodeColumn(const char** cursor, const char* end);

void EncodeBatch(const RecordBatch& batch, std::string* out);
RecordBatch DecodeBatch(const char** cursor, const char* end);

/// Deterministic in-memory byte estimate for a batch — the reservation unit
/// the DataFrame pipeline breakers charge against the MemoryManager.
std::size_t ApproxBatchBytes(const RecordBatch& batch);

}  // namespace rumble::df

#endif  // RUMBLE_DF_BATCH_SERDE_H_
