#include "src/df/join_exec.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/df/batch_serde.h"
#include "src/df/kernel_probe.h"
#include "src/df/key_hash.h"
#include "src/df/physical_exec.h"
#include "src/exec/cancellation.h"
#include "src/exec/memory_manager.h"
#include "src/exec/spill_file.h"

namespace rumble::df {

namespace {

using spark::Context;
using spark::Rdd;

/// Rows per encoded chunk when a build bucket spills (same bound the sort
/// and group-by spill paths use).
constexpr std::size_t kJoinSpillChunkRows = 4096;

/// Upper bound on shuffle-join build buckets; beyond this the per-bucket
/// bookkeeping costs more than the extra memory headroom is worth.
constexpr std::size_t kMaxJoinBuckets = 64;

/// Concatenates batches, tolerating the column-less empty padding batches
/// BatchesToRdd emits; the result always has one typed column per field.
RecordBatch ConcatWithSchema(std::vector<RecordBatch> batches,
                             const Schema& schema) {
  std::vector<RecordBatch> keep;
  keep.reserve(batches.size());
  for (RecordBatch& batch : batches) {
    if (!batch.columns.empty()) keep.push_back(std::move(batch));
  }
  if (keep.empty()) {
    RecordBatch out;
    for (const Field& field : schema.fields()) {
      out.columns.emplace_back(field.type);
    }
    return out;
  }
  return ConcatBatches(std::move(keep));
}

/// True when any of the row's key cells is null. Null keys never join:
/// the translator encodes the JSONiq empty sequence as null, and `$x eq $y`
/// over an empty operand is false, never a match.
bool HasNullKey(const RecordBatch& batch,
                const std::vector<std::size_t>& key_indices, std::size_t row) {
  for (std::size_t k : key_indices) {
    if (batch.columns[k].IsNull(row)) return true;
  }
  return false;
}

/// Drops rows with null key cells. Returns the input unchanged (shared
/// buffers) when every row survives.
RecordBatch DropNullKeyRows(const RecordBatch& batch,
                            const std::vector<std::size_t>& key_indices) {
  SelectionVector keep;
  for (std::size_t row = 0; row < batch.num_rows; ++row) {
    if (!HasNullKey(batch, key_indices, row)) {
      keep.push_back(static_cast<std::uint32_t>(row));
    }
  }
  if (keep.size() == batch.num_rows) return batch;
  return GatherBatch(batch, keep);
}

std::vector<std::uint64_t> HashKeyRows(
    const RecordBatch& batch, const std::vector<std::size_t>& key_indices) {
  std::vector<std::uint64_t> hashes(batch.num_rows, 0);
  for (std::size_t k : key_indices) {
    HashKeyColumn(batch.columns[k], &hashes);
  }
  return hashes;
}

/// Hash table over a (null-key-free) build batch. Collision chains append
/// at the tail so traversal yields matches in build insertion order — the
/// property both strategies rely on for byte-identical output.
struct JoinHashTable {
  RecordBatch build;
  std::vector<std::uint64_t> hashes;
  // hash -> {head, tail} of the chain through `next` (kNoGroup terminates).
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      heads;
  std::vector<std::uint32_t> next;

  void Build(RecordBatch rows, const std::vector<std::size_t>& key_indices) {
    build = std::move(rows);
    hashes = HashKeyRows(build, key_indices);
    next.assign(build.num_rows, kNoGroup);
    heads.reserve(build.num_rows);
    for (std::uint32_t r = 0; r < build.num_rows; ++r) {
      auto [it, inserted] = heads.try_emplace(hashes[r], std::pair{r, r});
      if (!inserted) {
        next[it->second.second] = r;
        it->second.second = r;
      }
    }
  }

  /// Appends every build row matching `row` of `probe` to the selection
  /// vectors, in insertion order.
  void Probe(const RecordBatch& probe,
             const std::vector<std::size_t>& probe_keys,
             const std::vector<std::size_t>& build_keys, std::uint64_t hash,
             std::size_t row, SelectionVector* probe_sel,
             SelectionVector* build_sel) const {
    auto it = heads.find(hash);
    if (it == heads.end()) return;
    for (std::uint32_t g = it->second.first; g != kNoGroup; g = next[g]) {
      bool equal = true;
      for (std::size_t k = 0; k < probe_keys.size(); ++k) {
        if (!CellsEqual(probe.columns[probe_keys[k]], row,
                        build.columns[build_keys[k]], g)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        probe_sel->push_back(static_cast<std::uint32_t>(row));
        build_sel->push_back(g);
      }
    }
  }
};

/// Gathers the matched probe and build rows into one output batch (probe
/// columns first, matching the Join node's left ++ right schema).
RecordBatch MakeJoinBatch(const RecordBatch& probe, const RecordBatch& build,
                          const SelectionVector& probe_sel,
                          const SelectionVector& build_sel) {
  RecordBatch out = GatherBatch(probe, probe_sel);
  RecordBatch right = GatherBatch(build, build_sel);
  for (Column& column : right.columns) {
    out.columns.push_back(std::move(column));
  }
  out.num_rows = probe_sel.size();
  return out;
}

RecordBatch EmptyBatchFor(const Schema& schema) {
  RecordBatch out;
  for (const Field& field : schema.fields()) {
    out.columns.emplace_back(field.type);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Broadcast hash join
// ---------------------------------------------------------------------------

/// Keeps the replicated build table (and its memory reservation) alive for
/// as long as the lazy probe RDD's thunks may read it.
struct BroadcastState {
  exec::MemoryManager* manager = nullptr;
  std::uint64_t charged = 0;
  JoinHashTable table;
  ~BroadcastState() {
    if (manager != nullptr && charged > 0) manager->Release(charged);
  }
};

Rdd<RecordBatch> ExecBroadcastJoin(const LogicalPlan& plan, Context* context,
                                   Rdd<RecordBatch> left_rdd,
                                   std::vector<RecordBatch> build_batches,
                                   const std::vector<std::size_t>& left_keys,
                                   const std::vector<std::size_t>& right_keys) {
  obs::EventBus& bus = spark::BusOf(context);
  exec::MemoryManager& memory = spark::MemoryOf(context);
  bus.AddToCounter("df.join.broadcast", 1);

  auto state = std::make_shared<BroadcastState>();
  state->manager = &memory;
  KernelProbe build_probe = MakeKernelProbe(
      context, "df.kernel.join.build", "df.kernel.join.build.duration_ns",
      "df.kernel.join.build.batches", "df.kernel.join.build.rows");
  build_probe.InvokeWide([&]() -> std::int64_t {
    RecordBatch build = DropNullKeyRows(
        ConcatWithSchema(std::move(build_batches), *plan.join_build->schema),
        right_keys);
    state->table.Build(std::move(build), right_keys);
    return static_cast<std::int64_t>(state->table.build.num_rows);
  });
  bus.AddToCounter("df.join.build_rows",
                   static_cast<std::int64_t>(state->table.build.num_rows));
  if (memory.enforcing()) {
    // The broadcast table is replicated, not partitioned, so there is
    // nothing to spill — charge it if the pool allows, else run uncharged
    // (the planner only picks broadcast for small builds; a forced
    // broadcast under a tight cap is the caller's explicit choice).
    auto want =
        static_cast<std::uint64_t>(ApproxBatchBytes(state->table.build));
    if (want > 0 && memory.TryReserve(want)) state->charged = want;
  }

  SchemaPtr out_schema = plan.schema;
  std::vector<std::size_t> probe_keys = left_keys;
  std::vector<std::size_t> build_keys = right_keys;
  KernelProbe probe_probe = MakeKernelProbe(
      context, "df.kernel.join.probe", "df.kernel.join.probe.duration_ns",
      "df.kernel.join.probe.batches", "df.kernel.join.probe.rows");
  obs::CounterCell* probe_rows = bus.GetCounter("df.join.probe_rows");
  obs::CounterCell* output_rows = bus.GetCounter("df.join.output_rows");
  return left_rdd.Map([state, probe_probe, probe_keys, build_keys, out_schema,
                       probe_rows, output_rows](const RecordBatch& batch) {
    return probe_probe.Invoke(batch, [&](const RecordBatch& input) {
      if (input.columns.empty()) return EmptyBatchFor(*out_schema);
      std::vector<std::uint64_t> hashes = HashKeyRows(input, probe_keys);
      SelectionVector probe_sel;
      SelectionVector build_sel;
      for (std::size_t row = 0; row < input.num_rows; ++row) {
        if (HasNullKey(input, probe_keys, row)) continue;
        state->table.Probe(input, probe_keys, build_keys, hashes[row], row,
                           &probe_sel, &build_sel);
      }
      probe_rows->value.fetch_add(static_cast<std::int64_t>(input.num_rows),
                                  std::memory_order_relaxed);
      output_rows->value.fetch_add(static_cast<std::int64_t>(probe_sel.size()),
                                   std::memory_order_relaxed);
      return MakeJoinBatch(input, state->table.build, probe_sel, build_sel);
    });
  });
}

// ---------------------------------------------------------------------------
// Shuffle (partitioned) hash join
// ---------------------------------------------------------------------------

/// Stack guard over the shuffle join's spill file and outstanding bucket
/// reservations: an exception (cancellation, task failure) releases every
/// charge and unlinks the spill file via ~SpillFile.
struct ShuffleGuard {
  exec::MemoryManager* manager = nullptr;
  std::uint64_t charged = 0;
  std::unique_ptr<exec::SpillFile> file;
  ~ShuffleGuard() {
    if (manager != nullptr && charged > 0) manager->Release(charged);
  }
};

Rdd<RecordBatch> ExecShuffleJoin(const LogicalPlan& plan, Context* context,
                                 Rdd<RecordBatch> left_rdd,
                                 std::vector<RecordBatch> build_batches,
                                 std::uint64_t build_bytes,
                                 const std::vector<std::size_t>& left_keys,
                                 const std::vector<std::size_t>& right_keys) {
  obs::EventBus& bus = spark::BusOf(context);
  exec::MemoryManager& memory = spark::MemoryOf(context);
  exec::CancellationToken& cancel = spark::CancelOf(context);
  bus.AddToCounter("df.join.shuffle", 1);

  const Schema& right_schema = *plan.join_build->schema;
  const Schema& left_schema = *plan.child->schema;

  // Bucket count: enough buckets that one resident bucket stays near the
  // broadcast threshold. Deterministic in the input, so repeated runs plan
  // identically.
  std::uint64_t threshold = std::max<std::uint64_t>(
      1, context->config().join_broadcast_threshold_bytes);
  std::size_t n_buckets = static_cast<std::size_t>(
      std::min<std::uint64_t>(kMaxJoinBuckets,
                              (build_bytes + threshold - 1) / threshold));
  if (n_buckets < 1) n_buckets = 1;

  ShuffleGuard guard;
  guard.manager = &memory;

  // Phase 1: route build rows into per-bucket sub-batches by key hash,
  // preserving build insertion order within each bucket (rows with null key
  // cells are dropped — they can never match).
  std::vector<RecordBatch> bucket_build(n_buckets);
  for (auto& bucket : bucket_build) bucket = EmptyBatchFor(right_schema);
  std::int64_t build_rows = 0;
  KernelProbe build_probe = MakeKernelProbe(
      context, "df.kernel.join.build", "df.kernel.join.build.duration_ns",
      "df.kernel.join.build.batches", "df.kernel.join.build.rows");
  build_probe.InvokeWide([&]() -> std::int64_t {
    std::vector<SelectionVector> route(n_buckets);
    for (RecordBatch& batch : build_batches) {
      cancel.Check();
      if (batch.columns.empty() || batch.num_rows == 0) continue;
      std::vector<std::uint64_t> hashes = HashKeyRows(batch, right_keys);
      for (auto& sel : route) sel.clear();
      for (std::size_t row = 0; row < batch.num_rows; ++row) {
        if (HasNullKey(batch, right_keys, row)) continue;
        route[hashes[row] % n_buckets].push_back(
            static_cast<std::uint32_t>(row));
      }
      for (std::size_t b = 0; b < n_buckets; ++b) {
        if (route[b].empty()) continue;
        for (std::size_t c = 0; c < bucket_build[b].columns.size(); ++c) {
          bucket_build[b].columns[c].AppendGather(batch.columns[c], route[b]);
        }
        bucket_build[b].num_rows += route[b].size();
        build_rows += static_cast<std::int64_t>(route[b].size());
      }
      batch = RecordBatch{};  // release routed source rows promptly
    }
    return build_rows;
  });
  build_batches.clear();
  bus.AddToCounter("df.join.build_rows", build_rows);

  // Phase 2: charge each bucket against the memory pool or spill it. The
  // chunked encode bounds the largest write; segments replay in write order
  // so a reloaded bucket reproduces its insertion order exactly.
  std::vector<std::uint64_t> bucket_charge(n_buckets, 0);
  std::vector<std::vector<exec::SpillSegment>> bucket_segs(n_buckets);
  std::vector<char> bucket_resident(n_buckets, 1);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (!memory.enforcing() || bucket_build[b].num_rows == 0) continue;
    auto want = static_cast<std::uint64_t>(ApproxBatchBytes(bucket_build[b]));
    if (want == 0) continue;
    if (memory.TryReserve(want)) {
      bucket_charge[b] = want;
      guard.charged += want;
      continue;
    }
    if (guard.file == nullptr) {
      auto file = std::make_unique<exec::SpillFile>(
          &bus, spark::InjectorOf(context));
      if (!file->ok()) continue;  // cannot spill: keep the bucket resident
      guard.file = std::move(file);
      bus.AddToCounter("spill.files", 1);
    }
    obs::ScopedSpan span(bus.tracer(), "operator", "spill.write");
    std::int64_t bytes = 0;
    for (std::size_t begin = 0; begin < bucket_build[b].num_rows;
         begin += kJoinSpillChunkRows) {
      std::size_t count =
          std::min(kJoinSpillChunkRows, bucket_build[b].num_rows - begin);
      RecordBatch chunk = SliceBatch(bucket_build[b], begin, count);
      std::string blob;
      EncodeBatch(chunk, &blob);
      // Append throws kResourceExhausted/kIoError on failure; the guard's
      // RAII cleanup then releases the charges and unlinks the file.
      exec::SpillSegment seg = guard.file->Append(blob, count);
      bucket_segs[b].push_back(seg);
      bytes += static_cast<std::int64_t>(blob.size());
    }
    span.AddArg("bytes", bytes);
    bus.AddToCounter("spill.bytes_written", bytes);
    bus.Spilled("df.join.build", bytes);
    bucket_build[b] = RecordBatch{};
    bucket_resident[b] = 0;
  }

  // Phase 3: materialize the probe partitions and their key hashes once.
  int n_left = left_rdd.num_partitions();
  if (n_left < 1) n_left = 1;
  auto n = static_cast<std::size_t>(n_left);
  std::vector<RecordBatch> left_parts(n);
  std::vector<std::vector<std::uint64_t>> left_hashes(n);
  std::vector<std::vector<char>> left_null_key(n);
  std::int64_t probe_total = 0;
  context->pool().RunParallel(
      n,
      [&](std::size_t p) {
        left_parts[p] = ConcatWithSchema(
            left_rdd.ComputePartition(static_cast<int>(p)), left_schema);
        left_hashes[p] = HashKeyRows(left_parts[p], left_keys);
        left_null_key[p].assign(left_parts[p].num_rows, 0);
        for (std::size_t row = 0; row < left_parts[p].num_rows; ++row) {
          if (HasNullKey(left_parts[p], left_keys, row)) {
            left_null_key[p][row] = 1;
          }
        }
      },
      nullptr, "df.join.probe.materialize");
  for (const RecordBatch& part : left_parts) {
    probe_total += static_cast<std::int64_t>(part.num_rows);
  }
  bus.AddToCounter("df.join.probe_rows", probe_total);

  // Phase 4: one bucket at a time — load (or reload from spill), build its
  // table, probe every partition's rows that hash into it, then release the
  // bucket before the next one. A probe row's matches all live in its own
  // bucket (equal keys hash equal), so per-bucket results partition the
  // probe rows.
  struct BucketMatches {
    SelectionVector probe_rows;  // ascending within the partition
    RecordBatch build_rows;      // gathered build cells, aligned to probe_rows
  };
  std::vector<std::vector<BucketMatches>> matches(n);
  for (auto& per_part : matches) per_part.resize(n_buckets);
  KernelProbe probe_probe = MakeKernelProbe(
      context, "df.kernel.join.probe", "df.kernel.join.probe.duration_ns",
      "df.kernel.join.probe.batches", "df.kernel.join.probe.rows");
  for (std::size_t b = 0; b < n_buckets; ++b) {
    cancel.Check();
    bool empty = bucket_resident[b] != 0 ? bucket_build[b].num_rows == 0
                                         : bucket_segs[b].empty();
    if (empty) continue;
    RecordBatch build_b;
    if (bucket_resident[b] != 0) {
      build_b = std::move(bucket_build[b]);
    } else {
      std::vector<RecordBatch> chunks;
      chunks.reserve(bucket_segs[b].size());
      for (const exec::SpillSegment& seg : bucket_segs[b]) {
        std::string blob;
        exec::SpillReadStatus rs = guard.file->ReadVerified(seg, &blob);
        if (rs != exec::SpillReadStatus::kOk) {
          // Driver-side bucket reload: the build rows exist only on disk,
          // so a verification failure is a typed query error — corrupt
          // frames are never joined as data.
          common::ThrowError(common::ErrorCode::kIoError,
                             std::string("join build bucket unreadable (") +
                                 exec::SpillReadStatusName(rs) + "): " +
                                 guard.file->path());
        }
        bus.AddToCounter("spill.bytes_read",
                         static_cast<std::int64_t>(blob.size()));
        const char* cursor = blob.data();
        chunks.push_back(DecodeBatch(&cursor, blob.data() + blob.size()));
      }
      build_b = ConcatWithSchema(std::move(chunks), right_schema);
    }
    JoinHashTable table;
    table.Build(std::move(build_b), right_keys);
    probe_probe.InvokeWide([&]() -> std::int64_t {
      std::vector<std::int64_t> probed(n, 0);
      context->pool().RunParallel(
          n,
          [&](std::size_t p) {
            SelectionVector probe_sel;
            SelectionVector build_sel;
            const RecordBatch& part = left_parts[p];
            for (std::size_t row = 0; row < part.num_rows; ++row) {
              if (left_null_key[p][row] != 0) continue;
              if (left_hashes[p][row] % n_buckets != b) continue;
              ++probed[p];
              table.Probe(part, left_keys, right_keys, left_hashes[p][row],
                          row, &probe_sel, &build_sel);
            }
            matches[p][b].build_rows = GatherBatch(table.build, build_sel);
            matches[p][b].probe_rows = std::move(probe_sel);
          },
          nullptr, "df.join.probe");
      std::int64_t total = 0;
      for (std::int64_t rows : probed) total += rows;
      return total;
    });
    if (bucket_charge[b] > 0) {
      memory.Release(bucket_charge[b]);
      guard.charged -= bucket_charge[b];
      bucket_charge[b] = 0;
    }
  }

  // Phase 5: per-partition assembly in probe-row order. Each row's matches
  // sit contiguously at its bucket's cursor, so one pass with per-bucket
  // cursors rebuilds exactly the probe-major order the broadcast strategy
  // emits.
  SchemaPtr out_schema = plan.schema;
  std::vector<RecordBatch> results(n);
  std::int64_t output_total = 0;
  std::vector<std::int64_t> output_rows(n, 0);
  context->pool().RunParallel(
      n,
      [&](std::size_t p) {
        std::vector<std::size_t> cursor(n_buckets, 0);
        SelectionVector probe_sel;
        RecordBatch right_out = EmptyBatchFor(right_schema);
        const RecordBatch& part = left_parts[p];
        for (std::size_t row = 0; row < part.num_rows; ++row) {
          if (left_null_key[p][row] != 0) continue;
          std::size_t b = left_hashes[p][row] % n_buckets;
          BucketMatches& bucket = matches[p][b];
          std::size_t begin = cursor[b];
          std::size_t end = begin;
          while (end < bucket.probe_rows.size() &&
                 bucket.probe_rows[end] == row) {
            ++end;
          }
          if (end == begin) continue;
          for (std::size_t i = begin; i < end; ++i) {
            probe_sel.push_back(static_cast<std::uint32_t>(row));
          }
          for (std::size_t c = 0; c < right_out.columns.size(); ++c) {
            right_out.columns[c].AppendRange(bucket.build_rows.columns[c],
                                             begin, end - begin);
          }
          right_out.num_rows += end - begin;
          cursor[b] = end;
        }
        RecordBatch out = GatherBatch(part, probe_sel);
        for (Column& column : right_out.columns) {
          out.columns.push_back(std::move(column));
        }
        out.num_rows = probe_sel.size();
        if (out.columns.empty()) out = EmptyBatchFor(*out_schema);
        output_rows[p] = static_cast<std::int64_t>(out.num_rows);
        results[p] = std::move(out);
      },
      nullptr, "df.join.assemble");
  for (std::int64_t rows : output_rows) output_total += rows;
  bus.AddToCounter("df.join.output_rows", output_total);

  return BatchesToRdd(context, std::move(results));
}

}  // namespace

Rdd<RecordBatch> ExecJoin(const LogicalPlan& plan, Context* context,
                          Rdd<RecordBatch> left_rdd) {
  const Schema& left_schema = *plan.child->schema;
  const Schema& right_schema = *plan.join_build->schema;
  std::vector<std::size_t> left_keys;
  std::vector<std::size_t> right_keys;
  left_keys.reserve(plan.join_keys.size());
  right_keys.reserve(plan.join_keys.size());
  for (const JoinKey& key : plan.join_keys) {
    left_keys.push_back(left_schema.RequireIndex(key.left_column));
    right_keys.push_back(right_schema.RequireIndex(key.right_column));
  }

  // Execute and collect the build side: both strategies need it local, and
  // its actual footprint resolves any kAuto the optimizer left behind (lazy
  // scans carry no statistics).
  std::vector<RecordBatch> build_batches =
      ExecutePlan(plan.join_build, context).Collect();
  std::uint64_t build_bytes = 0;
  for (const RecordBatch& batch : build_batches) {
    build_bytes += ApproxBatchBytes(batch);
  }

  JoinStrategy strategy = plan.join_strategy;
  if (strategy == JoinStrategy::kAuto) {
    strategy = build_bytes <= context->config().join_broadcast_threshold_bytes
                   ? JoinStrategy::kBroadcast
                   : JoinStrategy::kShuffle;
  }
  if (strategy == JoinStrategy::kBroadcast) {
    return ExecBroadcastJoin(plan, context, std::move(left_rdd),
                             std::move(build_batches), left_keys, right_keys);
  }
  return ExecShuffleJoin(plan, context, std::move(left_rdd),
                         std::move(build_batches), build_bytes, left_keys,
                         right_keys);
}

}  // namespace rumble::df
