#include "src/df/expressions.h"

// Expression structs are header-only aggregates; this translation unit
// anchors the header per project convention.
namespace rumble::df {}  // namespace rumble::df
