#ifndef RUMBLE_DF_SCHEMA_H_
#define RUMBLE_DF_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/item/item.h"

namespace rumble::df {

/// Column types. The native types carry Spark-SQL-style optimizable values;
/// kItemSeq is the "List of Items" column type the paper introduces for
/// FLWOR variables (Section 4.3): every tuple-stream variable is one
/// kItemSeq column.
enum class DataType {
  kInt64,
  kFloat64,
  kString,
  kBool,
  kItemSeq,
};

std::string_view DataTypeName(DataType type);

struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const = default;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  std::size_t num_fields() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }

  /// Index of a column by name, or -1 when absent.
  int IndexOf(std::string_view name) const;

  /// Throws kInternal when the column is missing (caller bug).
  std::size_t RequireIndex(std::string_view name) const;

  void AddField(Field field) { fields_.push_back(std::move(field)); }

  /// "name:type, name:type, ..." — used by tests and error messages.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Infers a flat relational schema from a sample of JSON object items the
/// way Spark SQL does when loading JSON (paper Figure 6): a field seen with
/// exactly one native scalar type gets that type; heterogeneous fields and
/// nested values (arrays/objects) are forced to strings; fields absent from
/// some objects remain nullable (every column is nullable here).
SchemaPtr InferSchema(const item::ItemSequence& sample);

}  // namespace rumble::df

#endif  // RUMBLE_DF_SCHEMA_H_
