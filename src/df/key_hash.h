#ifndef RUMBLE_DF_KEY_HASH_H_
#define RUMBLE_DF_KEY_HASH_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/error.h"
#include "src/df/column.h"

namespace rumble::df {

/// Typed hashing and equality over native key columns, shared by the
/// group-by accumulator and the hash joins. Keys hash batch-at-a-time into
/// one 64-bit value per row (one type dispatch per column); collisions are
/// resolved with typed cell equality against a columnar key store. The
/// semantics mirror EncodeKey's byte encoding: a type tag is mixed in before
/// the value so (int64 1) and (bool true) cannot collide, and doubles
/// normalize -0.0 to +0.0.

/// Sentinel chain terminator for hash-table collision chains.
inline constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

inline std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t HashBytes(const char* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

inline std::uint64_t DoubleBits(double value) {
  if (value == 0.0) value = 0.0;  // normalize -0.0, as EncodeKey does
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Folds one key column into the per-row hash accumulator (`hashes` must
/// have one entry per row of `column`). The type tag is mixed in first so
/// (int64 1) and (bool true) keys cannot collide by value.
inline void HashKeyColumn(const Column& column,
                          std::vector<std::uint64_t>* hashes) {
  const std::vector<std::uint8_t>& nulls = column.NullMask();
  std::size_t rows = hashes->size();
  switch (column.type()) {
    case DataType::kInt64: {
      const auto& values = column.Int64Values();
      for (std::size_t r = 0; r < rows; ++r) {
        (*hashes)[r] = MixHash(
            (*hashes)[r],
            nulls[r] ? 0x00ULL
                     : MixHash(0x01, static_cast<std::uint64_t>(values[r])));
      }
      break;
    }
    case DataType::kFloat64: {
      const auto& values = column.Float64Values();
      for (std::size_t r = 0; r < rows; ++r) {
        (*hashes)[r] = MixHash(
            (*hashes)[r],
            nulls[r] ? 0x00ULL : MixHash(0x02, DoubleBits(values[r])));
      }
      break;
    }
    case DataType::kString: {
      const auto& values = column.StringValues();
      for (std::size_t r = 0; r < rows; ++r) {
        (*hashes)[r] = MixHash(
            (*hashes)[r],
            nulls[r] ? 0x00ULL
                     : MixHash(0x03, HashBytes(values[r].data(),
                                               values[r].size())));
      }
      break;
    }
    case DataType::kBool: {
      for (std::size_t r = 0; r < rows; ++r) {
        (*hashes)[r] = MixHash(
            (*hashes)[r],
            nulls[r] ? 0x00ULL : (column.BoolAt(r) ? 0x05ULL : 0x04ULL));
      }
      break;
    }
    case DataType::kItemSeq:
      common::ThrowError(common::ErrorCode::kInternal,
                         "cannot use an item-seq column as a native key");
  }
}

/// Typed equality of one key cell against another, matching EncodeKey's
/// byte-identity semantics (doubles compare by -0.0-normalized bit pattern).
/// Nulls equal only nulls — group-by keys use that to form a null group;
/// joins must additionally exclude null key cells, which never match.
inline bool CellsEqual(const Column& left, std::size_t left_row,
                       const Column& right, std::size_t right_row) {
  bool ln = left.IsNull(left_row);
  bool rn = right.IsNull(right_row);
  if (ln || rn) return ln && rn;
  switch (left.type()) {
    case DataType::kInt64:
      return left.Int64At(left_row) == right.Int64At(right_row);
    case DataType::kFloat64:
      return DoubleBits(left.Float64At(left_row)) ==
             DoubleBits(right.Float64At(right_row));
    case DataType::kString:
      return left.StringAt(left_row) == right.StringAt(right_row);
    case DataType::kBool:
      return left.BoolAt(left_row) == right.BoolAt(right_row);
    case DataType::kItemSeq:
      common::ThrowError(common::ErrorCode::kInternal,
                         "cannot use an item-seq column as a native key");
  }
  return false;
}

}  // namespace rumble::df

#endif  // RUMBLE_DF_KEY_HASH_H_
