#ifndef RUMBLE_DF_JOIN_EXEC_H_
#define RUMBLE_DF_JOIN_EXEC_H_

#include "src/df/logical_plan.h"
#include "src/spark/context.h"

namespace rumble::df {

/// Executes a kJoin node. The caller has already lowered the probe (left)
/// side to `left_rdd`; the build (right) side is executed and collected
/// here, which also yields the actual build footprint used to resolve a
/// JoinStrategy::kAuto the optimizer could not decide from statistics.
///
/// Both strategies produce byte-identical output: probe-major row order
/// (left partition order, then row order), with each probe row's matches in
/// build-side insertion order, and rows whose key cells contain nulls
/// (JSONiq empty sequences) matching nothing. The broadcast strategy builds
/// one replicated hash table; the shuffle strategy hash-partitions the build
/// side into buckets that are individually charged against the
/// exec::MemoryManager or spilled to disk, so large builds are
/// memory-governed (docs/OPTIMIZER.md).
spark::Rdd<RecordBatch> ExecJoin(const LogicalPlan& plan,
                                 spark::Context* context,
                                 spark::Rdd<RecordBatch> left_rdd);

}  // namespace rumble::df

#endif  // RUMBLE_DF_JOIN_EXEC_H_
