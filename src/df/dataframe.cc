#include "src/df/dataframe.h"

#include "src/df/physical_exec.h"

namespace rumble::df {

DataFrame DataFrame::FromBatches(spark::Context* context, SchemaPtr schema,
                                 std::vector<RecordBatch> batches) {
  return DataFrame(
      context, MakeScan(std::move(schema),
                        BatchesToRdd(context, std::move(batches))));
}

DataFrame DataFrame::FromRdd(spark::Context* context, SchemaPtr schema,
                             spark::Rdd<RecordBatch> batches) {
  return DataFrame(context, MakeScan(std::move(schema), std::move(batches)));
}

DataFrame DataFrame::Project(std::vector<NamedExpr> exprs) const {
  return DataFrame(context_, MakeProject(plan_, std::move(exprs)));
}

DataFrame DataFrame::Filter(Predicate predicate) const {
  return DataFrame(context_, MakeFilter(plan_, std::move(predicate)));
}

DataFrame DataFrame::Explode(const std::string& column, bool keep_empty,
                             const std::string& position_column) const {
  return DataFrame(context_,
                   MakeExplode(plan_, column, keep_empty, position_column));
}

DataFrame DataFrame::GroupBy(std::vector<std::string> keys,
                             std::vector<Aggregate> aggregates) const {
  return DataFrame(
      context_, MakeGroupBy(plan_, std::move(keys), std::move(aggregates)));
}

DataFrame DataFrame::Sort(std::vector<SortKey> keys) const {
  return DataFrame(context_, MakeSort(plan_, std::move(keys)));
}

DataFrame DataFrame::ZipIndex(const std::string& index_column) const {
  return DataFrame(context_, MakeZipIndex(plan_, index_column));
}

DataFrame DataFrame::Limit(std::size_t rows) const {
  return DataFrame(context_, MakeLimit(plan_, rows));
}

spark::Rdd<RecordBatch> DataFrame::Execute() const {
  return ExecutePlan(Optimize(plan_), context_);
}

RecordBatch DataFrame::CollectBatch() const {
  return ConcatBatches(Execute().Collect());
}

std::size_t DataFrame::CountRows() const {
  std::size_t total = 0;
  for (const auto& batch : Execute().Collect()) {
    total += batch.num_rows;
  }
  return total;
}

std::string DataFrame::Explain() const {
  return PlanToString(*Optimize(plan_));
}

}  // namespace rumble::df
