#include "src/df/dataframe.h"

#include "src/df/physical_exec.h"
#include "src/df/stats.h"
#include "src/obs/query_profiler.h"
#include "src/util/stopwatch.h"

namespace rumble::df {

namespace {

/// Translates the config knobs into the optimizer's cost-model options.
OptimizerOptions OptionsFor(spark::Context* context) {
  OptimizerOptions options;
  if (context == nullptr) return options;
  const common::RumbleConfig& config = context->config();
  options.broadcast_threshold_bytes = config.join_broadcast_threshold_bytes;
  if (config.join_strategy == "broadcast") {
    options.forced_strategy = JoinStrategy::kBroadcast;
  } else if (config.join_strategy == "shuffle") {
    options.forced_strategy = JoinStrategy::kShuffle;
  }
  return options;
}

}  // namespace

DataFrame DataFrame::FromBatches(spark::Context* context, SchemaPtr schema,
                                 std::vector<RecordBatch> batches) {
  // Materialized inputs are profiled here — "statistics collected at scan"
  // (docs/OPTIMIZER.md). Lazy scans (FromRdd) carry no statistics; EXPLAIN
  // never executes anything to obtain them.
  TableStatsPtr stats =
      CollectTableStats(*schema, batches, context ? &context->bus() : nullptr);
  return DataFrame(context,
                   MakeScan(std::move(schema),
                            BatchesToRdd(context, std::move(batches)),
                            std::move(stats)));
}

DataFrame DataFrame::FromRdd(spark::Context* context, SchemaPtr schema,
                             spark::Rdd<RecordBatch> batches) {
  return DataFrame(context, MakeScan(std::move(schema), std::move(batches)));
}

DataFrame DataFrame::Project(std::vector<NamedExpr> exprs) const {
  return DataFrame(context_, MakeProject(plan_, std::move(exprs)));
}

DataFrame DataFrame::Filter(Predicate predicate) const {
  return DataFrame(context_, MakeFilter(plan_, std::move(predicate)));
}

DataFrame DataFrame::Explode(const std::string& column, bool keep_empty,
                             const std::string& position_column) const {
  return DataFrame(context_,
                   MakeExplode(plan_, column, keep_empty, position_column));
}

DataFrame DataFrame::GroupBy(std::vector<std::string> keys,
                             std::vector<Aggregate> aggregates) const {
  return DataFrame(
      context_, MakeGroupBy(plan_, std::move(keys), std::move(aggregates)));
}

DataFrame DataFrame::Sort(std::vector<SortKey> keys) const {
  return DataFrame(context_, MakeSort(plan_, std::move(keys)));
}

DataFrame DataFrame::ZipIndex(const std::string& index_column) const {
  return DataFrame(context_, MakeZipIndex(plan_, index_column));
}

DataFrame DataFrame::Limit(std::size_t rows) const {
  return DataFrame(context_, MakeLimit(plan_, rows));
}

DataFrame DataFrame::Join(const DataFrame& build, std::vector<JoinKey> keys,
                          JoinStrategy strategy) const {
  return DataFrame(context_,
                   MakeJoin(plan_, build.plan_, std::move(keys), strategy));
}

spark::Rdd<RecordBatch> DataFrame::Execute() const {
  // Time the optimizer pass onto the owning query's profile. DataFrames are
  // forced lazily, so this may run on whichever thread first executes the
  // frame — the job binding travels with the thread, and optimize_nanos is
  // atomic (a query can optimize several frames; they accumulate).
  util::Stopwatch watch;
  PlanPtr plan = Optimize(plan_, OptionsFor(context_));
  if (context_ != nullptr) {
    std::int64_t job = obs::ThreadJobBinding::current();
    if (job >= 0) {
      if (auto profile = context_->bus().profiler()->Find(job)) {
        profile->optimize_nanos.fetch_add(watch.ElapsedNanos(),
                                          std::memory_order_relaxed);
      }
    }
  }
  return ExecutePlan(std::move(plan), context_);
}

RecordBatch DataFrame::CollectBatch() const {
  return ConcatBatches(Execute().Collect());
}

std::size_t DataFrame::CountRows() const {
  std::size_t total = 0;
  for (const auto& batch : Execute().Collect()) {
    total += batch.num_rows;
  }
  return total;
}

std::string DataFrame::Explain() const {
  return PlanToString(*Optimize(plan_, OptionsFor(context_)));
}

}  // namespace rumble::df
