#ifndef RUMBLE_DF_EXPRESSIONS_H_
#define RUMBLE_DF_EXPRESSIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/df/column.h"
#include "src/df/schema.h"

namespace rumble::df {

/// Read-only view of one row of a batch, resolved against a schema.
class RowView {
 public:
  RowView(const Schema* schema, const RecordBatch* batch, std::size_t row)
      : schema_(schema), batch_(batch), row_(row) {}

  const Schema& schema() const { return *schema_; }
  std::size_t row() const { return row_; }

  bool IsNull(std::size_t column) const {
    return batch_->columns[column].IsNull(row_);
  }
  std::int64_t Int64(std::size_t column) const {
    return batch_->columns[column].Int64At(row_);
  }
  double Float64(std::size_t column) const {
    return batch_->columns[column].Float64At(row_);
  }
  const std::string& String(std::size_t column) const {
    return batch_->columns[column].StringAt(row_);
  }
  bool Bool(std::size_t column) const {
    return batch_->columns[column].BoolAt(row_);
  }
  const item::ItemSequence& Seq(std::size_t column) const {
    return batch_->columns[column].SeqAt(row_);
  }

  /// Column index by name (schema lookup).
  std::size_t ColumnIndex(std::string_view name) const {
    return schema_->RequireIndex(name);
  }

 private:
  const Schema* schema_;
  const RecordBatch* batch_;
  std::size_t row_;
};

/// A user-defined function evaluated over one whole batch: appends exactly
/// `batch.num_rows` values (possibly nulls) to the output column builder.
/// The paper's EVALUATE_EXPRESSION UDFs (Sections 4.4-4.6) are instances of
/// this; the batch granularity lets implementations set up per-task state
/// (e.g. clone a runtime-iterator tree) once per batch instead of per row.
/// The declared input columns drive the optimizer's column pruning.
struct Udf {
  std::function<void(const Schema&, const RecordBatch&, Column*)> eval;
  std::vector<std::string> inputs;
};

/// A projection output: either a pass-through column reference or a UDF.
struct NamedExpr {
  std::string name;
  DataType type = DataType::kItemSeq;
  /// When non-empty, pass through this input column and ignore `udf`.
  std::string source_column;
  Udf udf;

  static NamedExpr Ref(std::string output, std::string input, DataType type) {
    NamedExpr expr;
    expr.name = std::move(output);
    expr.type = type;
    expr.source_column = std::move(input);
    return expr;
  }

  static NamedExpr Computed(std::string output, DataType type, Udf udf) {
    NamedExpr expr;
    expr.name = std::move(output);
    expr.type = type;
    expr.udf = std::move(udf);
    return expr;
  }

  bool is_column_ref() const { return !source_column.empty(); }
};

/// A boolean predicate for Filter, evaluated over one whole batch: returns a
/// selection mask of length `batch.num_rows` (non-zero keeps the row).
struct Predicate {
  std::function<std::vector<char>(const Schema&, const RecordBatch&)> eval;
  std::vector<std::string> inputs;
  /// Estimated fraction of rows kept, in [0, 1]; -1 means unknown (the cost
  /// model then assumes 0.5). Translators set this for predicate shapes they
  /// recognize; the optimizer orders stacked filters most-selective-first.
  double selectivity_hint = -1.0;
};

/// Sort key over a native column. `nulls_smallest` mirrors the JSONiq
/// "empty least/greatest" choice after key-column encoding.
struct SortKey {
  std::string column;
  bool ascending = true;
  bool nulls_smallest = true;
};

enum class AggKind {
  kCollect,   // SEQUENCE(): concatenate item sequences of the group
  kCount,     // COUNT(): number of tuples in the group
  kFirst,     // arbitrary witness (used to recover grouping-key items)
  kSumInt64,  // SUM() over a native int64 column
  kMinInt64,
  kMaxInt64,
};

struct Aggregate {
  std::string input_column;  // ignored for kCount
  std::string output_name;
  AggKind kind = AggKind::kCollect;
};

}  // namespace rumble::df

#endif  // RUMBLE_DF_EXPRESSIONS_H_
