#ifndef RUMBLE_DF_COLUMN_H_
#define RUMBLE_DF_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/df/schema.h"
#include "src/item/item.h"

namespace rumble::df {

/// Row indices selecting a subset (or permutation) of a batch's rows — the
/// selection vectors the vectorized kernels gather through
/// (docs/PERFORMANCE.md). 32 bits bound batches to 4B rows, far beyond a
/// single partition's size.
using SelectionVector = std::vector<std::uint32_t>;

/// One column of one partition's record batch. Values of the declared type
/// live in the matching typed vector; every column carries a null mask
/// (native columns from schema inference are nullable — Figure 6; kItemSeq
/// columns encode "absent" as the empty sequence and never use the mask).
///
/// Column buffers are copy-on-write: copying a Column shares the underlying
/// typed vectors (a refcount bump), and the first mutation of a shared
/// column detaches a private copy. Pass-through projections, batch copies
/// into RDD partitions and shuffle fan-out therefore cost O(1) per column
/// instead of O(rows) — the bulk of the row-at-a-time overhead the
/// vectorized kernels remove.
class Column {
 public:
  Column() : Column(DataType::kItemSeq) {}
  explicit Column(DataType type)
      : type_(type), data_(std::make_shared<Data>()) {}

  DataType type() const { return type_; }
  std::size_t size() const { return data_->size; }

  // -- Appenders ---------------------------------------------------------
  void AppendInt64(std::int64_t value);
  void AppendFloat64(double value);
  void AppendString(std::string value);
  void AppendBool(bool value);
  void AppendSeq(item::ItemSequence value);
  void AppendNull();

  /// Appends row `row` of `other` (same type) to this column. The scalar
  /// reference path; bulk movement goes through AppendRange / AppendGather.
  void AppendFrom(const Column& other, std::size_t row);

  /// Appends rows [begin, begin + count) of `other` (same type) in one
  /// range-insert per typed vector: one type dispatch per call instead of
  /// one per row.
  void AppendRange(const Column& other, std::size_t begin, std::size_t count);

  /// Appends `other`'s rows at the selection-vector positions, in selection
  /// order. One type dispatch per call; the per-type loop is a tight
  /// index-gather over contiguous vectors.
  void AppendGather(const Column& other, const SelectionVector& selection);

  // -- Accessors (no type checks in release-hot paths; callers go through
  // the schema) ------------------------------------------------------------
  bool IsNull(std::size_t row) const { return data_->nulls[row] != 0; }
  std::int64_t Int64At(std::size_t row) const { return data_->ints[row]; }
  double Float64At(std::size_t row) const { return data_->doubles[row]; }
  const std::string& StringAt(std::size_t row) const {
    return data_->strings[row];
  }
  bool BoolAt(std::size_t row) const { return data_->bools[row] != 0; }
  const item::ItemSequence& SeqAt(std::size_t row) const {
    return data_->seqs[row];
  }

  /// Whole-vector views for vectorized scans (sort-key family checks,
  /// typed group-by hashing). Only the vector matching type() is populated.
  const std::vector<std::int64_t>& Int64Values() const { return data_->ints; }
  const std::vector<double>& Float64Values() const { return data_->doubles; }
  const std::vector<std::string>& StringValues() const {
    return data_->strings;
  }
  const std::vector<std::uint8_t>& NullMask() const { return data_->nulls; }

  /// Reserves capacity in the null mask and the typed vector selected by the
  /// declared type — the same vector every appender (including AppendNull)
  /// pushes into, so a reserved column never reallocates while filling.
  void Reserve(std::size_t rows);

 private:
  /// The shared buffer: every vector plus the row count, detached on write.
  struct Data {
    std::size_t size = 0;
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    std::vector<std::uint8_t> bools;
    std::vector<item::ItemSequence> seqs;
    std::vector<std::uint8_t> nulls;
  };

  /// Write access to the buffer; clones it first when shared (copy-on-write).
  Data& Mutable() {
    if (data_.use_count() > 1) data_ = std::make_shared<Data>(*data_);
    return *data_;
  }

  DataType type_;
  std::shared_ptr<Data> data_;
};

/// One partition's worth of rows, column-major.
struct RecordBatch {
  std::vector<Column> columns;
  std::size_t num_rows = 0;
};

/// Concatenates batches (same layout) into one via bulk range appends.
RecordBatch ConcatBatches(std::vector<RecordBatch> batches);

/// Splits a batch into `parts` contiguous batches of near-equal size.
std::vector<RecordBatch> SplitBatch(const RecordBatch& batch, int parts);

/// Copies row `row` of `input` into the builders of `output`. The scalar
/// reference path the equivalence tests compare the kernels against.
void AppendRow(const RecordBatch& input, std::size_t row, RecordBatch* output);

/// Gathers the selected rows of `input` into a new batch, in selection
/// order. One type dispatch per column.
RecordBatch GatherBatch(const RecordBatch& input,
                        const SelectionVector& selection);

/// A contiguous slice [begin, begin + count) of `input` as a new batch.
RecordBatch SliceBatch(const RecordBatch& input, std::size_t begin,
                       std::size_t count);

}  // namespace rumble::df

#endif  // RUMBLE_DF_COLUMN_H_
