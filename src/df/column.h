#ifndef RUMBLE_DF_COLUMN_H_
#define RUMBLE_DF_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/df/schema.h"
#include "src/item/item.h"

namespace rumble::df {

/// One column of one partition's record batch. Values of the declared type
/// live in the matching typed vector; every column carries a null mask
/// (native columns from schema inference are nullable — Figure 6; kItemSeq
/// columns encode "absent" as the empty sequence and never use the mask).
class Column {
 public:
  Column() : type_(DataType::kItemSeq) {}
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  std::size_t size() const { return size_; }

  // -- Appenders ---------------------------------------------------------
  void AppendInt64(std::int64_t value);
  void AppendFloat64(double value);
  void AppendString(std::string value);
  void AppendBool(bool value);
  void AppendSeq(item::ItemSequence value);
  void AppendNull();

  /// Appends row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, std::size_t row);

  // -- Accessors (no type checks in release-hot paths; callers go through
  // the schema) ------------------------------------------------------------
  bool IsNull(std::size_t row) const { return nulls_[row] != 0; }
  std::int64_t Int64At(std::size_t row) const { return ints_[row]; }
  double Float64At(std::size_t row) const { return doubles_[row]; }
  const std::string& StringAt(std::size_t row) const { return strings_[row]; }
  bool BoolAt(std::size_t row) const { return bools_[row] != 0; }
  const item::ItemSequence& SeqAt(std::size_t row) const { return seqs_[row]; }

  void Reserve(std::size_t rows);

 private:
  DataType type_;
  std::size_t size_ = 0;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<std::uint8_t> bools_;
  std::vector<item::ItemSequence> seqs_;
  std::vector<std::uint8_t> nulls_;
};

/// One partition's worth of rows, column-major.
struct RecordBatch {
  std::vector<Column> columns;
  std::size_t num_rows = 0;
};

/// Concatenates batches (same layout) into one.
RecordBatch ConcatBatches(std::vector<RecordBatch> batches);

/// Splits a batch into `parts` contiguous batches of near-equal size.
std::vector<RecordBatch> SplitBatch(const RecordBatch& batch, int parts);

/// Copies row `row` of `input` into the builders of `output`.
void AppendRow(const RecordBatch& input, std::size_t row, RecordBatch* output);

}  // namespace rumble::df

#endif  // RUMBLE_DF_COLUMN_H_
