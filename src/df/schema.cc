#include "src/df/schema.h"

#include <map>

#include "src/common/error.h"

namespace rumble::df {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString: return "string";
    case DataType::kBool: return "bool";
    case DataType::kItemSeq: return "item-seq";
  }
  return "unknown";
}

int Schema::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::size_t Schema::RequireIndex(std::string_view name) const {
  int index = IndexOf(name);
  if (index < 0) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "unknown DataFrame column: " + std::string(name) +
                           " in schema [" + ToString() + "]");
  }
  return static_cast<std::size_t>(index);
}

std::string Schema::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

SchemaPtr InferSchema(const item::ItemSequence& sample) {
  // For each key: the single scalar type observed, or kString once types
  // conflict or a nested value appears. Insertion order is preserved via a
  // parallel vector.
  std::map<std::string, DataType, std::less<>> types;
  std::vector<std::string> order;

  auto scalar_type = [](const item::Item& value) -> DataType {
    switch (value.type()) {
      case item::ItemType::kBoolean: return DataType::kBool;
      case item::ItemType::kInteger: return DataType::kInt64;
      case item::ItemType::kDecimal:
      case item::ItemType::kDouble: return DataType::kFloat64;
      case item::ItemType::kString: return DataType::kString;
      default: return DataType::kString;  // nested or null -> string column
    }
  };

  for (const auto& object : sample) {
    if (!object->IsObject()) continue;
    for (const auto& key : object->Keys()) {
      item::ItemPtr value = object->ValueForKey(key);
      if (value->IsNull()) continue;  // nulls do not constrain the type
      DataType observed = scalar_type(*value);
      // Nested values always degrade the column to string (Figure 6).
      if (value->IsArray() || value->IsObject()) observed = DataType::kString;
      auto it = types.find(key);
      if (it == types.end()) {
        types.emplace(std::string(key), observed);
        order.push_back(std::string(key));
      } else if (it->second != observed) {
        // Numeric widening int64 -> float64 is allowed; everything else
        // degrades to string.
        bool numeric_widening =
            (it->second == DataType::kInt64 &&
             observed == DataType::kFloat64) ||
            (it->second == DataType::kFloat64 &&
             observed == DataType::kInt64);
        it->second = numeric_widening ? DataType::kFloat64 : DataType::kString;
      }
    }
  }

  std::vector<Field> fields;
  fields.reserve(order.size());
  for (const auto& key : order) {
    fields.push_back(Field{key, types[key]});
  }
  return std::make_shared<Schema>(std::move(fields));
}

}  // namespace rumble::df
