#include "src/df/batch_serde.h"

#include <cstdint>
#include <cstring>

#include "src/common/error.h"
#include "src/item/item.h"
#include "src/item/item_serde.h"

namespace rumble::df {

namespace {

void PutRaw(const void* data, std::size_t size, std::string* out) {
  out->append(static_cast<const char*>(data), size);
}

void GetRaw(const char** cursor, const char* end, void* data,
            std::size_t size) {
  if (static_cast<std::size_t>(end - *cursor) < size) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "spill decode: truncated batch buffer");
  }
  std::memcpy(data, *cursor, size);
  *cursor += size;
}

void PutU64(std::uint64_t value, std::string* out) {
  PutRaw(&value, sizeof(value), out);
}

std::uint64_t GetU64(const char** cursor, const char* end) {
  std::uint64_t value = 0;
  GetRaw(cursor, end, &value, sizeof(value));
  return value;
}

void PutString(const std::string& value, std::string* out) {
  PutU64(value.size(), out);
  out->append(value);
}

std::string GetStringPayload(const char** cursor, const char* end) {
  std::uint64_t size = GetU64(cursor, end);
  if (static_cast<std::uint64_t>(end - *cursor) < size) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "spill decode: truncated batch string");
  }
  std::string value(*cursor, static_cast<std::size_t>(size));
  *cursor += size;
  return value;
}

}  // namespace

void EncodeColumn(const Column& column, std::string* out) {
  out->push_back(static_cast<char>(column.type()));
  std::size_t rows = column.size();
  PutU64(rows, out);
  for (std::size_t row = 0; row < rows; ++row) {
    out->push_back(column.IsNull(row) ? 1 : 0);
  }
  for (std::size_t row = 0; row < rows; ++row) {
    if (column.IsNull(row)) continue;  // null rows carry no payload
    switch (column.type()) {
      case DataType::kInt64: {
        std::int64_t value = column.Int64At(row);
        PutRaw(&value, sizeof(value), out);
        break;
      }
      case DataType::kFloat64: {
        double value = column.Float64At(row);
        PutRaw(&value, sizeof(value), out);
        break;
      }
      case DataType::kString:
        PutString(column.StringAt(row), out);
        break;
      case DataType::kBool:
        out->push_back(column.BoolAt(row) ? 1 : 0);
        break;
      case DataType::kItemSeq: {
        const item::ItemSequence& seq = column.SeqAt(row);
        PutU64(seq.size(), out);
        for (const item::ItemPtr& item : seq) {
          item::EncodeItem(item, out);
        }
        break;
      }
    }
  }
}

Column DecodeColumn(const char** cursor, const char* end) {
  std::uint8_t tag = 0;
  GetRaw(cursor, end, &tag, 1);
  Column column(static_cast<DataType>(tag));
  std::uint64_t rows = GetU64(cursor, end);
  std::vector<std::uint8_t> nulls(rows, 0);
  if (rows > 0) GetRaw(cursor, end, nulls.data(), rows);
  column.Reserve(rows);
  for (std::uint64_t row = 0; row < rows; ++row) {
    if (nulls[row] != 0) {
      column.AppendNull();
      continue;
    }
    switch (column.type()) {
      case DataType::kInt64: {
        std::int64_t value = 0;
        GetRaw(cursor, end, &value, sizeof(value));
        column.AppendInt64(value);
        break;
      }
      case DataType::kFloat64: {
        double value = 0;
        GetRaw(cursor, end, &value, sizeof(value));
        column.AppendFloat64(value);
        break;
      }
      case DataType::kString:
        column.AppendString(GetStringPayload(cursor, end));
        break;
      case DataType::kBool: {
        std::uint8_t value = 0;
        GetRaw(cursor, end, &value, 1);
        column.AppendBool(value != 0);
        break;
      }
      case DataType::kItemSeq: {
        std::uint64_t count = GetU64(cursor, end);
        item::ItemSequence seq;
        seq.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          seq.push_back(item::DecodeItem(cursor, end));
        }
        column.AppendSeq(std::move(seq));
        break;
      }
    }
  }
  return column;
}

void EncodeBatch(const RecordBatch& batch, std::string* out) {
  PutU64(batch.columns.size(), out);
  PutU64(batch.num_rows, out);
  for (const Column& column : batch.columns) EncodeColumn(column, out);
}

RecordBatch DecodeBatch(const char** cursor, const char* end) {
  RecordBatch batch;
  std::uint64_t columns = GetU64(cursor, end);
  batch.num_rows = static_cast<std::size_t>(GetU64(cursor, end));
  batch.columns.reserve(columns);
  for (std::uint64_t i = 0; i < columns; ++i) {
    batch.columns.push_back(DecodeColumn(cursor, end));
  }
  return batch;
}

std::size_t ApproxBatchBytes(const RecordBatch& batch) {
  std::size_t total = sizeof(RecordBatch);
  for (const Column& column : batch.columns) {
    std::size_t rows = column.size();
    total += sizeof(Column) + rows;  // null mask
    switch (column.type()) {
      case DataType::kInt64:
      case DataType::kFloat64:
        total += rows * 8;
        break;
      case DataType::kBool:
        total += rows;
        break;
      case DataType::kString:
        for (std::size_t row = 0; row < rows; ++row) {
          total += sizeof(std::string) + column.StringAt(row).size();
        }
        break;
      case DataType::kItemSeq:
        for (std::size_t row = 0; row < rows; ++row) {
          for (const item::ItemPtr& item : column.SeqAt(row)) {
            total += item::ApproxByteSize(item);
          }
          total += sizeof(item::ItemSequence);
        }
        break;
    }
  }
  return total;
}

}  // namespace rumble::df
