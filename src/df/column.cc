#include "src/df/column.h"

#include "src/common/error.h"

namespace rumble::df {

void Column::AppendInt64(std::int64_t value) {
  ints_.push_back(value);
  nulls_.push_back(0);
  ++size_;
}

void Column::AppendFloat64(double value) {
  doubles_.push_back(value);
  nulls_.push_back(0);
  ++size_;
}

void Column::AppendString(std::string value) {
  strings_.push_back(std::move(value));
  nulls_.push_back(0);
  ++size_;
}

void Column::AppendBool(bool value) {
  bools_.push_back(value ? 1 : 0);
  nulls_.push_back(0);
  ++size_;
}

void Column::AppendSeq(item::ItemSequence value) {
  seqs_.push_back(std::move(value));
  nulls_.push_back(0);
  ++size_;
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64: ints_.push_back(0); break;
    case DataType::kFloat64: doubles_.push_back(0); break;
    case DataType::kString: strings_.emplace_back(); break;
    case DataType::kBool: bools_.push_back(0); break;
    case DataType::kItemSeq: seqs_.emplace_back(); break;
  }
  nulls_.push_back(1);
  ++size_;
}

void Column::AppendFrom(const Column& other, std::size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64: AppendInt64(other.Int64At(row)); break;
    case DataType::kFloat64: AppendFloat64(other.Float64At(row)); break;
    case DataType::kString: AppendString(other.StringAt(row)); break;
    case DataType::kBool: AppendBool(other.BoolAt(row)); break;
    case DataType::kItemSeq: AppendSeq(other.SeqAt(row)); break;
  }
}

void Column::Reserve(std::size_t rows) {
  nulls_.reserve(rows);
  switch (type_) {
    case DataType::kInt64: ints_.reserve(rows); break;
    case DataType::kFloat64: doubles_.reserve(rows); break;
    case DataType::kString: strings_.reserve(rows); break;
    case DataType::kBool: bools_.reserve(rows); break;
    case DataType::kItemSeq: seqs_.reserve(rows); break;
  }
}

RecordBatch ConcatBatches(std::vector<RecordBatch> batches) {
  RecordBatch out;
  if (batches.empty()) return out;
  std::size_t total = 0;
  for (const auto& batch : batches) total += batch.num_rows;
  out.columns.reserve(batches.front().columns.size());
  for (const auto& column : batches.front().columns) {
    Column builder(column.type());
    builder.Reserve(total);
    out.columns.push_back(std::move(builder));
  }
  for (const auto& batch : batches) {
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      AppendRow(batch, row, &out);
    }
  }
  out.num_rows = total;
  return out;
}

std::vector<RecordBatch> SplitBatch(const RecordBatch& batch, int parts) {
  if (parts < 1) parts = 1;
  std::vector<RecordBatch> out;
  out.reserve(static_cast<std::size_t>(parts));
  std::size_t total = batch.num_rows;
  auto n = static_cast<std::size_t>(parts);
  std::size_t chunk = total / n;
  std::size_t remainder = total % n;
  std::size_t row = 0;
  for (std::size_t p = 0; p < n; ++p) {
    RecordBatch piece;
    for (const auto& column : batch.columns) {
      piece.columns.emplace_back(column.type());
    }
    std::size_t size = chunk + (p < remainder ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i, ++row) {
      AppendRow(batch, row, &piece);
    }
    piece.num_rows = size;
    out.push_back(std::move(piece));
  }
  return out;
}

void AppendRow(const RecordBatch& input, std::size_t row, RecordBatch* output) {
  if (output->columns.size() != input.columns.size()) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "AppendRow: batch layout mismatch");
  }
  for (std::size_t c = 0; c < input.columns.size(); ++c) {
    output->columns[c].AppendFrom(input.columns[c], row);
  }
  ++output->num_rows;
}

}  // namespace rumble::df
