#include "src/df/column.h"

#include "src/common/error.h"

namespace rumble::df {

void Column::AppendInt64(std::int64_t value) {
  Data& data = Mutable();
  data.ints.push_back(value);
  data.nulls.push_back(0);
  ++data.size;
}

void Column::AppendFloat64(double value) {
  Data& data = Mutable();
  data.doubles.push_back(value);
  data.nulls.push_back(0);
  ++data.size;
}

void Column::AppendString(std::string value) {
  Data& data = Mutable();
  data.strings.push_back(std::move(value));
  data.nulls.push_back(0);
  ++data.size;
}

void Column::AppendBool(bool value) {
  Data& data = Mutable();
  data.bools.push_back(value ? 1 : 0);
  data.nulls.push_back(0);
  ++data.size;
}

void Column::AppendSeq(item::ItemSequence value) {
  Data& data = Mutable();
  data.seqs.push_back(std::move(value));
  data.nulls.push_back(0);
  ++data.size;
}

void Column::AppendNull() {
  Data& data = Mutable();
  switch (type_) {
    case DataType::kInt64: data.ints.push_back(0); break;
    case DataType::kFloat64: data.doubles.push_back(0); break;
    case DataType::kString: data.strings.emplace_back(); break;
    case DataType::kBool: data.bools.push_back(0); break;
    case DataType::kItemSeq: data.seqs.emplace_back(); break;
  }
  data.nulls.push_back(1);
  ++data.size;
}

void Column::AppendFrom(const Column& other, std::size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64: AppendInt64(other.Int64At(row)); break;
    case DataType::kFloat64: AppendFloat64(other.Float64At(row)); break;
    case DataType::kString: AppendString(other.StringAt(row)); break;
    case DataType::kBool: AppendBool(other.BoolAt(row)); break;
    case DataType::kItemSeq: AppendSeq(other.SeqAt(row)); break;
  }
}

void Column::AppendRange(const Column& other, std::size_t begin,
                         std::size_t count) {
  if (count == 0) return;
  Data& data = Mutable();
  const Data& src = *other.data_;
  auto b = static_cast<std::ptrdiff_t>(begin);
  auto e = static_cast<std::ptrdiff_t>(begin + count);
  switch (type_) {
    case DataType::kInt64:
      data.ints.insert(data.ints.end(), src.ints.begin() + b,
                       src.ints.begin() + e);
      break;
    case DataType::kFloat64:
      data.doubles.insert(data.doubles.end(), src.doubles.begin() + b,
                          src.doubles.begin() + e);
      break;
    case DataType::kString:
      data.strings.insert(data.strings.end(), src.strings.begin() + b,
                          src.strings.begin() + e);
      break;
    case DataType::kBool:
      data.bools.insert(data.bools.end(), src.bools.begin() + b,
                        src.bools.begin() + e);
      break;
    case DataType::kItemSeq:
      data.seqs.insert(data.seqs.end(), src.seqs.begin() + b,
                       src.seqs.begin() + e);
      break;
  }
  data.nulls.insert(data.nulls.end(), src.nulls.begin() + b,
                    src.nulls.begin() + e);
  data.size += count;
}

void Column::AppendGather(const Column& other,
                          const SelectionVector& selection) {
  if (selection.empty()) return;
  Data& data = Mutable();
  const Data& src = *other.data_;
  switch (type_) {
    case DataType::kInt64:
      data.ints.reserve(data.ints.size() + selection.size());
      for (std::uint32_t row : selection) data.ints.push_back(src.ints[row]);
      break;
    case DataType::kFloat64:
      data.doubles.reserve(data.doubles.size() + selection.size());
      for (std::uint32_t row : selection) {
        data.doubles.push_back(src.doubles[row]);
      }
      break;
    case DataType::kString:
      data.strings.reserve(data.strings.size() + selection.size());
      for (std::uint32_t row : selection) {
        data.strings.push_back(src.strings[row]);
      }
      break;
    case DataType::kBool:
      data.bools.reserve(data.bools.size() + selection.size());
      for (std::uint32_t row : selection) data.bools.push_back(src.bools[row]);
      break;
    case DataType::kItemSeq:
      data.seqs.reserve(data.seqs.size() + selection.size());
      for (std::uint32_t row : selection) data.seqs.push_back(src.seqs[row]);
      break;
  }
  data.nulls.reserve(data.nulls.size() + selection.size());
  for (std::uint32_t row : selection) data.nulls.push_back(src.nulls[row]);
  data.size += selection.size();
}

void Column::Reserve(std::size_t rows) {
  Data& data = Mutable();
  data.nulls.reserve(rows);
  switch (type_) {
    case DataType::kInt64: data.ints.reserve(rows); break;
    case DataType::kFloat64: data.doubles.reserve(rows); break;
    case DataType::kString: data.strings.reserve(rows); break;
    case DataType::kBool: data.bools.reserve(rows); break;
    case DataType::kItemSeq: data.seqs.reserve(rows); break;
  }
}

RecordBatch ConcatBatches(std::vector<RecordBatch> batches) {
  RecordBatch out;
  if (batches.empty()) return out;
  if (batches.size() == 1) return std::move(batches.front());
  std::size_t total = 0;
  for (const auto& batch : batches) total += batch.num_rows;
  out.columns.reserve(batches.front().columns.size());
  for (const auto& column : batches.front().columns) {
    Column builder(column.type());
    builder.Reserve(total);
    out.columns.push_back(std::move(builder));
  }
  for (const auto& batch : batches) {
    if (batch.columns.size() != out.columns.size()) {
      common::ThrowError(common::ErrorCode::kInternal,
                         "ConcatBatches: batch layout mismatch");
    }
    for (std::size_t c = 0; c < batch.columns.size(); ++c) {
      out.columns[c].AppendRange(batch.columns[c], 0, batch.num_rows);
    }
  }
  out.num_rows = total;
  return out;
}

std::vector<RecordBatch> SplitBatch(const RecordBatch& batch, int parts) {
  if (parts < 1) parts = 1;
  std::vector<RecordBatch> out;
  out.reserve(static_cast<std::size_t>(parts));
  std::size_t total = batch.num_rows;
  auto n = static_cast<std::size_t>(parts);
  std::size_t chunk = total / n;
  std::size_t remainder = total % n;
  std::size_t row = 0;
  for (std::size_t p = 0; p < n; ++p) {
    std::size_t size = chunk + (p < remainder ? 1 : 0);
    out.push_back(SliceBatch(batch, row, size));
    row += size;
  }
  return out;
}

void AppendRow(const RecordBatch& input, std::size_t row, RecordBatch* output) {
  if (output->columns.size() != input.columns.size()) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "AppendRow: batch layout mismatch");
  }
  for (std::size_t c = 0; c < input.columns.size(); ++c) {
    output->columns[c].AppendFrom(input.columns[c], row);
  }
  ++output->num_rows;
}

RecordBatch GatherBatch(const RecordBatch& input,
                        const SelectionVector& selection) {
  RecordBatch out;
  out.columns.reserve(input.columns.size());
  for (const auto& column : input.columns) {
    Column built(column.type());
    built.AppendGather(column, selection);
    out.columns.push_back(std::move(built));
  }
  out.num_rows = selection.size();
  return out;
}

RecordBatch SliceBatch(const RecordBatch& input, std::size_t begin,
                       std::size_t count) {
  RecordBatch out;
  out.columns.reserve(input.columns.size());
  for (const auto& column : input.columns) {
    Column built(column.type());
    built.AppendRange(column, begin, count);
    out.columns.push_back(std::move(built));
  }
  out.num_rows = count;
  return out;
}

}  // namespace rumble::df
