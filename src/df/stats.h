#ifndef RUMBLE_DF_STATS_H_
#define RUMBLE_DF_STATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/df/logical_plan.h"

namespace rumble::obs {
class EventBus;
}  // namespace rumble::obs

namespace rumble::df {

/// Distinct-value tracking is exact up to this many values per column, then
/// marked capped (the estimate becomes a lower bound). The tracker stores
/// 64-bit cell hashes, so a hash collision can undercount by one — fine for
/// cardinality estimation, never used for semantics.
inline constexpr std::size_t kStatsDistinctCap = 4096;

/// Per-column statistics collected at scan time (docs/OPTIMIZER.md):
/// null count, a capped-exact distinct estimate, and min/max for the value
/// families that order meaningfully. Item-seq columns are profiled through
/// their cell values: an empty sequence counts as null, and singleton
/// numbers/strings feed the min/max trackers.
struct ColumnStats {
  std::uint64_t null_count = 0;
  std::uint64_t distinct = 0;
  bool distinct_capped = false;
  bool has_number = false;
  double min_number = 0.0;
  double max_number = 0.0;
  bool has_string = false;
  std::string min_string;
  std::string max_string;
};

/// Table-level statistics: row count, the batch footprint in the same units
/// the MemoryManager reservations use (ApproxBatchBytes), and one
/// ColumnStats per schema field.
struct TableStats {
  std::uint64_t row_count = 0;
  std::uint64_t bytes = 0;
  std::vector<ColumnStats> columns;
};

/// One pass over materialized batches. Publishes stats.collections /
/// stats.rows counters when `bus` is non-null.
TableStatsPtr CollectTableStats(const Schema& schema,
                                const std::vector<RecordBatch>& batches,
                                obs::EventBus* bus = nullptr);

/// Cardinality propagation through the logical plan (docs/OPTIMIZER.md
/// documents the per-node rules). Returns -1 when no scan below carries
/// statistics; never executes anything.
double EstimateRows(const LogicalPlan& plan);

/// Distinct-value estimate for `column` of `plan`'s output, resolved by
/// walking pass-through projections down to a statistics-bearing scan.
/// Returns -1 for computed columns or stats-free scans.
double EstimateColumnDistinct(const LogicalPlan& plan,
                              const std::string& column);

/// Average in-memory bytes per output row, taken from the deepest
/// statistics-bearing scan (projection width changes are ignored — this is
/// a cost-model heuristic, not an accounting number). Returns -1 unknown.
double EstimateAvgRowBytes(const LogicalPlan& plan);

/// EstimateRows x EstimateAvgRowBytes — the broadcast-vs-shuffle input.
/// Returns -1 when either factor is unknown.
double EstimateBytes(const LogicalPlan& plan);

/// Formats an estimate for EXPLAIN plan lines: "~123 rows" or "? rows".
std::string FormatEstimate(double rows);

}  // namespace rumble::df

#endif  // RUMBLE_DF_STATS_H_
