#include "src/df/physical_exec.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "src/common/error.h"
#include "src/df/batch_serde.h"
#include "src/df/join_exec.h"
#include "src/df/kernel_probe.h"
#include "src/df/key_hash.h"
#include "src/exec/cancellation.h"
#include "src/exec/memory_manager.h"
#include "src/exec/spill_file.h"
#include "src/item/item_serde.h"
#include "src/util/stopwatch.h"

namespace rumble::df {

namespace {

using spark::Context;
using spark::Rdd;

/// Rows per encoded chunk when a sorted run or output partition spills —
/// bounds the working set of the external merge (docs/MEMORY.md).
constexpr std::size_t kDfSpillChunkRows = 4096;

// Raw little-endian scalar helpers for the group-run spill format (the batch
// payloads themselves go through batch_serde).
void SpillPutU64(std::uint64_t value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void SpillGetRaw(const char** cursor, const char* end, void* data,
                 std::size_t size) {
  if (static_cast<std::size_t>(end - *cursor) < size) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "spill decode: truncated group run");
  }
  std::memcpy(data, *cursor, size);
  *cursor += size;
}

std::uint64_t SpillGetU64(const char** cursor, const char* end) {
  std::uint64_t value = 0;
  SpillGetRaw(cursor, end, &value, sizeof(value));
  return value;
}

Column MakeColumnLike(const Schema& schema, std::size_t index) {
  return Column(schema.field(index).type);
}

// KernelProbe (the per-kernel observability wrapper) and the typed key
// hashing/equality helpers live in src/df/kernel_probe.h and
// src/df/key_hash.h — shared with the hash joins in join_exec.cc.

// ---------------------------------------------------------------------------
// Narrow operators
// ---------------------------------------------------------------------------

RecordBatch EvalProject(const SchemaPtr& in_schema,
                        const std::vector<NamedExpr>& exprs,
                        const RecordBatch& input) {
  RecordBatch out;
  out.num_rows = input.num_rows;
  out.columns.reserve(exprs.size());
  for (const auto& expr : exprs) {
    if (expr.is_column_ref()) {
      // Pass-through columns are shared by value copy of the column buffer;
      // cheap relative to per-row copies and keeps batches immutable.
      out.columns.push_back(
          input.columns[in_schema->RequireIndex(expr.source_column)]);
      continue;
    }
    Column built(expr.type);
    built.Reserve(input.num_rows);
    expr.udf.eval(*in_schema, input, &built);
    if (built.size() != input.num_rows) {
      common::ThrowError(common::ErrorCode::kInternal,
                         "projection UDF for '" + expr.name +
                             "' produced a wrong-sized column");
    }
    out.columns.push_back(std::move(built));
  }
  return out;
}

RecordBatch EvalFilter(const SchemaPtr& schema, const Predicate& predicate,
                       const RecordBatch& input) {
  std::vector<char> mask = predicate.eval(*schema, input);
  if (mask.size() != input.num_rows) {
    common::ThrowError(common::ErrorCode::kInternal,
                       "filter predicate produced a wrong-sized mask");
  }
  SelectionVector selection;
  std::size_t survivors = 0;
  for (char m : mask) survivors += m ? 1 : 0;
  selection.reserve(survivors);
  for (std::size_t row = 0; row < input.num_rows; ++row) {
    if (mask[row]) selection.push_back(static_cast<std::uint32_t>(row));
  }
  // All rows survive: share the input buffers instead of gathering.
  if (selection.size() == input.num_rows) return input;
  return GatherBatch(input, selection);
}

RecordBatch EvalExplode(const SchemaPtr& schema, const std::string& column,
                        bool keep_empty, bool with_position,
                        const RecordBatch& input) {
  std::size_t target = schema->RequireIndex(column);
  RecordBatch out;
  for (std::size_t c = 0; c < input.columns.size(); ++c) {
    out.columns.emplace_back(input.columns[c].type());
  }
  if (with_position) out.columns.emplace_back(DataType::kInt64);
  std::size_t position_col = input.columns.size();

  auto emit = [&](std::size_t row, const item::ItemPtr& member,
                  std::int64_t position) {
    for (std::size_t c = 0; c < input.columns.size(); ++c) {
      if (c == target) {
        if (member == nullptr) {
          out.columns[c].AppendSeq({});
        } else {
          out.columns[c].AppendSeq({member});
        }
      } else {
        out.columns[c].AppendFrom(input.columns[c], row);
      }
    }
    if (with_position) out.columns[position_col].AppendInt64(position);
    ++out.num_rows;
  };

  for (std::size_t row = 0; row < input.num_rows; ++row) {
    const item::ItemSequence& seq = input.columns[target].SeqAt(row);
    if (seq.empty()) {
      if (keep_empty) emit(row, nullptr, 0);
      continue;
    }
    std::int64_t position = 1;
    for (const auto& member : seq) {
      emit(row, member, position++);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// GroupBy
// ---------------------------------------------------------------------------

struct AggState {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  item::ItemSequence items;
  bool first_set = false;
  // kFirst witness, stored as a single-value column.
  Column first;
};

struct GroupState {
  std::vector<AggState> aggs;
};

// ---------------------------------------------------------------------------
// Typed group-by keys: instead of encoding every input row's key cells into
// a per-row std::string (EncodeKey) and keying an unordered_map on it, the
// accumulator hashes the native key columns batch-at-a-time into one 64-bit
// hash per row (one type dispatch per column) and resolves hash collisions
// with typed cell equality against a columnar key store. Group creation
// appends the key cells once; emission bulk-copies the store.
// ---------------------------------------------------------------------------

/// One partial (or reduce-bucket) aggregation table: distinct key rows in a
/// columnar store, group states alongside, and a hash index whose collision
/// chains run through `next`. Groups keep first-seen insertion order, which
/// makes emission deterministic.
struct GroupTable {
  RecordBatch key_store;
  std::vector<std::uint64_t> hashes;
  std::vector<GroupState> states;
  std::unordered_map<std::uint64_t, std::uint32_t> heads;
  std::vector<std::uint32_t> next;

  void InitColumns(const Schema& schema,
                   const std::vector<std::size_t>& key_indices) {
    for (std::size_t k : key_indices) {
      key_store.columns.push_back(MakeColumnLike(schema, k));
    }
  }

  /// Finds the group whose key equals `row` of `batch` (columns selected by
  /// `key_indices`), creating it when absent. `agg_count` sizes new states.
  std::uint32_t FindOrInsert(std::uint64_t hash, const RecordBatch& batch,
                             const std::vector<std::size_t>& key_indices,
                             std::size_t row, std::size_t agg_count) {
    auto [it, inserted] = heads.try_emplace(hash, kNoGroup);
    for (std::uint32_t g = it->second; g != kNoGroup; g = next[g]) {
      bool equal = true;
      for (std::size_t c = 0; c < key_indices.size(); ++c) {
        if (!CellsEqual(key_store.columns[c], g,
                        batch.columns[key_indices[c]], row)) {
          equal = false;
          break;
        }
      }
      if (equal) return g;
    }
    auto g = static_cast<std::uint32_t>(states.size());
    for (std::size_t c = 0; c < key_indices.size(); ++c) {
      key_store.columns[c].AppendFrom(batch.columns[key_indices[c]], row);
    }
    ++key_store.num_rows;
    hashes.push_back(hash);
    states.emplace_back();
    states.back().aggs.resize(agg_count);
    next.push_back(it->second);
    it->second = g;
    return g;
  }
};

void AccumulateRow(const Schema& schema,
                   const std::vector<Aggregate>& aggregates,
                   const RecordBatch& batch, std::size_t row,
                   GroupState* state) {
  for (std::size_t a = 0; a < aggregates.size(); ++a) {
    const Aggregate& agg = aggregates[a];
    AggState& acc = state->aggs[a];
    switch (agg.kind) {
      case AggKind::kCount:
        ++acc.count;
        break;
      case AggKind::kCollect: {
        const auto& seq =
            batch.columns[schema.RequireIndex(agg.input_column)].SeqAt(row);
        acc.items.insert(acc.items.end(), seq.begin(), seq.end());
        break;
      }
      case AggKind::kFirst: {
        if (!acc.first_set) {
          std::size_t index = schema.RequireIndex(agg.input_column);
          acc.first = Column(schema.field(index).type);
          acc.first.AppendFrom(batch.columns[index], row);
          acc.first_set = true;
        }
        break;
      }
      case AggKind::kSumInt64:
      case AggKind::kMinInt64:
      case AggKind::kMaxInt64: {
        std::size_t index = schema.RequireIndex(agg.input_column);
        if (batch.columns[index].IsNull(row)) break;
        std::int64_t value = batch.columns[index].Int64At(row);
        acc.sum += value;
        acc.min = std::min(acc.min, value);
        acc.max = std::max(acc.max, value);
        ++acc.count;
        break;
      }
    }
  }
}

void MergeStates(const std::vector<Aggregate>& aggregates, GroupState* into,
                 GroupState&& from) {
  for (std::size_t a = 0; a < aggregates.size(); ++a) {
    AggState& acc = into->aggs[a];
    AggState& other = from.aggs[a];
    acc.count += other.count;
    acc.sum += other.sum;
    acc.min = std::min(acc.min, other.min);
    acc.max = std::max(acc.max, other.max);
    acc.items.insert(acc.items.end(),
                     std::make_move_iterator(other.items.begin()),
                     std::make_move_iterator(other.items.end()));
    if (!acc.first_set && other.first_set) {
      acc.first = std::move(other.first);
      acc.first_set = true;
    }
  }
}

/// A decoded spilled partial-aggregation run: the merge phase only needs the
/// key rows, their hashes, and the per-group states — the hash index is
/// rebuilt by the destination table's FindOrInsert.
struct GroupRun {
  RecordBatch key_store;
  std::vector<std::uint64_t> hashes;
  std::vector<GroupState> states;
};

std::string EncodeGroupRun(const GroupTable& table, std::size_t agg_count) {
  std::string out;
  EncodeBatch(table.key_store, &out);
  std::size_t groups = table.states.size();
  SpillPutU64(groups, &out);
  for (std::size_t g = 0; g < groups; ++g) {
    SpillPutU64(table.hashes[g], &out);
    for (std::size_t a = 0; a < agg_count; ++a) {
      const AggState& acc = table.states[g].aggs[a];
      out.append(reinterpret_cast<const char*>(&acc.count), sizeof(acc.count));
      out.append(reinterpret_cast<const char*>(&acc.sum), sizeof(acc.sum));
      out.append(reinterpret_cast<const char*>(&acc.min), sizeof(acc.min));
      out.append(reinterpret_cast<const char*>(&acc.max), sizeof(acc.max));
      out.push_back(acc.first_set ? 1 : 0);
      if (acc.first_set) EncodeColumn(acc.first, &out);
      SpillPutU64(acc.items.size(), &out);
      for (const item::ItemPtr& item : acc.items) {
        item::EncodeItem(item, &out);
      }
    }
  }
  return out;
}

GroupRun DecodeGroupRun(const std::string& blob, std::size_t agg_count) {
  GroupRun run;
  const char* cursor = blob.data();
  const char* end = blob.data() + blob.size();
  run.key_store = DecodeBatch(&cursor, end);
  std::uint64_t groups = SpillGetU64(&cursor, end);
  run.hashes.reserve(groups);
  run.states.reserve(groups);
  for (std::uint64_t g = 0; g < groups; ++g) {
    run.hashes.push_back(SpillGetU64(&cursor, end));
    run.states.emplace_back();
    run.states.back().aggs.resize(agg_count);
    for (std::size_t a = 0; a < agg_count; ++a) {
      AggState& acc = run.states.back().aggs[a];
      SpillGetRaw(&cursor, end, &acc.count, sizeof(acc.count));
      SpillGetRaw(&cursor, end, &acc.sum, sizeof(acc.sum));
      SpillGetRaw(&cursor, end, &acc.min, sizeof(acc.min));
      SpillGetRaw(&cursor, end, &acc.max, sizeof(acc.max));
      std::uint8_t first_set = 0;
      SpillGetRaw(&cursor, end, &first_set, 1);
      acc.first_set = first_set != 0;
      if (acc.first_set) acc.first = DecodeColumn(&cursor, end);
      std::uint64_t items = SpillGetU64(&cursor, end);
      acc.items.reserve(items);
      for (std::uint64_t i = 0; i < items; ++i) {
        acc.items.push_back(item::DecodeItem(&cursor, end));
      }
    }
  }
  return run;
}

/// Per-partition spill bookkeeping for the group-by partial phase. Releases
/// its reservation on destruction so a query that fails mid-phase (a typed
/// spill-write error, a cancellation) leaks neither bytes nor files; the
/// happy path releases explicitly in phase 2 and zeroes `charged`.
struct PartialSpill {
  std::unique_ptr<exec::SpillFile> file;
  std::vector<exec::SpillSegment> runs;
  std::uint64_t charged = 0;
  exec::MemoryManager* manager = nullptr;
  ~PartialSpill() {
    if (manager != nullptr && charged > 0) manager->Release(charged);
  }
};

/// Serializes the partial table as one sorted-by-insertion run and resets it
/// for further accumulation. Merge order in phase 2 (runs in write order,
/// then the live table, groups merged on first occurrence) reproduces the
/// unspilled insertion order exactly, which keeps limited and unlimited runs
/// byte-identical.
void SpillGroupTable(GroupTable* table, PartialSpill* spill, Context* context,
                     const Schema& schema,
                     const std::vector<std::size_t>& key_indices,
                     std::size_t agg_count) {
  if (table->states.empty()) return;
  obs::EventBus& bus = spark::BusOf(context);
  obs::ScopedSpan span(bus.tracer(), "operator", "spill.write");
  if (spill->file == nullptr) {
    auto file = std::make_unique<exec::SpillFile>(&bus,
                                                  spark::InjectorOf(context));
    if (!file->ok()) return;  // cannot spill: keep accumulating in memory
    spill->file = std::move(file);
    bus.AddToCounter("spill.files", 1);
  }
  std::string blob = EncodeGroupRun(*table, agg_count);
  // Append throws kResourceExhausted/kIoError on failure; PartialSpill's
  // destructor then releases this partition's reservation as the query
  // fails, so a full disk never leaks bytes or yields a truncated result.
  exec::SpillSegment seg = spill->file->Append(blob, table->states.size());
  spill->runs.push_back(seg);
  span.AddArg("bytes", static_cast<std::int64_t>(blob.size()));
  bus.AddToCounter("spill.bytes_written",
                   static_cast<std::int64_t>(blob.size()));
  bus.Spilled("df.groupBy.partial", static_cast<std::int64_t>(blob.size()));
  *table = GroupTable{};
  table->InitColumns(schema, key_indices);
}

Rdd<RecordBatch> ExecGroupBy(const LogicalPlan& plan, Context* context,
                             Rdd<RecordBatch> child_rdd) {
  const SchemaPtr in_schema = plan.child->schema;
  const SchemaPtr out_schema = plan.schema;
  const std::vector<std::string>& keys = plan.group_keys;
  const std::vector<Aggregate>& aggregates = plan.aggregates;

  std::vector<std::size_t> key_indices;
  key_indices.reserve(keys.size());
  for (const auto& key : keys) {
    key_indices.push_back(in_schema->RequireIndex(key));
  }

  int n_parts = child_rdd.num_partitions();
  auto n = static_cast<std::size_t>(n_parts);

  // Phase 1: per-partition partial aggregation (map-side combine). Key
  // hashes are computed batch-at-a-time, one type dispatch per key column.
  // Under an enforcing memory limit each input batch's footprint is reserved
  // before accumulation; a denied grant spills the partial table as a run
  // and continues into a fresh one (docs/MEMORY.md).
  exec::MemoryManager& memory = spark::MemoryOf(context);
  std::vector<GroupTable> partials(n);
  std::vector<PartialSpill> spills(n);
  for (auto& spill : spills) spill.manager = &memory;
  std::vector<std::int64_t> input_rows(n, 0);
  KernelProbe partial_probe = MakeKernelProbe(
      context, "df.kernel.groupBy.partial",
      "df.kernel.groupBy.partial.duration_ns",
      "df.kernel.groupBy.partial.batches", "df.kernel.groupBy.partial.rows");
  context->pool().RunParallel(
      n,
      [&](std::size_t p) {
        partial_probe.InvokeWide([&]() -> std::int64_t {
          GroupTable& partial = partials[p];
          partial.InitColumns(*in_schema, key_indices);
          std::vector<std::uint64_t> row_hashes;
          for (const RecordBatch& batch :
               child_rdd.ComputePartition(static_cast<int>(p))) {
            input_rows[p] += static_cast<std::int64_t>(batch.num_rows);
            bool spill_after = false;
            if (memory.enforcing()) {
              auto want =
                  static_cast<std::uint64_t>(ApproxBatchBytes(batch));
              if (want > 0) {
                if (memory.TryReserve(want)) {
                  spills[p].charged += want;
                } else {
                  SpillGroupTable(&partial, &spills[p], context, *in_schema,
                                  key_indices, aggregates.size());
                  if (memory.TryReserve(want)) {
                    spills[p].charged += want;
                  } else {
                    // Still denied: accumulate this batch uncharged, then
                    // spill the resulting run so residency stays bounded.
                    spill_after = true;
                  }
                }
              }
            }
            row_hashes.assign(batch.num_rows, 0);
            for (std::size_t k : key_indices) {
              HashKeyColumn(batch.columns[k], &row_hashes);
            }
            for (std::size_t row = 0; row < batch.num_rows; ++row) {
              std::uint32_t g = partial.FindOrInsert(
                  row_hashes[row], batch, key_indices, row, aggregates.size());
              AccumulateRow(*in_schema, aggregates, batch, row,
                            &partial.states[g]);
            }
            if (spill_after) {
              SpillGroupTable(&partial, &spills[p], context, *in_schema,
                              key_indices, aggregates.size());
            }
          }
          return input_rows[p];
        });
      },
      nullptr, "df.groupBy.partial");
  {
    std::int64_t total_rows = 0;
    for (std::int64_t rows : input_rows) total_rows += rows;
    spark::BusOf(context).AddToCounter("df.groupby.input_rows", total_rows);
  }

  // Phase 2: shuffle partial groups into reduce buckets by key hash. The
  // key store doubles as the "batch" whose rows are re-inserted downstream.
  // Spilled runs merge first (they were written before the live residue), so
  // first-occurrence group order matches the unspilled insertion order and
  // limited runs stay byte-identical to unlimited ones.
  exec::CancellationToken& cancel = spark::CancelOf(context);
  obs::EventBus& bus = spark::BusOf(context);
  std::vector<std::size_t> store_indices(key_indices.size());
  std::iota(store_indices.begin(), store_indices.end(), 0);
  std::vector<GroupTable> buckets(n);
  for (auto& bucket : buckets) bucket.InitColumns(*in_schema, key_indices);
  for (std::size_t p = 0; p < n; ++p) {
    cancel.Check();
    auto merge_run = [&](RecordBatch& key_store,
                         const std::vector<std::uint64_t>& hashes,
                         std::vector<GroupState>& states) {
      for (std::uint32_t pg = 0; pg < states.size(); ++pg) {
        GroupTable& bucket = buckets[hashes[pg] % n];
        std::uint32_t g = bucket.FindOrInsert(
            hashes[pg], key_store, store_indices, pg, aggregates.size());
        MergeStates(aggregates, &bucket.states[g], std::move(states[pg]));
      }
    };
    for (const exec::SpillSegment& seg : spills[p].runs) {
      std::string blob;
      exec::SpillReadStatus rs = spills[p].file->ReadVerified(seg, &blob);
      if (rs != exec::SpillReadStatus::kOk) {
        // Driver-side merge: there is no task attempt to retry, and the run
        // exists only on disk, so a verification failure is a typed query
        // error — never silently merged garbage.
        common::ThrowError(common::ErrorCode::kIoError,
                           std::string("group-by spill run unreadable (") +
                               exec::SpillReadStatusName(rs) + "): " +
                               spills[p].file->path());
      }
      bus.AddToCounter("spill.bytes_read",
                       static_cast<std::int64_t>(blob.size()));
      GroupRun run = DecodeGroupRun(blob, aggregates.size());
      merge_run(run.key_store, run.hashes, run.states);
    }
    merge_run(partials[p].key_store, partials[p].hashes, partials[p].states);
    partials[p] = GroupTable{};
    if (spills[p].charged > 0) {
      memory.Release(spills[p].charged);
      spills[p].charged = 0;
    }
    spills[p].file.reset();
  }
  partials.clear();

  // Phase 3: emit one output batch per reduce bucket, bulk-copying the key
  // store columns and appending one aggregate cell per group.
  std::int64_t total_groups = 0;
  for (const auto& bucket : buckets) {
    total_groups += static_cast<std::int64_t>(bucket.states.size());
  }
  spark::BusOf(context).AddToCounter("df.groupby.groups", total_groups);
  auto results = std::make_shared<std::vector<RecordBatch>>(n);
  KernelProbe emit_probe = MakeKernelProbe(
      context, "df.kernel.groupBy.emit", "df.kernel.groupBy.emit.duration_ns",
      "df.kernel.groupBy.emit.batches", "df.kernel.groupBy.emit.rows");
  context->pool().RunParallel(n, [&](std::size_t p) {
   emit_probe.InvokeWide([&]() -> std::int64_t {
    GroupTable& bucket = buckets[p];
    std::size_t groups = bucket.states.size();
    RecordBatch out;
    for (const auto& field : out_schema->fields()) {
      out.columns.emplace_back(field.type);
    }
    std::size_t c = 0;
    for (; c < key_indices.size(); ++c) {
      out.columns[c].AppendRange(bucket.key_store.columns[c], 0, groups);
    }
    for (std::size_t a = 0; a < aggregates.size(); ++a, ++c) {
      Column& out_column = out.columns[c];
      out_column.Reserve(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        AggState& acc = bucket.states[g].aggs[a];
        switch (aggregates[a].kind) {
          case AggKind::kCount:
            out_column.AppendInt64(acc.count);
            break;
          case AggKind::kCollect:
            out_column.AppendSeq(std::move(acc.items));
            break;
          case AggKind::kFirst:
            if (acc.first_set) {
              out_column.AppendFrom(acc.first, 0);
            } else {
              out_column.AppendNull();
            }
            break;
          case AggKind::kSumInt64:
            out_column.AppendInt64(acc.sum);
            break;
          case AggKind::kMinInt64:
            if (acc.count > 0) {
              out_column.AppendInt64(acc.min);
            } else {
              out_column.AppendNull();
            }
            break;
          case AggKind::kMaxInt64:
            if (acc.count > 0) {
              out_column.AppendInt64(acc.max);
            } else {
              out_column.AppendNull();
            }
            break;
        }
      }
    }
    out.num_rows = groups;
    (*results)[p] = std::move(out);
    return static_cast<std::int64_t>(groups);
   });
  }, nullptr, "df.groupBy.emit");

  return BatchesToRdd(context, std::move(*results));
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

/// Three-way comparison of one sort key between a row of `lc` and a row of
/// `rc` (the same column in the single-batch sort, two run heads in the
/// external merge). Nulls order per key configuration; values compare
/// natively.
int CompareCells(const Column& lc, std::size_t left, const Column& rc,
                 std::size_t right, const SortKey& key) {
  bool ln = lc.IsNull(left);
  bool rn = rc.IsNull(right);
  if (ln || rn) {
    if (ln && rn) return 0;
    int null_side = key.nulls_smallest ? -1 : 1;
    return ln ? null_side : -null_side;
  }
  int cmp = 0;
  switch (lc.type()) {
    case DataType::kInt64: {
      auto l = lc.Int64At(left), r = rc.Int64At(right);
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case DataType::kFloat64: {
      auto l = lc.Float64At(left), r = rc.Float64At(right);
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case DataType::kString: {
      int c = lc.StringAt(left).compare(rc.StringAt(right));
      cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      break;
    }
    case DataType::kBool: {
      int l = lc.BoolAt(left) ? 1 : 0, r = rc.BoolAt(right) ? 1 : 0;
      cmp = l - r;
      break;
    }
    case DataType::kItemSeq:
      common::ThrowError(common::ErrorCode::kInternal,
                         "cannot sort on an item-seq column");
  }
  return cmp;
}

int CompareCell(const Column& column, std::size_t left, std::size_t right,
                const SortKey& key) {
  return CompareCells(column, left, column, right, key);
}

/// Keeps the external sort's spill file and outstanding reservations alive
/// for as long as the result RDD's thunks may read them (released when the
/// query's RDD lineage is dropped).
struct SortSpillHolder {
  exec::MemoryManager* manager = nullptr;
  std::uint64_t charged = 0;
  std::unique_ptr<exec::SpillFile> file;
  std::vector<RecordBatch> parts;                     // in-memory outputs
  std::vector<std::vector<exec::SpillSegment>> segs;  // spilled outputs
  std::vector<char> in_memory;                        // 1 = parts[p] valid
  ~SortSpillHolder() {
    if (manager != nullptr && charged > 0) manager->Release(charged);
  }
};

/// External merge sort, used only under an enforcing memory limit: each child
/// partition becomes a sorted run (charged against the pool or spilled in
/// chunks), then a streaming k-way merge — one resident chunk per run plus
/// one output batch — rebuilds the exact sequence the in-memory
/// stable_sort-over-concat path produces: per-partition stable sorts plus a
/// ties-go-to-the-earliest-run merge equal one global stable sort, so
/// limited and unlimited executions stay byte-identical (docs/MEMORY.md).
Rdd<RecordBatch> ExecSortExternal(const LogicalPlan& plan, Context* context,
                                  Rdd<RecordBatch> child_rdd,
                                  exec::MemoryManager& memory) {
  const SchemaPtr schema = plan.schema;
  int n_parts = child_rdd.num_partitions();
  if (n_parts < 1) n_parts = 1;
  auto n = static_cast<std::size_t>(n_parts);
  obs::EventBus& bus = spark::BusOf(context);
  exec::CancellationToken& cancel = spark::CancelOf(context);

  std::vector<std::size_t> key_indices;
  key_indices.reserve(plan.sort_keys.size());
  for (const auto& key : plan.sort_keys) {
    key_indices.push_back(schema->RequireIndex(key.column));
  }

  // Phase A: one sorted run per child partition (parallel stage).
  std::vector<RecordBatch> runs(n);
  KernelProbe run_probe = MakeKernelProbe(
      context, "df.kernel.sort.run", "df.kernel.sort.run.duration_ns",
      "df.kernel.sort.run.batches", "df.kernel.sort.run.rows");
  context->pool().RunParallel(
      n,
      [&](std::size_t p) {
        run_probe.InvokeWide([&]() -> std::int64_t {
          RecordBatch part =
              ConcatBatches(child_rdd.ComputePartition(static_cast<int>(p)));
          SelectionVector permutation(part.num_rows);
          std::iota(permutation.begin(), permutation.end(), 0);
          std::stable_sort(permutation.begin(), permutation.end(),
                           [&](std::uint32_t left, std::uint32_t right) {
                             for (std::size_t k = 0; k < key_indices.size();
                                  ++k) {
                               int cmp = CompareCell(
                                   part.columns[key_indices[k]], left, right,
                                   plan.sort_keys[k]);
                               if (cmp != 0) {
                                 return plan.sort_keys[k].ascending ? cmp < 0
                                                                    : cmp > 0;
                               }
                             }
                             return false;
                           });
          runs[p] = GatherBatch(part, permutation);
          return static_cast<std::int64_t>(part.num_rows);
        });
      },
      nullptr, "df.sort.run");

  std::size_t total = 0;
  for (const auto& run : runs) total += run.num_rows;
  bus.AddToCounter("df.sort.rows", static_cast<std::int64_t>(total));

  auto holder = std::make_shared<SortSpillHolder>();
  holder->manager = &memory;
  std::int64_t written = 0;
  auto ensure_file = [&]() {
    if (holder->file != nullptr) return;
    holder->file = std::make_unique<exec::SpillFile>(
        &bus, spark::InjectorOf(context));
    if (!holder->file->ok()) {
      common::ThrowError(common::ErrorCode::kIoError,
                         "cannot create sort spill file in " +
                             exec::SpillDirectory());
    }
    bus.AddToCounter("spill.files", 1);
  };
  auto spill_batch = [&](const RecordBatch& batch,
                         std::vector<exec::SpillSegment>* segs) {
    ensure_file();
    obs::ScopedSpan span(bus.tracer(), "operator", "spill.write");
    std::int64_t bytes = 0;
    for (std::size_t begin = 0; begin < batch.num_rows;
         begin += kDfSpillChunkRows) {
      std::size_t count =
          std::min(kDfSpillChunkRows, batch.num_rows - begin);
      RecordBatch chunk = SliceBatch(batch, begin, count);
      std::string blob;
      EncodeBatch(chunk, &blob);
      // Append throws kResourceExhausted/kIoError on failure; the holder's
      // destructor releases charges and unlinks the file as the query fails.
      exec::SpillSegment seg = holder->file->Append(blob, count);
      segs->push_back(seg);
      bytes += static_cast<std::int64_t>(blob.size());
    }
    span.AddArg("bytes", bytes);
    written += bytes;
    bus.Spilled("df.sort", bytes);
  };

  // Charge each run against the pool, or spill it in chunks.
  std::uint64_t run_charges = 0;
  std::vector<std::vector<exec::SpillSegment>> run_segs(n);
  std::vector<char> run_resident(n, 1);
  for (std::size_t r = 0; r < n; ++r) {
    if (runs[r].num_rows == 0) continue;
    auto want = static_cast<std::uint64_t>(ApproxBatchBytes(runs[r]));
    if (memory.TryReserve(want)) {
      // Tracked in holder->charged too, so the holder's destructor releases
      // run reservations if the merge below fails (typed spill error,
      // cancellation) before the explicit release at the end of the merge.
      run_charges += want;
      holder->charged += want;
      continue;
    }
    spill_batch(runs[r], &run_segs[r]);
    runs[r] = RecordBatch{};
    run_resident[r] = 0;
  }

  // Phase B: streaming merge into the same contiguous partition slices the
  // in-memory path emits.
  {
    obs::ScopedSpan merge_span(bus.tracer(), "operator", "spill.merge");
    struct RunCursor {
      const RecordBatch* batch = nullptr;  // resident run
      RecordBatch chunk;                   // decoded spilled chunk
      std::size_t pos = 0;                 // row within batch/chunk
      std::size_t seg = 0;                 // next spilled segment to decode
    };
    std::vector<RunCursor> cursors(n);
    for (std::size_t r = 0; r < n; ++r) {
      if (run_resident[r] != 0) cursors[r].batch = &runs[r];
    }
    auto refill = [&](std::size_t r) -> const RecordBatch* {
      RunCursor& c = cursors[r];
      if (c.batch != nullptr) {
        return c.pos < c.batch->num_rows ? c.batch : nullptr;
      }
      while (c.pos >= c.chunk.num_rows) {
        if (c.seg >= run_segs[r].size()) return nullptr;
        std::string blob;
        exec::SpillReadStatus rs =
            holder->file->ReadVerified(run_segs[r][c.seg], &blob);
        if (rs != exec::SpillReadStatus::kOk) {
          // Driver-side merge: the run exists only on disk, so a
          // verification failure is a typed query error, never garbage rows.
          common::ThrowError(
              common::ErrorCode::kIoError,
              std::string("sort spill run unreadable (") +
                  exec::SpillReadStatusName(rs) + "): " +
                  holder->file->path());
        }
        bus.AddToCounter("spill.bytes_read",
                         static_cast<std::int64_t>(blob.size()));
        const char* cursor = blob.data();
        c.chunk = DecodeBatch(&cursor, blob.data() + blob.size());
        c.pos = 0;
        ++c.seg;
      }
      return &c.chunk;
    };

    std::size_t chunk_rows = total / n;
    std::size_t remainder = total % n;
    holder->parts.resize(n);
    holder->segs.resize(n);
    holder->in_memory.assign(n, 1);
    RecordBatch out;
    for (const auto& field : schema->fields()) {
      out.columns.emplace_back(field.type);
    }
    std::size_t merged = 0;
    for (std::size_t part = 0; part < n; ++part) {
      std::size_t target = chunk_rows + (part < remainder ? 1 : 0);
      while (out.num_rows < target) {
        if ((merged & 0x1FFF) == 0) cancel.Check();
        int best = -1;
        const RecordBatch* best_batch = nullptr;
        std::size_t best_pos = 0;
        for (std::size_t r = 0; r < n; ++r) {
          const RecordBatch* head = refill(r);
          if (head == nullptr) continue;
          std::size_t pos = cursors[r].pos;
          if (best < 0) {
            best = static_cast<int>(r);
            best_batch = head;
            best_pos = pos;
            continue;
          }
          bool precedes = false;
          for (std::size_t k = 0; k < key_indices.size(); ++k) {
            int cmp = CompareCells(head->columns[key_indices[k]], pos,
                                   best_batch->columns[key_indices[k]],
                                   best_pos, plan.sort_keys[k]);
            if (cmp != 0) {
              precedes = plan.sort_keys[k].ascending ? cmp < 0 : cmp > 0;
              break;
            }
          }
          if (precedes) {  // ties keep the earliest run: global stability
            best = static_cast<int>(r);
            best_batch = head;
            best_pos = pos;
          }
        }
        AppendRow(*best_batch, best_pos, &out);
        ++cursors[static_cast<std::size_t>(best)].pos;
        ++merged;
      }
      auto want = static_cast<std::uint64_t>(ApproxBatchBytes(out));
      if (memory.TryReserve(want)) {
        holder->charged += want;
        holder->parts[part] = std::move(out);
      } else if (out.num_rows == 0) {
        holder->parts[part] = std::move(out);  // keep empties resident
      } else {
        spill_batch(out, &holder->segs[part]);
        holder->in_memory[part] = 0;
      }
      out = RecordBatch{};
      for (const auto& field : schema->fields()) {
        out.columns.emplace_back(field.type);
      }
    }
    merge_span.AddArg("rows", static_cast<std::int64_t>(merged));
  }
  if (written > 0) bus.AddToCounter("spill.bytes_written", written);
  if (run_charges > 0) {
    memory.Release(run_charges);
    holder->charged -= run_charges;
  }

  return Rdd<RecordBatch>(context, n_parts, [holder, context](int index) {
    auto p = static_cast<std::size_t>(index);
    std::vector<RecordBatch> out;
    if (holder->in_memory[p] != 0) {
      out.push_back(holder->parts[p]);
      return out;
    }
    obs::EventBus& bus = spark::BusOf(context);
    std::vector<RecordBatch> chunks;
    chunks.reserve(holder->segs[p].size());
    for (const exec::SpillSegment& seg : holder->segs[p]) {
      std::string blob;
      exec::SpillReadStatus rs = holder->file->ReadVerified(seg, &blob);
      if (rs != exec::SpillReadStatus::kOk) {
        // Runs inside a task: fail the attempt with a retryable fault.
        // Transient faults heal on the re-read; a truly lost file keeps
        // failing and surfaces after max attempts — never as garbage rows.
        throw exec::TransientTaskFault(
            std::string("sort output chunk unreadable (") +
            exec::SpillReadStatusName(rs) + "): " + holder->file->path());
      }
      bus.AddToCounter("spill.bytes_read",
                       static_cast<std::int64_t>(blob.size()));
      const char* cursor = blob.data();
      chunks.push_back(DecodeBatch(&cursor, blob.data() + blob.size()));
    }
    out.push_back(ConcatBatches(std::move(chunks)));
    return out;
  });
}

Rdd<RecordBatch> ExecSort(const LogicalPlan& plan, Context* context,
                          Rdd<RecordBatch> child_rdd) {
  // Under an enforcing memory limit the sort runs externally; the unlimited
  // path below is byte-identical and allocation-free of spill machinery.
  exec::MemoryManager& sort_memory = spark::MemoryOf(context);
  if (sort_memory.enforcing()) {
    return ExecSortExternal(plan, context, std::move(child_rdd), sort_memory);
  }
  const SchemaPtr schema = plan.schema;
  int n_parts = child_rdd.num_partitions();
  RecordBatch all = ConcatBatches(child_rdd.Collect());
  spark::BusOf(context).AddToCounter(
      "df.sort.rows", static_cast<std::int64_t>(all.num_rows));

  std::vector<std::size_t> key_indices;
  key_indices.reserve(plan.sort_keys.size());
  for (const auto& key : plan.sort_keys) {
    key_indices.push_back(schema->RequireIndex(key.column));
  }

  SelectionVector permutation(all.num_rows);
  std::iota(permutation.begin(), permutation.end(), 0);
  std::stable_sort(
      permutation.begin(), permutation.end(),
      [&](std::uint32_t left, std::uint32_t right) {
        for (std::size_t k = 0; k < key_indices.size(); ++k) {
          int cmp = CompareCell(all.columns[key_indices[k]], left, right,
                                plan.sort_keys[k]);
          if (cmp != 0) {
            return plan.sort_keys[k].ascending ? cmp < 0 : cmp > 0;
          }
        }
        return false;
      });

  // Reorder + repartition in one step: each output partition gathers its
  // contiguous slice of the permutation directly from the unsorted batch,
  // morsel-parallel across the executor pool.
  if (n_parts < 1) n_parts = 1;
  auto n = static_cast<std::size_t>(n_parts);
  std::size_t chunk = all.num_rows / n;
  std::size_t remainder = all.num_rows % n;
  std::vector<std::pair<std::size_t, std::size_t>> slices(n);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < n; ++p) {
    std::size_t size = chunk + (p < remainder ? 1 : 0);
    slices[p] = {begin, size};
    begin += size;
  }
  auto parts = std::make_shared<std::vector<RecordBatch>>(n);
  KernelProbe gather_probe = MakeKernelProbe(
      context, "df.kernel.sort.gather", "df.kernel.sort.gather.duration_ns",
      "df.kernel.sort.gather.batches", "df.kernel.sort.gather.rows");
  context->pool().RunParallel(
      n,
      [&](std::size_t p) {
        gather_probe.InvokeWide([&]() -> std::int64_t {
          auto [slice_begin, slice_size] = slices[p];
          SelectionVector selection(
              permutation.begin() + static_cast<std::ptrdiff_t>(slice_begin),
              permutation.begin() +
                  static_cast<std::ptrdiff_t>(slice_begin + slice_size));
          (*parts)[p] = GatherBatch(all, selection);
          return static_cast<std::int64_t>(slice_size);
        });
      },
      nullptr, "df.sort.gather");
  return BatchesToRdd(context, std::move(*parts));
}

// ---------------------------------------------------------------------------
// ZipIndex / Limit
// ---------------------------------------------------------------------------

Rdd<RecordBatch> ExecZipIndex(const LogicalPlan& /*plan*/, Context* context,
                              Rdd<RecordBatch> child_rdd) {
  std::vector<RecordBatch> batches = child_rdd.Collect();
  std::int64_t next = 0;
  for (auto& batch : batches) {
    Column index_column(DataType::kInt64);
    index_column.Reserve(batch.num_rows);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      index_column.AppendInt64(next++);
    }
    batch.columns.push_back(std::move(index_column));
  }
  return BatchesToRdd(context, std::move(batches));
}

Rdd<RecordBatch> ExecLimit(const LogicalPlan& plan, Context* context,
                           Rdd<RecordBatch> child_rdd) {
  RecordBatch out;
  bool initialized = false;
  std::size_t taken = 0;
  for (int p = 0; p < child_rdd.num_partitions() && taken < plan.limit_rows;
       ++p) {
    for (const RecordBatch& batch : child_rdd.ComputePartition(p)) {
      if (!initialized && !batch.columns.empty()) {
        for (const auto& column : batch.columns) {
          out.columns.emplace_back(column.type());
        }
        initialized = true;
      }
      std::size_t take =
          std::min<std::size_t>(batch.num_rows, plan.limit_rows - taken);
      for (std::size_t c = 0; c < batch.columns.size(); ++c) {
        out.columns[c].AppendRange(batch.columns[c], 0, take);
      }
      out.num_rows += take;
      taken += take;
      if (taken >= plan.limit_rows) break;
    }
  }
  if (!initialized) {
    for (const auto& field : plan.schema->fields()) {
      out.columns.emplace_back(field.type);
    }
  }
  std::vector<RecordBatch> result;
  result.push_back(std::move(out));
  return BatchesToRdd(context, std::move(result));
}

}  // namespace

spark::Rdd<RecordBatch> BatchesToRdd(Context* context,
                                     std::vector<RecordBatch> batches) {
  auto shared = std::make_shared<std::vector<RecordBatch>>(std::move(batches));
  int n = static_cast<int>(shared->size());
  if (n == 0) n = 1;
  return Rdd<RecordBatch>(context, n, [shared](int index) {
    std::vector<RecordBatch> out;
    if (static_cast<std::size_t>(index) < shared->size()) {
      out.push_back((*shared)[static_cast<std::size_t>(index)]);
    } else {
      out.emplace_back();
    }
    return out;
  });
}

std::string EncodeKey(const Schema& schema,
                      const std::vector<std::size_t>& key_indices,
                      const RecordBatch& batch, std::size_t row) {
  std::string out;
  for (std::size_t index : key_indices) {
    const Column& column = batch.columns[index];
    if (column.IsNull(row)) {
      out.push_back('\x00');
      continue;
    }
    switch (schema.field(index).type) {
      case DataType::kInt64: {
        out.push_back('\x01');
        std::int64_t value = column.Int64At(row);
        out.append(reinterpret_cast<const char*>(&value), sizeof(value));
        break;
      }
      case DataType::kFloat64: {
        out.push_back('\x02');
        double value = column.Float64At(row);
        if (value == 0.0) value = 0.0;  // normalize -0.0
        out.append(reinterpret_cast<const char*>(&value), sizeof(value));
        break;
      }
      case DataType::kString: {
        out.push_back('\x03');
        const std::string& value = column.StringAt(row);
        auto size = static_cast<std::uint32_t>(value.size());
        out.append(reinterpret_cast<const char*>(&size), sizeof(size));
        out.append(value);
        break;
      }
      case DataType::kBool:
        out.push_back(column.BoolAt(row) ? '\x05' : '\x04');
        break;
      case DataType::kItemSeq:
        common::ThrowError(common::ErrorCode::kInternal,
                           "cannot use an item-seq column as a native key");
    }
  }
  return out;
}

spark::Rdd<RecordBatch> ExecutePlan(const PlanPtr& plan, Context* context) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kScan:
      return plan->scan_batches;

    case LogicalPlan::Kind::kProject: {
      Rdd<RecordBatch> child = ExecutePlan(plan->child, context);
      SchemaPtr in_schema = plan->child->schema;
      std::vector<NamedExpr> exprs = plan->exprs;
      KernelProbe probe = MakeKernelProbe(
          context, "df.kernel.project", "df.kernel.project.duration_ns",
          "df.kernel.project.batches", "df.kernel.project.rows");
      return child.Map([in_schema, exprs, probe](const RecordBatch& batch) {
        return probe.Invoke(batch, [&](const RecordBatch& input) {
          return EvalProject(in_schema, exprs, input);
        });
      });
    }

    case LogicalPlan::Kind::kFilter: {
      Rdd<RecordBatch> child = ExecutePlan(plan->child, context);
      SchemaPtr schema = plan->child->schema;
      Predicate predicate = plan->predicate;
      KernelProbe probe = MakeKernelProbe(
          context, "df.kernel.filter", "df.kernel.filter.duration_ns",
          "df.kernel.filter.batches", "df.kernel.filter.rows");
      return child.Map([schema, predicate, probe](const RecordBatch& batch) {
        return probe.Invoke(batch, [&](const RecordBatch& input) {
          return EvalFilter(schema, predicate, input);
        });
      });
    }

    case LogicalPlan::Kind::kExplode: {
      Rdd<RecordBatch> child = ExecutePlan(plan->child, context);
      SchemaPtr schema = plan->child->schema;
      std::string column = plan->explode_column;
      bool keep_empty = plan->explode_keep_empty;
      bool with_position = !plan->explode_position_column.empty();
      KernelProbe probe = MakeKernelProbe(
          context, "df.kernel.explode", "df.kernel.explode.duration_ns",
          "df.kernel.explode.batches", "df.kernel.explode.rows");
      return child.Map([schema, column, keep_empty, with_position,
                        probe](const RecordBatch& batch) {
        return probe.Invoke(batch, [&](const RecordBatch& input) {
          return EvalExplode(schema, column, keep_empty, with_position, input);
        });
      });
    }

    case LogicalPlan::Kind::kGroupBy:
      return ExecGroupBy(*plan, context, ExecutePlan(plan->child, context));

    case LogicalPlan::Kind::kSort:
      return ExecSort(*plan, context, ExecutePlan(plan->child, context));

    case LogicalPlan::Kind::kZipIndex:
      return ExecZipIndex(*plan, context, ExecutePlan(plan->child, context));

    case LogicalPlan::Kind::kLimit:
      return ExecLimit(*plan, context, ExecutePlan(plan->child, context));

    case LogicalPlan::Kind::kJoin:
      return ExecJoin(*plan, context, ExecutePlan(plan->child, context));
  }
  common::ThrowError(common::ErrorCode::kInternal, "unknown plan node");
}

}  // namespace rumble::df
