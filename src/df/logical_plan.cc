#include "src/df/logical_plan.h"

#include <cmath>

#include "src/common/error.h"
#include "src/df/stats.h"

namespace rumble::df {

namespace {

using common::ErrorCode;

void RequireColumn(const Schema& schema, const std::string& name,
                   const char* context) {
  if (schema.IndexOf(name) < 0) {
    common::ThrowError(ErrorCode::kInternal,
                       std::string(context) + ": unknown column '" + name +
                           "' in schema [" + schema.ToString() + "]");
  }
}

}  // namespace

PlanPtr MakeScan(SchemaPtr schema, spark::Rdd<RecordBatch> batches,
                 TableStatsPtr stats) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kScan;
  node->schema = std::move(schema);
  node->scan_batches = std::move(batches);
  node->scan_stats = std::move(stats);
  return node;
}

PlanPtr MakeProject(PlanPtr child, std::vector<NamedExpr> exprs) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kProject;
  auto schema = std::make_shared<Schema>();
  for (const auto& expr : exprs) {
    if (expr.is_column_ref()) {
      RequireColumn(*child->schema, expr.source_column, "Project");
    } else {
      for (const auto& input : expr.udf.inputs) {
        RequireColumn(*child->schema, input, "Project(udf)");
      }
    }
    schema->AddField(Field{expr.name, expr.type});
  }
  node->schema = std::move(schema);
  node->child = std::move(child);
  node->exprs = std::move(exprs);
  return node;
}

PlanPtr MakeFilter(PlanPtr child, Predicate predicate) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kFilter;
  for (const auto& input : predicate.inputs) {
    RequireColumn(*child->schema, input, "Filter");
  }
  node->schema = child->schema;
  node->child = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr MakeExplode(PlanPtr child, std::string column, bool keep_empty,
                    std::string position_column) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kExplode;
  node->explode_keep_empty = keep_empty;
  RequireColumn(*child->schema, column, "Explode");
  if (child->schema->field(child->schema->RequireIndex(column)).type !=
      DataType::kItemSeq) {
    common::ThrowError(ErrorCode::kInternal,
                       "Explode requires an item-seq column: " + column);
  }
  if (position_column.empty()) {
    node->schema = child->schema;
  } else {
    auto schema = std::make_shared<Schema>(child->schema->fields());
    schema->AddField(Field{position_column, DataType::kInt64});
    node->schema = std::move(schema);
  }
  node->child = std::move(child);
  node->explode_column = std::move(column);
  node->explode_position_column = std::move(position_column);
  return node;
}

PlanPtr MakeGroupBy(PlanPtr child, std::vector<std::string> keys,
                    std::vector<Aggregate> aggregates) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kGroupBy;
  auto schema = std::make_shared<Schema>();
  for (const auto& key : keys) {
    RequireColumn(*child->schema, key, "GroupBy(key)");
    schema->AddField(child->schema->field(child->schema->RequireIndex(key)));
  }
  for (const auto& agg : aggregates) {
    DataType type = DataType::kItemSeq;
    switch (agg.kind) {
      case AggKind::kCollect:
        RequireColumn(*child->schema, agg.input_column, "GroupBy(collect)");
        type = DataType::kItemSeq;
        break;
      case AggKind::kCount:
        type = DataType::kInt64;
        break;
      case AggKind::kFirst:
        RequireColumn(*child->schema, agg.input_column, "GroupBy(first)");
        type = child->schema
                   ->field(child->schema->RequireIndex(agg.input_column))
                   .type;
        break;
      case AggKind::kSumInt64:
      case AggKind::kMinInt64:
      case AggKind::kMaxInt64:
        RequireColumn(*child->schema, agg.input_column, "GroupBy(int agg)");
        type = DataType::kInt64;
        break;
    }
    schema->AddField(Field{agg.output_name, type});
  }
  node->schema = std::move(schema);
  node->child = std::move(child);
  node->group_keys = std::move(keys);
  node->aggregates = std::move(aggregates);
  return node;
}

PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kSort;
  for (const auto& key : keys) {
    RequireColumn(*child->schema, key.column, "Sort");
  }
  node->schema = child->schema;
  node->child = std::move(child);
  node->sort_keys = std::move(keys);
  return node;
}

PlanPtr MakeZipIndex(PlanPtr child, std::string index_column) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kZipIndex;
  auto schema = std::make_shared<Schema>(child->schema->fields());
  schema->AddField(Field{index_column, DataType::kInt64});
  node->schema = std::move(schema);
  node->child = std::move(child);
  node->index_column = std::move(index_column);
  return node;
}

PlanPtr MakeLimit(PlanPtr child, std::size_t limit_rows) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kLimit;
  node->schema = child->schema;
  node->child = std::move(child);
  node->limit_rows = limit_rows;
  return node;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr build, std::vector<JoinKey> keys,
                 JoinStrategy strategy) {
  if (keys.empty()) {
    common::ThrowError(ErrorCode::kInternal,
                       "Join requires at least one equi-key pair");
  }
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kJoin;
  for (const auto& key : keys) {
    RequireColumn(*left->schema, key.left_column, "Join(left key)");
    RequireColumn(*build->schema, key.right_column, "Join(right key)");
    DataType lt =
        left->schema->field(left->schema->RequireIndex(key.left_column)).type;
    DataType rt =
        build->schema->field(build->schema->RequireIndex(key.right_column))
            .type;
    if (lt == DataType::kItemSeq || rt == DataType::kItemSeq) {
      common::ThrowError(ErrorCode::kInternal,
                         "Join keys must be native columns: " +
                             key.left_column + " = " + key.right_column);
    }
    if (lt != rt) {
      common::ThrowError(
          ErrorCode::kInternal,
          "Join key types differ: " + key.left_column + " = " +
              key.right_column);
    }
  }
  auto schema = std::make_shared<Schema>(left->schema->fields());
  for (const auto& field : build->schema->fields()) {
    if (schema->IndexOf(field.name) >= 0) {
      common::ThrowError(ErrorCode::kInternal,
                         "Join output would duplicate column '" + field.name +
                             "'");
    }
    schema->AddField(field);
  }
  node->schema = std::move(schema);
  node->child = std::move(left);
  node->join_build = std::move(build);
  node->join_keys = std::move(keys);
  node->join_strategy = strategy;
  return node;
}

namespace {

const char* StrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kAuto:
      return "auto";
    case JoinStrategy::kBroadcast:
      return "broadcast";
    case JoinStrategy::kShuffle:
      return "shuffle";
  }
  return "auto";
}

void PlanToStringImpl(const LogicalPlan& plan, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  std::string line;
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan:
      line = "Scan [" + plan.schema->ToString() + "]";
      break;
    case LogicalPlan::Kind::kProject: {
      line = "Project [";
      for (std::size_t i = 0; i < plan.exprs.size(); ++i) {
        if (i > 0) line.append(", ");
        const auto& expr = plan.exprs[i];
        if (expr.is_column_ref()) {
          line.append(expr.source_column + " AS " + expr.name);
        } else {
          line.append("udf(...) AS " + expr.name);
        }
      }
      line.append("]");
      break;
    }
    case LogicalPlan::Kind::kFilter:
      line = "Filter [udf over ";
      for (std::size_t i = 0; i < plan.predicate.inputs.size(); ++i) {
        if (i > 0) line.append(", ");
        line.append(plan.predicate.inputs[i]);
      }
      line.append("]");
      break;
    case LogicalPlan::Kind::kExplode:
      line = "Explode [" + plan.explode_column + "]";
      break;
    case LogicalPlan::Kind::kGroupBy: {
      line = "GroupBy [keys: ";
      for (std::size_t i = 0; i < plan.group_keys.size(); ++i) {
        if (i > 0) line.append(", ");
        line.append(plan.group_keys[i]);
      }
      line.append("; aggs: ");
      for (std::size_t i = 0; i < plan.aggregates.size(); ++i) {
        if (i > 0) line.append(", ");
        line.append(plan.aggregates[i].output_name);
      }
      line.append("]");
      break;
    }
    case LogicalPlan::Kind::kSort:
      line = "Sort [";
      for (std::size_t i = 0; i < plan.sort_keys.size(); ++i) {
        if (i > 0) line.append(", ");
        line.append(plan.sort_keys[i].column);
        line.append(plan.sort_keys[i].ascending ? " asc" : " desc");
      }
      line.append("]");
      break;
    case LogicalPlan::Kind::kZipIndex:
      line = "ZipIndex [" + plan.index_column + "]";
      break;
    case LogicalPlan::Kind::kLimit:
      line = "Limit [" + std::to_string(plan.limit_rows) + "]";
      break;
    case LogicalPlan::Kind::kJoin: {
      line = "Join [";
      for (std::size_t i = 0; i < plan.join_keys.size(); ++i) {
        if (i > 0) line.append(", ");
        line.append(plan.join_keys[i].left_column + " = " +
                    plan.join_keys[i].right_column);
      }
      line.append("; strategy: ");
      line.append(StrategyName(plan.join_strategy));
      line.append("]");
      break;
    }
  }
  double est = EstimateRows(plan);
  if (est >= 0.0) {
    line.append(" (est: " + FormatEstimate(est) + ")");
  }
  out->append(line);
  out->append("\n");
  if (plan.kind == LogicalPlan::Kind::kJoin) {
    PlanToStringImpl(*plan.child, depth + 1, out);
    out->append(static_cast<std::size_t>(depth + 1) * 2, ' ');
    double build_rows = EstimateRows(*plan.join_build);
    double build_bytes = EstimateBytes(*plan.join_build);
    std::string build_line = "Build [est: " + FormatEstimate(build_rows);
    if (build_bytes >= 0.0) {
      build_line.append(
          ", ~" +
          std::to_string(static_cast<long long>(std::llround(build_bytes))) +
          " bytes");
    } else {
      build_line.append(", ? bytes");
    }
    build_line.append("]");
    out->append(build_line);
    out->append("\n");
    PlanToStringImpl(*plan.join_build, depth + 2, out);
    return;
  }
  if (plan.child) PlanToStringImpl(*plan.child, depth + 1, out);
}

}  // namespace

std::string PlanToString(const LogicalPlan& plan) {
  std::string out;
  PlanToStringImpl(plan, 0, &out);
  return out;
}

}  // namespace rumble::df
