#include "src/df/logical_plan.h"

#include "src/common/error.h"

namespace rumble::df {

namespace {

using common::ErrorCode;

void RequireColumn(const Schema& schema, const std::string& name,
                   const char* context) {
  if (schema.IndexOf(name) < 0) {
    common::ThrowError(ErrorCode::kInternal,
                       std::string(context) + ": unknown column '" + name +
                           "' in schema [" + schema.ToString() + "]");
  }
}

}  // namespace

PlanPtr MakeScan(SchemaPtr schema, spark::Rdd<RecordBatch> batches) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kScan;
  node->schema = std::move(schema);
  node->scan_batches = std::move(batches);
  return node;
}

PlanPtr MakeProject(PlanPtr child, std::vector<NamedExpr> exprs) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kProject;
  auto schema = std::make_shared<Schema>();
  for (const auto& expr : exprs) {
    if (expr.is_column_ref()) {
      RequireColumn(*child->schema, expr.source_column, "Project");
    } else {
      for (const auto& input : expr.udf.inputs) {
        RequireColumn(*child->schema, input, "Project(udf)");
      }
    }
    schema->AddField(Field{expr.name, expr.type});
  }
  node->schema = std::move(schema);
  node->child = std::move(child);
  node->exprs = std::move(exprs);
  return node;
}

PlanPtr MakeFilter(PlanPtr child, Predicate predicate) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kFilter;
  for (const auto& input : predicate.inputs) {
    RequireColumn(*child->schema, input, "Filter");
  }
  node->schema = child->schema;
  node->child = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr MakeExplode(PlanPtr child, std::string column, bool keep_empty,
                    std::string position_column) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kExplode;
  node->explode_keep_empty = keep_empty;
  RequireColumn(*child->schema, column, "Explode");
  if (child->schema->field(child->schema->RequireIndex(column)).type !=
      DataType::kItemSeq) {
    common::ThrowError(ErrorCode::kInternal,
                       "Explode requires an item-seq column: " + column);
  }
  if (position_column.empty()) {
    node->schema = child->schema;
  } else {
    auto schema = std::make_shared<Schema>(child->schema->fields());
    schema->AddField(Field{position_column, DataType::kInt64});
    node->schema = std::move(schema);
  }
  node->child = std::move(child);
  node->explode_column = std::move(column);
  node->explode_position_column = std::move(position_column);
  return node;
}

PlanPtr MakeGroupBy(PlanPtr child, std::vector<std::string> keys,
                    std::vector<Aggregate> aggregates) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kGroupBy;
  auto schema = std::make_shared<Schema>();
  for (const auto& key : keys) {
    RequireColumn(*child->schema, key, "GroupBy(key)");
    schema->AddField(child->schema->field(child->schema->RequireIndex(key)));
  }
  for (const auto& agg : aggregates) {
    DataType type = DataType::kItemSeq;
    switch (agg.kind) {
      case AggKind::kCollect:
        RequireColumn(*child->schema, agg.input_column, "GroupBy(collect)");
        type = DataType::kItemSeq;
        break;
      case AggKind::kCount:
        type = DataType::kInt64;
        break;
      case AggKind::kFirst:
        RequireColumn(*child->schema, agg.input_column, "GroupBy(first)");
        type = child->schema
                   ->field(child->schema->RequireIndex(agg.input_column))
                   .type;
        break;
      case AggKind::kSumInt64:
      case AggKind::kMinInt64:
      case AggKind::kMaxInt64:
        RequireColumn(*child->schema, agg.input_column, "GroupBy(int agg)");
        type = DataType::kInt64;
        break;
    }
    schema->AddField(Field{agg.output_name, type});
  }
  node->schema = std::move(schema);
  node->child = std::move(child);
  node->group_keys = std::move(keys);
  node->aggregates = std::move(aggregates);
  return node;
}

PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kSort;
  for (const auto& key : keys) {
    RequireColumn(*child->schema, key.column, "Sort");
  }
  node->schema = child->schema;
  node->child = std::move(child);
  node->sort_keys = std::move(keys);
  return node;
}

PlanPtr MakeZipIndex(PlanPtr child, std::string index_column) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kZipIndex;
  auto schema = std::make_shared<Schema>(child->schema->fields());
  schema->AddField(Field{index_column, DataType::kInt64});
  node->schema = std::move(schema);
  node->child = std::move(child);
  node->index_column = std::move(index_column);
  return node;
}

PlanPtr MakeLimit(PlanPtr child, std::size_t limit_rows) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = LogicalPlan::Kind::kLimit;
  node->schema = child->schema;
  node->child = std::move(child);
  node->limit_rows = limit_rows;
  return node;
}

namespace {

void PlanToStringImpl(const LogicalPlan& plan, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan:
      out->append("Scan [" + plan.schema->ToString() + "]\n");
      break;
    case LogicalPlan::Kind::kProject: {
      out->append("Project [");
      for (std::size_t i = 0; i < plan.exprs.size(); ++i) {
        if (i > 0) out->append(", ");
        const auto& expr = plan.exprs[i];
        if (expr.is_column_ref()) {
          out->append(expr.source_column + " AS " + expr.name);
        } else {
          out->append("udf(...) AS " + expr.name);
        }
      }
      out->append("]\n");
      break;
    }
    case LogicalPlan::Kind::kFilter:
      out->append("Filter [udf over ");
      for (std::size_t i = 0; i < plan.predicate.inputs.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(plan.predicate.inputs[i]);
      }
      out->append("]\n");
      break;
    case LogicalPlan::Kind::kExplode:
      out->append("Explode [" + plan.explode_column + "]\n");
      break;
    case LogicalPlan::Kind::kGroupBy: {
      out->append("GroupBy [keys: ");
      for (std::size_t i = 0; i < plan.group_keys.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(plan.group_keys[i]);
      }
      out->append("; aggs: ");
      for (std::size_t i = 0; i < plan.aggregates.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(plan.aggregates[i].output_name);
      }
      out->append("]\n");
      break;
    }
    case LogicalPlan::Kind::kSort:
      out->append("Sort [");
      for (std::size_t i = 0; i < plan.sort_keys.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(plan.sort_keys[i].column);
        out->append(plan.sort_keys[i].ascending ? " asc" : " desc");
      }
      out->append("]\n");
      break;
    case LogicalPlan::Kind::kZipIndex:
      out->append("ZipIndex [" + plan.index_column + "]\n");
      break;
    case LogicalPlan::Kind::kLimit:
      out->append("Limit [" + std::to_string(plan.limit_rows) + "]\n");
      break;
  }
  if (plan.child) PlanToStringImpl(*plan.child, depth + 1, out);
}

}  // namespace

std::string PlanToString(const LogicalPlan& plan) {
  std::string out;
  PlanToStringImpl(plan, 0, &out);
  return out;
}

}  // namespace rumble::df
