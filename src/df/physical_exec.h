#ifndef RUMBLE_DF_PHYSICAL_EXEC_H_
#define RUMBLE_DF_PHYSICAL_EXEC_H_

#include "src/df/logical_plan.h"
#include "src/spark/context.h"

namespace rumble::df {

/// Executes a (typically optimized) logical plan. Narrow operators
/// (Project/Filter/Explode) stay lazy and pipeline inside RDD partitions;
/// wide operators (GroupBy/Sort/ZipIndex/Limit) run eagerly when this
/// function reaches them — callers invoke ExecutePlan at action time only.
spark::Rdd<RecordBatch> ExecutePlan(const PlanPtr& plan,
                                    spark::Context* context);

/// Wraps already-materialized batches as a one-partition-per-batch RDD.
spark::Rdd<RecordBatch> BatchesToRdd(spark::Context* context,
                                     std::vector<RecordBatch> batches);

/// Encodes the native key columns of one row into a byte string usable as a
/// hash-map key (type tag + value bytes per column). Exposed for tests.
std::string EncodeKey(const Schema& schema,
                      const std::vector<std::size_t>& key_indices,
                      const RecordBatch& batch, std::size_t row);

}  // namespace rumble::df

#endif  // RUMBLE_DF_PHYSICAL_EXEC_H_
