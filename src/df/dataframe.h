#ifndef RUMBLE_DF_DATAFRAME_H_
#define RUMBLE_DF_DATAFRAME_H_

#include <string>
#include <vector>

#include "src/df/logical_plan.h"
#include "src/df/optimizer.h"
#include "src/spark/context.h"

namespace rumble::df {

/// Spark-SQL-style DataFrame: an immutable logical plan plus a schema.
/// Transformations build plan nodes; actions optimize and execute. FLWOR
/// tuple streams are DataFrames whose variable columns have type kItemSeq
/// (paper Section 4.3).
class DataFrame {
 public:
  DataFrame() = default;

  /// Wraps materialized batches (one partition each) with a schema.
  static DataFrame FromBatches(spark::Context* context, SchemaPtr schema,
                               std::vector<RecordBatch> batches);

  /// Wraps a lazy RDD of batches with a schema.
  static DataFrame FromRdd(spark::Context* context, SchemaPtr schema,
                           spark::Rdd<RecordBatch> batches);

  bool valid() const { return plan_ != nullptr; }
  spark::Context* context() const { return context_; }
  const Schema& schema() const { return *plan_->schema; }
  SchemaPtr schema_ptr() const { return plan_->schema; }
  const PlanPtr& plan() const { return plan_; }

  // ---- Transformations (lazy) ------------------------------------------
  DataFrame Project(std::vector<NamedExpr> exprs) const;
  DataFrame Filter(Predicate predicate) const;
  DataFrame Explode(const std::string& column, bool keep_empty = false,
                    const std::string& position_column = "") const;
  DataFrame GroupBy(std::vector<std::string> keys,
                    std::vector<Aggregate> aggregates) const;
  DataFrame Sort(std::vector<SortKey> keys) const;
  DataFrame ZipIndex(const std::string& index_column) const;
  DataFrame Limit(std::size_t rows) const;
  /// Equi hash join against `build` (this DataFrame is the probe side). The
  /// optimizer resolves a kAuto strategy from scan statistics when they
  /// exist; the executor resolves any remainder from the actual build
  /// footprint (docs/OPTIMIZER.md).
  DataFrame Join(const DataFrame& build, std::vector<JoinKey> keys,
                 JoinStrategy strategy = JoinStrategy::kAuto) const;

  // ---- Actions ------------------------------------------------------------
  /// Optimizes and executes; returns the result as a lazy RDD of batches
  /// (narrow tails still pipeline when the consumer maps over it).
  spark::Rdd<RecordBatch> Execute() const;

  /// Collects all result rows into a single batch.
  RecordBatch CollectBatch() const;

  std::size_t CountRows() const;

  /// The optimized plan, printed — EXPLAIN for tests.
  std::string Explain() const;

 private:
  DataFrame(spark::Context* context, PlanPtr plan)
      : context_(context), plan_(std::move(plan)) {}

  spark::Context* context_ = nullptr;
  PlanPtr plan_;
};

}  // namespace rumble::df

#endif  // RUMBLE_DF_DATAFRAME_H_
