#ifndef RUMBLE_DF_LOGICAL_PLAN_H_
#define RUMBLE_DF_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/df/column.h"
#include "src/df/expressions.h"
#include "src/df/schema.h"
#include "src/spark/rdd.h"

namespace rumble::df {

struct TableStats;
using TableStatsPtr = std::shared_ptr<const TableStats>;

/// Which physical algorithm executes a Join node. kAuto defers the choice:
/// the optimizer resolves it from scan statistics when they exist
/// (docs/OPTIMIZER.md), and the executor resolves any remaining kAuto from
/// the actual build-side footprint at run time.
enum class JoinStrategy {
  kAuto,
  kBroadcast,  // build side replicated: one hash table, probed in place
  kShuffle,    // build side hash-partitioned into spillable buckets
};

/// One equi-join key pair: a native (non-item-seq) column on each side.
/// Both columns must have the same type. Null cells never match — the
/// FLWOR translator encodes "empty sequence" as null so a missing key joins
/// with nothing, exactly as the nested-loop predicate evaluates to false.
struct JoinKey {
  std::string left_column;
  std::string right_column;
};

/// Logical plan node. A tagged struct rather than a class hierarchy: the
/// node set is small and closed, and the optimizer rewrites trees by
/// constructing new nodes. The per-kind payload fields are documented next
/// to the kind.
struct LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;

struct LogicalPlan {
  enum class Kind {
    kScan,      // leaf: scan_schema + scan_batches (an RDD of RecordBatch)
    kProject,   // exprs: extended projection (paper's SELECT ... UDF(...))
    kFilter,    // predicate (paper's WHERE EVALUATE_EXPRESSION(...))
    kExplode,   // explode_column: one row per item of the sequence (§4.4)
    kGroupBy,   // group_keys (native cols) + aggregates (§4.7)
    kSort,      // sort_keys over native cols (§4.8)
    kZipIndex,  // index_column: global 0-based row number (§4.9, count clause)
    kLimit,     // limit_rows
    kJoin,      // join_build/join_keys/join_strategy: equi hash join
  };

  Kind kind = Kind::kScan;
  PlanPtr child;  // null for kScan; the probe (left) side for kJoin

  /// Output schema of this node; computed by the builder functions below.
  SchemaPtr schema;

  // kScan
  spark::Rdd<RecordBatch> scan_batches;
  /// Per-column min/max/distinct/null statistics collected when the scan
  /// wraps materialized batches; null for lazy scans (never collected at
  /// plan time — EXPLAIN must not execute anything).
  TableStatsPtr scan_stats;

  // kProject
  std::vector<NamedExpr> exprs;

  // kFilter
  Predicate predicate;

  // kExplode
  std::string explode_column;
  /// JSONiq `for ... allowing empty`: keep a row with the empty sequence
  /// when the exploded sequence has no items.
  bool explode_keep_empty = false;
  /// When non-empty, adds an int64 column with the 1-based position of the
  /// item within its source sequence (0 for an `allowing empty` row) —
  /// implements `for ... at $p`.
  std::string explode_position_column;

  // kGroupBy
  std::vector<std::string> group_keys;
  std::vector<Aggregate> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kZipIndex
  std::string index_column;

  // kLimit
  std::size_t limit_rows = 0;

  // kJoin. `child` is the probe (left) side; `join_build` the build (right)
  // side. Output schema = left fields ++ right fields, output order is
  // probe-major with matches in build-side insertion order — both physical
  // strategies reproduce it byte-identically.
  PlanPtr join_build;
  std::vector<JoinKey> join_keys;
  JoinStrategy join_strategy = JoinStrategy::kAuto;
};

/// Node builders; each validates column references against the child schema
/// (throwing kInternal on engine bugs) and derives the output schema.
PlanPtr MakeScan(SchemaPtr schema, spark::Rdd<RecordBatch> batches,
                 TableStatsPtr stats = nullptr);
PlanPtr MakeProject(PlanPtr child, std::vector<NamedExpr> exprs);
PlanPtr MakeFilter(PlanPtr child, Predicate predicate);
PlanPtr MakeExplode(PlanPtr child, std::string column, bool keep_empty = false,
                    std::string position_column = "");
PlanPtr MakeGroupBy(PlanPtr child, std::vector<std::string> keys,
                    std::vector<Aggregate> aggregates);
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr MakeZipIndex(PlanPtr child, std::string index_column);
PlanPtr MakeLimit(PlanPtr child, std::size_t limit_rows);
/// Validates that every key pair names native columns of equal type on both
/// sides and that the combined schema has no duplicate column names.
PlanPtr MakeJoin(PlanPtr left, PlanPtr build, std::vector<JoinKey> keys,
                 JoinStrategy strategy = JoinStrategy::kAuto);

/// Pretty-printer for tests and EXPLAIN-style debugging. Every node line is
/// annotated with its cardinality estimate when a scan below carries
/// statistics; Join lines always show the chosen strategy and the build
/// side prints under a nested "Build" header.
std::string PlanToString(const LogicalPlan& plan);

}  // namespace rumble::df

#endif  // RUMBLE_DF_LOGICAL_PLAN_H_
