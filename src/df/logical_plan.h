#ifndef RUMBLE_DF_LOGICAL_PLAN_H_
#define RUMBLE_DF_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/df/column.h"
#include "src/df/expressions.h"
#include "src/df/schema.h"
#include "src/spark/rdd.h"

namespace rumble::df {

/// Logical plan node. A tagged struct rather than a class hierarchy: the
/// node set is small and closed, and the optimizer rewrites trees by
/// constructing new nodes. The per-kind payload fields are documented next
/// to the kind.
struct LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;

struct LogicalPlan {
  enum class Kind {
    kScan,      // leaf: scan_schema + scan_batches (an RDD of RecordBatch)
    kProject,   // exprs: extended projection (paper's SELECT ... UDF(...))
    kFilter,    // predicate (paper's WHERE EVALUATE_EXPRESSION(...))
    kExplode,   // explode_column: one row per item of the sequence (§4.4)
    kGroupBy,   // group_keys (native cols) + aggregates (§4.7)
    kSort,      // sort_keys over native cols (§4.8)
    kZipIndex,  // index_column: global 0-based row number (§4.9, count clause)
    kLimit,     // limit_rows
  };

  Kind kind = Kind::kScan;
  PlanPtr child;  // null for kScan

  /// Output schema of this node; computed by the builder functions below.
  SchemaPtr schema;

  // kScan
  spark::Rdd<RecordBatch> scan_batches;

  // kProject
  std::vector<NamedExpr> exprs;

  // kFilter
  Predicate predicate;

  // kExplode
  std::string explode_column;
  /// JSONiq `for ... allowing empty`: keep a row with the empty sequence
  /// when the exploded sequence has no items.
  bool explode_keep_empty = false;
  /// When non-empty, adds an int64 column with the 1-based position of the
  /// item within its source sequence (0 for an `allowing empty` row) —
  /// implements `for ... at $p`.
  std::string explode_position_column;

  // kGroupBy
  std::vector<std::string> group_keys;
  std::vector<Aggregate> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kZipIndex
  std::string index_column;

  // kLimit
  std::size_t limit_rows = 0;
};

/// Node builders; each validates column references against the child schema
/// (throwing kInternal on engine bugs) and derives the output schema.
PlanPtr MakeScan(SchemaPtr schema, spark::Rdd<RecordBatch> batches);
PlanPtr MakeProject(PlanPtr child, std::vector<NamedExpr> exprs);
PlanPtr MakeFilter(PlanPtr child, Predicate predicate);
PlanPtr MakeExplode(PlanPtr child, std::string column, bool keep_empty = false,
                    std::string position_column = "");
PlanPtr MakeGroupBy(PlanPtr child, std::vector<std::string> keys,
                    std::vector<Aggregate> aggregates);
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr MakeZipIndex(PlanPtr child, std::string index_column);
PlanPtr MakeLimit(PlanPtr child, std::size_t limit_rows);

/// Pretty-printer for tests and EXPLAIN-style debugging.
std::string PlanToString(const LogicalPlan& plan);

}  // namespace rumble::df

#endif  // RUMBLE_DF_LOGICAL_PLAN_H_
