#ifndef RUMBLE_DF_OPTIMIZER_H_
#define RUMBLE_DF_OPTIMIZER_H_

#include <cstdint>

#include "src/df/logical_plan.h"

namespace rumble::df {

/// Knobs the cost model reads (wired from RumbleConfig by the DataFrame
/// layer; docs/OPTIMIZER.md).
struct OptimizerOptions {
  /// Estimated build sides at or below this many bytes broadcast; larger
  /// ones shuffle. Mirrors config join_broadcast_threshold_bytes.
  std::uint64_t broadcast_threshold_bytes = 4ull << 20;
  /// kAuto = decide per join from statistics; anything else forces every
  /// Join node to that strategy (config join_strategy).
  JoinStrategy forced_strategy = JoinStrategy::kAuto;
};

/// Catalyst-lite rewriter. Passes, in order:
///   1. Pushdown — Filter(Project) reorders to Project(Filter) when the
///      predicate only reads identity pass-through columns, so projection
///      UDFs run on fewer rows; Limit(Project) always reorders; and
///      Filter(Join) routes a predicate reading only one side's columns
///      below the join, shrinking the build or probe input.
///   2. Filter ordering — stacked filters reorder most-selective-first by
///      their selectivity hints (unknown hints assume 0.5; ties keep their
///      original execution order).
///   3. Column pruning — only columns required by ancestors survive; a
///      projection is inserted above Scan when it reads more than needed.
///      Join key columns are always required on their respective sides.
///   4. Projection fusion — Project(Project(x)) collapses when the outer
///      projection is pure column references, and identity projections are
///      removed.
///   5. Join strategy resolution — every kAuto Join whose build side has a
///      byte estimate (statistics collected at scan, propagated through the
///      plan) becomes kBroadcast or kShuffle against the threshold;
///      stats-free joins stay kAuto and resolve at execution time from the
///      actual build footprint.
/// The paper's §4.7 rewrites (COUNT pushdown, unused-variable dropping) are
/// applied by the FLWOR-to-DataFrame translator, which has the JSONiq-level
/// usage information; they compose with these relational passes.
PlanPtr Optimize(PlanPtr plan, const OptimizerOptions& options);
PlanPtr Optimize(PlanPtr plan);

}  // namespace rumble::df

#endif  // RUMBLE_DF_OPTIMIZER_H_
