#ifndef RUMBLE_DF_OPTIMIZER_H_
#define RUMBLE_DF_OPTIMIZER_H_

#include "src/df/logical_plan.h"

namespace rumble::df {

/// Catalyst-lite rewriter. Passes:
///   1. Pushdown — Filter(Project) reorders to Project(Filter) when the
///      predicate only reads identity pass-through columns, so projection
///      UDFs run on fewer rows; Limit(Project) always reorders.
///   2. Column pruning — only columns required by ancestors survive; a
///      projection is inserted above Scan when it reads more than needed.
///   3. Projection fusion — Project(Project(x)) collapses when the outer
///      projection is pure column references, and identity projections are
///      removed.
/// The paper's §4.7 rewrites (COUNT pushdown, unused-variable dropping) are
/// applied by the FLWOR-to-DataFrame translator, which has the JSONiq-level
/// usage information; they compose with these relational passes.
PlanPtr Optimize(PlanPtr plan);

}  // namespace rumble::df

#endif  // RUMBLE_DF_OPTIMIZER_H_
