#include "src/df/optimizer.h"

#include <set>
#include <string>

namespace rumble::df {

namespace {

using ColumnSet = std::set<std::string>;

ColumnSet AllColumns(const Schema& schema) {
  ColumnSet out;
  for (const auto& field : schema.fields()) out.insert(field.name);
  return out;
}

PlanPtr Prune(const PlanPtr& plan, const ColumnSet& required);

/// Inserts a reference-only projection above `plan` keeping `required`
/// columns (in schema order). Keeps at least one column so row counts
/// survive (a COUNT over zero columns needs a witness column).
PlanPtr KeepOnly(PlanPtr plan, const ColumnSet& required) {
  const Schema& schema = *plan->schema;
  std::vector<NamedExpr> exprs;
  for (const auto& field : schema.fields()) {
    if (required.count(field.name) > 0) {
      exprs.push_back(NamedExpr::Ref(field.name, field.name, field.type));
    }
  }
  if (exprs.size() == schema.num_fields()) return plan;  // nothing to prune
  if (exprs.empty()) {
    const Field& witness = schema.field(0);
    exprs.push_back(NamedExpr::Ref(witness.name, witness.name, witness.type));
  }
  return MakeProject(std::move(plan), std::move(exprs));
}

PlanPtr Prune(const PlanPtr& plan, const ColumnSet& required) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kScan:
      return KeepOnly(plan, required);

    case LogicalPlan::Kind::kProject: {
      std::vector<NamedExpr> kept;
      ColumnSet child_required;
      for (const auto& expr : plan->exprs) {
        if (required.count(expr.name) == 0) continue;
        kept.push_back(expr);
        if (expr.is_column_ref()) {
          child_required.insert(expr.source_column);
        } else {
          for (const auto& input : expr.udf.inputs) {
            child_required.insert(input);
          }
        }
      }
      if (kept.empty()) {
        // Keep the first expression as a witness for the row count.
        kept.push_back(plan->exprs.front());
        const auto& expr = kept.front();
        if (expr.is_column_ref()) {
          child_required.insert(expr.source_column);
        } else {
          for (const auto& input : expr.udf.inputs) {
            child_required.insert(input);
          }
        }
      }
      return MakeProject(Prune(plan->child, child_required), std::move(kept));
    }

    case LogicalPlan::Kind::kFilter: {
      ColumnSet child_required = required;
      for (const auto& input : plan->predicate.inputs) {
        child_required.insert(input);
      }
      PlanPtr child = Prune(plan->child, child_required);
      return MakeFilter(std::move(child), plan->predicate);
    }

    case LogicalPlan::Kind::kExplode: {
      ColumnSet child_required = required;
      if (!plan->explode_position_column.empty()) {
        child_required.erase(plan->explode_position_column);
      }
      child_required.insert(plan->explode_column);
      PlanPtr child = Prune(plan->child, child_required);
      return MakeExplode(std::move(child), plan->explode_column,
                         plan->explode_keep_empty,
                         plan->explode_position_column);
    }

    case LogicalPlan::Kind::kGroupBy: {
      std::vector<Aggregate> kept;
      ColumnSet child_required;
      for (const auto& key : plan->group_keys) child_required.insert(key);
      for (const auto& agg : plan->aggregates) {
        if (required.count(agg.output_name) == 0) continue;
        kept.push_back(agg);
        if (agg.kind != AggKind::kCount) {
          child_required.insert(agg.input_column);
        }
      }
      PlanPtr child = Prune(plan->child, child_required);
      return MakeGroupBy(std::move(child), plan->group_keys, std::move(kept));
    }

    case LogicalPlan::Kind::kSort: {
      ColumnSet child_required = required;
      for (const auto& key : plan->sort_keys) {
        child_required.insert(key.column);
      }
      PlanPtr child = Prune(plan->child, child_required);
      return MakeSort(std::move(child), plan->sort_keys);
    }

    case LogicalPlan::Kind::kZipIndex: {
      ColumnSet child_required = required;
      child_required.erase(plan->index_column);
      PlanPtr child = Prune(plan->child, child_required);
      return MakeZipIndex(std::move(child), plan->index_column);
    }

    case LogicalPlan::Kind::kLimit:
      return MakeLimit(Prune(plan->child, required), plan->limit_rows);
  }
  return plan;
}

PlanPtr Rebuild(const PlanPtr& plan, PlanPtr new_child) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kProject:
      return MakeProject(std::move(new_child), plan->exprs);
    case LogicalPlan::Kind::kFilter:
      return MakeFilter(std::move(new_child), plan->predicate);
    case LogicalPlan::Kind::kExplode:
      return MakeExplode(std::move(new_child), plan->explode_column,
                         plan->explode_keep_empty,
                         plan->explode_position_column);
    case LogicalPlan::Kind::kGroupBy:
      return MakeGroupBy(std::move(new_child), plan->group_keys,
                         plan->aggregates);
    case LogicalPlan::Kind::kSort:
      return MakeSort(std::move(new_child), plan->sort_keys);
    case LogicalPlan::Kind::kZipIndex:
      return MakeZipIndex(std::move(new_child), plan->index_column);
    case LogicalPlan::Kind::kLimit:
      return MakeLimit(std::move(new_child), plan->limit_rows);
    case LogicalPlan::Kind::kScan:
      return plan;
  }
  return plan;
}

/// True when `column` passes through the projection unchanged (a reference
/// whose output name equals its source column). Pushing an operator that
/// reads `column` below such a projection cannot change its meaning.
bool IsIdentityPassThrough(const LogicalPlan& project,
                           const std::string& column) {
  for (const auto& expr : project.exprs) {
    if (expr.name == column) {
      return expr.is_column_ref() && expr.source_column == column;
    }
  }
  return false;
}

/// Predicate/limit pushdown: Filter(Project(x)) -> Project(Filter(x)) when
/// the predicate only reads identity pass-through columns (UDF projections
/// then evaluate on fewer rows), and Limit(Project(x)) -> Project(Limit(x))
/// always (projections are 1:1). Applied bottom-up to convergence.
PlanPtr PushDown(const PlanPtr& plan) {
  if (!plan->child) return plan;
  PlanPtr child = PushDown(plan->child);

  if (plan->kind == LogicalPlan::Kind::kFilter &&
      child->kind == LogicalPlan::Kind::kProject) {
    bool pushable = true;
    for (const auto& input : plan->predicate.inputs) {
      if (!IsIdentityPassThrough(*child, input)) {
        pushable = false;
        break;
      }
    }
    if (pushable) {
      PlanPtr filtered =
          PushDown(MakeFilter(child->child, plan->predicate));
      return MakeProject(std::move(filtered), child->exprs);
    }
  }

  if (plan->kind == LogicalPlan::Kind::kLimit &&
      child->kind == LogicalPlan::Kind::kProject) {
    PlanPtr limited = PushDown(MakeLimit(child->child, plan->limit_rows));
    return MakeProject(std::move(limited), child->exprs);
  }

  return Rebuild(plan, std::move(child));
}

/// Collapses Project(Project(x)) when the outer is all references, and
/// removes identity projections.
PlanPtr Fuse(const PlanPtr& plan) {
  if (!plan->child) return plan;
  PlanPtr child = Fuse(plan->child);

  auto rebuild = [&](PlanPtr new_child) -> PlanPtr {
    return Rebuild(plan, std::move(new_child));
  };

  if (plan->kind != LogicalPlan::Kind::kProject) return rebuild(child);

  bool all_refs = true;
  for (const auto& expr : plan->exprs) {
    if (!expr.is_column_ref()) {
      all_refs = false;
      break;
    }
  }

  // Identity projection: same columns, same names, same order.
  if (all_refs && plan->exprs.size() == child->schema->num_fields()) {
    bool identity = true;
    for (std::size_t i = 0; i < plan->exprs.size(); ++i) {
      const auto& expr = plan->exprs[i];
      if (expr.name != expr.source_column ||
          child->schema->field(i).name != expr.name) {
        identity = false;
        break;
      }
    }
    if (identity) return child;
  }

  // Fuse reference-only projection into a child projection.
  if (all_refs && child->kind == LogicalPlan::Kind::kProject) {
    std::vector<NamedExpr> fused;
    fused.reserve(plan->exprs.size());
    for (const auto& outer : plan->exprs) {
      const NamedExpr* inner = nullptr;
      for (const auto& candidate : child->exprs) {
        if (candidate.name == outer.source_column) {
          inner = &candidate;
          break;
        }
      }
      if (inner == nullptr) return rebuild(child);  // should not happen
      NamedExpr copy = *inner;
      copy.name = outer.name;
      fused.push_back(std::move(copy));
    }
    return MakeProject(child->child, std::move(fused));
  }

  return rebuild(child);
}

}  // namespace

PlanPtr Optimize(PlanPtr plan) {
  PlanPtr pushed = PushDown(plan);
  PlanPtr pruned = Prune(pushed, AllColumns(*pushed->schema));
  return Fuse(pruned);
}

}  // namespace rumble::df
