#include "src/df/optimizer.h"

#include <algorithm>
#include <set>
#include <string>

#include "src/df/stats.h"

namespace rumble::df {

namespace {

using ColumnSet = std::set<std::string>;

ColumnSet AllColumns(const Schema& schema) {
  ColumnSet out;
  for (const auto& field : schema.fields()) out.insert(field.name);
  return out;
}

PlanPtr Prune(const PlanPtr& plan, const ColumnSet& required);

/// Inserts a reference-only projection above `plan` keeping `required`
/// columns (in schema order). Keeps at least one column so row counts
/// survive (a COUNT over zero columns needs a witness column).
PlanPtr KeepOnly(PlanPtr plan, const ColumnSet& required) {
  const Schema& schema = *plan->schema;
  std::vector<NamedExpr> exprs;
  for (const auto& field : schema.fields()) {
    if (required.count(field.name) > 0) {
      exprs.push_back(NamedExpr::Ref(field.name, field.name, field.type));
    }
  }
  if (exprs.size() == schema.num_fields()) return plan;  // nothing to prune
  if (exprs.empty()) {
    const Field& witness = schema.field(0);
    exprs.push_back(NamedExpr::Ref(witness.name, witness.name, witness.type));
  }
  return MakeProject(std::move(plan), std::move(exprs));
}

PlanPtr Prune(const PlanPtr& plan, const ColumnSet& required) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kScan:
      return KeepOnly(plan, required);

    case LogicalPlan::Kind::kProject: {
      std::vector<NamedExpr> kept;
      ColumnSet child_required;
      for (const auto& expr : plan->exprs) {
        if (required.count(expr.name) == 0) continue;
        kept.push_back(expr);
        if (expr.is_column_ref()) {
          child_required.insert(expr.source_column);
        } else {
          for (const auto& input : expr.udf.inputs) {
            child_required.insert(input);
          }
        }
      }
      if (kept.empty()) {
        // Keep the first expression as a witness for the row count.
        kept.push_back(plan->exprs.front());
        const auto& expr = kept.front();
        if (expr.is_column_ref()) {
          child_required.insert(expr.source_column);
        } else {
          for (const auto& input : expr.udf.inputs) {
            child_required.insert(input);
          }
        }
      }
      return MakeProject(Prune(plan->child, child_required), std::move(kept));
    }

    case LogicalPlan::Kind::kFilter: {
      ColumnSet child_required = required;
      for (const auto& input : plan->predicate.inputs) {
        child_required.insert(input);
      }
      PlanPtr child = Prune(plan->child, child_required);
      return MakeFilter(std::move(child), plan->predicate);
    }

    case LogicalPlan::Kind::kExplode: {
      ColumnSet child_required = required;
      if (!plan->explode_position_column.empty()) {
        child_required.erase(plan->explode_position_column);
      }
      child_required.insert(plan->explode_column);
      PlanPtr child = Prune(plan->child, child_required);
      return MakeExplode(std::move(child), plan->explode_column,
                         plan->explode_keep_empty,
                         plan->explode_position_column);
    }

    case LogicalPlan::Kind::kGroupBy: {
      std::vector<Aggregate> kept;
      ColumnSet child_required;
      for (const auto& key : plan->group_keys) child_required.insert(key);
      for (const auto& agg : plan->aggregates) {
        if (required.count(agg.output_name) == 0) continue;
        kept.push_back(agg);
        if (agg.kind != AggKind::kCount) {
          child_required.insert(agg.input_column);
        }
      }
      PlanPtr child = Prune(plan->child, child_required);
      return MakeGroupBy(std::move(child), plan->group_keys, std::move(kept));
    }

    case LogicalPlan::Kind::kSort: {
      ColumnSet child_required = required;
      for (const auto& key : plan->sort_keys) {
        child_required.insert(key.column);
      }
      PlanPtr child = Prune(plan->child, child_required);
      return MakeSort(std::move(child), plan->sort_keys);
    }

    case LogicalPlan::Kind::kZipIndex: {
      ColumnSet child_required = required;
      child_required.erase(plan->index_column);
      PlanPtr child = Prune(plan->child, child_required);
      return MakeZipIndex(std::move(child), plan->index_column);
    }

    case LogicalPlan::Kind::kLimit:
      return MakeLimit(Prune(plan->child, required), plan->limit_rows);

    case LogicalPlan::Kind::kJoin: {
      // Split the requirement by side (the combined schema is duplicate-free,
      // so membership in the left schema decides); key columns are always
      // required on their respective sides.
      ColumnSet left_required;
      ColumnSet right_required;
      const Schema& left_schema = *plan->child->schema;
      for (const auto& name : required) {
        if (left_schema.IndexOf(name) >= 0) {
          left_required.insert(name);
        } else {
          right_required.insert(name);
        }
      }
      for (const auto& key : plan->join_keys) {
        left_required.insert(key.left_column);
        right_required.insert(key.right_column);
      }
      return MakeJoin(Prune(plan->child, left_required),
                      Prune(plan->join_build, right_required), plan->join_keys,
                      plan->join_strategy);
    }
  }
  return plan;
}

PlanPtr Rebuild(const PlanPtr& plan, PlanPtr new_child) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kProject:
      return MakeProject(std::move(new_child), plan->exprs);
    case LogicalPlan::Kind::kFilter:
      return MakeFilter(std::move(new_child), plan->predicate);
    case LogicalPlan::Kind::kExplode:
      return MakeExplode(std::move(new_child), plan->explode_column,
                         plan->explode_keep_empty,
                         plan->explode_position_column);
    case LogicalPlan::Kind::kGroupBy:
      return MakeGroupBy(std::move(new_child), plan->group_keys,
                         plan->aggregates);
    case LogicalPlan::Kind::kSort:
      return MakeSort(std::move(new_child), plan->sort_keys);
    case LogicalPlan::Kind::kZipIndex:
      return MakeZipIndex(std::move(new_child), plan->index_column);
    case LogicalPlan::Kind::kLimit:
      return MakeLimit(std::move(new_child), plan->limit_rows);
    case LogicalPlan::Kind::kJoin:
      return MakeJoin(std::move(new_child), plan->join_build, plan->join_keys,
                      plan->join_strategy);
    case LogicalPlan::Kind::kScan:
      return plan;
  }
  return plan;
}

/// True when `column` passes through the projection unchanged (a reference
/// whose output name equals its source column). Pushing an operator that
/// reads `column` below such a projection cannot change its meaning.
bool IsIdentityPassThrough(const LogicalPlan& project,
                           const std::string& column) {
  for (const auto& expr : project.exprs) {
    if (expr.name == column) {
      return expr.is_column_ref() && expr.source_column == column;
    }
  }
  return false;
}

/// Predicate/limit pushdown: Filter(Project(x)) -> Project(Filter(x)) when
/// the predicate only reads identity pass-through columns (UDF projections
/// then evaluate on fewer rows), Limit(Project(x)) -> Project(Limit(x))
/// always (projections are 1:1), and Filter(Join(l, r)) routes a predicate
/// reading only one side's columns below the join. Applied bottom-up to
/// convergence.
PlanPtr PushDown(const PlanPtr& plan) {
  if (plan->kind == LogicalPlan::Kind::kJoin) {
    return MakeJoin(PushDown(plan->child), PushDown(plan->join_build),
                    plan->join_keys, plan->join_strategy);
  }
  if (!plan->child) return plan;
  PlanPtr child = PushDown(plan->child);

  if (plan->kind == LogicalPlan::Kind::kFilter &&
      child->kind == LogicalPlan::Kind::kJoin) {
    const Schema& left_schema = *child->child->schema;
    const Schema& right_schema = *child->join_build->schema;
    bool all_left = true;
    bool all_right = true;
    for (const auto& input : plan->predicate.inputs) {
      if (left_schema.IndexOf(input) < 0) all_left = false;
      if (right_schema.IndexOf(input) < 0) all_right = false;
    }
    if (all_left) {
      return MakeJoin(PushDown(MakeFilter(child->child, plan->predicate)),
                      child->join_build, child->join_keys,
                      child->join_strategy);
    }
    if (all_right) {
      return MakeJoin(
          child->child,
          PushDown(MakeFilter(child->join_build, plan->predicate)),
          child->join_keys, child->join_strategy);
    }
  }

  if (plan->kind == LogicalPlan::Kind::kFilter &&
      child->kind == LogicalPlan::Kind::kProject) {
    bool pushable = true;
    for (const auto& input : plan->predicate.inputs) {
      if (!IsIdentityPassThrough(*child, input)) {
        pushable = false;
        break;
      }
    }
    if (pushable) {
      PlanPtr filtered =
          PushDown(MakeFilter(child->child, plan->predicate));
      return MakeProject(std::move(filtered), child->exprs);
    }
  }

  if (plan->kind == LogicalPlan::Kind::kLimit &&
      child->kind == LogicalPlan::Kind::kProject) {
    PlanPtr limited = PushDown(MakeLimit(child->child, plan->limit_rows));
    return MakeProject(std::move(limited), child->exprs);
  }

  return Rebuild(plan, std::move(child));
}

/// Collapses Project(Project(x)) when the outer is all references, and
/// removes identity projections.
PlanPtr Fuse(const PlanPtr& plan) {
  if (plan->kind == LogicalPlan::Kind::kJoin) {
    return MakeJoin(Fuse(plan->child), Fuse(plan->join_build), plan->join_keys,
                    plan->join_strategy);
  }
  if (!plan->child) return plan;
  PlanPtr child = Fuse(plan->child);

  auto rebuild = [&](PlanPtr new_child) -> PlanPtr {
    return Rebuild(plan, std::move(new_child));
  };

  if (plan->kind != LogicalPlan::Kind::kProject) return rebuild(child);

  bool all_refs = true;
  for (const auto& expr : plan->exprs) {
    if (!expr.is_column_ref()) {
      all_refs = false;
      break;
    }
  }

  // Identity projection: same columns, same names, same order.
  if (all_refs && plan->exprs.size() == child->schema->num_fields()) {
    bool identity = true;
    for (std::size_t i = 0; i < plan->exprs.size(); ++i) {
      const auto& expr = plan->exprs[i];
      if (expr.name != expr.source_column ||
          child->schema->field(i).name != expr.name) {
        identity = false;
        break;
      }
    }
    if (identity) return child;
  }

  // Fuse reference-only projection into a child projection.
  if (all_refs && child->kind == LogicalPlan::Kind::kProject) {
    std::vector<NamedExpr> fused;
    fused.reserve(plan->exprs.size());
    for (const auto& outer : plan->exprs) {
      const NamedExpr* inner = nullptr;
      for (const auto& candidate : child->exprs) {
        if (candidate.name == outer.source_column) {
          inner = &candidate;
          break;
        }
      }
      if (inner == nullptr) return rebuild(child);  // should not happen
      NamedExpr copy = *inner;
      copy.name = outer.name;
      fused.push_back(std::move(copy));
    }
    return MakeProject(child->child, std::move(fused));
  }

  return rebuild(child);
}

double EffectiveSelectivity(const Predicate& predicate) {
  if (predicate.selectivity_hint >= 0.0 && predicate.selectivity_hint <= 1.0) {
    return predicate.selectivity_hint;
  }
  return 0.5;
}

/// Reorders stacks of adjacent filters so the most selective predicate runs
/// first (deepest). Stable over the original execution order, so hint-less
/// stacks are untouched.
PlanPtr OrderFilters(const PlanPtr& plan) {
  if (plan->kind == LogicalPlan::Kind::kJoin) {
    return MakeJoin(OrderFilters(plan->child), OrderFilters(plan->join_build),
                    plan->join_keys, plan->join_strategy);
  }
  if (!plan->child) return plan;
  if (plan->kind == LogicalPlan::Kind::kFilter &&
      plan->child->kind == LogicalPlan::Kind::kFilter) {
    std::vector<Predicate> predicates;
    const LogicalPlan* node = plan.get();
    PlanPtr base = plan;
    while (node->kind == LogicalPlan::Kind::kFilter) {
      predicates.push_back(node->predicate);
      base = node->child;
      node = base.get();
    }
    base = OrderFilters(base);
    // `predicates` is outermost-first; execution order is the reverse.
    std::reverse(predicates.begin(), predicates.end());
    std::stable_sort(predicates.begin(), predicates.end(),
                     [](const Predicate& a, const Predicate& b) {
                       return EffectiveSelectivity(a) <
                              EffectiveSelectivity(b);
                     });
    for (auto& predicate : predicates) {
      base = MakeFilter(std::move(base), std::move(predicate));
    }
    return base;
  }
  return Rebuild(plan, OrderFilters(plan->child));
}

/// Resolves every kAuto Join whose build side has a byte estimate; applies
/// the forced strategy when configured. Runs last so estimates see the
/// pruned/pushed-down build subtree.
PlanPtr ResolveJoinStrategies(const PlanPtr& plan,
                              const OptimizerOptions& options) {
  if (plan->kind == LogicalPlan::Kind::kJoin) {
    PlanPtr left = ResolveJoinStrategies(plan->child, options);
    PlanPtr right = ResolveJoinStrategies(plan->join_build, options);
    JoinStrategy strategy = plan->join_strategy;
    if (options.forced_strategy != JoinStrategy::kAuto) {
      strategy = options.forced_strategy;
    } else if (strategy == JoinStrategy::kAuto) {
      double build_bytes = EstimateBytes(*right);
      if (build_bytes >= 0.0) {
        strategy = build_bytes <=
                           static_cast<double>(options.broadcast_threshold_bytes)
                       ? JoinStrategy::kBroadcast
                       : JoinStrategy::kShuffle;
      }
    }
    return MakeJoin(std::move(left), std::move(right), plan->join_keys,
                    strategy);
  }
  if (!plan->child) return plan;
  return Rebuild(plan, ResolveJoinStrategies(plan->child, options));
}

}  // namespace

PlanPtr Optimize(PlanPtr plan, const OptimizerOptions& options) {
  PlanPtr pushed = PushDown(plan);
  PlanPtr ordered = OrderFilters(pushed);
  PlanPtr pruned = Prune(ordered, AllColumns(*ordered->schema));
  PlanPtr fused = Fuse(pruned);
  return ResolveJoinStrategies(fused, options);
}

PlanPtr Optimize(PlanPtr plan) { return Optimize(std::move(plan), {}); }

}  // namespace rumble::df
