#ifndef RUMBLE_DF_KERNEL_PROBE_H_
#define RUMBLE_DF_KERNEL_PROBE_H_

#include <cstdint>

#include "src/df/column.h"
#include "src/obs/event_bus.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/tracer.h"
#include "src/spark/context.h"
#include "src/util/stopwatch.h"

namespace rumble::df {

/// Per-kernel observability probe, built once at plan-wrap time (the Map
/// lambda captures it by value) so task bodies touch only stable pointers:
/// a latency histogram (always recorded — two clock reads per *batch* are
/// noise next to the batch work), batch/row counters, and a span gated on
/// the tracer's enabled flag. Names follow the `df.udf.vectorized` dotted
/// style; docs/METRICS.md and docs/TRACING.md list them. Shared by the
/// physical operators in physical_exec.cc and the hash joins in
/// join_exec.cc.
struct KernelProbe {
  obs::Tracer* tracer = nullptr;
  obs::Histogram* duration = nullptr;
  obs::CounterCell* batches = nullptr;
  obs::CounterCell* rows = nullptr;
  const char* name = "";

  template <typename Fn>
  RecordBatch Invoke(const RecordBatch& input, Fn&& eval) const {
    obs::ScopedSpan span(tracer, "kernel", name);
    util::Stopwatch watch;
    RecordBatch out = eval(input);
    duration->Record(watch.ElapsedNanos());
    batches->value.fetch_add(1, std::memory_order_relaxed);
    rows->value.fetch_add(static_cast<std::int64_t>(input.num_rows),
                          std::memory_order_relaxed);
    span.AddArg("rows_in", static_cast<std::int64_t>(input.num_rows));
    span.AddArg("rows_out", static_cast<std::int64_t>(out.num_rows));
    return out;
  }

  /// Variant for wide kernels whose task bodies do not map batch-to-batch
  /// (groupBy phases, sort gather, join build): the body returns the row
  /// count it processed, which becomes the `rows` counter increment and span
  /// arg. One call = one task = one "batch" for counting purposes.
  template <typename Fn>
  void InvokeWide(Fn&& body) const {
    obs::ScopedSpan span(tracer, "kernel", name);
    util::Stopwatch watch;
    std::int64_t processed = body();
    duration->Record(watch.ElapsedNanos());
    batches->value.fetch_add(1, std::memory_order_relaxed);
    rows->value.fetch_add(processed, std::memory_order_relaxed);
    span.AddArg("rows", processed);
  }
};

inline KernelProbe MakeKernelProbe(spark::Context* context, const char* name,
                                   const char* duration_name,
                                   const char* batches_name,
                                   const char* rows_name) {
  obs::EventBus& bus = spark::BusOf(context);
  KernelProbe probe;
  probe.tracer = bus.tracer();
  probe.duration = bus.metrics()->GetHistogram(duration_name);
  probe.batches = bus.GetCounter(batches_name);
  probe.rows = bus.GetCounter(rows_name);
  probe.name = name;
  return probe;
}

}  // namespace rumble::df

#endif  // RUMBLE_DF_KERNEL_PROBE_H_
