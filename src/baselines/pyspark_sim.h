#ifndef RUMBLE_BASELINES_PYSPARK_SIM_H_
#define RUMBLE_BASELINES_PYSPARK_SIM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/json/dom.h"
#include "src/spark/context.h"

namespace rumble::baselines {

/// Simulated PySpark (paper Figures 2, 11, 13). Real PySpark pays two costs
/// this simulation reproduces on the same substrate: (i) every record
/// crossing a Python UDF boundary is serialized on the JVM side and
/// deserialized by the Python worker (pickling) — modeled as a JSON
/// serialize + reparse round-trip per stage; (ii) Python evaluates over
/// boxed dynamic values with dictionary field lookups — modeled by the
/// boxed DomValue representation instead of the engine's Item classes.
/// See DESIGN.md §1 for the substitution table.

spark::Rdd<json::DomValuePtr> PySparkLoad(spark::Context* context,
                                          const std::string& path,
                                          int min_partitions);

std::size_t PySparkFilterCount(const spark::Rdd<json::DomValuePtr>& rdd);

std::vector<std::pair<std::string, std::int64_t>> PySparkGroupCounts(
    const spark::Rdd<json::DomValuePtr>& rdd);

/// Returns serialized JSON of the first n results of the sorting query.
std::vector<std::string> PySparkSortTake(
    const spark::Rdd<json::DomValuePtr>& rdd, std::size_t n);

}  // namespace rumble::baselines

#endif  // RUMBLE_BASELINES_PYSPARK_SIM_H_
