#include "src/baselines/pyspark_sim.h"

#include <algorithm>

#include "src/json/item_parser.h"

namespace rumble::baselines {

namespace {

using json::DomValue;
using json::DomValuePtr;

std::string SerializeDom(const DomValuePtr& value) {
  // Via the item layer: the simulation charges exactly one serialization
  // and one parse per boundary crossing, like pickle does.
  return json::DomToItem(*value)->Serialize();
}

/// One JVM <-> Python worker boundary: serialize every record, ship it,
/// deserialize it into boxed Python-style values.
spark::Rdd<DomValuePtr> PickleBoundary(const spark::Rdd<DomValuePtr>& rdd) {
  return rdd.Map(SerializeDom).Map([](const std::string& blob) {
    return json::ParseDom(blob);
  });
}

std::string DictField(const DomValue& object, const std::string& key) {
  const auto* map = std::get_if<DomValue::Object>(&object.value);
  if (map == nullptr) return "";
  auto it = map->find(key);
  if (it == map->end()) return "";
  const auto* str = std::get_if<std::string>(&it->second->value);
  return str != nullptr ? *str : "";
}

bool GuessMatches(const DomValuePtr& object) {
  std::string guess = DictField(*object, "guess");
  return !guess.empty() && guess == DictField(*object, "target");
}

}  // namespace

spark::Rdd<DomValuePtr> PySparkLoad(spark::Context* context,
                                    const std::string& path,
                                    int min_partitions) {
  return context->TextFile(path, min_partitions)
      .Map([](const std::string& line) { return json::ParseDom(line); });
}

std::size_t PySparkFilterCount(const spark::Rdd<DomValuePtr>& rdd) {
  // The lambda passed to filter() runs in the Python worker: one boundary.
  return PickleBoundary(rdd).Filter(GuessMatches).Count();
}

std::vector<std::pair<std::string, std::int64_t>> PySparkGroupCounts(
    const spark::Rdd<DomValuePtr>& rdd) {
  // map(lambda row: row["target"]) runs in Python: one boundary; the
  // groupByKey shuffle then pickles again (second boundary).
  auto grouped =
      PickleBoundary(PickleBoundary(rdd))
          .GroupBy<std::string>(
              [](const DomValuePtr& object) {
                return DictField(*object, "target");
              },
              std::hash<std::string>{}, std::equal_to<std::string>{},
              rdd.num_partitions());
  auto groups = grouped.Collect();
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(groups.size());
  for (const auto& [key, members] : groups) {
    out.emplace_back(key, static_cast<std::int64_t>(members.size()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> PySparkSortTake(const spark::Rdd<DomValuePtr>& rdd,
                                         std::size_t n) {
  // filter() and the sortBy key function both run in Python.
  auto sorted =
      PickleBoundary(PickleBoundary(rdd).Filter(GuessMatches))
          .SortBy([](const DomValuePtr& a, const DomValuePtr& b) {
            std::string ta = DictField(*a, "target");
            std::string tb = DictField(*b, "target");
            if (ta != tb) return ta < tb;
            std::string ca = DictField(*a, "country");
            std::string cb = DictField(*b, "country");
            if (ca != cb) return ca > cb;
            return DictField(*a, "date") > DictField(*b, "date");
          });
  std::vector<std::string> out;
  for (const auto& value : sorted.Take(n)) {
    out.push_back(SerializeDom(value));
  }
  return out;
}

}  // namespace rumble::baselines
