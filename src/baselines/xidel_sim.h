#ifndef RUMBLE_BASELINES_XIDEL_SIM_H_
#define RUMBLE_BASELINES_XIDEL_SIM_H_

#include <cstdint>
#include <memory>

#include "src/jsoniq/rumble.h"

namespace rumble::baselines {

/// Simulated Xidel (paper Section 6.3): a single-threaded Pascal JSONiq
/// implementation that loads the whole document set into memory before
/// evaluating. On top of the Zorba simulation's restrictions, parsing
/// charges the (smaller) memory budget — reproducing Figure 12's earlier
/// failures: out-of-memory on the filter query at 8M objects, and on
/// group/sort at 1-2M. See DESIGN.md §1.
struct XidelSimOptions {
  std::uint64_t memory_budget_bytes = 256ull << 20;
};

std::unique_ptr<jsoniq::Rumble> MakeXidelSim(XidelSimOptions options = {});

}  // namespace rumble::baselines

#endif  // RUMBLE_BASELINES_XIDEL_SIM_H_
