#ifndef RUMBLE_BASELINES_ZORBA_SIM_H_
#define RUMBLE_BASELINES_ZORBA_SIM_H_

#include <cstdint>
#include <memory>

#include "src/jsoniq/rumble.h"

namespace rumble::baselines {

/// Simulated Zorba (paper Section 6.3): a mature single-threaded JSONiq
/// engine. The simulation reuses this repository's JSONiq front-end but
/// forces: single executor, purely local pull execution (no RDD/DataFrame
/// backends), DOM-style parsing (items built via an intermediate generic
/// representation), and a bounded memory budget charged by the blocking
/// operators — reproducing Figure 12's behaviour where Zorba streams the
/// filter query at any size but runs out of memory grouping/sorting beyond
/// a few million objects. See DESIGN.md §1 for the substitution rationale.
struct ZorbaSimOptions {
  /// Default models Zorba's observed ~4M-object group/sort ceiling scaled
  /// to this repository's datasets; benches override it.
  std::uint64_t memory_budget_bytes = 512ull << 20;
};

std::unique_ptr<jsoniq::Rumble> MakeZorbaSim(ZorbaSimOptions options = {});

}  // namespace rumble::baselines

#endif  // RUMBLE_BASELINES_ZORBA_SIM_H_
