#include "src/baselines/xidel_sim.h"

namespace rumble::baselines {

std::unique_ptr<jsoniq::Rumble> MakeXidelSim(XidelSimOptions options) {
  common::RumbleConfig config;
  config.executors = 1;
  config.default_partitions = 1;
  config.force_local_execution = true;
  config.flwor_backend = common::FlworBackend::kLocalOnly;
  config.streaming_parser = false;
  config.memory_budget_bytes = options.memory_budget_bytes;
  config.charge_parse_to_budget = true;  // whole input lives in memory
  return std::make_unique<jsoniq::Rumble>(config);
}

}  // namespace rumble::baselines
