#include "src/baselines/sparksql.h"

#include <algorithm>
#include <map>

#include "src/item/item_compare.h"
#include "src/json/item_parser.h"

namespace rumble::baselines {

namespace {

using df::DataFrame;
using df::DataType;
using df::RecordBatch;
using item::ItemPtr;
using item::ItemSequence;

/// Coerces one JSON value into a native column cell per Figure 6: matching
/// scalars are stored natively; mismatching or nested values are serialized
/// into strings ("the original type information is lost"); null/absent
/// becomes NULL.
void AppendCoerced(const item::Item* value, DataType type, df::Column* out) {
  if (value == nullptr || value->IsNull()) {
    out->AppendNull();
    return;
  }
  switch (type) {
    case DataType::kInt64:
      if (value->IsInteger()) {
        out->AppendInt64(value->IntegerValue());
      } else if (value->IsNumeric()) {
        out->AppendInt64(static_cast<std::int64_t>(value->NumericValue()));
      } else {
        out->AppendNull();
      }
      return;
    case DataType::kFloat64:
      if (value->IsNumeric()) {
        out->AppendFloat64(value->NumericValue());
      } else {
        out->AppendNull();
      }
      return;
    case DataType::kBool:
      if (value->IsBoolean()) {
        out->AppendBool(value->BooleanValue());
      } else {
        out->AppendNull();
      }
      return;
    case DataType::kString:
      if (value->IsString()) {
        out->AppendString(value->StringValue());
      } else {
        out->AppendString(value->Serialize());
      }
      return;
    case DataType::kItemSeq:
      out->AppendSeq({});
      return;
  }
}

}  // namespace

df::DataFrame LoadJsonDataFrame(spark::Context* context,
                                const std::string& path, int min_partitions,
                                std::size_t schema_sample) {
  spark::Rdd<std::string> lines = context->TextFile(path, min_partitions);

  // Schema inference pass. schema_sample == 0 reproduces Spark's default
  // samplingRatio = 1.0: the whole dataset is parsed once just to infer the
  // schema, before the conversion pass parses it again.
  df::SchemaPtr schema;
  if (schema_sample == 0) {
    std::vector<df::SchemaPtr> partials =
        lines
            .MapPartitions([](std::vector<std::string>&& part) {
              ItemSequence parsed;
              parsed.reserve(part.size());
              json::StringPool pool;
              std::size_t line_number = 0;
              for (const auto& line : part) {
                parsed.push_back(json::ParseLine(line, ++line_number, &pool));
              }
              return std::vector<df::SchemaPtr>{df::InferSchema(parsed)};
            })
            .Collect();
    // Merge partition schemas by re-running inference over synthetic rows
    // is unnecessary: InferSchema is associative over samples, so feed the
    // union through a single merged sample of per-partition witnesses.
    std::map<std::string, df::DataType> merged;
    std::vector<std::string> order;
    for (const auto& partial : partials) {
      for (const auto& field : partial->fields()) {
        auto it = merged.find(field.name);
        if (it == merged.end()) {
          merged.emplace(field.name, field.type);
          order.push_back(field.name);
        } else if (it->second != field.type) {
          bool numeric =
              (it->second == df::DataType::kInt64 ||
               it->second == df::DataType::kFloat64) &&
              (field.type == df::DataType::kInt64 ||
               field.type == df::DataType::kFloat64);
          it->second =
              numeric ? df::DataType::kFloat64 : df::DataType::kString;
        }
      }
    }
    std::vector<df::Field> fields;
    fields.reserve(order.size());
    for (const auto& name : order) {
      fields.push_back(df::Field{name, merged[name]});
    }
    schema = std::make_shared<df::Schema>(std::move(fields));
  } else {
    std::vector<std::string> sample_lines = lines.Take(schema_sample);
    ItemSequence sample;
    sample.reserve(sample_lines.size());
    for (std::size_t i = 0; i < sample_lines.size(); ++i) {
      sample.push_back(json::ParseLine(sample_lines[i], i + 1));
    }
    schema = df::InferSchema(sample);
  }

  // Conversion pass: each text partition parses and coerces to one batch.
  df::SchemaPtr captured_schema = schema;
  spark::Rdd<RecordBatch> batches =
      lines.MapPartitions([captured_schema](std::vector<std::string>&& part) {
        RecordBatch batch;
        for (const auto& field : captured_schema->fields()) {
          batch.columns.emplace_back(field.type);
        }
        json::StringPool pool;
        std::size_t line_number = 0;
        for (const auto& line : part) {
          ItemPtr object = json::ParseLine(line, ++line_number, &pool);
          for (std::size_t c = 0; c < captured_schema->num_fields(); ++c) {
            const auto& field = captured_schema->field(c);
            ItemPtr value = object->IsObject()
                                ? object->ValueForKey(field.name)
                                : nullptr;
            AppendCoerced(value.get(), field.type, &batch.columns[c]);
          }
          ++batch.num_rows;
        }
        return std::vector<RecordBatch>{std::move(batch)};
      });
  return DataFrame::FromRdd(context, schema, batches);
}

namespace {

/// WHERE guess = target as a native string-column predicate.
df::Predicate GuessEqualsTarget() {
  df::Predicate predicate;
  predicate.inputs = {"guess", "target"};
  predicate.eval = [](const df::Schema& schema, const RecordBatch& batch) {
    std::size_t guess = schema.RequireIndex("guess");
    std::size_t target = schema.RequireIndex("target");
    std::vector<char> mask(batch.num_rows, 0);
    for (std::size_t row = 0; row < batch.num_rows; ++row) {
      if (batch.columns[guess].IsNull(row) ||
          batch.columns[target].IsNull(row)) {
        continue;
      }
      mask[row] = batch.columns[guess].StringAt(row) ==
                          batch.columns[target].StringAt(row)
                      ? 1
                      : 0;
    }
    return mask;
  };
  return predicate;
}

}  // namespace

std::size_t SparkSqlFilterCount(const DataFrame& df) {
  return df.Filter(GuessEqualsTarget()).CountRows();
}

std::vector<std::pair<std::string, std::int64_t>> SparkSqlGroupCounts(
    const DataFrame& df) {
  DataFrame grouped =
      df.GroupBy({"target"}, {df::Aggregate{"", "count", df::AggKind::kCount}});
  RecordBatch batch = grouped.CollectBatch();
  const df::Schema& schema = grouped.schema();
  std::size_t target = schema.RequireIndex("target");
  std::size_t count = schema.RequireIndex("count");
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(batch.num_rows);
  for (std::size_t row = 0; row < batch.num_rows; ++row) {
    out.emplace_back(batch.columns[target].StringAt(row),
                     batch.columns[count].Int64At(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

RecordBatch SparkSqlSortTake(const DataFrame& df, std::size_t n) {
  return df.Filter(GuessEqualsTarget())
      .Sort({df::SortKey{"target", true, true},
             df::SortKey{"country", false, true},
             df::SortKey{"date", false, true}})
      .Limit(n)
      .CollectBatch();
}

// ---------------------------------------------------------------------------
// Raw Spark (RDD API)
// ---------------------------------------------------------------------------

spark::Rdd<ItemPtr> RawSparkLoad(spark::Context* context,
                                 const std::string& path,
                                 int min_partitions) {
  return context->TextFile(path, min_partitions)
      .MapPartitions([](std::vector<std::string>&& lines) {
        ItemSequence items;
        items.reserve(lines.size());
        json::StringPool pool;
        std::size_t line_number = 0;
        for (const auto& line : lines) {
          items.push_back(json::ParseLine(line, ++line_number, &pool));
        }
        return items;
      });
}

namespace {

std::string FieldString(const item::Item& object, std::string_view key) {
  ItemPtr value = object.ValueForKey(key);
  if (value == nullptr || !value->IsString()) return "";
  return value->StringValue();
}

bool GuessMatches(const ItemPtr& object) {
  if (!object->IsObject()) return false;
  ItemPtr guess = object->ValueForKey("guess");
  ItemPtr target = object->ValueForKey("target");
  return guess != nullptr && target != nullptr && guess->IsString() &&
         target->IsString() && guess->StringValue() == target->StringValue();
}

}  // namespace

std::size_t RawSparkFilterCount(const spark::Rdd<ItemPtr>& rdd) {
  return rdd.Filter(GuessMatches).Count();
}

std::vector<std::pair<std::string, std::int64_t>> RawSparkGroupCounts(
    const spark::Rdd<ItemPtr>& rdd) {
  auto grouped = rdd.GroupBy<std::string>(
      [](const ItemPtr& object) { return FieldString(*object, "target"); },
      std::hash<std::string>{}, std::equal_to<std::string>{},
      rdd.num_partitions());
  std::vector<std::pair<std::string, std::vector<ItemPtr>>> groups =
      grouped.Collect();
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(groups.size());
  for (const auto& [key, members] : groups) {
    out.emplace_back(key, static_cast<std::int64_t>(members.size()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

ItemSequence RawSparkSortTake(const spark::Rdd<ItemPtr>& rdd, std::size_t n) {
  return rdd.Filter(GuessMatches)
      .SortBy([](const ItemPtr& a, const ItemPtr& b) {
        std::string ta = FieldString(*a, "target");
        std::string tb = FieldString(*b, "target");
        if (ta != tb) return ta < tb;
        std::string ca = FieldString(*a, "country");
        std::string cb = FieldString(*b, "country");
        if (ca != cb) return ca > cb;  // descending
        return FieldString(*a, "date") > FieldString(*b, "date");
      })
      .Take(n);
}

}  // namespace rumble::baselines
