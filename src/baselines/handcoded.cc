#include "src/baselines/handcoded.h"

#include <algorithm>
#include <map>

#include "src/storage/dfs.h"

namespace rumble::baselines {

namespace {

/// Extracts the value of `"key": "..."` from a raw JSON line, assuming the
/// dataset-specific invariants (key appears once, values are unescaped
/// strings) that generic engines cannot assume.
std::string_view ExtractField(std::string_view line, std::string_view key) {
  std::string needle = "\"" + std::string(key) + "\": \"";
  std::size_t start = line.find(needle);
  if (start == std::string_view::npos) return {};
  start += needle.size();
  std::size_t end = line.find('"', start);
  if (end == std::string_view::npos) return {};
  return line.substr(start, end - start);
}

template <typename LineFn>
void ScanDataset(const std::string& dataset_path, LineFn&& fn) {
  for (const auto& file : storage::Dfs::ListDataFiles(dataset_path)) {
    std::string content = storage::Dfs::ReadFile(file);
    std::size_t pos = 0;
    while (pos < content.size()) {
      std::size_t end = content.find('\n', pos);
      if (end == std::string::npos) end = content.size();
      if (end > pos) {
        fn(std::string_view(content).substr(pos, end - pos));
      }
      pos = end + 1;
    }
  }
}

}  // namespace

std::size_t HandcodedFilterCount(const std::string& dataset_path) {
  std::size_t count = 0;
  ScanDataset(dataset_path, [&count](std::string_view line) {
    if (ExtractField(line, "guess") == ExtractField(line, "target")) {
      ++count;
    }
  });
  return count;
}

std::vector<std::pair<std::string, std::int64_t>> HandcodedGroupCounts(
    const std::string& dataset_path) {
  std::map<std::string, std::int64_t, std::less<>> counts;
  ScanDataset(dataset_path, [&counts](std::string_view line) {
    std::string_view target = ExtractField(line, "target");
    auto it = counts.find(target);
    if (it == counts.end()) {
      counts.emplace(std::string(target), 1);
    } else {
      ++it->second;
    }
  });
  return {counts.begin(), counts.end()};
}

}  // namespace rumble::baselines
