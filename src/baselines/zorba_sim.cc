#include "src/baselines/zorba_sim.h"

namespace rumble::baselines {

std::unique_ptr<jsoniq::Rumble> MakeZorbaSim(ZorbaSimOptions options) {
  common::RumbleConfig config;
  config.executors = 1;
  config.default_partitions = 1;
  config.force_local_execution = true;
  config.flwor_backend = common::FlworBackend::kLocalOnly;
  config.streaming_parser = false;  // builds an intermediate store
  config.memory_budget_bytes = options.memory_budget_bytes;
  config.charge_parse_to_budget = false;  // the filter pipeline streams
  return std::make_unique<jsoniq::Rumble>(config);
}

}  // namespace rumble::baselines
