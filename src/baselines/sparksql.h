#ifndef RUMBLE_BASELINES_SPARKSQL_H_
#define RUMBLE_BASELINES_SPARKSQL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/df/dataframe.h"
#include "src/item/item.h"
#include "src/spark/context.h"

namespace rumble::baselines {

/// Baselines the paper compares Rumble against on the confusion dataset
/// (Sections 6.2 and 6.4): hand-written "Spark (Java)" programs over RDDs
/// and "Spark SQL" queries over schema-inferred DataFrames. Both run on the
/// same minispark substrate as Rumble, so differences measure the layers,
/// not the runtime.

// ---- Spark SQL (DataFrames) -------------------------------------------------

/// Loads a JSON Lines dataset into a typed DataFrame the way
/// spark.read.json does: infer the schema (Figure 6 semantics:
/// heterogeneous/nested values coerce to strings, absent values to NULL),
/// then convert every record to native columns. `schema_sample` = 0 means a
/// full inference pass over the data — Spark's default samplingRatio of 1.0
/// and the cost the paper credits for Rumble's win on the filter query
/// ("faster than Spark SQL because, there, no schema inference is needed").
df::DataFrame LoadJsonDataFrame(spark::Context* context,
                                const std::string& path, int min_partitions,
                                std::size_t schema_sample = 0);

/// SELECT count(*) WHERE guess = target.
std::size_t SparkSqlFilterCount(const df::DataFrame& df);

/// SELECT target, COUNT(*) GROUP BY target.
std::vector<std::pair<std::string, std::int64_t>> SparkSqlGroupCounts(
    const df::DataFrame& df);

/// SELECT * WHERE guess = target ORDER BY target ASC, country DESC,
/// date DESC LIMIT n (Figure 3's query).
df::RecordBatch SparkSqlSortTake(const df::DataFrame& df, std::size_t n);

// ---- Raw Spark (RDD API, "Spark (Java)" in Figures 11/13) -----------------

/// textFile + parse, the shared scan of the raw-Spark queries.
spark::Rdd<item::ItemPtr> RawSparkLoad(spark::Context* context,
                                       const std::string& path,
                                       int min_partitions);

std::size_t RawSparkFilterCount(const spark::Rdd<item::ItemPtr>& rdd);

std::vector<std::pair<std::string, std::int64_t>> RawSparkGroupCounts(
    const spark::Rdd<item::ItemPtr>& rdd);

item::ItemSequence RawSparkSortTake(const spark::Rdd<item::ItemPtr>& rdd,
                                    std::size_t n);

}  // namespace rumble::baselines

#endif  // RUMBLE_BASELINES_SPARKSQL_H_
