#ifndef RUMBLE_BASELINES_HANDCODED_H_
#define RUMBLE_BASELINES_HANDCODED_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rumble::baselines {

/// The paper's Section 6.3 reference point: "an experienced programmer in
/// our group managed to execute, with manual low-level coding, the
/// filtering query in 36 seconds and the grouping query in 44s" — ad-hoc
/// code that exploits full knowledge of the dataset (exact field names,
/// flat records, values never containing escaped quotes) to scan raw bytes
/// without building any JSON tree. Only valid for the confusion dataset.

/// Count of records whose "guess" equals "target".
std::size_t HandcodedFilterCount(const std::string& dataset_path);

/// (target, count) pairs, sorted by target.
std::vector<std::pair<std::string, std::int64_t>> HandcodedGroupCounts(
    const std::string& dataset_path);

}  // namespace rumble::baselines

#endif  // RUMBLE_BASELINES_HANDCODED_H_
