#include "src/storage/text_source.h"

#include <algorithm>

#include "src/storage/dfs.h"

namespace rumble::storage {

std::vector<TextSplit> TextSource::PlanSplits(const std::string& path,
                                              int min_splits) {
  std::vector<std::string> files = Dfs::ListDataFiles(path);
  if (min_splits < 1) min_splits = 1;

  std::uint64_t total_size = 0;
  std::vector<std::uint64_t> sizes;
  sizes.reserve(files.size());
  for (const auto& file : files) {
    sizes.push_back(Dfs::FileSize(file));
    total_size += sizes.back();
  }

  std::vector<TextSplit> splits;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (sizes[i] == 0) continue;
    // Distribute the split budget proportionally to file size, at least one
    // split per non-empty file.
    int file_splits = 1;
    if (total_size > 0 && files.size() < static_cast<std::size_t>(min_splits)) {
      double share = static_cast<double>(sizes[i]) /
                     static_cast<double>(total_size) * min_splits;
      file_splits = std::max(1, static_cast<int>(share + 0.5));
    }
    for (const auto& range : json::SplitByteRanges(sizes[i], file_splits)) {
      splits.push_back(TextSplit{files[i], range});
    }
  }
  return splits;
}

std::vector<std::string> TextSource::ReadSplit(const TextSplit& split) {
  // Read past the nominal end so the last line can be completed; 1 MiB of
  // overshoot is far beyond any JSON record in our workloads. If the line
  // still does not terminate, fall back to reading to EOF.
  constexpr std::uint64_t kOvershoot = 1 << 20;
  std::uint64_t file_size = Dfs::FileSize(split.file);
  std::uint64_t read_begin = split.range.begin == 0 ? 0 : split.range.begin - 1;
  std::uint64_t read_end = std::min(file_size, split.range.end + kOvershoot);
  std::string content = Dfs::ReadRange(split.file, read_begin, read_end);

  json::ByteRange local{split.range.begin - read_begin,
                        split.range.end - read_begin};
  return json::LinesInRange(content, local);
}

}  // namespace rumble::storage
