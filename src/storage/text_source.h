#ifndef RUMBLE_STORAGE_TEXT_SOURCE_H_
#define RUMBLE_STORAGE_TEXT_SOURCE_H_

#include <string>
#include <vector>

#include "src/json/lines.h"

namespace rumble::storage {

/// One input split: a byte range of one data file. The unit of parallelism
/// for text inputs, mirroring Hadoop's FileSplit.
struct TextSplit {
  std::string file;
  json::ByteRange range;
};

/// Plans and reads line-oriented input splits over a DFS dataset.
class TextSource {
 public:
  /// Plans at least `min_splits` splits over the dataset at `path`
  /// (a file or partitioned directory). Large files are split by byte
  /// ranges; a dataset with many part files yields at least one split per
  /// part. Throws kFileNotFound if the dataset is missing.
  static std::vector<TextSplit> PlanSplits(const std::string& path,
                                           int min_splits);

  /// Reads the complete lines belonging to a split (TextInputFormat
  /// contract: skip leading partial line unless at offset 0, read past the
  /// end to finish the last line).
  static std::vector<std::string> ReadSplit(const TextSplit& split);
};

}  // namespace rumble::storage

#endif  // RUMBLE_STORAGE_TEXT_SOURCE_H_
