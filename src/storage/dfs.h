#ifndef RUMBLE_STORAGE_DFS_H_
#define RUMBLE_STORAGE_DFS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rumble::storage {

/// Local-filesystem stand-in for HDFS/S3. A "dataset" is either a single
/// file or a directory of `part-NNNNN` files plus a `_SUCCESS` marker —
/// the layout Spark jobs write and read. Paths are ordinary local paths;
/// the `hdfs://` and `s3://` prefixes are accepted and stripped so paper
/// queries can be pasted verbatim.
class Dfs {
 public:
  /// Strips a scheme prefix ("hdfs://", "s3://", "file://") if present.
  static std::string StripScheme(const std::string& path);

  /// True if `path` names an existing file or partitioned dataset directory.
  static bool Exists(const std::string& path);

  /// Lists the data files of a dataset in partition order. For a plain file
  /// this is the file itself; for a directory, its sorted part files.
  /// Throws kFileNotFound when the dataset does not exist.
  static std::vector<std::string> ListDataFiles(const std::string& path);

  static std::uint64_t FileSize(const std::string& file);

  /// Reads an entire file into memory. Throws kFileNotFound on failure.
  static std::string ReadFile(const std::string& file);

  /// Reads the byte range [begin, end_hint + overshoot] of a file; the
  /// caller applies the JSON Lines split contract. `end` is clamped to the
  /// file size.
  static std::string ReadRange(const std::string& file, std::uint64_t begin,
                               std::uint64_t end);

  /// Writes a partitioned dataset: one `part-NNNNN` file per entry plus a
  /// `_SUCCESS` marker, replacing any existing dataset at `path`.
  static void WritePartitioned(const std::string& path,
                               const std::vector<std::string>& partitions);

  /// Writes a single file (creating parent directories).
  static void WriteFile(const std::string& file, const std::string& content);

  /// Recursively removes a dataset (file or directory). Missing is a no-op.
  static void Remove(const std::string& path);
};

}  // namespace rumble::storage

#endif  // RUMBLE_STORAGE_DFS_H_
