#include "src/storage/dfs.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/error.h"

namespace rumble::storage {

namespace fs = std::filesystem;
using common::ErrorCode;

std::string Dfs::StripScheme(const std::string& path) {
  for (const char* scheme : {"hdfs://", "s3://", "file://"}) {
    if (path.rfind(scheme, 0) == 0) {
      return path.substr(std::string(scheme).size());
    }
  }
  return path;
}

bool Dfs::Exists(const std::string& path) {
  return fs::exists(StripScheme(path));
}

std::vector<std::string> Dfs::ListDataFiles(const std::string& raw_path) {
  std::string path = StripScheme(raw_path);
  if (!fs::exists(path)) {
    common::ThrowError(ErrorCode::kFileNotFound,
                       "dataset not found: " + raw_path);
  }
  if (fs::is_regular_file(path)) {
    return {path};
  }
  std::vector<std::string> parts;
  for (const auto& entry : fs::directory_iterator(path)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind("part-", 0) == 0) {
      parts.push_back(entry.path().string());
    }
  }
  if (parts.empty()) {
    common::ThrowError(ErrorCode::kFileNotFound,
                       "dataset has no part files: " + raw_path);
  }
  std::sort(parts.begin(), parts.end());
  return parts;
}

std::uint64_t Dfs::FileSize(const std::string& file) {
  std::error_code ec;
  auto size = fs::file_size(StripScheme(file), ec);
  if (ec) {
    common::ThrowError(ErrorCode::kFileNotFound, "cannot stat: " + file);
  }
  return size;
}

std::string Dfs::ReadFile(const std::string& file) {
  std::ifstream in(StripScheme(file), std::ios::binary);
  if (!in) {
    common::ThrowError(ErrorCode::kFileNotFound, "cannot open: " + file);
  }
  std::string content;
  in.seekg(0, std::ios::end);
  content.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  return content;
}

std::string Dfs::ReadRange(const std::string& file, std::uint64_t begin,
                           std::uint64_t end) {
  std::string path = StripScheme(file);
  std::uint64_t size = FileSize(path);
  if (begin >= size) return "";
  if (end > size) end = size;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    common::ThrowError(ErrorCode::kFileNotFound, "cannot open: " + file);
  }
  std::string content;
  content.resize(static_cast<std::size_t>(end - begin));
  in.seekg(static_cast<std::streamoff>(begin));
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  return content;
}

void Dfs::WritePartitioned(const std::string& raw_path,
                           const std::vector<std::string>& partitions) {
  std::string path = StripScheme(raw_path);
  Remove(path);
  fs::create_directories(path);
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "part-%05zu", i);
    WriteFile(path + "/" + name, partitions[i]);
  }
  WriteFile(path + "/_SUCCESS", "");
}

void Dfs::WriteFile(const std::string& raw_file, const std::string& content) {
  std::string file = StripScheme(raw_file);
  fs::path parent = fs::path(file).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    common::ThrowError(ErrorCode::kFileNotFound, "cannot write: " + raw_file);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

void Dfs::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove_all(StripScheme(path), ec);
}

}  // namespace rumble::storage
