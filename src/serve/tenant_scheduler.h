#ifndef RUMBLE_SERVE_TENANT_SCHEDULER_H_
#define RUMBLE_SERVE_TENANT_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace rumble::serve {

/// Weighted fair admission for the serving path (docs/SERVING.md): at most
/// `max_concurrent` queries run at once, and when demand exceeds supply the
/// free slots are shared between tenants in proportion to their weights
/// rather than first-come-first-served — one chatty tenant cannot starve the
/// rest.
///
/// The algorithm is start-time fair queuing over a per-tenant virtual clock:
/// each grant advances the tenant's clock by 1/weight, and the next free slot
/// goes to the waiting tenant with the smallest clock (ties break
/// alphabetically, deterministically). An idle tenant's clock catches up to
/// the global floor when it returns, so sitting out earns credit for the gap
/// but never a banked burst beyond it.
class TenantScheduler {
 public:
  enum class Outcome {
    kAdmitted,   // a slot is held; the caller must Release() it
    kQueueFull,  // this tenant's wait queue is at capacity — fast 503
    kTimeout,    // waited queue_wait_timeout without getting a slot
    kShutdown,   // the scheduler is draining; no new admissions
  };

  /// `max_queue_per_tenant` bounds how many callers of one tenant may wait;
  /// beyond it Acquire fails fast with kQueueFull instead of piling up.
  TenantScheduler(int max_concurrent, int max_queue_per_tenant);

  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  /// Sets a tenant's weight (default 1.0; clamped to a small positive
  /// minimum). A tenant with weight 2 receives twice the admissions of a
  /// tenant with weight 1 under saturation.
  void SetWeight(const std::string& tenant, double weight);

  /// Blocks until a slot is granted, the wait times out, or Shutdown().
  /// `wait_timeout_ms` < 0 waits indefinitely; 0 never blocks (immediate
  /// grant or kTimeout). On kAdmitted the caller owns one slot and must
  /// Release() exactly once.
  Outcome Acquire(const std::string& tenant, std::int64_t wait_timeout_ms);

  /// Returns a slot; hands it to the fair-queue winner among the waiters.
  void Release();

  /// Stops all future admissions and wakes every waiter with kShutdown.
  /// Already-admitted slots finish normally (their Release() is a no-op
  /// grant-wise).
  void Shutdown();

  int active() const;
  int queued() const;

  /// Exponentially-weighted moving average of observed admission waits in
  /// milliseconds (immediate grants count as 0). This is the live queue-
  /// latency signal behind adaptive Retry-After and the load-shedding
  /// breaker (docs/SERVING.md, "Operations").
  double queue_wait_ewma_ms() const;

  /// True when every slot is busy AND the observed queue latency exceeds
  /// `latency_threshold_ms`: the point where admitting more work only grows
  /// the queue. The serving layer sheds new arrivals early with 503 +
  /// Retry-After instead of letting them time out slowly.
  bool ShouldShed(std::int64_t latency_threshold_ms) const;

  /// Retry-After seconds derived from live queue statistics: how long the
  /// current queue would take to drain at the observed per-grant latency,
  /// clamped to [1, 60]. Replaces a hardcoded constant so backoff tracks
  /// actual load.
  std::int64_t SuggestedRetryAfterSec() const;

  /// Scheduler state as a JSON object: slots, per-tenant weight / clock /
  /// queue depth / admission count, reject and timeout totals. Rendered
  /// under "scheduler" on GET /serving.
  std::string StatsJson() const;

 private:
  /// One blocked Acquire call; lives on that caller's stack. The waiter
  /// always removes itself from its queue (under mu_) before returning
  /// un-admitted, so the scheduler never holds a dangling pointer.
  struct Waiter {
    bool admitted = false;
  };

  struct TenantState {
    double weight = 1.0;
    /// Virtual finish time of this tenant's latest grant.
    double vtime = 0.0;
    std::deque<Waiter*> queue;
    std::int64_t admitted_total = 0;
  };

  /// Grants free slots to fair-queue winners; requires mu_. Wakes waiters.
  void TryGrantLocked();

  const int max_concurrent_;
  const int max_queue_per_tenant_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, TenantState> tenants_;
  /// Global virtual-time floor: the start tag of the latest grant.
  double vnow_ = 0.0;
  int active_ = 0;
  int queued_ = 0;
  bool shutdown_ = false;
  std::int64_t rejected_full_ = 0;
  std::int64_t timed_out_ = 0;
  /// EWMA of admission waits (ms), updated on every Acquire exit. Requires
  /// mu_.
  double wait_ewma_ms_ = 0.0;

  /// Folds one observed wait into the EWMA; requires mu_.
  void RecordWaitLocked(double wait_ms);
};

}  // namespace rumble::serve

#endif  // RUMBLE_SERVE_TENANT_SCHEDULER_H_
