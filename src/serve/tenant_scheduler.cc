#include "src/serve/tenant_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/util/strings.h"

namespace rumble::serve {

namespace {
/// Weights are clamped positive so 1/weight stays finite.
constexpr double kMinWeight = 1e-3;
}  // namespace

TenantScheduler::TenantScheduler(int max_concurrent, int max_queue_per_tenant)
    : max_concurrent_(std::max(1, max_concurrent)),
      max_queue_per_tenant_(std::max(1, max_queue_per_tenant)) {}

void TenantScheduler::SetWeight(const std::string& tenant, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].weight = std::max(weight, kMinWeight);
}

TenantScheduler::Outcome TenantScheduler::Acquire(const std::string& tenant,
                                                  std::int64_t wait_timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Outcome::kShutdown;
  TenantState& state = tenants_[tenant];
  if (static_cast<int>(state.queue.size()) >= max_queue_per_tenant_) {
    ++rejected_full_;
    return Outcome::kQueueFull;
  }
  if (state.queue.empty()) {
    // Idle catch-up: a returning tenant starts at the global floor, not at
    // the stale clock it left behind (which would grant it a burst).
    state.vtime = std::max(state.vtime, vnow_);
  }
  Waiter waiter;
  state.queue.push_back(&waiter);
  ++queued_;
  TryGrantLocked();
  if (!waiter.admitted) {
    auto done = [&] { return waiter.admitted || shutdown_; };
    if (wait_timeout_ms < 0) {
      cv_.wait(lock, done);
    } else if (wait_timeout_ms > 0) {
      cv_.wait_for(lock, std::chrono::milliseconds(wait_timeout_ms), done);
    }
  }
  if (waiter.admitted) return Outcome::kAdmitted;
  // Un-admitted exit (timeout or shutdown): remove ourselves before the
  // stack frame dies.
  std::deque<Waiter*>& queue = tenants_[tenant].queue;
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (*it == &waiter) {
      queue.erase(it);
      break;
    }
  }
  --queued_;
  if (shutdown_) return Outcome::kShutdown;
  ++timed_out_;
  return Outcome::kTimeout;
}

void TenantScheduler::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  TryGrantLocked();
}

void TenantScheduler::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

void TenantScheduler::TryGrantLocked() {
  bool granted = false;
  while (!shutdown_ && active_ < max_concurrent_) {
    // Fair-queue winner: smallest virtual clock among tenants with waiters.
    // std::map iteration order makes the tie-break alphabetical and
    // deterministic.
    TenantState* best = nullptr;
    for (auto& [name, state] : tenants_) {
      if (state.queue.empty()) continue;
      if (best == nullptr || state.vtime < best->vtime) best = &state;
    }
    if (best == nullptr) break;
    Waiter* waiter = best->queue.front();
    best->queue.pop_front();
    --queued_;
    double start = std::max(best->vtime, vnow_);
    vnow_ = start;
    best->vtime = start + 1.0 / best->weight;
    ++best->admitted_total;
    ++active_;
    waiter->admitted = true;
    granted = true;
  }
  if (granted) cv_.notify_all();
}

int TenantScheduler::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int TenantScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

std::string TenantScheduler::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char num[64];
  std::string out = "{\"max_concurrent\":" + std::to_string(max_concurrent_) +
                    ",\"max_queue_per_tenant\":" +
                    std::to_string(max_queue_per_tenant_) +
                    ",\"active\":" + std::to_string(active_) +
                    ",\"queued\":" + std::to_string(queued_) +
                    ",\"rejected_queue_full\":" + std::to_string(rejected_full_) +
                    ",\"timed_out\":" + std::to_string(timed_out_) +
                    ",\"shutdown\":" + (shutdown_ ? "true" : "false") +
                    ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, state] : tenants_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + util::JsonEscape(name) + "\":{";
    std::snprintf(num, sizeof(num), "%.3f", state.weight);
    out += std::string("\"weight\":") + num;
    std::snprintf(num, sizeof(num), "%.3f", state.vtime);
    out += std::string(",\"vtime\":") + num;
    out += ",\"queued\":" + std::to_string(state.queue.size()) +
           ",\"admitted\":" + std::to_string(state.admitted_total) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace rumble::serve
