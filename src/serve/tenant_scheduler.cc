#include "src/serve/tenant_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/util/strings.h"

namespace rumble::serve {

namespace {
/// Weights are clamped positive so 1/weight stays finite.
constexpr double kMinWeight = 1e-3;
/// EWMA smoothing for observed queue waits: each sample carries 20%.
constexpr double kWaitEwmaAlpha = 0.2;
/// Retry-After bounds: at least 1 s (HTTP grammar floor), at most 60 s so a
/// recovering server is rediscovered within a minute.
constexpr std::int64_t kMinRetryAfterSec = 1;
constexpr std::int64_t kMaxRetryAfterSec = 60;
}  // namespace

TenantScheduler::TenantScheduler(int max_concurrent, int max_queue_per_tenant)
    : max_concurrent_(std::max(1, max_concurrent)),
      max_queue_per_tenant_(std::max(1, max_queue_per_tenant)) {}

void TenantScheduler::SetWeight(const std::string& tenant, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].weight = std::max(weight, kMinWeight);
}

TenantScheduler::Outcome TenantScheduler::Acquire(const std::string& tenant,
                                                  std::int64_t wait_timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Outcome::kShutdown;
  TenantState& state = tenants_[tenant];
  if (static_cast<int>(state.queue.size()) >= max_queue_per_tenant_) {
    ++rejected_full_;
    return Outcome::kQueueFull;
  }
  if (state.queue.empty()) {
    // Idle catch-up: a returning tenant starts at the global floor, not at
    // the stale clock it left behind (which would grant it a burst).
    state.vtime = std::max(state.vtime, vnow_);
  }
  Waiter waiter;
  state.queue.push_back(&waiter);
  ++queued_;
  TryGrantLocked();
  auto wait_start = std::chrono::steady_clock::now();
  if (!waiter.admitted) {
    auto done = [&] { return waiter.admitted || shutdown_; };
    if (wait_timeout_ms < 0) {
      cv_.wait(lock, done);
    } else if (wait_timeout_ms > 0) {
      cv_.wait_for(lock, std::chrono::milliseconds(wait_timeout_ms), done);
    }
  }
  // Every admission outcome feeds the queue-latency EWMA — immediate grants
  // record ~0 and decay it, long waits and timeouts raise it — so the
  // adaptive Retry-After tracks what callers actually experienced.
  RecordWaitLocked(
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  if (waiter.admitted) return Outcome::kAdmitted;
  // Un-admitted exit (timeout or shutdown): remove ourselves before the
  // stack frame dies.
  std::deque<Waiter*>& queue = tenants_[tenant].queue;
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (*it == &waiter) {
      queue.erase(it);
      break;
    }
  }
  --queued_;
  if (shutdown_) return Outcome::kShutdown;
  ++timed_out_;
  return Outcome::kTimeout;
}

void TenantScheduler::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  TryGrantLocked();
}

void TenantScheduler::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

void TenantScheduler::TryGrantLocked() {
  bool granted = false;
  while (!shutdown_ && active_ < max_concurrent_) {
    // Fair-queue winner: smallest virtual clock among tenants with waiters.
    // std::map iteration order makes the tie-break alphabetical and
    // deterministic.
    TenantState* best = nullptr;
    for (auto& [name, state] : tenants_) {
      if (state.queue.empty()) continue;
      if (best == nullptr || state.vtime < best->vtime) best = &state;
    }
    if (best == nullptr) break;
    Waiter* waiter = best->queue.front();
    best->queue.pop_front();
    --queued_;
    double start = std::max(best->vtime, vnow_);
    vnow_ = start;
    best->vtime = start + 1.0 / best->weight;
    ++best->admitted_total;
    ++active_;
    waiter->admitted = true;
    granted = true;
  }
  if (granted) cv_.notify_all();
}

void TenantScheduler::RecordWaitLocked(double wait_ms) {
  wait_ewma_ms_ += kWaitEwmaAlpha * (wait_ms - wait_ewma_ms_);
}

double TenantScheduler::queue_wait_ewma_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wait_ewma_ms_;
}

bool TenantScheduler::ShouldShed(std::int64_t latency_threshold_ms) const {
  if (latency_threshold_ms <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return active_ >= max_concurrent_ &&
         wait_ewma_ms_ > static_cast<double>(latency_threshold_ms);
}

std::int64_t TenantScheduler::SuggestedRetryAfterSec() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Expected drain time for the queue ahead of a new arrival: the observed
  // per-admission wait covers one queue "generation" of max_concurrent_
  // grants, so scale it by how many generations are already queued.
  double generations =
      static_cast<double>(queued_) / static_cast<double>(max_concurrent_);
  double eta_ms = wait_ewma_ms_ * (1.0 + generations);
  std::int64_t sec = static_cast<std::int64_t>(eta_ms / 1000.0) + 1;
  return std::min(kMaxRetryAfterSec, std::max(kMinRetryAfterSec, sec));
}

int TenantScheduler::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int TenantScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

std::string TenantScheduler::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char num[64];
  std::string out = "{\"max_concurrent\":" + std::to_string(max_concurrent_) +
                    ",\"max_queue_per_tenant\":" +
                    std::to_string(max_queue_per_tenant_) +
                    ",\"active\":" + std::to_string(active_) +
                    ",\"queued\":" + std::to_string(queued_) +
                    ",\"rejected_queue_full\":" + std::to_string(rejected_full_) +
                    ",\"timed_out\":" + std::to_string(timed_out_) +
                    ",\"shutdown\":" + (shutdown_ ? "true" : "false");
  std::snprintf(num, sizeof(num), "%.3f", wait_ewma_ms_);
  out += std::string(",\"queue_wait_ewma_ms\":") + num;
  out += ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, state] : tenants_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + util::JsonEscape(name) + "\":{";
    std::snprintf(num, sizeof(num), "%.3f", state.weight);
    out += std::string("\"weight\":") + num;
    std::snprintf(num, sizeof(num), "%.3f", state.vtime);
    out += std::string(",\"vtime\":") + num;
    out += ",\"queued\":" + std::to_string(state.queue.size()) +
           ",\"admitted\":" + std::to_string(state.admitted_total) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace rumble::serve
