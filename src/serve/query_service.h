#ifndef RUMBLE_SERVE_QUERY_SERVICE_H_
#define RUMBLE_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "src/jsoniq/rumble.h"
#include "src/obs/metrics_server.h"
#include "src/serve/tenant_scheduler.h"

namespace rumble::serve {

/// Knobs for the serving layer, surfaced as rumble_shell --serve-* flags
/// (docs/SERVING.md).
struct ServingConfig {
  /// Queries running at once on the shared engine.
  int max_concurrent = 4;
  /// Waiters allowed per tenant before fast 503 queue_full.
  int max_queue_per_tenant = 16;
  /// How long an admitted-but-queued request may wait for a slot before 503
  /// queue_timeout. < 0 waits forever.
  std::int64_t queue_wait_timeout_ms = 30000;
  /// Tenant fairness weights (default 1.0 each; see TenantScheduler).
  std::map<std::string, double> tenant_weights;
  /// Plan-cache entries (0 disables caching).
  std::size_t plan_cache_capacity = 64;
  /// Adaptive load-shedding breaker: when every slot is busy and the
  /// observed queue-wait EWMA exceeds this, new arrivals are shed with a
  /// fast 503 `overloaded` + adaptive Retry-After instead of queuing to a
  /// slow timeout. <= 0 disables the breaker.
  std::int64_t shed_queue_latency_ms = 10000;
  /// Graceful drain budget: how long Drain() lets in-flight queries finish
  /// after admissions stop before cancelling the stragglers through their
  /// per-query tokens.
  std::int64_t drain_deadline_ms = 5000;
  /// Distinct tenant ids tracked with their own totals, labeled counters,
  /// and scheduler queue. Tenant ids are client-controlled, so beyond this
  /// many the service folds new ones into the "overflow" tenant instead of
  /// letting an unauthenticated client grow server memory and /metrics
  /// cardinality without bound (docs/SERVING.md).
  std::size_t max_tracked_tenants = 256;
};

/// What Drain() observed, for the shutdown log line and the smoke test's
/// leak assertions.
struct DrainStats {
  /// In-flight queries cancelled at the drain deadline (0 = all finished).
  int cancelled_queries = 0;
  /// Connections still open after cancellation (0 = clean teardown).
  int forced_connections = 0;
  bool clean() const {
    return cancelled_queries == 0 && forced_connections == 0;
  }
};

/// The HTTP serving layer: turns a POST /query request into a streamed
/// Rumble::ServeQuery call (docs/SERVING.md). Owns the per-tenant admission
/// scheduler; installs itself as the MetricsServer's /query and /serving
/// handlers; translates engine outcomes to HTTP status codes and
/// machine-readable JSON error bodies.
///
/// Request headers understood (all optional):
///   X-Rumble-Tenant       tenant id for fair scheduling (default anonymous;
///                         1-64 chars of [A-Za-z0-9_.-], else 400)
///   X-Rumble-Timeout-Ms   per-query timeout override in milliseconds
///   X-Rumble-Memory-Cap   per-query memory cap, e.g. "64m" / "1g" / bytes
///   X-Rumble-Plan-Cache   "off" bypasses the plan cache for this request
///
/// Response: 200 with Transfer-Encoding: chunked and one JSON-Lines row per
/// result item (byte-identical to the shell's --query output), plus headers
/// X-Rumble-Job, X-Rumble-Plan-Cache (hit|miss), X-Rumble-Tenant. Errors
/// before the first byte map to a status code with a JSON body; errors after
/// streaming began append a trailing {"error":...} line to the stream.
class QueryService {
 public:
  QueryService(jsoniq::Rumble* engine, ServingConfig config);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Installs Handle and StatsJson as `server`'s /query and /serving
  /// handlers. Call before MetricsServer::Start.
  void Install(obs::MetricsServer* server);

  /// Serves one POST /query request on the caller's thread (the metrics
  /// server's connection thread), blocking until the query finishes, fails,
  /// or is cancelled.
  void Handle(const obs::HttpRequest& request, obs::HttpResponseWriter& writer);

  /// Serving-layer stats (scheduler + plan cache) for GET /serving.
  std::string StatsJson() const;

  /// The GET /readyz probe: {ready, JSON body}. Not ready while draining,
  /// while the shedding breaker is tripped (scheduler saturated beyond the
  /// latency threshold), or while memory admission would reject a query —
  /// the states where a load balancer should route new work elsewhere.
  std::pair<bool, std::string> Readiness() const;

  /// Stops admitting new queries; waiters get 503 shutting_down. In-flight
  /// queries keep streaming — stopping the MetricsServer closes their
  /// sockets, which cancels them cooperatively.
  void Shutdown();

  /// Flips /readyz to draining and stops admissions (Shutdown), without
  /// touching in-flight work. The first step of Drain(); exposed separately
  /// so a supervisor can pull the instance out of rotation early.
  void BeginDrain();

  /// Graceful drain (docs/SERVING.md, "Operations"): BeginDrain, stop the
  /// server accepting, wait up to config.drain_deadline_ms for in-flight
  /// queries and connections to finish, then cancel the stragglers through
  /// their per-query tokens and give them a moment to unwind (trailing
  /// error line, reservation/spill cleanup). The caller still owns the
  /// final `server->Stop()`.
  DrainStats Drain(obs::MetricsServer* server);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  TenantScheduler& scheduler() { return scheduler_; }
  const ServingConfig& config() const { return config_; }

 private:
  /// Per-tenant resource totals across the service's lifetime, rendered as
  /// the "tenants" object on GET /serving (docs/PROFILING.md). Counter-style
  /// series for the same numbers go to /metrics via labeled
  /// serving.tenant.* counters.
  struct TenantTotals {
    std::int64_t requests = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::int64_t rows_streamed = 0;
    std::int64_t bytes_streamed = 0;
    std::int64_t cpu_nanos = 0;
    std::int64_t spill_bytes = 0;
    std::int64_t peak_bytes_max = 0;
  };

  jsoniq::Rumble* engine_;
  ServingConfig config_;
  TenantScheduler scheduler_;
  std::atomic<bool> draining_{false};
  mutable std::mutex tenants_mu_;
  std::map<std::string, TenantTotals> tenants_;
};

}  // namespace rumble::serve

#endif  // RUMBLE_SERVE_QUERY_SERVICE_H_
