#include "src/serve/query_service.h"

#include <chrono>
#include <string_view>
#include <utility>

#include "src/common/error.h"
#include "src/exec/memory_manager.h"
#include "src/obs/event_bus.h"
#include "src/util/strings.h"

namespace rumble::serve {

namespace {

/// JSON error body: {"error":"<code>","message":"<text>"}\n.
std::string ErrorBody(std::string_view error, const std::string& message) {
  std::string out = "{\"error\":\"";
  out += error;
  out += "\",\"message\":\"";
  out += util::JsonEscape(message);
  out += "\"}\n";
  return out;
}

/// Maps an engine error to the HTTP status committed when the error arrives
/// before the first streamed byte (docs/SERVING.md lists these).
std::string HttpStatusFor(common::ErrorCode code) {
  switch (code) {
    case common::ErrorCode::kStaticSyntax:
    case common::ErrorCode::kUndeclaredVariable:
    case common::ErrorCode::kUnknownFunction:
      return "400 Bad Request";
    case common::ErrorCode::kCancelled:
      return "499 Client Closed Request";
    case common::ErrorCode::kAdmissionRejected:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

bool ParseNonNegativeInt(const std::string& text, std::int64_t* value) {
  if (text.empty()) return false;
  std::int64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + (c - '0');
  }
  *value = out;
  return true;
}

bool IsBlank(const std::string& text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

}  // namespace

QueryService::QueryService(jsoniq::Rumble* engine, ServingConfig config)
    : engine_(engine),
      config_(std::move(config)),
      scheduler_(config_.max_concurrent, config_.max_queue_per_tenant) {
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    scheduler_.SetWeight(tenant, weight);
  }
  engine_->ResetPlanCache(config_.plan_cache_capacity);
}

void QueryService::Install(obs::MetricsServer* server) {
  server->SetQueryHandler(
      [this](const obs::HttpRequest& request, obs::HttpResponseWriter& writer) {
        Handle(request, writer);
      });
  server->SetServingStatsHandler([this] { return StatsJson(); });
  server->SetCancelHandler(
      [this](std::int64_t job_id) { return engine_->CancelJob(job_id); });
}

void QueryService::Handle(const obs::HttpRequest& request,
                          obs::HttpResponseWriter& writer) {
  obs::EventBus& bus = engine_->event_bus();
  bus.AddToCounter("serving.requests", 1);

  if (IsBlank(request.body)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("empty_query",
                             "POST a JSONiq query as the request body"));
    return;
  }

  jsoniq::ServeOptions options;
  options.tenant = request.Header("x-rumble-tenant", "anonymous");
  std::string timeout_header = request.Header("x-rumble-timeout-ms");
  if (!timeout_header.empty() &&
      !ParseNonNegativeInt(timeout_header, &options.timeout_ms)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("bad_header",
                             "X-Rumble-Timeout-Ms must be a non-negative "
                             "integer of milliseconds"));
    return;
  }
  std::string cap_header = request.Header("x-rumble-memory-cap");
  if (!cap_header.empty() &&
      !exec::MemoryManager::ParseByteSize(cap_header,
                                          &options.memory_cap_bytes)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("bad_header",
                             "X-Rumble-Memory-Cap must be a byte size such "
                             "as 1073741824, 512m, or 1g"));
    return;
  }
  if (request.Header("x-rumble-plan-cache") == "off") {
    options.use_plan_cache = false;
  }

  // Weighted fair admission: block (bounded) for a slot; under saturation
  // the scheduler shares slots by tenant weight instead of arrival order.
  bus.AddToCounter("serving.queued", 1);
  TenantScheduler::Outcome outcome =
      scheduler_.Acquire(options.tenant, config_.queue_wait_timeout_ms);
  bus.AddToCounter("serving.queued", -1);
  if (outcome != TenantScheduler::Outcome::kAdmitted) {
    bus.AddToCounter("serving.rejected", 1);
    const char* reason =
        outcome == TenantScheduler::Outcome::kQueueFull  ? "queue_full"
        : outcome == TenantScheduler::Outcome::kTimeout ? "queue_timeout"
                                                        : "shutting_down";
    writer.Respond(
        "503 Service Unavailable", "application/json",
        ErrorBody(reason, "tenant \"" + options.tenant +
                              "\" could not be admitted; retry later"),
        {{"Retry-After", "1"}});
    return;
  }

  bus.AddToCounter("serving.active", 1);
  auto started = std::chrono::steady_clock::now();
  common::Result<jsoniq::ServeResult> result = engine_->ServeQuery(
      request.body, options,
      [&](const jsoniq::ServeStart& start) {
        // Compiled and registered: commit the response headers now, before
        // the first row, so the client learns the job id early enough to
        // cancel it.
        writer.BeginChunked(
            "200 OK", "application/x-ndjson",
            {{"X-Rumble-Job", std::to_string(start.job_id)},
             {"X-Rumble-Plan-Cache", start.plan_cache_hit ? "hit" : "miss"},
             {"X-Rumble-Tenant", options.tenant}});
      },
      [&](std::string_view chunk) { return writer.WriteChunk(chunk); });
  scheduler_.Release();
  bus.AddToCounter("serving.active", -1);
  auto elapsed = std::chrono::steady_clock::now() - started;
  bus.metrics()
      ->GetHistogram("serving.request.duration_ns")
      ->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                   .count());

  if (result.ok()) {
    bus.AddToCounter("serving.completed", 1);
    if (writer.chunked()) {
      writer.EndChunked();
    } else {
      writer.Respond("200 OK", "application/x-ndjson", "");
    }
    return;
  }

  const common::Status& status = result.status();
  bool cancelled = status.code() == common::ErrorCode::kCancelled;
  bus.AddToCounter(cancelled ? "serving.cancelled" : "serving.failed", 1);
  if (writer.client_gone()) bus.AddToCounter("serving.client_gone", 1);
  std::string body =
      ErrorBody(common::ErrorCodeName(status.code()), status.message());
  if (!writer.headers_sent()) {
    writer.Respond(HttpStatusFor(status.code()), "application/json", body);
  } else {
    // Rows already went out under a 200; the failure becomes a trailing
    // machine-readable line so clients can distinguish truncation from
    // success.
    writer.WriteChunk(body);
    writer.EndChunked();
  }
}

std::string QueryService::StatsJson() const {
  std::string out = "{\"scheduler\":" + scheduler_.StatsJson();
  if (jsoniq::PlanCache* cache = engine_->plan_cache()) {
    out += ",\"plan_cache\":{\"capacity\":" + std::to_string(cache->capacity()) +
           ",\"size\":" + std::to_string(cache->size()) +
           ",\"hits\":" + std::to_string(cache->hits()) +
           ",\"misses\":" + std::to_string(cache->misses()) +
           ",\"evictions\":" + std::to_string(cache->evictions()) + "}";
  }
  out += "}";
  return out;
}

void QueryService::Shutdown() { scheduler_.Shutdown(); }

}  // namespace rumble::serve
