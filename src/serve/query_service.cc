#include "src/serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>
#include <utility>

#include "src/common/error.h"
#include "src/exec/memory_manager.h"
#include "src/exec/spill_file.h"
#include "src/obs/event_bus.h"
#include "src/util/strings.h"

namespace rumble::serve {

namespace {

/// JSON error body: {"error":"<code>","message":"<text>"}\n.
std::string ErrorBody(std::string_view error, const std::string& message) {
  std::string out = "{\"error\":\"";
  out += error;
  out += "\",\"message\":\"";
  out += util::JsonEscape(message);
  out += "\"}\n";
  return out;
}

/// Maps an engine error to the HTTP status committed when the error arrives
/// before the first streamed byte (docs/SERVING.md lists these).
std::string HttpStatusFor(common::ErrorCode code) {
  switch (code) {
    case common::ErrorCode::kStaticSyntax:
    case common::ErrorCode::kUndeclaredVariable:
    case common::ErrorCode::kUnknownFunction:
      return "400 Bad Request";
    case common::ErrorCode::kCancelled:
      return "499 Client Closed Request";
    case common::ErrorCode::kAdmissionRejected:
    case common::ErrorCode::kResourceExhausted:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

bool ParseNonNegativeInt(const std::string& text, std::int64_t* value) {
  // <= 18 digits cannot overflow int64; longer strings are rejected rather
  // than risking signed-overflow UB in the accumulate below.
  if (text.empty() || text.size() > 18) return false;
  std::int64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + (c - '0');
  }
  *value = out;
  return true;
}

bool IsBlank(const std::string& text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

/// Tenant ids come verbatim off the wire (X-Rumble-Tenant) and become
/// Prometheus label values, /serving JSON keys, scheduler queue keys, and
/// response header bytes — so they are restricted to a safe charset and
/// length, and requests carrying anything else are rejected with 400 before
/// any per-tenant state is allocated.
constexpr std::size_t kMaxTenantNameBytes = 64;

bool IsValidTenantName(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > kMaxTenantNameBytes) return false;
  for (char c : tenant) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// Per-tenant counter bases (docs/METRICS.md). Rendered on /metrics as
// labeled series — "serving.tenant.requests|tenant=acme" becomes
// rumble_serving_tenant_requests_total{tenant="acme"}.
constexpr char kTenantRequests[] = "serving.tenant.requests";
constexpr char kTenantCompleted[] = "serving.tenant.completed";
constexpr char kTenantFailed[] = "serving.tenant.failed";
constexpr char kTenantRowsStreamed[] = "serving.tenant.rows_streamed";
constexpr char kTenantBytesStreamed[] = "serving.tenant.bytes_streamed";
constexpr char kTenantCpuMs[] = "serving.tenant.cpu_ms";
constexpr char kTenantSpillBytes[] = "serving.tenant.spill_bytes";

std::string TenantCounter(const char* base, const std::string& tenant) {
  return std::string(base) + "|tenant=" + tenant;
}

/// Where previously-unseen tenant ids land once max_tracked_tenants distinct
/// ids already have state (docs/SERVING.md).
constexpr char kOverflowTenant[] = "overflow";

/// The trailer fields POST /query announces up front and appends after the
/// terminating chunk (docs/PROFILING.md): resource attribution only exists
/// once the stream has finished.
constexpr char kProfileTrailerNames[] = "X-Rumble-CPU-Ms, X-Rumble-Peak-Bytes";

}  // namespace

QueryService::QueryService(jsoniq::Rumble* engine, ServingConfig config)
    : engine_(engine),
      config_(std::move(config)),
      scheduler_(config_.max_concurrent, config_.max_queue_per_tenant) {
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    scheduler_.SetWeight(tenant, weight);
  }
  engine_->ResetPlanCache(config_.plan_cache_capacity);
}

void QueryService::Install(obs::MetricsServer* server) {
  server->SetQueryHandler(
      [this](const obs::HttpRequest& request, obs::HttpResponseWriter& writer) {
        Handle(request, writer);
      });
  server->SetServingStatsHandler([this] { return StatsJson(); });
  server->SetCancelHandler(
      [this](std::int64_t job_id) { return engine_->CancelJob(job_id); });
  server->SetReadinessHandler([this] { return Readiness(); });
}

void QueryService::Handle(const obs::HttpRequest& request,
                          obs::HttpResponseWriter& writer) {
  obs::EventBus& bus = engine_->event_bus();
  bus.AddToCounter("serving.requests", 1);

  if (IsBlank(request.body)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("empty_query",
                             "POST a JSONiq query as the request body"));
    return;
  }

  jsoniq::ServeOptions options;
  options.tenant = request.Header("x-rumble-tenant", "anonymous");
  if (!IsValidTenantName(options.tenant)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("bad_header",
                             "X-Rumble-Tenant must be 1-64 characters of "
                             "[A-Za-z0-9_.-]"));
    return;
  }
  std::string timeout_header = request.Header("x-rumble-timeout-ms");
  if (!timeout_header.empty() &&
      !ParseNonNegativeInt(timeout_header, &options.timeout_ms)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("bad_header",
                             "X-Rumble-Timeout-Ms must be a non-negative "
                             "integer of milliseconds"));
    return;
  }
  std::string cap_header = request.Header("x-rumble-memory-cap");
  if (!cap_header.empty() &&
      !exec::MemoryManager::ParseByteSize(cap_header,
                                          &options.memory_cap_bytes)) {
    bus.AddToCounter("serving.rejected", 1);
    writer.Respond("400 Bad Request", "application/json",
                   ErrorBody("bad_header",
                             "X-Rumble-Memory-Cap must be a byte size such "
                             "as 1073741824, 512m, or 1g"));
    return;
  }
  if (request.Header("x-rumble-plan-cache") == "off") {
    options.use_plan_cache = false;
  }

  // Adaptive load-shedding breaker: when every slot is busy and observed
  // queue latency already exceeds the threshold, shed now with an honest
  // backoff hint instead of making the client discover the overload by
  // waiting out the queue timeout.
  if (scheduler_.ShouldShed(config_.shed_queue_latency_ms)) {
    std::int64_t retry_sec = scheduler_.SuggestedRetryAfterSec();
    bus.AddToCounter("serving.rejected", 1);
    bus.AddToCounter("serving.shed.overload", 1);
    bus.AddToCounter("serving.shed.retry_after_s", retry_sec);
    writer.Respond(
        "503 Service Unavailable", "application/json",
        ErrorBody("overloaded",
                  "queue latency " +
                      std::to_string(static_cast<std::int64_t>(
                          scheduler_.queue_wait_ewma_ms())) +
                      " ms exceeds the shedding threshold; retry later"),
        {{"Retry-After", std::to_string(retry_sec)}});
    return;
  }

  // Disk-pressure breaker: once the spill watchdog has tripped (ENOSPC or
  // headroom exhausted), memory-governed queries would fail mid-flight the
  // moment they try to spill. Shed up front with the machine-readable token
  // until a fresh probe confirms the disk recovered (which also clears the
  // sticky flag).
  if (exec::SpillDiskDegraded() && !exec::ProbeSpillDisk().healthy) {
    bus.AddToCounter("serving.rejected", 1);
    bus.AddToCounter("serving.shed.disk", 1);
    writer.Respond(
        "503 Service Unavailable", "application/json",
        ErrorBody(common::ErrorCodeName(common::ErrorCode::kResourceExhausted),
                  "spill disk degraded: " + exec::ProbeSpillDisk().reason),
        {{"Retry-After", std::to_string(scheduler_.SuggestedRetryAfterSec())}});
    return;
  }

  {
    // Cardinality cap: per-tenant totals, labeled counters, and scheduler
    // queues all key on the tenant id, so once max_tracked_tenants distinct
    // ids exist, previously-unseen ones fold into the shared overflow bucket
    // rather than allocating unbounded state for a client-invented name.
    std::lock_guard<std::mutex> lock(tenants_mu_);
    if (tenants_.find(options.tenant) == tenants_.end() &&
        tenants_.size() >= config_.max_tracked_tenants) {
      options.tenant = kOverflowTenant;
      bus.AddToCounter("serving.tenant_overflow", 1);
    }
    tenants_[options.tenant].requests += 1;
  }
  bus.AddToCounter(TenantCounter(kTenantRequests, options.tenant), 1);

  // Weighted fair admission: block (bounded) for a slot; under saturation
  // the scheduler shares slots by tenant weight instead of arrival order.
  // The wait is measured onto the query's profile as its queue_wait phase.
  bus.AddToCounter("serving.queued", 1);
  auto queue_entered = std::chrono::steady_clock::now();
  TenantScheduler::Outcome outcome =
      scheduler_.Acquire(options.tenant, config_.queue_wait_timeout_ms);
  options.queue_wait_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - queue_entered)
          .count();
  bus.AddToCounter("serving.queued", -1);
  if (outcome != TenantScheduler::Outcome::kAdmitted) {
    bus.AddToCounter("serving.rejected", 1);
    const char* reason =
        outcome == TenantScheduler::Outcome::kQueueFull  ? "queue_full"
        : outcome == TenantScheduler::Outcome::kTimeout ? "queue_timeout"
                                                        : "shutting_down";
    // Retry-After derives from the scheduler's live queue statistics (the
    // wait EWMA /serving exports), not a constant: a lightly-loaded blip
    // says "1", a deep queue says how long it actually takes to drain.
    writer.Respond(
        "503 Service Unavailable", "application/json",
        ErrorBody(reason, "tenant \"" + options.tenant +
                              "\" could not be admitted; retry later"),
        {{"Retry-After",
          std::to_string(scheduler_.SuggestedRetryAfterSec())}});
    return;
  }

  bus.AddToCounter("serving.active", 1);
  auto started = std::chrono::steady_clock::now();
  common::Result<jsoniq::ServeResult> result = engine_->ServeQuery(
      request.body, options,
      [&](const jsoniq::ServeStart& start) {
        // Compiled and registered: commit the response headers now, before
        // the first row, so the client learns the job id early enough to
        // cancel it. Resource attribution cannot be known yet — it is
        // announced here and delivered as trailers by EndChunked.
        writer.BeginChunked(
            "200 OK", "application/x-ndjson",
            {{"X-Rumble-Job", std::to_string(start.job_id)},
             {"X-Rumble-Plan-Cache", start.plan_cache_hit ? "hit" : "miss"},
             {"X-Rumble-Tenant", options.tenant}},
            kProfileTrailerNames);
      },
      [&](std::string_view chunk) { return writer.WriteChunk(chunk); });
  scheduler_.Release();
  bus.AddToCounter("serving.active", -1);
  auto elapsed = std::chrono::steady_clock::now() - started;
  bus.metrics()
      ->GetHistogram("serving.request.duration_ns")
      ->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                   .count());

  if (result.ok()) {
    const jsoniq::ServeResult& served = result.value();
    std::int64_t cpu_ms = served.cpu_nanos / 1'000'000;
    bus.AddToCounter("serving.completed", 1);
    bus.AddToCounter(TenantCounter(kTenantCompleted, options.tenant), 1);
    bus.AddToCounter(TenantCounter(kTenantRowsStreamed, options.tenant),
                     static_cast<std::int64_t>(served.rows));
    bus.AddToCounter(TenantCounter(kTenantBytesStreamed, options.tenant),
                     static_cast<std::int64_t>(served.bytes));
    bus.AddToCounter(TenantCounter(kTenantCpuMs, options.tenant), cpu_ms);
    bus.AddToCounter(TenantCounter(kTenantSpillBytes, options.tenant),
                     served.spill_bytes);
    {
      std::lock_guard<std::mutex> lock(tenants_mu_);
      TenantTotals& totals = tenants_[options.tenant];
      totals.completed += 1;
      totals.rows_streamed += static_cast<std::int64_t>(served.rows);
      totals.bytes_streamed += static_cast<std::int64_t>(served.bytes);
      totals.cpu_nanos += served.cpu_nanos;
      totals.spill_bytes += served.spill_bytes;
      totals.peak_bytes_max = std::max(totals.peak_bytes_max,
                                       served.peak_bytes);
    }
    obs::HttpResponseWriter::Headers attribution = {
        {"X-Rumble-CPU-Ms", std::to_string(cpu_ms)},
        {"X-Rumble-Peak-Bytes", std::to_string(served.peak_bytes)}};
    if (writer.chunked()) {
      writer.EndChunked(attribution);
    } else {
      writer.Respond("200 OK", "application/x-ndjson", "", attribution);
    }
    return;
  }

  const common::Status& status = result.status();
  bool cancelled = status.code() == common::ErrorCode::kCancelled;
  bus.AddToCounter(cancelled ? "serving.cancelled" : "serving.failed", 1);
  bus.AddToCounter(TenantCounter(kTenantFailed, options.tenant), 1);
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_[options.tenant].failed += 1;
  }
  if (writer.client_gone()) bus.AddToCounter("serving.client_gone", 1);
  std::string body =
      ErrorBody(common::ErrorCodeName(status.code()), status.message());
  if (!writer.headers_sent()) {
    writer.Respond(HttpStatusFor(status.code()), "application/json", body);
  } else {
    // Rows already went out under a 200; the failure becomes a trailing
    // machine-readable line so clients can distinguish truncation from
    // success.
    writer.WriteChunk(body);
    writer.EndChunked();
  }
}

std::string QueryService::StatsJson() const {
  std::string out = "{\"scheduler\":" + scheduler_.StatsJson();
  if (jsoniq::PlanCache* cache = engine_->plan_cache()) {
    out += ",\"plan_cache\":{\"capacity\":" + std::to_string(cache->capacity()) +
           ",\"size\":" + std::to_string(cache->size()) +
           ",\"hits\":" + std::to_string(cache->hits()) +
           ",\"misses\":" + std::to_string(cache->misses()) +
           ",\"evictions\":" + std::to_string(cache->evictions()) + "}";
  }
  out += ",\"tenants\":{";
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    bool first = true;
    for (const auto& [tenant, totals] : tenants_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + util::JsonEscape(tenant) + "\":{";
      out += "\"requests\":" + std::to_string(totals.requests);
      out += ",\"completed\":" + std::to_string(totals.completed);
      out += ",\"failed\":" + std::to_string(totals.failed);
      out += ",\"rows_streamed\":" + std::to_string(totals.rows_streamed);
      out += ",\"bytes_streamed\":" + std::to_string(totals.bytes_streamed);
      out += ",\"cpu_ms\":" + std::to_string(totals.cpu_nanos / 1'000'000);
      out += ",\"spill_bytes\":" + std::to_string(totals.spill_bytes);
      out += ",\"peak_bytes_max\":" + std::to_string(totals.peak_bytes_max);
      out += "}";
    }
  }
  out += "}}";
  return out;
}

std::pair<bool, std::string> QueryService::Readiness() const {
  std::string reasons;
  auto add = [&reasons](const char* reason) {
    if (!reasons.empty()) reasons += ",";
    reasons += "\"";
    reasons += reason;
    reasons += "\"";
  };
  if (draining_.load(std::memory_order_acquire)) add("draining");
  if (scheduler_.ShouldShed(config_.shed_queue_latency_ms)) add("saturated");
  if (!engine_->engine()->spark->memory_manager().WouldAdmitQuery()) {
    add("memory");
  }
  // Fresh probe (statvfs + the live spill-byte cap), not the sticky flag:
  // readiness should recover on its own once the operator frees disk space.
  if (!exec::ProbeSpillDisk().healthy) add("disk");
  if (reasons.empty()) return {true, "{\"ready\":true}\n"};
  return {false, "{\"ready\":false,\"reasons\":[" + reasons + "]}\n"};
}

void QueryService::Shutdown() { scheduler_.Shutdown(); }

void QueryService::BeginDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  engine_->event_bus().AddToCounter("serving.drain.started", 1);
  scheduler_.Shutdown();
}

DrainStats QueryService::Drain(obs::MetricsServer* server) {
  obs::EventBus& bus = engine_->event_bus();
  BeginDrain();
  server->StopAccepting();
  // Let in-flight queries run to completion within the drain budget. Both
  // the engine's job count and the server's connection count must hit zero:
  // a finished query whose response bytes are still flushing is not done.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      std::max<std::int64_t>(0, config_.drain_deadline_ms));
  while ((engine_->active_jobs() > 0 || server->active_connections() > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  DrainStats stats;
  stats.cancelled_queries = engine_->CancelAllJobs();
  if (stats.cancelled_queries > 0) {
    bus.AddToCounter("serving.drain.cancelled_queries",
                     stats.cancelled_queries);
    // Cancelled streams need a beat to observe the token, emit the trailing
    // error line, and unwind reservations/spill files before Stop() slams
    // the sockets.
    stats.forced_connections =
        server->Drain(static_cast<int>(config_.drain_deadline_ms));
  } else {
    stats.forced_connections = server->active_connections();
  }
  if (stats.forced_connections > 0) {
    bus.AddToCounter("serving.drain.forced_connections",
                     stats.forced_connections);
  }
  bus.AddToCounter("serving.drain.completed", 1);
  return stats;
}

}  // namespace rumble::serve
