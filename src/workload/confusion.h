#ifndef RUMBLE_WORKLOAD_CONFUSION_H_
#define RUMBLE_WORKLOAD_CONFUSION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rumble::workload {

/// Deterministic synthetic stand-in for the Great Language Game "confusion"
/// dataset (paper Section 6.1): ~16M JSON objects with fields guess, target,
/// country, choices, sample and date. The generator preserves the properties
/// the paper's three queries exercise — a ~72% guess==target match rate,
/// ~70 distinct target languages with a skewed distribution, string sort
/// keys with plenty of duplicates — while being reproducible from a seed.
struct ConfusionOptions {
  std::uint64_t num_objects = 10000;
  std::uint64_t seed = 42;
  int partitions = 8;
};

class ConfusionGenerator {
 public:
  /// One JSON Lines record (no trailing newline).
  static std::string GenerateLine(std::uint64_t seed, std::uint64_t index);

  /// All records, in order.
  static std::vector<std::string> GenerateLines(const ConfusionOptions& options);

  /// Writes the dataset as a partitioned DFS directory; returns the path.
  static std::string WriteDataset(const std::string& path,
                                  const ConfusionOptions& options);

  /// The language and country vocabularies (exposed for tests).
  static const std::vector<std::string>& Languages();
  static const std::vector<std::string>& Countries();
};

}  // namespace rumble::workload

#endif  // RUMBLE_WORKLOAD_CONFUSION_H_
