#include "src/workload/reddit.h"

#include "src/storage/dfs.h"
#include "src/util/prng.h"
#include "src/util/strings.h"

namespace rumble::workload {

namespace {

const std::vector<std::string>& SubredditList() {
  static const std::vector<std::string>* kSubreddits =
      new std::vector<std::string>{
          "AskReddit", "funny",   "pics",          "gaming",  "worldnews",
          "science",   "movies",  "todayilearned", "videos",  "news",
          "aww",       "music",   "books",         "history", "space",
          "sports",    "food",    "art",           "technology", "politics",
          "dataisbeautiful", "programming", "linux", "cpp", "databases"};
  return *kSubreddits;
}

const char* const kWords[] = {
    "the",   "quick", "brown",  "fox",    "jumps",  "over", "lazy",
    "dog",   "data",  "query",  "spark",  "json",   "nested", "messy",
    "scale", "wow",   "really", "maybe",  "never",  "always", "great",
    "terrible", "interesting", "comment", "thread", "upvote", "because"};

std::string RandomBody(util::Prng& prng) {
  std::size_t words = 3 + prng.NextBounded(20);
  std::string body;
  for (std::size_t i = 0; i < words; ++i) {
    if (i > 0) body.push_back(' ');
    body += kWords[prng.NextBounded(sizeof(kWords) / sizeof(kWords[0]))];
  }
  return body;
}

}  // namespace

const std::vector<std::string>& RedditGenerator::Subreddits() {
  return SubredditList();
}

std::string RedditGenerator::GenerateLine(std::uint64_t seed,
                                          std::uint64_t index) {
  util::Prng prng(seed * 0xbf58476d1ce4e5b9ULL + index + 1);

  // Era: 2008..2015; later eras have more fields (schema drift without
  // back-conversion — the paper's "schema changes every couple of years").
  int era = static_cast<int>(prng.NextBounded(8));  // 0 -> 2008
  std::int64_t created =
      1199145600LL + era * 31536000LL +
      static_cast<std::int64_t>(prng.NextBounded(31536000ULL));

  std::string line = "{\"author\": \"user_" +
                     std::to_string(prng.NextBounded(50000)) +
                     "\", \"subreddit\": \"" + prng.Pick(SubredditList()) +
                     "\", \"body\": \"" + RandomBody(prng) + "\"";
  line += ", \"score\": " +
          std::to_string(static_cast<std::int64_t>(prng.NextBounded(2000)) -
                         100);
  line += ", \"created_utc\": " + std::to_string(created);

  // Heterogeneous field: `edited` is false, or the edit timestamp.
  if (prng.NextBool(0.1)) {
    line += ", \"edited\": " + std::to_string(created + 3600);
  } else {
    line += ", \"edited\": false";
  }

  // Era-dependent fields.
  if (era >= 2) {
    line += ", \"score_hidden\": ";
    line += prng.NextBool(0.05) ? "true" : "false";
  }
  if (era >= 4) {
    line += ", \"gilded\": " + std::to_string(prng.NextBounded(3));
    line += ", \"distinguished\": ";
    line += prng.NextBool(0.02) ? "\"moderator\"" : "null";
  }
  if (era >= 6 && prng.NextBool(0.3)) {
    line += ", \"user_reports\": [";
    std::size_t reports = prng.NextBounded(3);
    for (std::size_t i = 0; i < reports; ++i) {
      if (i > 0) line += ", ";
      line += "[\"spam\", " + std::to_string(prng.NextBounded(5)) + "]";
    }
    line += "]";
  }

  // Occasionally missing field (deleted comments lose their author flair).
  if (prng.NextBool(0.7)) {
    line += ", \"author_flair_text\": ";
    line += prng.NextBool(0.5)
                ? "null"
                : "\"" + prng.Pick(SubredditList()) + " fan\"";
  }

  line += "}";
  return line;
}

std::vector<std::string> RedditGenerator::GenerateLines(
    const RedditOptions& options) {
  std::vector<std::string> lines;
  lines.reserve(options.num_objects);
  for (std::uint64_t i = 0; i < options.num_objects; ++i) {
    lines.push_back(GenerateLine(options.seed, i));
  }
  return lines;
}

std::string RedditGenerator::WriteDataset(const std::string& path,
                                          const RedditOptions& options) {
  int partitions = options.partitions < 1 ? 1 : options.partitions;
  int replication = options.replication < 1 ? 1 : options.replication;
  std::uint64_t total =
      options.num_objects * static_cast<std::uint64_t>(replication);
  std::vector<std::string> parts(static_cast<std::size_t>(partitions));
  std::uint64_t per_part = total / partitions;
  std::uint64_t remainder = total % partitions;
  std::uint64_t index = 0;
  for (int p = 0; p < partitions; ++p) {
    std::uint64_t count =
        per_part + (static_cast<std::uint64_t>(p) < remainder ? 1 : 0);
    std::string& blob = parts[static_cast<std::size_t>(p)];
    for (std::uint64_t i = 0; i < count; ++i, ++index) {
      blob += GenerateLine(options.seed, index % options.num_objects);
      blob.push_back('\n');
    }
  }
  storage::Dfs::WritePartitioned(path, parts);
  return path;
}

}  // namespace rumble::workload
