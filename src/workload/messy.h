#ifndef RUMBLE_WORKLOAD_MESSY_H_
#define RUMBLE_WORKLOAD_MESSY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rumble::workload {

/// Heterogeneous "messy" datasets from the paper's Figures 5 and 7: fields
/// whose values change type across records, go missing, or nest arrays —
/// the inputs Spark SQL's DataFrames cannot represent without degrading
/// everything to strings (Figure 6).
class MessyGenerator {
 public:
  /// The exact three records of Figure 5.
  static std::vector<std::string> Figure5Lines();

  /// Records in the style of Figure 7: `country` is sometimes a string,
  /// sometimes an array of strings, sometimes missing; 95% of values are
  /// clean, the rest are the paper's "unclean data" cases.
  static std::vector<std::string> GenerateLines(std::uint64_t num_objects,
                                                std::uint64_t seed);

  static std::string WriteDataset(const std::string& path,
                                  std::uint64_t num_objects,
                                  std::uint64_t seed, int partitions);
};

}  // namespace rumble::workload

#endif  // RUMBLE_WORKLOAD_MESSY_H_
