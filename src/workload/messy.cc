#include "src/workload/messy.h"

#include "src/storage/dfs.h"
#include "src/util/prng.h"
#include "src/workload/confusion.h"

namespace rumble::workload {

std::vector<std::string> MessyGenerator::Figure5Lines() {
  return {
      R"({"foo": "1", "bar":2, "foobar": true})",
      R"({"foo": "2", "bar":[4], "foobar": "false"})",
      R"({"foo": "3", "bar":"6"})",
  };
}

std::vector<std::string> MessyGenerator::GenerateLines(
    std::uint64_t num_objects, std::uint64_t seed) {
  std::vector<std::string> lines;
  lines.reserve(num_objects);
  const auto& countries = ConfusionGenerator::Countries();
  for (std::uint64_t i = 0; i < num_objects; ++i) {
    util::Prng prng(seed * 0x94d049bb133111ebULL + i + 1);
    std::string line = "{\"guess\": \"" +
                       ConfusionGenerator::Languages()[prng.NextBounded(
                           ConfusionGenerator::Languages().size())] +
                       "\"";
    double roll = prng.NextDouble();
    if (roll < 0.95) {
      // Clean record: country is a plain string.
      line += ", \"country\": \"" + prng.Pick(countries) + "\"";
    } else if (roll < 0.97) {
      // Country is an array of strings (Figure 7's first fallback).
      line += ", \"country\": [\"" + prng.Pick(countries) + "\", \"" +
              prng.Pick(countries) + "\"]";
    } else if (roll < 0.98) {
      // Country is null.
      line += ", \"country\": null";
    } else if (roll < 0.99) {
      // Country has the wrong type entirely.
      line += ", \"country\": " + std::to_string(prng.NextBounded(100));
    }
    // else: country is absent.
    line += ", \"score\": " + std::to_string(prng.NextBounded(1000)) + "}";
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string MessyGenerator::WriteDataset(const std::string& path,
                                         std::uint64_t num_objects,
                                         std::uint64_t seed, int partitions) {
  if (partitions < 1) partitions = 1;
  std::vector<std::string> lines = GenerateLines(num_objects, seed);
  std::vector<std::string> parts(static_cast<std::size_t>(partitions));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string& blob = parts[i % static_cast<std::size_t>(partitions)];
    blob += lines[i];
    blob.push_back('\n');
  }
  storage::Dfs::WritePartitioned(path, parts);
  return path;
}

}  // namespace rumble::workload
