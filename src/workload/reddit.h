#ifndef RUMBLE_WORKLOAD_REDDIT_H_
#define RUMBLE_WORKLOAD_REDDIT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rumble::workload {

/// Deterministic stand-in for the paper's semi-structured Reddit comments
/// dataset (Section 6.1): objects with era-dependent schema drift (fields
/// appear in later "years" without back-filling older records), optional
/// fields, heterogeneous types (`edited` is false or a timestamp number),
/// and nested arrays. Used by the Figure 14/15 experiments.
struct RedditOptions {
  std::uint64_t num_objects = 10000;
  std::uint64_t seed = 7;
  int partitions = 8;
  /// Replication factor (Figure 15 replicates the dataset up to 400x).
  int replication = 1;
};

class RedditGenerator {
 public:
  static std::string GenerateLine(std::uint64_t seed, std::uint64_t index);
  static std::vector<std::string> GenerateLines(const RedditOptions& options);
  /// Writes `num_objects * replication` records; replicas repeat the same
  /// logical records, as the paper's replication does.
  static std::string WriteDataset(const std::string& path,
                                  const RedditOptions& options);

  static const std::vector<std::string>& Subreddits();
};

}  // namespace rumble::workload

#endif  // RUMBLE_WORKLOAD_REDDIT_H_
