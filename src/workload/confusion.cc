#include "src/workload/confusion.h"

#include <cstdio>

#include "src/storage/dfs.h"
#include "src/util/prng.h"

namespace rumble::workload {

namespace {

const std::vector<std::string>& LanguageList() {
  static const std::vector<std::string>* kLanguages =
      new std::vector<std::string>{
          "French",     "German",    "Spanish",   "Italian",   "Portuguese",
          "Dutch",      "Swedish",   "Norwegian", "Danish",    "Finnish",
          "Russian",    "Ukrainian", "Polish",    "Czech",     "Slovak",
          "Hungarian",  "Romanian",  "Bulgarian", "Serbian",   "Croatian",
          "Greek",      "Turkish",   "Arabic",    "Hebrew",    "Persian",
          "Hindi",      "Urdu",      "Bengali",   "Tamil",     "Telugu",
          "Kannada",    "Malayalam", "Punjabi",   "Gujarati",  "Marathi",
          "Mandarin",   "Cantonese", "Japanese",  "Korean",    "Vietnamese",
          "Thai",       "Lao",       "Khmer",     "Burmese",   "Indonesian",
          "Malay",      "Tagalog",   "Javanese",  "Swahili",   "Amharic",
          "Somali",     "Yoruba",    "Igbo",      "Zulu",      "Xhosa",
          "Afrikaans",  "Albanian",  "Armenian",  "Azerbaijani", "Basque",
          "Belarusian", "Bosnian",   "Catalan",   "Estonian",  "Georgian",
          "Icelandic",  "Irish",     "Latvian",   "Lithuanian", "Macedonian",
          "Maltese",    "Mongolian", "Nepali",    "Pashto",    "Sinhalese",
          "Slovenian",  "Welsh",     "Yiddish"};
  return *kLanguages;
}

const std::vector<std::string>& CountryList() {
  static const std::vector<std::string>* kCountries =
      new std::vector<std::string>{
          "AU", "US", "GB", "DE", "FR", "NL", "SE", "NO", "DK", "FI",
          "CH", "AT", "BE", "IT", "ES", "PT", "PL", "CZ", "RU", "UA",
          "CA", "MX", "BR", "AR", "CL", "IN", "CN", "JP", "KR", "SG",
          "HK", "TW", "TH", "VN", "ID", "MY", "PH", "NZ", "ZA", "EG",
          "IL", "TR", "GR", "HU", "RO", "BG", "RS", "HR", "IE", "IS"};
  return *kCountries;
}

}  // namespace

const std::vector<std::string>& ConfusionGenerator::Languages() {
  return LanguageList();
}

const std::vector<std::string>& ConfusionGenerator::Countries() {
  return CountryList();
}

std::string ConfusionGenerator::GenerateLine(std::uint64_t seed,
                                             std::uint64_t index) {
  // Each record derives its own PRNG stream so generation is random-access
  // (partitions can be produced independently and in parallel).
  util::Prng prng(seed * 0x9e3779b97f4a7c15ULL + index + 1);
  const auto& languages = LanguageList();
  const auto& countries = CountryList();

  std::size_t target_index = prng.NextZipf(languages.size(), 0.6);
  const std::string& target = languages[target_index];

  // The paper's filter query selects guess eq target; players guess right
  // roughly 72% of the time in the original dataset.
  bool correct = prng.NextBool(0.72);
  const std::string& guess =
      correct ? target : prng.Pick(languages);

  const std::string& country = prng.Pick(countries);

  // Four choices, always containing the target.
  std::string choices = "[\"" + target + "\"";
  for (int i = 0; i < 3; ++i) {
    choices += ", \"" + prng.Pick(languages) + "\"";
  }
  choices += "]";

  // Dates spread over the game's 2013-2014 run.
  int month = static_cast<int>(prng.NextBounded(16));
  int year = 2013 + month / 12;
  month = month % 12 + 1;
  int day = static_cast<int>(prng.NextBounded(28)) + 1;
  char date[16];
  std::snprintf(date, sizeof(date), "%04d-%02d-%02d", year, month, day);

  std::string line = "{\"guess\": \"" + guess + "\", \"target\": \"" + target +
                     "\", \"country\": \"" + country + "\", \"choices\": " +
                     choices + ", \"sample\": \"" + prng.NextHex(32) +
                     "\", \"date\": \"" + date + "\"}";
  return line;
}

std::vector<std::string> ConfusionGenerator::GenerateLines(
    const ConfusionOptions& options) {
  std::vector<std::string> lines;
  lines.reserve(options.num_objects);
  for (std::uint64_t i = 0; i < options.num_objects; ++i) {
    lines.push_back(GenerateLine(options.seed, i));
  }
  return lines;
}

std::string ConfusionGenerator::WriteDataset(const std::string& path,
                                             const ConfusionOptions& options) {
  int partitions = options.partitions < 1 ? 1 : options.partitions;
  std::vector<std::string> parts(static_cast<std::size_t>(partitions));
  std::uint64_t per_part = options.num_objects / partitions;
  std::uint64_t remainder = options.num_objects % partitions;
  std::uint64_t index = 0;
  for (int p = 0; p < partitions; ++p) {
    std::uint64_t count =
        per_part + (static_cast<std::uint64_t>(p) < remainder ? 1 : 0);
    std::string& blob = parts[static_cast<std::size_t>(p)];
    for (std::uint64_t i = 0; i < count; ++i, ++index) {
      blob += GenerateLine(options.seed, index);
      blob.push_back('\n');
    }
  }
  storage::Dfs::WritePartitioned(path, parts);
  return path;
}

}  // namespace rumble::workload
