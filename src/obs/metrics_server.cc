#include "src/obs/metrics_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/version.h"
#include "src/exec/fault_injector.h"
#include "src/obs/event_bus.h"

namespace rumble::obs {

namespace {

/// Request header block is bounded so a garbage client cannot grow memory.
constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
/// Query bodies are bounded too; larger posts get 413.
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

using SteadyClock = std::chrono::steady_clock;

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Parses a decimal job id. Rejects empty, non-digit, and > 18 digit
/// strings — job ids are small, and 19+ digits would overflow int64
/// (signed-overflow UB) in the accumulate.
bool ParseJobId(const std::string& digits, std::int64_t* job_id) {
  if (digits.empty() || digits.size() > 18) return false;
  std::int64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *job_id = value;
  return true;
}

/// Parses "/jobs/<id>" (suffix empty), "/jobs/<id>/profile", or
/// "/jobs/<id>/cancel"; returns false on any other shape.
bool ParseJobPath(const std::string& path, const std::string& suffix,
                  std::int64_t* job_id) {
  const std::string prefix = "/jobs/";
  if (path.rfind(prefix, 0) != 0) return false;
  if (path.size() <= prefix.size() + suffix.size()) return false;
  if (!suffix.empty() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string digits =
      path.substr(prefix.size(), path.size() - prefix.size() - suffix.size());
  return ParseJobId(digits, job_id);
}

/// Parses "/jobs/<id>/cancel"; returns false on any other shape.
bool ParseCancelPath(const std::string& path, std::int64_t* job_id) {
  return ParseJobPath(path, "/cancel", job_id);
}

/// The read half of one connection: its fd, the absolute deadline for the
/// request currently being read, and the seeded fault state. Faults key on
/// (connection ordinal, read-op ordinal), so a replay with the same seed
/// truncates and delays the same recv calls.
struct ConnReader {
  int fd = -1;
  SteadyClock::time_point deadline{};
  bool has_deadline = false;
  exec::FaultInjector* injector = nullptr;
  std::int64_t conn = 0;
  std::int64_t read_ops = 0;
  EventBus* bus = nullptr;
  bool timed_out = false;
};

/// One bounded, fault-aware recv: waits for readability until the reader's
/// deadline (poll), applies injected latency / short reads, then recv()s.
/// Returns > 0 on data, 0 on orderly close, < 0 on error or deadline
/// (reader->timed_out distinguishes the deadline).
ssize_t RecvSome(ConnReader* reader, char* buf, std::size_t len) {
  std::int64_t op = reader->read_ops++;
  if (reader->injector != nullptr) {
    std::int64_t delay = reader->injector->NetDelayNanos(reader->conn, op);
    if (delay > 0) {
      if (reader->bus != nullptr) reader->bus->AddToCounter("net.fault.delay", 1);
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
    if (reader->injector->ShouldShortRead(reader->conn, op) && len > 1) {
      if (reader->bus != nullptr) {
        reader->bus->AddToCounter("net.fault.short_read", 1);
      }
      len = 1;
    }
  }
  if (reader->has_deadline) {
    for (;;) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           reader->deadline - SteadyClock::now())
                           .count();
      if (remaining <= 0) {
        reader->timed_out = true;
        return -1;
      }
      pollfd pfd{};
      pfd.fd = reader->fd;
      pfd.events = POLLIN;
      int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready > 0) break;
      if (ready == 0) {
        reader->timed_out = true;
        return -1;
      }
      if (errno != EINTR) return -1;
    }
  }
  return ::recv(reader->fd, buf, len, 0);
}

/// Reads one HTTP request off the connection: headers until the blank line,
/// then Content-Length bytes of body, all under the reader's deadline.
/// Returns false on a malformed, oversized, or overdue request (*status and
/// *error_token carry the response to send) or a dead socket (*status left
/// empty — nothing to send). Overruns fail fast: an oversized declared
/// Content-Length is rejected from the header alone, before any body byte
/// is read, and a request that cannot complete within the deadline is
/// answered 408 instead of holding its thread hostage.
bool ReadRequest(ConnReader* reader, HttpRequest* request, std::string* status,
                 std::string* error_token) {
  status->clear();
  error_token->clear();
  std::string data;
  std::size_t header_end = std::string::npos;
  char buf[4096];
  while (header_end == std::string::npos) {
    if (data.size() > kMaxHeaderBytes) {
      *status = "431 Request Header Fields Too Large";
      *error_token = "headers_too_large";
      return false;
    }
    ssize_t n = RecvSome(reader, buf, sizeof(buf));
    if (n <= 0) {
      if (reader->timed_out) {
        *status = "408 Request Timeout";
        *error_token = "request_timeout";
      }
      return false;
    }
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
  }

  // Request line: METHOD SP path SP HTTP/1.x
  std::size_t line_end = data.find("\r\n");
  std::string line = data.substr(0, line_end);
  std::size_t method_end = line.find(' ');
  std::size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    *status = "400 Bad Request";
    *error_token = "bad_request";
    return false;
  }
  request->method = line.substr(0, method_end);
  request->path = line.substr(method_end + 1, path_end - method_end - 1);
  std::size_t query = request->path.find('?');
  if (query != std::string::npos) request->path.resize(query);

  // Header lines.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = data.find("\r\n", pos);
    std::string header = data.substr(pos, eol - pos);
    pos = eol + 2;
    std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(header.substr(0, colon));
    std::size_t value_begin = colon + 1;
    while (value_begin < header.size() && header[value_begin] == ' ') {
      ++value_begin;
    }
    request->headers[name] = header.substr(value_begin);
  }

  // Body per Content-Length (this server never sees chunked request bodies).
  std::size_t content_length = 0;
  auto it = request->headers.find("content-length");
  if (it != request->headers.end()) {
    for (char c : it->second) {
      if (c < '0' || c > '9') {
        *status = "400 Bad Request";
        *error_token = "bad_request";
        return false;
      }
      content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      if (content_length > kMaxBodyBytes) {
        *status = "413 Payload Too Large";
        *error_token = "payload_too_large";
        return false;
      }
    }
  }
  request->body = data.substr(header_end + 4);
  while (request->body.size() < content_length) {
    ssize_t n = RecvSome(reader, buf, sizeof(buf));
    if (n <= 0) {
      if (reader->timed_out) {
        *status = "408 Request Timeout";
        *error_token = "request_timeout";
      }
      return false;
    }
    request->body.append(buf, static_cast<std::size_t>(n));
  }
  request->body.resize(content_length);
  return true;
}

std::string HttpErrorBody(const std::string& token) {
  return "{\"error\":\"" + token + "\"}\n";
}

}  // namespace

std::string HttpRequest::Header(const std::string& lower_name,
                                std::string fallback) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? std::move(fallback) : it->second;
}

bool HttpResponseWriter::SendAll(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    std::size_t len = data.size() - sent;
    if (injector_ != nullptr) {
      std::int64_t op = write_ops_++;
      std::int64_t delay = injector_->NetDelayNanos(conn_, op);
      if (delay > 0) {
        if (bus_ != nullptr) bus_->AddToCounter("net.fault.delay", 1);
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
      if (injector_->ShouldInjectRst(conn_, op)) {
        // The peer "reset" the connection: the socket dies under us exactly
        // as ECONNRESET would surface, and the caller sees a gone client.
        if (bus_ != nullptr) bus_->AddToCounter("net.fault.rst", 1);
        ::shutdown(fd_, SHUT_RDWR);
        client_gone_ = true;
        return false;
      }
      if (injector_->ShouldShortWrite(conn_, op) && len > 1) {
        if (bus_ != nullptr) bus_->AddToCounter("net.fault.short_write", 1);
        len = 1;
      }
    }
    // MSG_NOSIGNAL: a peer that already hung up must surface as an error
    // here, not as a process-wide SIGPIPE. SO_SNDTIMEO (armed at accept)
    // bounds how long a stalled reader can block this send.
    ssize_t n = ::send(fd_, data.data() + sent, len, MSG_NOSIGNAL);
    if (n <= 0) {
      client_gone_ = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void HttpResponseWriter::Respond(const std::string& status,
                                 const std::string& content_type,
                                 const std::string& body,
                                 const Headers& extra) {
  if (headers_sent_) return;
  headers_sent_ = true;
  std::string out = "HTTP/1.0 " + status + "\r\nContent-Type: " + content_type;
  for (const auto& [name, value] : extra) {
    out += "\r\n" + name + ": " + value;
  }
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  SendAll(out);
}

bool HttpResponseWriter::BeginChunked(const std::string& status,
                                      const std::string& content_type,
                                      const Headers& extra,
                                      const std::string& trailer) {
  if (headers_sent_) return false;
  headers_sent_ = true;
  chunked_ = true;
  std::string out = "HTTP/1.1 " + status + "\r\nContent-Type: " + content_type;
  for (const auto& [name, value] : extra) {
    out += "\r\n" + name + ": " + value;
  }
  if (!trailer.empty()) out += "\r\nTrailer: " + trailer;
  out += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  return SendAll(out);
}

bool HttpResponseWriter::WriteChunk(std::string_view data) {
  if (data.empty() || client_gone_) return !client_gone_;
  char size_line[32];
  int size_len = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                               data.size());
  std::string out;
  out.reserve(static_cast<std::size_t>(size_len) + data.size() + 2);
  out.append(size_line, static_cast<std::size_t>(size_len));
  out.append(data);
  out += "\r\n";
  return SendAll(out);
}

void HttpResponseWriter::EndChunked(const Headers& trailers) {
  if (!chunked_ || client_gone_) return;
  std::string out = "0\r\n";
  for (const auto& [name, value] : trailers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  SendAll(out);
}

bool MetricsServer::Start(int port) {
  if (running()) return false;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accepting_.store(true, std::memory_order_release);
  reaper_stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  reaper_thread_ = std::thread([this] { ReaperLoop(); });
  return true;
}

void MetricsServer::StopAccepting() {
  if (!accepting_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept() so the thread observes accepting_ false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

int MetricsServer::Drain(int deadline_ms) {
  StopAccepting();
  auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(std::max(0, deadline_ms));
  for (;;) {
    int open = active_connections();
    if (open == 0) return 0;
    if (SteadyClock::now() >= deadline) return open;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

int MetricsServer::active_connections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  ReapFinishedLocked();
  return static_cast<int>(connections_.size());
}

void MetricsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  StopAccepting();
  reaper_stop_.store(true, std::memory_order_release);
  if (reaper_thread_.joinable()) reaper_thread_.join();
  port_ = 0;
  // Unblock every connection thread (their recv/send fails), then join and
  // close. Streaming queries see the dead socket and cancel cooperatively.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (Connection& conn : connections_) {
    ::shutdown(conn.fd, SHUT_RDWR);
  }
  for (Connection& conn : connections_) {
    if (conn.thread.joinable()) conn.thread.join();
    ::close(conn.fd);
  }
  connections_.clear();
}

void MetricsServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      ::close(it->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void MetricsServer::ReaperLoop() {
  // Joining finished connection threads must not depend on the next accept
  // arriving: an idle server would otherwise hold every finished thread (and
  // its fd) until shutdown. The read deadline and SO_SNDTIMEO bound how long
  // a live connection can stay un-finished, so this loop alone guarantees
  // slots come back.
  while (!reaper_stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ReapFinishedLocked();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void MetricsServer::AcceptLoop() {
  while (accepting()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!accepting()) break;
      continue;
    }
    std::int64_t ordinal = 0;
    if (injector_ != nullptr && injector_->has_net_faults()) {
      ordinal = injector_->NextConnOrdinal();
      if (injector_->ShouldFailAccept(ordinal)) {
        // Injected accept-queue failure: the connection dies before a
        // handler thread ever exists. Clients must retry; the server must
        // not notice beyond the counter.
        if (bus_ != nullptr) bus_->AddToCounter("net.fault.accept_fail", 1);
        ::close(fd);
        continue;
      }
    }
    if (write_timeout_ms_ > 0) {
      timeval timeout{};
      timeout.tv_sec = write_timeout_ms_ / 1000;
      timeout.tv_usec = (write_timeout_ms_ % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    if (static_cast<int>(connections_.size()) >= max_connections_) {
      // Fast, bounded rejection: never queue behind saturated slots.
      HttpResponseWriter writer(fd);
      writer.Respond("503 Service Unavailable", "application/json",
                     "{\"error\":\"too_many_connections\"}\n");
      ::close(fd);
      continue;
    }
    connections_.emplace_back();
    Connection* conn = &connections_.back();
    conn->fd = fd;
    conn->ordinal = ordinal;
    conn->thread = std::thread([this, conn] { HandleConnection(conn); });
  }
}

void MetricsServer::HandleConnection(Connection* conn) {
  HttpRequest request;
  std::string error_status;
  std::string error_token;
  HttpResponseWriter writer(conn->fd);
  ConnReader reader;
  reader.fd = conn->fd;
  if (read_deadline_ms_ > 0) {
    reader.deadline =
        SteadyClock::now() + std::chrono::milliseconds(read_deadline_ms_);
    reader.has_deadline = true;
  }
  if (injector_ != nullptr && injector_->has_net_faults()) {
    reader.injector = injector_;
    reader.conn = conn->ordinal;
    reader.bus = bus_;
    writer.BindFaults(injector_, conn->ordinal, bus_);
  }
  if (ReadRequest(&reader, &request, &error_status, &error_token)) {
    Dispatch(request, writer);
  } else if (!error_status.empty()) {
    // Fail fast with a machine-readable body: 408 request_timeout for a
    // request that never completed (slow loris, stalled body), 431/413 for
    // header/body overruns, 400 for a malformed head.
    if (bus_ != nullptr && error_token == "request_timeout") {
      bus_->AddToCounter("serving.request_timeout", 1);
    }
    writer.Respond(error_status, "application/json",
                   HttpErrorBody(error_token));
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  // The reaper (or Stop) joins us and closes the fd; flagging done last
  // keeps the fd valid for the whole lifetime of this thread.
  conn->done.store(true, std::memory_order_release);
}

void MetricsServer::Dispatch(const HttpRequest& request,
                             HttpResponseWriter& writer) {
  std::int64_t job_id = 0;
  if (request.method == "POST" && request.path == "/query") {
    if (query_handler_ != nullptr) {
      query_handler_(request, writer);
    } else {
      writer.Respond("404 Not Found", "application/json",
                     "{\"error\":\"serving_disabled\"}\n");
    }
    return;
  }
  if (request.method == "POST" && ParseCancelPath(request.path, &job_id)) {
    // Cooperative cancellation (docs/MEMORY.md): hand the id to the engine's
    // handler; the running query observes it at its next cancellation point.
    bool cancelled = cancel_handler_ != nullptr && cancel_handler_(job_id);
    std::string body = std::string("{\"cancelled\":") +
                       (cancelled ? "true" : "false") +
                       ",\"job\":" + std::to_string(job_id) + "}\n";
    writer.Respond(cancelled ? "200 OK" : "404 Not Found", "application/json",
                   body);
    return;
  }
  if (request.method != "GET") {
    writer.Respond("404 Not Found", "text/plain", "not found\n");
    return;
  }
  if (request.path == "/metrics") {
    writer.Respond("200 OK", "text/plain; version=0.0.4",
                   bus_->PrometheusText());
  } else if (request.path == "/jobs") {
    writer.Respond("200 OK", "application/json", bus_->JobsJson());
  } else if (ParseJobPath(request.path, "/profile", &job_id)) {
    // The query's full end-to-end profile (docs/PROFILING.md): live while it
    // runs, retained after it finishes until it ages out of the ring.
    std::shared_ptr<const QueryProfile> profile =
        bus_->profiler()->Get(job_id);
    if (profile == nullptr) {
      writer.Respond("404 Not Found", "application/json",
                     "{\"error\":\"unknown_job\",\"job\":" +
                         std::to_string(job_id) + "}\n");
    } else {
      writer.Respond("200 OK", "application/json",
                     QueryProfiler::ToJson(*profile) + "\n");
    }
  } else if (ParseJobPath(request.path, "", &job_id)) {
    std::shared_ptr<const QueryProfile> profile =
        bus_->profiler()->Get(job_id);
    if (profile == nullptr) {
      writer.Respond("404 Not Found", "application/json",
                     "{\"error\":\"unknown_job\",\"job\":" +
                         std::to_string(job_id) + "}\n");
    } else {
      writer.Respond("200 OK", "application/json",
                     QueryProfiler::SummaryJson(*profile) + "\n");
    }
  } else if (request.path == "/version") {
    writer.Respond("200 OK", "application/json",
                   common::VersionJson() + "\n");
  } else if (request.path == "/healthz") {
    // Liveness: the process accepts sockets and answers — nothing more. A
    // draining or saturated server is still alive. The first line stays the
    // bare "ok" probes grep for; the second identifies the build.
    writer.Respond("200 OK", "text/plain",
                   "ok\n" + common::VersionString() + "\n");
  } else if (request.path == "/readyz") {
    // Readiness: should a load balancer send NEW work here? The serving
    // layer's probe folds in drain state, scheduler saturation, and memory
    // admission (docs/SERVING.md, "Operations").
    bool ready = true;
    std::string body = "{\"ready\":true}\n";
    if (readiness_handler_ != nullptr) {
      auto [probe_ready, probe_body] = readiness_handler_();
      ready = probe_ready;
      body = std::move(probe_body);
    } else if (!accepting()) {
      ready = false;
      body = "{\"ready\":false,\"reasons\":[\"draining\"]}\n";
    }
    writer.Respond(ready ? "200 OK" : "503 Service Unavailable",
                   "application/json", body);
  } else if (request.path == "/serving") {
    if (stats_handler_ != nullptr) {
      writer.Respond("200 OK", "application/json", stats_handler_());
    } else {
      writer.Respond("404 Not Found", "application/json",
                     "{\"error\":\"serving_disabled\"}\n");
    }
  } else if (request.path == "/") {
    writer.Respond("200 OK", "text/plain",
                   "rumble metrics endpoint\n"
                   "  /metrics            Prometheus text exposition\n"
                   "  /jobs               live job/stage/task state\n"
                   "  /jobs/<id>          one job's profile summary\n"
                   "  /jobs/<id>/profile  one job's full query profile\n"
                   "  /jobs/<id>/cancel   POST: cancel a running job\n"
                   "  /query              POST: run a JSONiq query "
                   "(JSON-Lines stream)\n"
                   "  /serving            serving-layer stats\n"
                   "  /version            build identity\n"
                   "  /healthz            liveness probe\n"
                   "  /readyz             readiness probe\n");
  } else {
    writer.Respond("404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace rumble::obs
