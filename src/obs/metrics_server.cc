#include "src/obs/metrics_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "src/obs/event_bus.h"

namespace rumble::obs {

namespace {

/// Request header block is bounded so a garbage client cannot grow memory.
constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
/// Query bodies are bounded too; larger posts get 413.
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Parses "/jobs/<id>/cancel"; returns false on any other shape.
bool ParseCancelPath(const std::string& path, std::int64_t* job_id) {
  const std::string prefix = "/jobs/";
  const std::string suffix = "/cancel";
  if (path.rfind(prefix, 0) != 0 || path.size() <= prefix.size() + suffix.size())
    return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  std::string digits =
      path.substr(prefix.size(), path.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  std::int64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *job_id = value;
  return true;
}

/// Reads one HTTP request off `fd`: headers until the blank line, then
/// Content-Length bytes of body. Returns false on a malformed or oversized
/// request (*status carries the error status to send) or a dead socket
/// (*status left empty — nothing to send).
bool ReadRequest(int fd, HttpRequest* request, std::string* status) {
  status->clear();
  std::string data;
  std::size_t header_end = std::string::npos;
  char buf[4096];
  while (header_end == std::string::npos) {
    if (data.size() > kMaxHeaderBytes) {
      *status = "431 Request Header Fields Too Large";
      return false;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
  }

  // Request line: METHOD SP path SP HTTP/1.x
  std::size_t line_end = data.find("\r\n");
  std::string line = data.substr(0, line_end);
  std::size_t method_end = line.find(' ');
  std::size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    *status = "400 Bad Request";
    return false;
  }
  request->method = line.substr(0, method_end);
  request->path = line.substr(method_end + 1, path_end - method_end - 1);
  std::size_t query = request->path.find('?');
  if (query != std::string::npos) request->path.resize(query);

  // Header lines.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = data.find("\r\n", pos);
    std::string header = data.substr(pos, eol - pos);
    pos = eol + 2;
    std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(header.substr(0, colon));
    std::size_t value_begin = colon + 1;
    while (value_begin < header.size() && header[value_begin] == ' ') {
      ++value_begin;
    }
    request->headers[name] = header.substr(value_begin);
  }

  // Body per Content-Length (this server never sees chunked request bodies).
  std::size_t content_length = 0;
  auto it = request->headers.find("content-length");
  if (it != request->headers.end()) {
    for (char c : it->second) {
      if (c < '0' || c > '9') {
        *status = "400 Bad Request";
        return false;
      }
      content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      if (content_length > kMaxBodyBytes) {
        *status = "413 Payload Too Large";
        return false;
      }
    }
  }
  request->body = data.substr(header_end + 4);
  while (request->body.size() < content_length) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    request->body.append(buf, static_cast<std::size_t>(n));
  }
  request->body.resize(content_length);
  return true;
}

}  // namespace

std::string HttpRequest::Header(const std::string& lower_name,
                                std::string fallback) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? std::move(fallback) : it->second;
}

bool HttpResponseWriter::SendAll(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that already hung up must surface as an error
    // here, not as a process-wide SIGPIPE.
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      client_gone_ = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void HttpResponseWriter::Respond(const std::string& status,
                                 const std::string& content_type,
                                 const std::string& body,
                                 const Headers& extra) {
  if (headers_sent_) return;
  headers_sent_ = true;
  std::string out = "HTTP/1.0 " + status + "\r\nContent-Type: " + content_type;
  for (const auto& [name, value] : extra) {
    out += "\r\n" + name + ": " + value;
  }
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  SendAll(out);
}

bool HttpResponseWriter::BeginChunked(const std::string& status,
                                      const std::string& content_type,
                                      const Headers& extra) {
  if (headers_sent_) return false;
  headers_sent_ = true;
  chunked_ = true;
  std::string out = "HTTP/1.1 " + status + "\r\nContent-Type: " + content_type;
  for (const auto& [name, value] : extra) {
    out += "\r\n" + name + ": " + value;
  }
  out += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  return SendAll(out);
}

bool HttpResponseWriter::WriteChunk(std::string_view data) {
  if (data.empty() || client_gone_) return !client_gone_;
  char size_line[32];
  int size_len = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                               data.size());
  std::string out;
  out.reserve(static_cast<std::size_t>(size_len) + data.size() + 2);
  out.append(size_line, static_cast<std::size_t>(size_len));
  out.append(data);
  out += "\r\n";
  return SendAll(out);
}

void HttpResponseWriter::EndChunked() {
  if (!chunked_ || client_gone_) return;
  SendAll("0\r\n\r\n");
}

bool MetricsServer::Start(int port) {
  if (running()) return false;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void MetricsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept() so the thread observes running_ false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  // Unblock every connection thread (their recv/send fails), then join and
  // close. Streaming queries see the dead socket and cancel cooperatively.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (Connection& conn : connections_) {
    ::shutdown(conn.fd, SHUT_RDWR);
  }
  for (Connection& conn : connections_) {
    if (conn.thread.joinable()) conn.thread.join();
    ::close(conn.fd);
  }
  connections_.clear();
}

void MetricsServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      ::close(it->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void MetricsServer::AcceptLoop() {
  while (running()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running()) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    if (static_cast<int>(connections_.size()) >= max_connections_) {
      // Fast, bounded rejection: never queue behind saturated slots.
      HttpResponseWriter writer(fd);
      writer.Respond("503 Service Unavailable", "application/json",
                     "{\"error\":\"too_many_connections\"}\n");
      ::close(fd);
      continue;
    }
    connections_.emplace_back();
    Connection* conn = &connections_.back();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { HandleConnection(conn); });
  }
}

void MetricsServer::HandleConnection(Connection* conn) {
  HttpRequest request;
  std::string error_status;
  HttpResponseWriter writer(conn->fd);
  if (ReadRequest(conn->fd, &request, &error_status)) {
    Dispatch(request, writer);
  } else if (!error_status.empty()) {
    writer.Respond(error_status, "text/plain", "bad request\n");
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  // The accept loop (or Stop) joins us and closes the fd; flagging done last
  // keeps the fd valid for the whole lifetime of this thread.
  conn->done.store(true, std::memory_order_release);
}

void MetricsServer::Dispatch(const HttpRequest& request,
                             HttpResponseWriter& writer) {
  std::int64_t job_id = 0;
  if (request.method == "POST" && request.path == "/query") {
    if (query_handler_ != nullptr) {
      query_handler_(request, writer);
    } else {
      writer.Respond("404 Not Found", "application/json",
                     "{\"error\":\"serving_disabled\"}\n");
    }
    return;
  }
  if (request.method == "POST" && ParseCancelPath(request.path, &job_id)) {
    // Cooperative cancellation (docs/MEMORY.md): hand the id to the engine's
    // handler; the running query observes it at its next cancellation point.
    bool cancelled = cancel_handler_ != nullptr && cancel_handler_(job_id);
    std::string body = std::string("{\"cancelled\":") +
                       (cancelled ? "true" : "false") +
                       ",\"job\":" + std::to_string(job_id) + "}\n";
    writer.Respond(cancelled ? "200 OK" : "404 Not Found", "application/json",
                   body);
    return;
  }
  if (request.method != "GET") {
    writer.Respond("404 Not Found", "text/plain", "not found\n");
    return;
  }
  if (request.path == "/metrics") {
    writer.Respond("200 OK", "text/plain; version=0.0.4",
                   bus_->PrometheusText());
  } else if (request.path == "/jobs") {
    writer.Respond("200 OK", "application/json", bus_->JobsJson());
  } else if (request.path == "/serving") {
    if (stats_handler_ != nullptr) {
      writer.Respond("200 OK", "application/json", stats_handler_());
    } else {
      writer.Respond("404 Not Found", "application/json",
                     "{\"error\":\"serving_disabled\"}\n");
    }
  } else if (request.path == "/") {
    writer.Respond("200 OK", "text/plain",
                   "rumble metrics endpoint\n"
                   "  /metrics            Prometheus text exposition\n"
                   "  /jobs               live job/stage/task state\n"
                   "  /jobs/<id>/cancel   POST: cancel a running job\n"
                   "  /query              POST: run a JSONiq query "
                   "(JSON-Lines stream)\n"
                   "  /serving            serving-layer stats\n");
  } else {
    writer.Respond("404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace rumble::obs
